//! Client-side protocol driver and a closed-loop load generator.
//!
//! [`ServeClient`] is a thin synchronous wrapper over one TCP connection:
//! one request line out, one response line in. [`LoadGen`] spins up `N`
//! such clients, each issuing its next request the moment the previous
//! response lands (closed loop), and reports aggregate throughput — the
//! measurement the `bench_serve` target and `pitex client --bench` print.

use crate::frame::{self, FrameBuf, WireReply, MAX_REPLY_FRAME_BYTES};
use crate::protocol::{
    CaptureAction, ExplainReply, FlightReply, QueryRequest, ReloadReply, Request, Response,
    SeriesReply, StatsReply, TraceReply, TraceRequest,
};
use pitex_core::EngineBackend;
use pitex_live::{SyncBundle, UpdateOp};
use pitex_support::obs::slo::HealthVerdict;
use pitex_support::obs::timeseries::SeriesRes;
use pitex_support::stats::{LatencyHistogram, OnlineStats};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// A blocking client for the `pitex serve` protocol — the human-readable
/// text lines by default, or the pipelined `PFRM` binary framing
/// ([`connect_binary`](Self::connect_binary)); the server auto-detects
/// which one a connection speaks from its first bytes, so both dial the
/// same port.
///
/// The client remembers its resolved address and transparently reconnects
/// **once** per request when an *idempotent* verb (`QUERY`, `STATS`,
/// `PING`) hits a connection-level I/O error — a restarted server (or a
/// router replica swap) costs one retried round-trip instead of killing
/// the session. Non-idempotent verbs (`UPDATE`, `RELOAD`, `SHUTDOWN`, …)
/// are never retried: the first attempt may have been applied before the
/// connection died, and replaying it could double-apply.
pub struct ServeClient {
    addr: std::net::SocketAddr,
    binary: bool,
    /// Next binary request id; replies are matched by id, so a stale reply
    /// left over from an abandoned request can never be mistaken for the
    /// current one.
    next_id: u64,
    frames: FrameBuf,
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl ServeClient {
    /// Connects to a running server. A hostname that resolves to several
    /// addresses is tried in order (as `TcpStream::connect` does); the
    /// first address that answers is pinned for
    /// [`reconnect`](Self::reconnect).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::dial(addr, None, false)
    }

    /// Connects speaking the length-prefixed binary frame protocol —
    /// cheaper to encode/decode than text and the only mode that supports
    /// [`pipeline`](Self::pipeline)d requests.
    pub fn connect_binary(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::dial(addr, None, true)
    }

    /// Connects with an explicit timeout on the TCP dial — what a router's
    /// health-gated connection pool wants (a down replica must fail fast,
    /// not hang the probing request).
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> std::io::Result<Self> {
        Self::dial(addr, Some(timeout), false)
    }

    /// Connects with both knobs explicit: an optional dial timeout and the
    /// wire mode (`binary: true` for `PFRM` frames).
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        timeout: Option<Duration>,
        binary: bool,
    ) -> std::io::Result<Self> {
        Self::dial(addr, timeout, binary)
    }

    fn dial(
        addr: impl ToSocketAddrs,
        timeout: Option<Duration>,
        binary: bool,
    ) -> std::io::Result<Self> {
        let mut last_err = None;
        for addr in addr.to_socket_addrs()? {
            match Self::open(addr, timeout) {
                Ok((writer, reader)) => {
                    return Ok(Self {
                        addr,
                        binary,
                        next_id: 1,
                        frames: FrameBuf::new(MAX_REPLY_FRAME_BYTES),
                        writer,
                        reader,
                    })
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err
            .unwrap_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address")))
    }

    fn open(
        addr: std::net::SocketAddr,
        timeout: Option<Duration>,
    ) -> std::io::Result<(TcpStream, BufReader<TcpStream>)> {
        let writer = match timeout {
            Some(t) => TcpStream::connect_timeout(&addr, t)?,
            None => TcpStream::connect(addr)?,
        };
        writer.set_nodelay(true).ok(); // request/response; don't batch
        let reader = BufReader::new(writer.try_clone()?);
        Ok((writer, reader))
    }

    /// The server address this client is (re)connecting to.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Whether this client speaks the binary frame protocol.
    pub fn is_binary(&self) -> bool {
        self.binary
    }

    /// Drops the current connection and dials the same address again (the
    /// wire mode is kept; any half-received frame is discarded).
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        let (writer, reader) = Self::open(self.addr, None)?;
        self.writer = writer;
        self.reader = reader;
        self.frames = FrameBuf::new(MAX_REPLY_FRAME_BYTES);
        Ok(())
    }

    /// Sends one raw line and reads one reply line (the protocol is strictly
    /// one response per request).
    pub fn roundtrip_line(&mut self, line: &str) -> std::io::Result<String> {
        // One write per request (see the server-side note on Nagle).
        let mut out = String::with_capacity(line.len() + 1);
        out.push_str(line);
        out.push('\n');
        self.writer.write_all(out.as_bytes())?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(reply)
    }

    /// Sends one binary frame and reads reply frames until the one with a
    /// matching id arrives (stale replies from abandoned requests are
    /// skipped by id).
    fn roundtrip_frame(&mut self, id: u64, request: &Request) -> std::io::Result<WireReply> {
        self.writer.write_all(&frame::encode_request(id, request))?;
        self.read_reply(id)
    }

    fn read_reply(&mut self, id: u64) -> std::io::Result<WireReply> {
        loop {
            let (got, reply) = self.read_any_reply()?;
            if got == id {
                return Ok(reply);
            }
        }
    }

    /// Sends a typed request and parses the reply — over whichever wire
    /// mode the client was dialed with. Idempotent verbs (`QUERY`,
    /// `EXPLAIN`, `STATS`, `PING`) survive one connection loss: the client
    /// reconnects and retries exactly once (see the type docs).
    pub fn request(&mut self, request: &Request) -> std::io::Result<Response> {
        let idempotent = matches!(
            request,
            Request::Ping
                | Request::Stats
                | Request::Query(_)
                | Request::Explain(_)
                | Request::Trace(_)
                | Request::Flight
                | Request::Series { .. }
                | Request::Health
                | Request::Sync { .. }
        );
        if self.binary {
            let id = self.next_id;
            self.next_id += 1;
            let reply = match self.roundtrip_frame(id, request) {
                Err(e) if idempotent && connection_lost(&e) => {
                    self.reconnect()?;
                    self.roundtrip_frame(id, request)?
                }
                other => other?,
            };
            return match reply {
                WireReply::Response(response) => Ok(response),
                WireReply::Raw(_) => Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "unexpected raw reply to a typed request",
                )),
            };
        }
        let line = request.to_line();
        let reply = match self.roundtrip_line(&line) {
            Err(e) if idempotent && connection_lost(&e) => {
                self.reconnect()?;
                self.roundtrip_line(&line)?
            }
            other => other?,
        };
        Response::parse(&reply).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Issues a batch of requests **pipelined**: every request is written
    /// before any reply is read, so the batch costs one round-trip of
    /// queueing instead of `n`. Replies are matched back to requests by id
    /// (binary) or arrival order (text, whose replies are ordered) and
    /// returned in request order. Not retried on connection loss — part of
    /// the batch may already have been applied.
    pub fn pipeline(&mut self, requests: &[Request]) -> std::io::Result<Vec<Response>> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        if self.binary {
            let first_id = self.next_id;
            self.next_id += requests.len() as u64;
            let mut batch = Vec::new();
            for (i, request) in requests.iter().enumerate() {
                batch.extend_from_slice(&frame::encode_request(first_id + i as u64, request));
            }
            self.writer.write_all(&batch)?;
            let mut replies: Vec<Option<Response>> = (0..requests.len()).map(|_| None).collect();
            let mut pending = requests.len();
            while pending > 0 {
                let reply = self.read_any_reply()?;
                let (id, wire) = reply;
                let Some(slot) =
                    id.checked_sub(first_id).and_then(|off| replies.get_mut(off as usize))
                else {
                    continue; // stale id from an earlier abandoned request
                };
                if slot.is_some() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("duplicate reply for pipelined id {id}"),
                    ));
                }
                let WireReply::Response(response) = wire else {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "unexpected raw reply in a pipelined batch",
                    ));
                };
                *slot = Some(response);
                pending -= 1;
            }
            return Ok(replies.into_iter().map(|r| r.expect("pending hit zero")).collect());
        }
        let mut batch = String::new();
        for request in requests {
            batch.push_str(&request.to_line());
            batch.push('\n');
        }
        self.writer.write_all(batch.as_bytes())?;
        let mut replies = Vec::with_capacity(requests.len());
        for _ in requests {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed mid-batch",
                ));
            }
            replies.push(
                Response::parse(&line)
                    .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?,
            );
        }
        Ok(replies)
    }

    /// Reads the next complete reply frame, whatever its id.
    fn read_any_reply(&mut self) -> std::io::Result<(u64, WireReply)> {
        use std::io::Read;
        loop {
            if let Some(payload) = self.frames.next_payload().map_err(frame_io)? {
                return frame::decode_response(&payload).map_err(frame_io);
            }
            let mut chunk = [0u8; 16 * 1024];
            let n = self.reader.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            self.frames.extend(&chunk[..n]);
        }
    }

    /// `QUERY user k` with the server's default deadline and backend.
    pub fn query(&mut self, user: u32, k: usize) -> std::io::Result<Response> {
        self.request(&Request::Query(QueryRequest::new(user, k)))
    }

    /// `QUERY user k timeout_us`.
    pub fn query_with_timeout(
        &mut self,
        user: u32,
        k: usize,
        timeout_us: u64,
    ) -> std::io::Result<Response> {
        self.request(&Request::Query(QueryRequest {
            timeout_us: Some(timeout_us),
            ..QueryRequest::new(user, k)
        }))
    }

    /// `QUERY user k [timeout_us] backend` — per-request backend override
    /// (`EngineBackend::Auto` asks the server's planner).
    pub fn query_with_backend(
        &mut self,
        user: u32,
        k: usize,
        timeout_us: Option<u64>,
        backend: EngineBackend,
    ) -> std::io::Result<Response> {
        self.request(&Request::Query(QueryRequest {
            timeout_us,
            backend: Some(backend),
            ..QueryRequest::new(user, k)
        }))
    }

    /// `EXPLAIN user k [timeout_us] [backend]`, decoded: the query answer
    /// plus the planner's decision (chosen backend, predicted vs. actual
    /// cost, rejected alternatives). A protocol-level `ERR` surfaces as an
    /// I/O error.
    pub fn explain(
        &mut self,
        user: u32,
        k: usize,
        timeout_us: Option<u64>,
        backend: Option<EngineBackend>,
    ) -> std::io::Result<ExplainReply> {
        let request =
            Request::Explain(QueryRequest { timeout_us, backend, ..QueryRequest::new(user, k) });
        match self.request(&request)? {
            Response::Explained(reply) => Ok(reply),
            other => Err(reply_error("EXPLAINED", other)),
        }
    }

    /// `TRACE user k [timeout_us] [backend] [id=…]`, decoded: the query
    /// answer plus the span timeline. Pass `trace_id` to adopt an id
    /// minted upstream (the router does this on the shard hop); `None`
    /// lets the server mint one.
    pub fn trace(
        &mut self,
        user: u32,
        k: usize,
        timeout_us: Option<u64>,
        backend: Option<EngineBackend>,
        trace_id: Option<u64>,
    ) -> std::io::Result<TraceReply> {
        let request = Request::Trace(TraceRequest {
            query: QueryRequest { timeout_us, backend, ..QueryRequest::new(user, k) },
            trace_id,
        });
        match self.request(&request)? {
            Response::Traced(reply) => Ok(reply),
            other => Err(reply_error("TRACED", other)),
        }
    }

    /// `METRICS`: the Prometheus text exposition. The reply is the one
    /// multi-line response in the protocol; it is read through to its
    /// `# EOF` terminator (and includes it).
    pub fn metrics(&mut self) -> std::io::Result<String> {
        if self.binary {
            let id = self.next_id;
            self.next_id += 1;
            return match self.roundtrip_frame(id, &Request::Metrics)? {
                WireReply::Raw(text) => Ok(text),
                WireReply::Response(other) => Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("expected raw exposition reply, got {other:?}"),
                )),
            };
        }
        self.writer.write_all(b"METRICS\n")?;
        let mut text = String::new();
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before # EOF",
                ));
            }
            let done = line.trim() == "# EOF";
            text.push_str(&line);
            if done {
                return Ok(text);
            }
        }
    }

    /// `FLIGHT` (admin): the flight-recorder dump — recent request
    /// summaries plus the slow-query log.
    pub fn flight(&mut self) -> std::io::Result<FlightReply> {
        match self.request(&Request::Flight)? {
            Response::Flight(reply) => Ok(reply),
            other => Err(reply_error("FLIGHTED", other)),
        }
    }

    /// `STATS`, decoded (errors if the server answers anything else).
    pub fn stats(&mut self) -> std::io::Result<StatsReply> {
        match self.request(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected STATS reply, got {other:?}"),
            )),
        }
    }

    /// `SERIES <field> [res]`: one rolling-ring dump from the server's
    /// background sampler (default resolution: fast). Read-only, retried
    /// like the other idempotent verbs.
    pub fn series(&mut self, field: &str, res: Option<SeriesRes>) -> std::io::Result<SeriesReply> {
        match self.request(&Request::Series { field: field.to_string(), res })? {
            Response::Series(reply) => Ok(reply),
            other => Err(reply_error("SERIESED", other)),
        }
    }

    /// `HEALTH`: the SLO burn-rate verdict with its evidence. Read-only,
    /// retried like the other idempotent verbs.
    pub fn health(&mut self) -> std::io::Result<HealthVerdict> {
        match self.request(&Request::Health)? {
            Response::Health(verdict) => Ok(verdict),
            other => Err(reply_error("HEALTHY", other)),
        }
    }

    /// `PING` (errors unless the server answers `PONG`).
    pub fn ping(&mut self) -> std::io::Result<()> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected PONG, got {other:?}"),
            )),
        }
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown_server(&mut self) -> std::io::Result<()> {
        self.request(&Request::Shutdown).map(|_| ())
    }

    /// `UPDATE <op>` (admin): stages one mutation; returns the serving
    /// epoch and the number of ops now pending. A server-side rejection
    /// (`ERR BAD_UPDATE` / `ERR ADMIN_DENIED`) surfaces as an error.
    pub fn update(&mut self, op: UpdateOp) -> std::io::Result<(u64, u64)> {
        match self.request(&Request::Update(op))? {
            Response::Updated { epoch, pending } => Ok((epoch, pending)),
            other => Err(reply_error("UPDATED", other)),
        }
    }

    /// `RELOAD` (admin): folds pending updates into a fresh snapshot.
    pub fn reload(&mut self) -> std::io::Result<ReloadReply> {
        match self.request(&Request::Reload)? {
            Response::Reloaded(reply) => Ok(reply),
            other => Err(reply_error("RELOADED", other)),
        }
    }

    /// `PREPARE` (admin): phase 1 of a two-phase reload — fold pending
    /// updates and repair the index into a staged snapshot without
    /// swapping. The reply's `epoch` is the epoch still being served.
    pub fn prepare(&mut self) -> std::io::Result<ReloadReply> {
        match self.request(&Request::Prepare)? {
            Response::Prepared(reply) => Ok(reply),
            other => Err(reply_error("PREPARED", other)),
        }
    }

    /// `COMMIT` (admin): phase 2 — swap the `PREPARE`d snapshot in (a
    /// no-op reload reply if nothing was staged).
    pub fn commit(&mut self) -> std::io::Result<ReloadReply> {
        match self.request(&Request::Commit)? {
            Response::Reloaded(reply) => Ok(reply),
            other => Err(reply_error("RELOADED", other)),
        }
    }

    /// `SYNC <from_epoch>` (admin): the committed history suffix past
    /// `from_epoch` plus the donor's staged ops — what a stale replica
    /// replays to catch up. Read-only on the donor, so it is retried like
    /// the other idempotent verbs.
    pub fn sync(&mut self, from_epoch: u64) -> std::io::Result<SyncBundle> {
        match self.request(&Request::Sync { from_epoch })? {
            Response::Synced(bundle) => Ok(bundle),
            other => Err(reply_error("SYNCED", other)),
        }
    }

    /// `DISCARD` (admin): drop every staged-but-uncommitted op and any
    /// PREPAREd snapshot; returns `(epoch, dropped)`. Not retried — like
    /// `UPDATE`, replaying it after a connection loss could discard ops
    /// staged in between.
    pub fn discard(&mut self) -> std::io::Result<(u64, u64)> {
        match self.request(&Request::Discard)? {
            Response::Discarded { epoch, dropped } => Ok((epoch, dropped)),
            other => Err(reply_error("DISCARDED", other)),
        }
    }

    /// `EPOCH` (admin): the epoch of the snapshot currently being served.
    pub fn epoch(&mut self) -> std::io::Result<u64> {
        match self.request(&Request::Epoch)? {
            Response::Epoch(epoch) => Ok(epoch),
            other => Err(reply_error("EPOCH", other)),
        }
    }

    /// `CAPTURE on|off|rotate` (admin): controls the server's PWRK workload
    /// recorder; returns `(enabled, recorded, dropped)` after the action.
    /// Not retried on connection loss — `rotate` is not idempotent (a
    /// replay would rotate twice).
    pub fn capture(&mut self, action: CaptureAction) -> std::io::Result<(bool, u64, u64)> {
        match self.request(&Request::Capture(action))? {
            Response::Captured { enabled, recorded, dropped } => Ok((enabled, recorded, dropped)),
            other => Err(reply_error("CAPTURED", other)),
        }
    }
}

/// Whether an I/O error means the TCP connection itself is gone (worth one
/// reconnect) rather than a protocol- or OS-level problem that a fresh
/// connection would not fix.
fn frame_io(e: crate::frame::FrameError) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
}

fn connection_lost(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::NotConnected
            | std::io::ErrorKind::WriteZero
    )
}

fn reply_error(expected: &str, got: Response) -> std::io::Error {
    let kind = match got {
        Response::Err { .. } => std::io::ErrorKind::PermissionDenied,
        _ => std::io::ErrorKind::InvalidData,
    };
    std::io::Error::new(kind, format!("expected {expected} reply, got {got:?}"))
}

/// A **closed-loop** load generator: `clients` connections, each issuing
/// `requests_per_client` queries back-to-back, the next request only after
/// the previous response lands.
///
/// Closed loops are the right tool for measuring *throughput capacity*,
/// but their latency numbers suffer **coordinated omission**: when the
/// server stalls, the generator stops offering load, so the stall is
/// counted once instead of once per request that *would have* arrived.
/// For tail-latency measurements use the open-loop replay engine
/// ([`crate::workload::Replay`], `pitex replay --rate`), which keeps
/// issuing on schedule and measures from the scheduled arrival time.
#[derive(Clone, Copy, Debug)]
pub struct LoadGen {
    /// Concurrent connections.
    pub clients: usize,
    /// Queries per connection.
    pub requests_per_client: usize,
    /// Query user for every request.
    pub user: u32,
    /// Query `k` for every request.
    pub k: usize,
    /// Optional per-request deadline forwarded to the server.
    pub timeout_us: Option<u64>,
    /// Optional per-request backend override (`auto` drives the planner).
    pub backend: Option<EngineBackend>,
    /// Speak the `PFRM` binary frame protocol instead of text lines.
    pub binary: bool,
    /// Requests pipelined per batch (1 = strict request/response). Depths
    /// above 1 require `binary`; latency is then recorded once per batch
    /// (the client-observed batch round-trip), not per request.
    pub pipeline: usize,
}

impl Default for LoadGen {
    fn default() -> Self {
        Self {
            clients: 4,
            requests_per_client: 16,
            user: 0,
            k: 2,
            timeout_us: None,
            backend: None,
            binary: false,
            pipeline: 1,
        }
    }
}

/// Aggregate outcome of one [`LoadGen::run`].
///
/// Latencies here are **closed-loop** (measured request-send to
/// response-read, with no backlog credit) — see the [`LoadGen`] docs for
/// why that understates tails under stalls.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Requests issued (clients × requests_per_client).
    pub requests: u64,
    /// `OK` replies.
    pub ok: u64,
    /// `OK` replies served from the result cache.
    pub cached: u64,
    /// `BUSY` (load-shed) replies.
    pub busy: u64,
    /// `ERR` replies of any code.
    pub errors: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Client-observed per-request latency in microseconds.
    pub latency_us: OnlineStats,
    /// The same latencies as a log₂ histogram, so percentiles (p50/p99)
    /// can be read — and compared against open-loop replay percentiles.
    pub latency_hist: LatencyHistogram,
}

impl LoadReport {
    /// Successful queries per second over the run.
    pub fn qps(&self) -> f64 {
        self.ok as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

impl LoadGen {
    /// Runs the closed loop to completion and aggregates the outcome.
    ///
    /// Every client issues exactly `requests_per_client` requests even when
    /// some are answered `BUSY` — shed requests are part of the workload.
    pub fn run(&self, addr: impl ToSocketAddrs) -> std::io::Result<LoadReport> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
        let clients = self.clients.max(1);
        let started = Instant::now();
        let mut outcomes: Vec<std::io::Result<LoadReport>> = Vec::with_capacity(clients);
        std::thread::scope(|scope| {
            let mut joins = Vec::with_capacity(clients);
            for _ in 0..clients {
                joins.push(scope.spawn(move || self.run_one_client(addr)));
            }
            for join in joins {
                outcomes.push(join.join().expect("load-gen client panicked"));
            }
        });
        let mut report = LoadReport {
            requests: 0,
            ok: 0,
            cached: 0,
            busy: 0,
            errors: 0,
            elapsed: started.elapsed(),
            latency_us: OnlineStats::new(),
            latency_hist: LatencyHistogram::new(),
        };
        for outcome in outcomes {
            let one = outcome?;
            report.requests += one.requests;
            report.ok += one.ok;
            report.cached += one.cached;
            report.busy += one.busy;
            report.errors += one.errors;
            report.latency_us.merge(&one.latency_us);
            report.latency_hist.merge(&one.latency_hist);
        }
        Ok(report)
    }

    fn run_one_client(&self, addr: std::net::SocketAddr) -> std::io::Result<LoadReport> {
        let mut client = ServeClient::connect_with(addr, None, self.binary)?;
        let mut report = LoadReport {
            requests: 0,
            ok: 0,
            cached: 0,
            busy: 0,
            errors: 0,
            elapsed: Duration::ZERO,
            latency_us: OnlineStats::new(),
            latency_hist: LatencyHistogram::new(),
        };
        let request = Request::Query(QueryRequest {
            user: self.user,
            k: self.k,
            timeout_us: self.timeout_us,
            backend: self.backend,
        });
        let depth = self.pipeline.max(1);
        if depth > 1 && !self.binary {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "pipeline depth > 1 requires binary mode",
            ));
        }
        let mut remaining = self.requests_per_client;
        while remaining > 0 {
            let batch = depth.min(remaining);
            remaining -= batch;
            let t = Instant::now();
            let responses = if batch == 1 {
                vec![client.request(&request)?]
            } else {
                client.pipeline(&vec![request.clone(); batch])?
            };
            let us = t.elapsed().as_micros() as u64;
            report.latency_us.push(us as f64);
            report.latency_hist.record(us);
            for response in responses {
                report.requests += 1;
                match response {
                    Response::Ok(reply) => {
                        report.ok += 1;
                        if reply.cached {
                            report.cached += 1;
                        }
                    }
                    Response::Busy => report.busy += 1,
                    Response::Err { .. } => report.errors += 1,
                    other => {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("unexpected reply to QUERY: {other:?}"),
                        ))
                    }
                }
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServeOptions, Server};
    use pitex_core::{EngineBackend, EngineHandle, PitexConfig};
    use pitex_model::TicModel;
    use std::sync::Arc;

    fn boot() -> crate::server::ServerHandle {
        let handle = EngineHandle::new(
            Arc::new(TicModel::paper_example()),
            EngineBackend::Exact,
            PitexConfig::default(),
        )
        .unwrap();
        Server::spawn(handle, ("127.0.0.1", 0), ServeOptions::default()).unwrap()
    }

    #[test]
    fn typed_client_round_trips() {
        let server = boot();
        let mut client = ServeClient::connect(server.addr()).unwrap();
        client.ping().unwrap();
        let Response::Ok(reply) = client.query(0, 2).unwrap() else { panic!("expected OK") };
        assert_eq!(reply.tags, vec![2, 3]);
        let stats = client.stats().unwrap();
        assert_eq!(stats.get_u64("ok"), Some(1));
        server.stop().unwrap();
    }

    #[test]
    fn trace_metrics_and_flight_observe_a_query() {
        let server = boot();
        let mut client = ServeClient::connect(server.addr()).unwrap();

        // A forwarded trace id is adopted; spans cover the whole service.
        let traced = client.trace(0, 2, None, None, Some(0xabcd)).unwrap();
        assert_eq!(traced.trace_id, 0xabcd);
        assert_eq!(traced.tags, vec![2, 3]);
        assert!(!traced.cached);
        let names: Vec<&str> = traced.spans.iter().map(|s| s.name.as_str()).collect();
        for expected in ["plan", "cache", "queue", "execute"] {
            assert!(names.contains(&expected), "missing span {expected} in {names:?}");
        }
        for span in &traced.spans {
            assert!(
                span.start_us + span.dur_us <= traced.us + 1_000,
                "span {} overruns the total: {span:?} vs us={}",
                span.name,
                traced.us
            );
        }

        // A repeated trace hits the cache: no queue/execute spans, and a
        // freshly minted (distinct) id.
        let again = client.trace(0, 2, None, None, None).unwrap();
        assert!(again.cached);
        assert_ne!(again.trace_id, 0xabcd);
        let names: Vec<&str> = again.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["plan", "cache"]);

        // METRICS parses as Prometheus exposition and the connection
        // still frames the next request correctly.
        let text = client.metrics().unwrap();
        let samples = pitex_support::obs::parse_prometheus(&text).unwrap();
        let get = |name: &str| {
            samples.iter().find(|s| s.name == name).unwrap_or_else(|| panic!("missing {name}"))
        };
        assert!(get("pitex_requests").value >= 2.0);
        assert!(get("pitex_flight_recorded").value >= 2.0);
        client.ping().unwrap();

        // The flight recorder saw both traces, ids intact.
        let flight = client.flight().unwrap();
        assert!(flight.recorded >= 2);
        assert!(flight
            .entries
            .iter()
            .any(|e| e.trace_id == 0xabcd && e.verb == "TRACE" && e.outcome == "ok"));
        server.stop().unwrap();
    }

    #[test]
    fn load_gen_reports_add_up() {
        let server = boot();
        let report = LoadGen { clients: 3, requests_per_client: 10, ..LoadGen::default() }
            .run(server.addr())
            .unwrap();
        assert_eq!(report.requests, 30);
        assert_eq!(report.ok + report.busy + report.errors, 30);
        assert!(report.ok >= 1);
        assert!(report.cached >= report.ok.saturating_sub(3), "all but first-per-key hits cache");
        assert!(report.qps() > 0.0);
        assert_eq!(report.latency_us.count(), 30);
        assert_eq!(report.latency_hist.count(), 30);
        assert!(report.latency_hist.quantile(0.99) >= report.latency_hist.quantile(0.5));
        server.stop().unwrap();
    }

    #[test]
    fn shutdown_via_client() {
        let server = boot();
        let mut client = ServeClient::connect(server.addr()).unwrap();
        client.shutdown_server().unwrap();
        server.join().unwrap();
    }

    fn boot_at(addr: std::net::SocketAddr) -> crate::server::ServerHandle {
        let handle = EngineHandle::new(
            Arc::new(TicModel::paper_example()),
            EngineBackend::Exact,
            PitexConfig::default(),
        )
        .unwrap();
        Server::spawn(handle, addr, ServeOptions::default()).unwrap()
    }

    #[test]
    fn idempotent_requests_survive_a_server_restart() {
        let first = boot();
        let addr = first.addr();
        let mut client = ServeClient::connect(addr).unwrap();
        let Response::Ok(before) = client.query(0, 2).unwrap() else { panic!("expected OK") };
        assert_eq!(before.tags, vec![2, 3]);

        // Kill the server and boot a fresh one on the *same* address. The
        // client's next idempotent request lands on a dead socket, must
        // reconnect once, and succeed against the replacement.
        first.stop().unwrap();
        let second = boot_at(addr);
        let Response::Ok(after) = client.query(0, 2).unwrap() else {
            panic!("query after restart must succeed via reconnect")
        };
        assert_eq!(after.tags, vec![2, 3]);
        assert!(!after.cached, "the replacement server has a cold cache");
        client.ping().unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.get_u64("ok"), Some(1), "only the retried query hit server two");
        second.stop().unwrap();
    }

    #[test]
    fn non_idempotent_requests_are_not_replayed() {
        let first = boot();
        let addr = first.addr();
        let mut client = ServeClient::connect(addr).unwrap();
        client.ping().unwrap();
        first.stop().unwrap();
        let second = boot_at(addr);
        // UPDATE over the dead connection must surface the I/O error, not
        // silently replay against the replacement server.
        let err = client.update(UpdateOp::AddUser).expect_err("must not be retried");
        assert!(connection_lost(&err) || err.kind() == std::io::ErrorKind::ConnectionRefused);
        let mut probe = ServeClient::connect(addr).unwrap();
        let stats = probe.stats().unwrap();
        assert_eq!(stats.get_u64("updates_applied"), Some(0), "no ghost update applied");
        second.stop().unwrap();
    }
}
