//! The readiness-driven event-loop front end.
//!
//! One `pitex-evloop` thread owns the listener and every pipelined binary
//! connection behind an epoll-backed poller (the vendored [`polling`]
//! shim), registered **level-triggered**: interest stays armed across
//! deliveries, so the steady-state round trip costs no `epoll_ctl` at all
//! — the loop caches each connection's armed interest and issues a
//! `modify` only when it actually changes (a partial write, a drain, a
//! close). Text-protocol and HTTP clients are *sniffed* off the
//! first bytes and handed to the classic blocking per-connection threads,
//! so both protocols coexist on one port and the battle-tested text path
//! is untouched; binary `PFRM` clients stay on the loop with a
//! non-blocking per-connection state machine:
//!
//! * **Batch admission** — a readable burst is drained into the frame
//!   buffer and every complete frame is admitted in one pass: `PING` and
//!   cache hits answer inline, cache-miss queries dispatch to the worker
//!   pool with an [`EventSink`] (no thread blocks per in-flight request),
//!   and every other verb goes to the slow-lane thread so a long admin
//!   fold can never stall the loop.
//! * **Completion queue** — workers finish queries on their own threads
//!   (cache insert, counters, flight record — see
//!   [`super::complete_query`]), encode the reply frame, and push it to a
//!   mutex-guarded queue, waking the loop through the poller's `eventfd`
//!   notifier. A completion whose connection has since died is dropped and
//!   counted under `conn_aborted` — keys are monotonically assigned and
//!   never reused, so a late reply can never reach the wrong client.
//! * **Vectored flush** — all queued reply frames for a connection are
//!   written with as few `writev` calls as possible
//!   (`PITEX_SERVE_WRITEV_BATCH` slices per call).
//!
//! The loop caps per-connection pipelining at `PITEX_SERVE_PIPELINE`
//! in-flight queries; past that, further queries in the burst shed as
//! `BUSY` exactly like a full worker queue would.

use super::{
    acceptor_loop, complete_query, connection_loop, env_knob, handle_request, prepare_query,
    register_connection, shed_query, writev_batch, Handled, Job, PreparedQuery, QueryCtx,
    ReplySink, Shared, WorkerReply, POLL,
};
use crate::frame::{self, could_be_frame, FrameBuf, FrameError, MAX_REQUEST_FRAME_BYTES};
use crate::protocol::{ErrorCode, Request, Response};
use pitex_live::Snapshot;
use polling::{Event, Events, PollMode, Poller};
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// The poller key reserved for the listener; connections start at 1.
const LISTENER_KEY: usize = 0;

/// What worker threads and the slow lane share with the loop: the poller
/// (for `notify`) and the completed-reply queue.
pub(super) struct LoopShared {
    poller: Poller,
    completions: Mutex<Vec<Completion>>,
}

/// A reply frame finished off-loop, addressed by connection key.
struct Completion {
    key: usize,
    frame: Vec<u8>,
    close: bool,
}

impl LoopShared {
    fn push(&self, completion: Completion) {
        self.completions.lock().unwrap().push(completion);
        // A failed wake-up is harmless: the loop also wakes on its POLL
        // timeout and drains the queue then.
        let _ = self.poller.notify();
    }

    fn drain(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.completions.lock().unwrap())
    }
}

/// The event-loop reply sink a dispatched query carries instead of a
/// blocked connection thread. The worker finishes the query (cache,
/// counters, recording), encodes the frame, and pushes it to the
/// completion queue. A sink dropped without delivering (worker pool
/// drained at shutdown) still completes the request with an error so the
/// client is never left waiting on a swallowed id.
pub(super) struct EventSink {
    shared: Arc<Shared>,
    lp: Arc<LoopShared>,
    key: usize,
    id: u64,
    ctx: Option<QueryCtx>,
}

impl EventSink {
    pub(super) fn deliver(mut self, reply: WorkerReply) {
        if let Some(ctx) = self.ctx.take() {
            let response = complete_query(&self.shared, &ctx, reply);
            self.lp.push(Completion {
                key: self.key,
                frame: frame::encode_response(self.id, &response),
                close: false,
            });
        }
    }
}

impl Drop for EventSink {
    fn drop(&mut self) {
        if let Some(ctx) = self.ctx.take() {
            let response = super::abandoned_query(&self.shared, &ctx);
            self.lp.push(Completion {
                key: self.key,
                frame: frame::encode_response(self.id, &response),
                close: false,
            });
        }
    }
}

/// A verb the loop must not run inline (admin folds, stats scrapes,
/// blocking `EXPLAIN`/`TRACE` dispatches), bound for the slow lane.
struct SlowTask {
    key: usize,
    id: u64,
    request: Request,
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    /// First bytes while the protocol is still undecided.
    sniff: Vec<u8>,
    sniffing: bool,
    frames: FrameBuf,
    /// Completed reply frames not yet (fully) written.
    out: VecDeque<Vec<u8>>,
    /// Bytes of `out[0]` already written.
    out_off: usize,
    /// Queries + slow-lane verbs dispatched but not yet completed.
    in_flight: usize,
    /// The peer half-closed. Frames already buffered are still admitted
    /// (their replies flush before the hang-up), but nothing more is read.
    eof: bool,
    /// Stop admitting (QUIT/SHUTDOWN admitted or a fatal frame error
    /// replied): drain what is pending, then close.
    draining: bool,
    /// Close once `out` is flushed and `in_flight` drains to zero.
    close_after_flush: bool,
    /// The `(readable, writable)` interest currently armed in the poller.
    /// Registrations are level-triggered, so this only changes on a
    /// partial write, a half-close, or a drain — the cache is what lets
    /// the steady state skip `epoll_ctl` entirely.
    armed: (bool, bool),
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            sniff: Vec::with_capacity(4),
            sniffing: true,
            frames: FrameBuf::new(MAX_REQUEST_FRAME_BYTES),
            out: VecDeque::new(),
            out_off: 0,
            in_flight: 0,
            eof: false,
            draining: false,
            close_after_flush: false,
            armed: (true, false),
        }
    }
}

/// Loop-wide context threaded through the per-connection handlers.
struct LoopCtx<'a> {
    shared: &'a Arc<Shared>,
    lp: &'a Arc<LoopShared>,
    job_tx: &'a mpsc::SyncSender<Job>,
    slow_tx: &'a mpsc::Sender<SlowTask>,
    pipeline_cap: usize,
    batch: usize,
}

/// What one connection event resolved to.
enum Outcome {
    /// Still on the loop — flush and re-arm.
    Keep,
    /// Sniffed as text/HTTP: hand the stream to a blocking thread.
    HandOffText,
    /// Dead (bad magic, torn read, write failure): drop it.
    Drop,
}

/// Runs the event loop until shutdown. Falls back to the classic
/// thread-per-connection acceptor when the platform has no poller.
pub(super) fn run(shared: &Arc<Shared>, listener: TcpListener, job_tx: &mpsc::SyncSender<Job>) {
    let poller = match Poller::new() {
        Ok(poller) => poller,
        Err(_) => return acceptor_loop(shared, &listener, job_tx),
    };
    let lp = Arc::new(LoopShared { poller, completions: Mutex::new(Vec::new()) });
    // Level-triggered: as long as accepts are drained to `WouldBlock`
    // (they are — see `accept_burst`), the listener never needs re-arming.
    if unsafe { lp.poller.add_with_mode(&listener, Event::readable(LISTENER_KEY), PollMode::Level) }
        .is_err()
    {
        return acceptor_loop(shared, &listener, job_tx);
    }

    let (slow_tx, slow_rx) = mpsc::channel::<SlowTask>();
    {
        let slow_shared = shared.clone();
        let lp = lp.clone();
        let job_tx = job_tx.clone();
        if let Ok(handle) = std::thread::Builder::new()
            .name("pitex-slowlane".to_string())
            .spawn(move || slow_lane(&slow_shared, &lp, &slow_rx, &job_tx))
        {
            register_connection(shared, handle);
        }
    }

    let ctx = LoopCtx {
        shared,
        lp: &lp,
        job_tx,
        slow_tx: &slow_tx,
        pipeline_cap: env_knob("PITEX_SERVE_PIPELINE", 1024),
        batch: writev_batch(),
    };
    let mut conns: HashMap<usize, Conn> = HashMap::new();
    let mut next_key = LISTENER_KEY + 1;
    let mut events = Events::new();
    let mut dirty: Vec<usize> = Vec::new();
    let mut snapshot = shared.store.current();
    loop {
        events.clear();
        let _ = lp.poller.wait(&mut events, Some(POLL));
        if shared.stop.load(Ordering::SeqCst) {
            // A binary SHUTDOWN's BYE rides the completion queue and may
            // not have been drained yet — deliver what is (or is about to
            // be) queued and flush before going down, so binary clients
            // see an orderly reply stream, not an abrupt EOF, exactly as
            // text clients get their Bye line before the stop.
            shutdown_flush(&ctx, &mut conns);
            return;
        }
        // Re-pin the snapshot once per wake; admission below uses it.
        if shared.store.epoch() != snapshot.epoch {
            snapshot = shared.store.current();
        }

        dirty.clear();
        for completion in lp.drain() {
            match conns.get_mut(&completion.key) {
                Some(conn) => {
                    conn.in_flight -= 1;
                    conn.out.push_back(completion.frame);
                    if completion.close {
                        conn.draining = true;
                        conn.close_after_flush = true;
                    }
                    dirty.push(completion.key);
                }
                // The connection died while its reply was being computed.
                None => shared.counters.conn_aborted.inc(),
            }
        }

        for event in events.iter() {
            if event.key == LISTENER_KEY {
                accept_burst(&ctx, &listener, &mut conns, &mut next_key);
                continue;
            }
            let Some(conn) = conns.get_mut(&event.key) else { continue };
            match conn_event(&ctx, event.key, conn, event.readable, &snapshot) {
                Outcome::Keep => dirty.push(event.key),
                Outcome::HandOffText => {
                    let conn = conns.remove(&event.key).expect("present above");
                    let _ = lp.poller.delete(&conn.stream);
                    hand_off_text(shared, conn, job_tx);
                }
                Outcome::Drop => drop_conn(&ctx, &mut conns, event.key),
            }
        }

        dirty.sort_unstable();
        dirty.dedup();
        for &key in &dirty {
            flush_and_rearm(&ctx, &mut conns, key);
        }
    }
}

/// The last act before the loop exits on stop: give already-dispatched
/// requests a brief, bounded window to complete (the SHUTDOWN that set the
/// stop flag has its BYE in flight on the slow lane at this very moment),
/// deliver every queued completion, and best-effort flush each
/// connection's pending output. Writes are nonblocking; a peer that will
/// not take its reply is abandoned — shutdown never stalls on a client.
fn shutdown_flush(ctx: &LoopCtx<'_>, conns: &mut HashMap<usize, Conn>) {
    let deadline = Instant::now() + POLL;
    loop {
        for completion in ctx.lp.drain() {
            if let Some(conn) = conns.get_mut(&completion.key) {
                conn.in_flight -= 1;
                conn.out.push_back(completion.frame);
            }
        }
        if !conns.values().any(|conn| conn.in_flight > 0) || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    for conn in conns.values_mut() {
        let _ = try_flush(conn, ctx.batch);
    }
}

/// The slow-lane thread: runs every non-query verb against a fresh
/// snapshot with the same blocking handler the text protocol uses, then
/// queues the encoded reply back to the loop.
fn slow_lane(
    shared: &Arc<Shared>,
    lp: &Arc<LoopShared>,
    slow_rx: &mpsc::Receiver<SlowTask>,
    job_tx: &mpsc::SyncSender<Job>,
) {
    loop {
        match slow_rx.recv_timeout(POLL) {
            Ok(task) => {
                let snapshot = shared.store.current();
                let completion = match handle_request(shared, &snapshot, task.request, job_tx) {
                    Handled::Reply(response, close) => Completion {
                        key: task.key,
                        frame: frame::encode_response(task.id, &response),
                        close,
                    },
                    Handled::Raw(text) => Completion {
                        key: task.key,
                        frame: frame::encode_raw_response(task.id, &text),
                        close: false,
                    },
                };
                lp.push(completion);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Accepts until the listener would block. Draining fully is what lets the
/// level-triggered listener registration go without re-arms.
fn accept_burst(
    ctx: &LoopCtx<'_>,
    listener: &TcpListener,
    conns: &mut HashMap<usize, Conn>,
    next_key: &mut usize,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                stream.set_nodelay(true).ok();
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let key = *next_key;
                *next_key += 1;
                if unsafe {
                    ctx.lp.poller.add_with_mode(&stream, Event::readable(key), PollMode::Level)
                }
                .is_ok()
                {
                    conns.insert(key, Conn::new(stream));
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(_) => break,
        }
    }
}

/// Handles one readiness event on a connection: drain the socket, decide
/// the protocol if still sniffing, and admit the whole burst of frames.
fn conn_event(
    ctx: &LoopCtx<'_>,
    key: usize,
    conn: &mut Conn,
    readable: bool,
    snapshot: &Snapshot,
) -> Outcome {
    if readable && !conn.draining && !conn.eof {
        let mut buf = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    // Half-close: frames already buffered below still get
                    // admitted and their replies flushed, then hang up.
                    conn.eof = true;
                    conn.close_after_flush = true;
                    break;
                }
                Ok(n) => {
                    if conn.sniffing {
                        conn.sniff.extend_from_slice(&buf[..n]);
                        if !could_be_frame(&conn.sniff[..conn.sniff.len().min(4)]) {
                            return Outcome::HandOffText;
                        }
                        if conn.sniff.len() >= 4 {
                            // The magic is the head of the first frame.
                            let head = std::mem::take(&mut conn.sniff);
                            conn.frames.extend(&head);
                            conn.sniffing = false;
                        }
                    } else {
                        conn.frames.extend(&buf[..n]);
                    }
                    // A short read means the socket buffer is drained —
                    // skip the read that would only return `WouldBlock`.
                    // Safe *because* the registration is level-triggered:
                    // bytes arriving after this instant re-report on the
                    // next wait.
                    if n < buf.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return Outcome::Drop,
            }
        }
        if conn.sniffing {
            // Still fewer than 4 bytes: EOF with a partial prefix goes to
            // the text path (which drops a torn trailing line, exactly as
            // the blocking server always has).
            if conn.eof {
                return if conn.sniff.is_empty() { Outcome::Drop } else { Outcome::HandOffText };
            }
            return Outcome::Keep;
        }
        if !process_frames(ctx, key, conn, snapshot) {
            return Outcome::Drop;
        }
    }
    Outcome::Keep
}

/// Admits every complete frame buffered on `conn` in one pass.
/// Returns `false` when the stream desynchronized beyond recovery.
fn process_frames(ctx: &LoopCtx<'_>, key: usize, conn: &mut Conn, snapshot: &Snapshot) -> bool {
    let shared = ctx.shared;
    while !conn.draining {
        let payload = match conn.frames.next_payload() {
            Ok(Some(payload)) => payload,
            Ok(None) => break,
            Err(FrameError::Oversized { len, cap }) => {
                // Mirror the oversized text line: one ERR, then disconnect.
                shared.counters.requests.inc();
                shared.counters.errors.inc();
                let response = Response::Err {
                    code: ErrorCode::BadRequest,
                    message: format!("frame payload of {len} bytes exceeds {cap} bytes"),
                };
                conn.out.push_back(frame::encode_response(0, &response));
                conn.draining = true;
                conn.close_after_flush = true;
                break;
            }
            Err(_) => {
                shared.counters.errors.inc();
                return false;
            }
        };
        match frame::decode_request(&payload) {
            Ok((id, Request::Ping)) => {
                shared.counters.requests.inc();
                conn.out.push_back(frame::encode_response(id, &Response::Pong));
            }
            Ok((id, Request::Query(q))) => {
                shared.counters.requests.inc();
                match prepare_query(shared, snapshot, &q) {
                    PreparedQuery::Ready(response) => {
                        conn.out.push_back(frame::encode_response(id, &response));
                    }
                    PreparedQuery::Dispatch(query_ctx) => {
                        if conn.in_flight >= ctx.pipeline_cap {
                            let response = shed_query(shared, &query_ctx);
                            conn.out.push_back(frame::encode_response(id, &response));
                            continue;
                        }
                        let sink = EventSink {
                            shared: shared.clone(),
                            lp: ctx.lp.clone(),
                            key,
                            id,
                            ctx: Some(query_ctx),
                        };
                        let job = Job {
                            user: q.user,
                            k: sink.ctx.as_ref().expect("just set").k,
                            backend: sink.ctx.as_ref().expect("just set").resolved,
                            deadline: sink.ctx.as_ref().expect("just set").deadline,
                            enqueued: Instant::now(),
                            reply: ReplySink::Event(sink),
                        };
                        match ctx.job_tx.try_send(job) {
                            Ok(()) => conn.in_flight += 1,
                            Err(
                                mpsc::TrySendError::Full(job)
                                | mpsc::TrySendError::Disconnected(job),
                            ) => {
                                // Take the ctx back out of the sink so the
                                // shed is booked here, not by its Drop.
                                let ReplySink::Event(mut sink) = job.reply else {
                                    unreachable!("constructed above")
                                };
                                let query_ctx = sink.ctx.take().expect("undelivered");
                                let response = shed_query(shared, &query_ctx);
                                conn.out.push_back(frame::encode_response(id, &response));
                            }
                        }
                    }
                }
            }
            Ok((id, request)) => {
                // Everything else — including QUIT/SHUTDOWN, whose `close`
                // travels back on the completion — runs on the slow lane.
                // The lane's mpsc channel is unbounded, so the pipeline
                // cap applies here too: without it one client could queue
                // arbitrarily many expensive verbs and grow the slow-lane
                // queue and reply buffers without backpressure.
                if conn.in_flight >= ctx.pipeline_cap {
                    shared.counters.requests.inc();
                    shared.counters.busy.inc();
                    conn.out.push_back(frame::encode_response(id, &Response::Busy));
                    continue;
                }
                let draining = matches!(request, Request::Quit | Request::Shutdown);
                match ctx.slow_tx.send(SlowTask { key, id, request }) {
                    Ok(()) => conn.in_flight += 1,
                    Err(_) => {
                        let response = Response::Err {
                            code: ErrorCode::Internal,
                            message: "server is shutting down".to_string(),
                        };
                        conn.out.push_back(frame::encode_response(id, &response));
                    }
                }
                if draining {
                    // Frames pipelined after a QUIT are never admitted —
                    // the text loop stops at QUIT the same way.
                    conn.draining = true;
                }
            }
            Err(e) => {
                shared.counters.requests.inc();
                shared.counters.errors.inc();
                let response = Response::Err {
                    code: ErrorCode::BadRequest,
                    message: format!("malformed binary request: {e}"),
                };
                conn.out.push_back(frame::encode_response(frame::payload_id(&payload), &response));
            }
        }
    }
    true
}

/// Hands a sniffed-as-text connection to a classic blocking thread.
fn hand_off_text(shared: &Arc<Shared>, conn: Conn, job_tx: &mpsc::SyncSender<Job>) {
    let Conn { stream, sniff, .. } = conn;
    if stream.set_nonblocking(false).is_err() || stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let conn_shared = shared.clone();
    let job_tx = job_tx.clone();
    let handle = std::thread::Builder::new()
        .name("pitex-conn".to_string())
        .spawn(move || connection_loop(&conn_shared, stream, sniff, &job_tx));
    if let Ok(handle) = handle {
        register_connection(shared, handle);
    }
}

/// Removes a dead connection, booking its undeliverable replies.
fn drop_conn(ctx: &LoopCtx<'_>, conns: &mut HashMap<usize, Conn>, key: usize) {
    if let Some(conn) = conns.remove(&key) {
        // Queued-but-unwritten frames are completed replies with nowhere
        // to go; in-flight ones are counted when their completion finds
        // the key gone.
        ctx.shared.counters.conn_aborted.add(conn.out.len() as u64);
        let _ = ctx.lp.poller.delete(&conn.stream);
    }
}

/// Writes as much of `conn.out` as the socket accepts (vectored, at most
/// `batch` slices per call). `Ok(true)` = fully drained.
fn try_flush(conn: &mut Conn, batch: usize) -> std::io::Result<bool> {
    while !conn.out.is_empty() {
        let mut slices = Vec::with_capacity(batch.min(conn.out.len()));
        let mut iter = conn.out.iter();
        let front = iter.next().expect("non-empty");
        slices.push(IoSlice::new(&front[conn.out_off..]));
        for frame in iter.take(batch - 1) {
            slices.push(IoSlice::new(frame));
        }
        let mut written = match (&conn.stream).write_vectored(&slices) {
            Ok(0) => return Err(ErrorKind::WriteZero.into()),
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(false),
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        while written > 0 {
            let remaining = conn.out.front().expect("non-empty").len() - conn.out_off;
            if written >= remaining {
                written -= remaining;
                conn.out.pop_front();
                conn.out_off = 0;
            } else {
                conn.out_off += written;
                written = 0;
            }
        }
    }
    Ok(true)
}

/// Flushes a touched connection and updates its level-triggered interest —
/// or retires it when it is done (or its peer is gone). The armed interest
/// is cached on the connection, so the steady state (reply flushed whole,
/// still reading) issues zero `epoll_ctl` calls.
fn flush_and_rearm(ctx: &LoopCtx<'_>, conns: &mut HashMap<usize, Conn>, key: usize) {
    let Some(conn) = conns.get_mut(&key) else { return };
    match try_flush(conn, ctx.batch) {
        Ok(_) => {}
        Err(_) => return drop_conn(ctx, conns, key),
    }
    if conn.out.is_empty() && conn.close_after_flush && conn.in_flight == 0 {
        let conn = conns.remove(&key).expect("present above");
        let _ = ctx.lp.poller.delete(&conn.stream);
        return;
    }
    let done_reading = conn.draining || conn.eof;
    // `(readable, writable)`: writable only while a partial write is
    // stuck; with no interest at all, completions re-arm via the dirty
    // pass when they land.
    let want = (!done_reading, !conn.out.is_empty());
    if want == conn.armed {
        return;
    }
    let interest = Event { key, readable: want.0, writable: want.1 };
    if ctx.lp.poller.modify_with_mode(&conn.stream, interest, PollMode::Level).is_ok() {
        conn.armed = want;
    } else {
        drop_conn(ctx, conns, key);
    }
}
