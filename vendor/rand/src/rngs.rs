//! Concrete generators. Only [`StdRng`] exists; it is the generator every
//! PITEX component seeds explicitly.

use crate::{RngCore, SeedableRng};

/// Deterministic generator with the xoshiro256++ stream, seeded through
/// SplitMix64 as its authors recommend.
///
/// Unlike the real `rand::rngs::StdRng` (ChaCha12) this is not a
/// cryptographic generator — PITEX uses randomness purely for Monte-Carlo
/// estimation and synthetic data, where xoshiro's statistical quality and
/// speed are exactly right.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion guarantees a non-zero, well-mixed state even
        // for adjacent small seeds (0, 1, 2, ... as the tests use).
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self { s: [next(), next(), next(), next()] }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
