//! Fig. 13 (Appx. D) — Number of edges visited by the online samplers.
//!
//! The complexity measure of §4: RR and MC trade places depending on graph
//! shape (Lemmas 4–5), while LAZY visits more than an order of magnitude
//! fewer edges (it only probes edges that actually fire).

use pitex_bench::{banner, group_figure, print_group_table, BenchEnv, Method};

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Fig. 13: average edges visited per query, by user group",
        &format!("{} queries per cell; ε = 0.7, δ = 1000, k = 3", env.queries),
    );
    let rows = group_figure(&env, &Method::ONLINE, env.small_profiles(), 3);
    print_group_table(&rows, &Method::ONLINE, |o| o.edges_visited.mean(), "edges visited");
}
