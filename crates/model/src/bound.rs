//! The Lemma 8 upper bound `p⁺(e|W)` for partial tag sets.
//!
//! Best-effort exploration (§5.2, Appx. C) prunes a partial tag set `W`
//! (`|W| < k`) when an *upper bound* on the spread of every size-`k`
//! superset is already below the best known solution. Lemma 8 bounds the
//! edge probability of any completion `W′ ⊇ W, |W′| = k` by
//!
//! ```text
//! p⁺(e|W) = min(  max_{z: p(z|W)>0} p(e|z),                       (Eq. 5)
//!                 Σ_{z: p(z|W)>0} p(e|z) · max_{W*} p(z)·Π_{w∈W∪W*} q(w,z) )  (Eq. 6)
//! with  q(w,z) = p(w|z) / Π_{z′} p(w|z′)^{p(z′)}
//! ```
//!
//! The Appx. B.8 Jensen step (`ln Σ_{z′} p(z′)X_{z′} ≥ Σ_{z′} p(z′) ln X_{z′}`
//! applied to the posterior's denominator) yields
//! `p(z|W′) ≤ p(z)·Π_{w∈W′} q(w,z)`.
//!
//! > Faithfulness note: the paper prints `q(w,z) = p(w|z)·p(z)/…`, i.e. a
//! > prior factor **per tag**. That shrinks the bound by `p(z)^{|W′|−1}` and
//! > makes it invalid — property testing found a two-topic, three-tag
//! > counterexample with a true posterior of 0.76 against a "bound" of 0.22
//! > (`tests/proptest_invariants.rs::lemma8_bound_dominates`). The single
//! > `p(z)` factor above is what the Jensen derivation actually gives; it is
//! > the version implemented here.
//!
//! The per-topic maximum over completions `W*` is attained by the
//! `k − |W|` largest `q(·,z)` values among tags outside `W`, so the oracle
//! precomputes, per topic, tags sorted by descending `q`.

use crate::ids::{TagId, TagSet, TopicId};
use crate::posterior::{EdgeProbCache, EdgeProbs};
use crate::{EdgeTopics, TagTopicMatrix};
use pitex_graph::EdgeId;

/// Precomputed `q(w,z)` tables for fast partial-set bounds.
#[derive(Clone, Debug)]
pub struct BoundOracle {
    /// Per topic: `(q(w,z), w)` sorted by descending `q`. Only topics with
    /// positive prior appear populated.
    per_topic: Vec<Vec<(f64, TagId)>>,
    /// Per tag: `(z, q(w,z))` sorted by topic, mirroring the matrix rows.
    per_tag: Vec<Vec<(TopicId, f64)>>,
    prior: Vec<f64>,
}

impl BoundOracle {
    /// Builds the oracle from a tag–topic matrix; `O(nnz·|Z| + nnz log nnz)`.
    pub fn new(matrix: &TagTopicMatrix) -> Self {
        let num_topics = matrix.num_topics();
        let prior = matrix.prior().to_vec();
        let mut per_topic: Vec<Vec<(f64, TagId)>> = vec![Vec::new(); num_topics];
        let mut per_tag: Vec<Vec<(TopicId, f64)>> = Vec::with_capacity(matrix.num_tags());

        for w in 0..matrix.num_tags() as TagId {
            // ln D(w) = Σ_{z′} p(z′)·ln p(w|z′). If any prior-positive topic
            // is missing from the row, D(w) = 0 and q(w,·) = +∞ — the bound
            // then caps at 1 (Appx. B.8's inequality is vacuous there).
            let mut ln_d = 0.0f64;
            let mut covered_mass = 0.0f64;
            for (z, p) in matrix.row(w) {
                let pz = prior[z as usize];
                if pz > 0.0 {
                    ln_d += pz * (p as f64).ln();
                    covered_mass += pz;
                }
            }
            let full_support = (covered_mass - 1.0).abs() < 1e-12;
            let d = if full_support { ln_d.exp() } else { 0.0 };

            let mut row_q = Vec::with_capacity(matrix.row_len(w));
            for (z, p) in matrix.row(w) {
                let pz = prior[z as usize];
                if pz <= 0.0 {
                    continue;
                }
                let q = if d > 0.0 { p as f64 / d } else { f64::INFINITY };
                row_q.push((z, q));
                per_topic[z as usize].push((q, w));
            }
            per_tag.push(row_q);
        }
        for list in &mut per_topic {
            list.sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        }
        Self { per_topic, per_tag, prior }
    }

    /// `q(w,z)`, or 0 if `p(w|z) = 0` or `p(z) = 0`.
    pub fn q(&self, w: TagId, z: TopicId) -> f64 {
        let row = &self.per_tag[w as usize];
        row.binary_search_by_key(&z, |&(t, _)| t).map(|i| row[i].1).unwrap_or(0.0)
    }

    /// Per-topic upper-bound weights for all size-`k` completions of the
    /// partial set `W` (`|W| ≤ k`).
    ///
    /// Entry `z` carries `min(1, Π_{w∈W} q(w,z) · top_{k−|W|} q(·,z) over
    /// Ω∖W)`; topics where some `w ∈ W` has `p(w|z) = 0` are absent (they can
    /// never carry posterior mass for a superset of `W`). Topics where no
    /// valid completion exists carry weight 0 but remain listed, because
    /// Eq. 5's term still ranges over the *posterior support of `W`*.
    pub fn bounded_posterior(&self, tag_set: &TagSet, k: usize) -> BoundedPosterior {
        debug_assert!(tag_set.len() <= k);
        let needed = k - tag_set.len();
        let mut entries = Vec::new();
        'topic: for z in 0..self.per_topic.len() {
            if self.prior[z] <= 0.0 {
                continue;
            }
            // Base product: one prior factor, then q over the chosen tags.
            let mut base = self.prior[z];
            for w in tag_set.iter() {
                let q = self.q(w, z as TopicId);
                if q <= 0.0 {
                    continue 'topic; // p(w|z) = 0 kills this topic for all supersets
                }
                base *= q;
            }
            // Best completion: largest `needed` q values among tags ∉ W.
            let mut completion = 1.0f64;
            let mut taken = 0usize;
            if needed > 0 {
                for &(q, w) in &self.per_topic[z] {
                    if tag_set.contains(w) {
                        continue;
                    }
                    completion *= q;
                    taken += 1;
                    if taken == needed {
                        break;
                    }
                }
            }
            let weight = if taken < needed {
                0.0 // every completion includes a zero-probability tag
            } else {
                (base * completion).min(1.0)
            };
            entries.push((z as TopicId, weight));
        }
        BoundedPosterior { entries }
    }
}

/// Per-topic upper-bound weights for a partial tag set, consumed by
/// [`UpperBoundEdgeProbs`].
#[derive(Clone, Debug, PartialEq)]
pub struct BoundedPosterior {
    /// `(topic, weight)` over the posterior support of the partial set,
    /// sorted by topic; weights are capped at 1 and may be 0.
    entries: Vec<(TopicId, f64)>,
}

impl BoundedPosterior {
    pub fn entries(&self) -> &[(TopicId, f64)] {
        &self.entries
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Evaluates `p⁺(e|W)` = min(Eq. 5, Eq. 6) for one edge.
    pub fn edge_bound(&self, edge_topics: &EdgeTopics, e: EdgeId) -> f64 {
        let (topics, probs) = edge_topics.row_slices(e);
        let mut max_term = 0.0f64; // Eq. 5
        let mut sum_term = 0.0f64; // Eq. 6
        let mut i = 0usize;
        let mut j = 0usize;
        while i < topics.len() && j < self.entries.len() {
            let (z, weight) = self.entries[j];
            match topics[i].cmp(&z) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let pez = probs[i] as f64;
                    max_term = max_term.max(pez);
                    sum_term += pez * weight;
                    i += 1;
                    j += 1;
                }
            }
        }
        max_term.min(sum_term)
    }
}

/// [`EdgeProbs`] view of the Lemma 8 bound: plugs into any spread estimator
/// to produce an upper bound on the spread of every completion of `W`
/// (IC spread is monotone in edge probabilities).
pub struct UpperBoundEdgeProbs<'a> {
    edge_topics: &'a EdgeTopics,
    bounded: &'a BoundedPosterior,
    cache: &'a mut EdgeProbCache,
}

impl<'a> UpperBoundEdgeProbs<'a> {
    pub fn new(
        edge_topics: &'a EdgeTopics,
        bounded: &'a BoundedPosterior,
        cache: &'a mut EdgeProbCache,
    ) -> Self {
        cache.begin();
        Self { edge_topics, bounded, cache }
    }
}

impl EdgeProbs for UpperBoundEdgeProbs<'_> {
    #[inline]
    fn prob(&mut self, e: EdgeId) -> f64 {
        let bounded = self.bounded;
        let edge_topics = self.edge_topics;
        self.cache.get_or_insert_with(e, || bounded.edge_bound(edge_topics, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combi::KSubsets;
    use crate::posterior::TopicPosterior;
    use crate::TicModel;

    fn fig2() -> TicModel {
        TicModel::paper_example()
    }

    #[test]
    fn q_is_zero_outside_support() {
        let m = fig2();
        let oracle = BoundOracle::new(m.tag_topic());
        assert_eq!(oracle.q(0, 2), 0.0, "w1 has no mass on z3");
        assert!(oracle.q(0, 0) > 0.0);
    }

    #[test]
    fn empty_set_bound_is_capped_by_p_max_and_dominates_all_sets() {
        // Lemma 8 (W.L.O.G. clause): p⁺(e|∅) ≤ max_z p(e|z), and it must
        // dominate p(e|W′) for every size-k set W′.
        let m = fig2();
        let oracle = BoundOracle::new(m.tag_topic());
        let bounded = oracle.bounded_posterior(&TagSet::empty(), 2);
        for (e, _, _) in m.graph().edges() {
            let b = bounded.edge_bound(m.edge_topics(), e);
            let p_max = m.edge_topics().p_max(e) as f64;
            assert!(b <= p_max + 1e-7, "edge {e}: bound {b} above p_max {p_max}");
            for full in KSubsets::new(m.num_tags() as u32, 2) {
                let wp = TagSet::new(full);
                let post = TopicPosterior::compute(m.tag_topic(), &wp);
                let exact = post.edge_prob(m.edge_topics(), e);
                assert!(b >= exact - 1e-9, "edge {e}, W'={wp}: {b} < {exact}");
            }
        }
    }

    /// The central soundness property: for every partial `W` and every
    /// size-k completion `W′ ⊇ W`, `p⁺(e|W) ≥ p(e|W′)` on every edge.
    #[test]
    fn bound_dominates_all_completions_fig2() {
        let m = fig2();
        let oracle = BoundOracle::new(m.tag_topic());
        let k = 2usize;
        let num_tags = m.num_tags() as u32;
        for partial_size in 0..=k {
            for partial in KSubsets::new(num_tags, partial_size) {
                let w = TagSet::new(partial);
                let bounded = oracle.bounded_posterior(&w, k);
                for full in KSubsets::new(num_tags, k) {
                    let wp = TagSet::new(full);
                    if !w.is_subset_of(&wp) {
                        continue;
                    }
                    let post = TopicPosterior::compute(m.tag_topic(), &wp);
                    for (e, _, _) in m.graph().edges() {
                        let bound = bounded.edge_bound(m.edge_topics(), e);
                        let exact = post.edge_prob(m.edge_topics(), e);
                        assert!(
                            bound >= exact - 1e-9,
                            "W={w} W'={wp} edge {e}: bound {bound} < exact {exact}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn dead_topics_are_dropped_from_support() {
        let m = fig2();
        let oracle = BoundOracle::new(m.tag_topic());
        // w1 (id 0) has support {z1, z2}; any superset keeps z3 dead.
        let bounded = oracle.bounded_posterior(&TagSet::from([0]), 2);
        assert!(bounded.entries().iter().all(|&(z, _)| z != 2));
    }

    #[test]
    fn weights_are_capped_at_one() {
        let m = fig2();
        let oracle = BoundOracle::new(m.tag_topic());
        for size in 0..=2usize {
            for set in KSubsets::new(m.num_tags() as u32, size) {
                let bounded = oracle.bounded_posterior(&TagSet::new(set), 2);
                for &(_, weight) in bounded.entries() {
                    assert!((0.0..=1.0).contains(&weight));
                }
            }
        }
    }

    #[test]
    fn missing_prior_support_gives_infinite_q_capped_to_one() {
        // A tag that covers only one of two topics ⇒ D(w) = 0 ⇒ q = ∞,
        // and the bound must cap at 1, not produce NaN.
        let matrix =
            TagTopicMatrix::with_uniform_prior(vec![vec![(0, 0.5)], vec![(0, 0.3), (1, 0.7)]], 2);
        let oracle = BoundOracle::new(&matrix);
        assert!(oracle.q(0, 0).is_infinite());
        let bounded = oracle.bounded_posterior(&TagSet::from([0]), 2);
        for &(_, weight) in bounded.entries() {
            assert!(weight.is_finite());
            assert!((0.0..=1.0).contains(&weight));
        }
    }

    #[test]
    fn impossible_completion_weights_zero() {
        // Topic 1 is supported by a single tag; a 3-set through topic 1
        // cannot exist, so its weight must be 0 for any |W| ≤ 2 not
        // containing enough topic-1 tags.
        let matrix = TagTopicMatrix::with_uniform_prior(
            vec![vec![(0, 0.5), (1, 0.5)], vec![(0, 1.0)], vec![(0, 1.0)]],
            2,
        );
        let oracle = BoundOracle::new(&matrix);
        let bounded = oracle.bounded_posterior(&TagSet::empty(), 3);
        let z1 = bounded.entries().iter().find(|&&(z, _)| z == 1).unwrap();
        assert_eq!(z1.1, 0.0, "only one tag supports topic 1, k = 3 needs three");
    }
}
