//! Table 4 — An example case study of PITEX queries (dblp).
//!
//! The paper runs k = 5 queries for eight researchers and reports
//! human-annotated accuracy (average 0.78). Here the ground truth is
//! planted: each hub's true selling points are the themed tags of its
//! community, and accuracy is the overlap of the returned tag set with them.

use pitex_bench::{banner, default_config, BenchEnv};
use pitex_core::PitexEngine;
use pitex_datasets::{CaseStudy, CaseStudyConfig};

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Table 4: case study — planted selling points, k = 5",
        "8 community hubs on a dblp-like topical graph; LAZY backend",
    );

    let cs = CaseStudy::generate(&CaseStudyConfig { seed: env.seed, ..CaseStudyConfig::default() });
    let mut engine = PitexEngine::with_lazy(&cs.model, default_config(env.seed));

    println!();
    println!("{:<22} {:<55} {:>8}", "researcher", "inferential tags", "accuracy");
    let mut total = 0.0f64;
    for r in &cs.researchers {
        let result = engine.query(r.user, 5);
        let tags: Vec<&str> = result.tags.iter().map(|t| cs.tag_name(t)).collect();
        let accuracy = cs.accuracy(r, &result.tags);
        total += accuracy;
        println!("{:<22} {:<55} {:>8.2}", r.name, tags.join(", "), accuracy);
    }
    let avg = total / cs.researchers.len() as f64;
    println!();
    println!("average accuracy: {avg:.2}  (paper's annotator average: 0.78)");
}
