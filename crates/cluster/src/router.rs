//! The scatter-gather router: one TCP front-end over many shards.
//!
//! The router speaks **exactly** the `pitex_serve` line protocol, so a
//! cluster is a drop-in replacement for a single server — `pitex client`
//! (and anything scripted over `nc`) cannot tell the difference. Per verb:
//!
//! * `QUERY u k [timeout_us] [backend]` / `EXPLAIN …` — routed to the
//!   shard owning `u` ([`ShardMap::shard_of`]) through the health-gated
//!   connection pools ([`ShardPools`]): a dead replica costs a transparent
//!   failover, a saturated shard answers `BUSY`, and the reply line is
//!   forwarded verbatim — including the backend operand (`auto` plans
//!   shard-side, where the artifacts and the latency EWMAs live) and the
//!   `EXPLAINED` decision trace. Within the owning shard the replica is
//!   picked by hashing `(user, k)` over the *healthy* replicas
//!   ([`ShardPools::call_keyed`]), so identical queries warm one replica's
//!   result cache instead of spraying cold misses round-robin.
//! * `STATS` / `EPOCH` — scattered to every shard and merged: monotone
//!   counters add, latency *histograms* merge bucket-wise (via the
//!   `lat_hist` field; percentiles themselves do not add), and the epochs
//!   must agree — a mixed-epoch scatter answers `ERR INTERNAL` instead of
//!   fabricating a coherent-looking aggregate.
//! * `UPDATE <op>` — forwarded to every replica of the *owning* shard
//!   (edge ops are anchored at their source user); tag-space and
//!   vertex-count ops (`ATTACH_TAG`, `DETACH_TAG`, `ADD_USER`) change what
//!   every shard may be asked, so they broadcast to all shards.
//! * `RELOAD` — the epoch barrier. Phase 1 sends `PREPARE` to every
//!   replica (fold + index repair run shard-side; queries keep flowing).
//!   Phase 2 takes the router's write gate — no scatter or query is in
//!   flight past it — sends the cheap `COMMIT` swaps back-to-back, and
//!   releases. Every forwarded read holds the read side of that gate, so
//!   a reader never observes two shards answering from different epochs
//!   *through this router*: reads happen strictly before or strictly
//!   after the commit wave.
//! * `HEALTH` — scattered to every shard and merged into the *cluster*
//!   verdict: each shard's per-objective verdicts come back re-originated
//!   as `shard<N>`, the router appends its own burn-rate verdicts (origin
//!   `router`, over its front-door counters and hop latency), and the
//!   overall status is the worst across all origins — `worst=` names the
//!   component an operator should look at first. An unreachable shard
//!   contributes a synthetic paging `reachability` verdict: the moment
//!   health reporting matters most is when a shard is down.
//! * `SERIES` — answered from the router's *own* rolling time-series (a
//!   local sampler thread ticks the router's registry fields; shard rings
//!   are queried per shard, where they live).
//! * `GET /metrics`, `/health`, `/series?…` — HTTP requests sniffed on
//!   this same port (the `pitex_serve::http` magic-detection idiom) answer
//!   the cluster-merged Prometheus exposition, the cluster health verdict
//!   (`503` on page), and the router's local ring dumps.
//! * `PFRM` binary frames — a connection opening with the frame magic
//!   (sniffed exactly like the shard servers do) switches to the pipelined
//!   binary protocol: same verbs, requests matched to replies by id, so
//!   `ServeClient::connect_binary` and `pitex client --binary` talk to a
//!   router as transparently as to a shard.
//! * `PING` is answered locally; `SHUTDOWN` stops the router (shards are
//!   managed by their own admins).
//! * `CAPTURE on|off|rotate` — controls the *router's* PWRK workload
//!   recorder (`PITEX_OBS_CAPTURE`): the front-door arrival stream, which
//!   is what `pitex replay` wants for whole-cluster replays. Shards keep
//!   their own recorders with the resolved-backend view.
//!
//! The router trusts the map, not a directory service: everything is a
//! pure function of the `ShardMap` file, and the only cluster-wide state
//! is the epoch the barrier maintains.

use crate::pool::{CallError, PoolOptions, ShardPools};
use crate::shardmap::ShardMap;
use pitex_live::UpdateOp;
use pitex_serve::frame::{self, FrameBuf, FrameError, MAX_REQUEST_FRAME_BYTES};
use pitex_serve::{
    http, CaptureAction, ErrorCode, FlightReply, FlightWireEntry, ReloadReply, Request, Response,
    StatsReply, TraceReply, TraceRequest,
};
use pitex_support::obs::slo::{self, HealthVerdict, SloOptions, SloStatus, SloVerdict};
use pitex_support::obs::timeseries::{SeriesRes, TimeSeriesStore, TsOptions};
use pitex_support::obs::{
    mint_trace_id, render_prometheus, wall_now_us, AtomicHistogram, CaptureOptions, CaptureRecord,
    CaptureRecorder, Counter, FieldSet, FlightEntry, FlightRecorder, MergedFields, ObsOptions,
    Registry, SpanRecorder,
};
use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Cursor, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Router::spawn`]. The `PITEX_CLUSTER_*` environment
/// variables (see [`RouterOptions::with_env`]) override the defaults.
#[derive(Clone, Debug)]
pub struct RouterOptions {
    /// Connection-pool tuning (failover, health gating, shedding).
    pub pool: PoolOptions,
    /// How often the prober thread re-`PING`s down-marked replicas.
    pub probe_interval: Duration,
    /// Whether admin verbs (`UPDATE`, `RELOAD`, `EPOCH`) are forwarded;
    /// when false they answer `ERR ADMIN_DENIED` at the router.
    pub admin: bool,
    /// Workload-capture override for tests and embedders; `None` reads
    /// `PITEX_OBS_CAPTURE` / `PITEX_OBS_CAPTURE_RATE` from the environment
    /// at spawn. The router records the *front-door* view (resolved
    /// backend unknown here); shards record their own logs.
    pub capture: Option<CaptureOptions>,
}

impl Default for RouterOptions {
    fn default() -> Self {
        Self {
            pool: PoolOptions::default(),
            probe_interval: Duration::from_millis(200),
            admin: true,
            capture: None,
        }
    }
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok().and_then(|v| v.parse().ok())
}

impl RouterOptions {
    /// Applies the `PITEX_CLUSTER_*` environment overrides:
    /// `PITEX_CLUSTER_MAX_IN_FLIGHT` (per-shard concurrency before `BUSY`),
    /// `PITEX_CLUSTER_IDLE_CONNS` (pooled idle connections per replica),
    /// `PITEX_CLUSTER_PROBE_MS` (prober interval), `PITEX_CLUSTER_COOLDOWN_MS`
    /// (down-replica cooldown), `PITEX_CLUSTER_CONNECT_TIMEOUT_MS`,
    /// `PITEX_CLUSTER_BINARY` (`0` drops the shard hop back to the text
    /// protocol).
    pub fn with_env(mut self) -> Self {
        if let Some(v) = env_u64("PITEX_CLUSTER_MAX_IN_FLIGHT") {
            self.pool.max_in_flight = v as usize;
        }
        if let Some(v) = env_u64("PITEX_CLUSTER_IDLE_CONNS") {
            self.pool.idle_per_replica = v as usize;
        }
        if let Some(v) = env_u64("PITEX_CLUSTER_PROBE_MS") {
            self.probe_interval = Duration::from_millis(v);
        }
        if let Some(v) = env_u64("PITEX_CLUSTER_COOLDOWN_MS") {
            self.pool.probe_cooldown = Duration::from_millis(v);
        }
        if let Some(v) = env_u64("PITEX_CLUSTER_CONNECT_TIMEOUT_MS") {
            self.pool.connect_timeout = Duration::from_millis(v);
        }
        if let Ok(v) = std::env::var("PITEX_CLUSTER_BINARY") {
            self.pool.binary = v != "0";
        }
        self
    }
}

/// Router-side counters (shard counters live on the shards; `STATS` merges
/// both views) — typed handles registered in the router's [`Registry`], so
/// the export list *is* the registration list.
#[derive(Debug)]
struct Counters {
    requests: Counter,
    ok: Counter,
    busy: Counter,
    errors: Counter,
    scatters: Counter,
    updates: Counter,
    reloads: Counter,
}

impl Counters {
    fn register(registry: &Registry) -> Self {
        Self {
            requests: registry.counter("router_requests"),
            ok: registry.counter("router_ok"),
            busy: registry.counter("router_busy"),
            errors: registry.counter("router_errors"),
            scatters: registry.counter("router_scatters"),
            updates: registry.counter("router_updates"),
            reloads: registry.counter("router_reloads"),
        }
    }
}

struct Shared {
    stop: AtomicBool,
    reaped_panic: AtomicBool,
    map: ShardMap,
    pools: ShardPools,
    options: RouterOptions,
    /// The scatter/commit gate: every forwarded read holds `read`, the
    /// commit wave of a reload holds `write`. This is what makes "no
    /// mixed-epoch scatter" a guarantee instead of a probability.
    epoch_gate: RwLock<()>,
    /// Serializes admin verbs (`UPDATE`, `RELOAD`) through this router so
    /// an update can never land inside another admin's prepare window.
    admin_serial: Mutex<()>,
    /// The typed metric registry behind `STATS`/`METRICS`: the router's
    /// own counters, the pool's adopted probe/failover/catch-up counters
    /// and the hop-latency histogram all export off this one table.
    registry: Registry,
    counters: Counters,
    /// Router-observed `QUERY` service time (shard round-trip included).
    latency: Arc<AtomicHistogram>,
    /// Rolling time-series over the router's *own* fields (`SERIES`,
    /// `GET /series`): a local sampler thread ticks once per configured
    /// interval — no per-tick network scatter to the shards.
    timeseries: TimeSeriesStore,
    /// SLO thresholds for the router's own burn-rate verdicts.
    slo: SloOptions,
    /// Ring of recent request summaries + slow-query log (`FLIGHT`).
    flight: FlightRecorder,
    /// Sampled PWRK workload recorder (`CAPTURE on|off|rotate` — applied
    /// to this router process; shards control their own recorders).
    capture: CaptureRecorder,
    started: Instant,
    connections: Mutex<Vec<JoinHandle<()>>>,
}

/// Poll interval for stop-flag checks while blocked on I/O.
const POLL: Duration = Duration::from_millis(50);

/// Longest accepted request line (mirrors the shard servers).
const MAX_LINE_BYTES: usize = 4 * 1024;

/// Namespace for [`Router::spawn`].
pub struct Router;

impl Router {
    /// Binds `addr` (port 0 picks an ephemeral port), spawns the acceptor
    /// and the health-prober, and returns immediately. Shards are *not*
    /// contacted eagerly — a router can boot before its shards and heal as
    /// they come up.
    pub fn spawn(
        map: ShardMap,
        addr: impl ToSocketAddrs,
        options: RouterOptions,
    ) -> std::io::Result<RouterHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let pools = ShardPools::new(&map, options.pool);
        let registry = Registry::new();
        let counters = Counters::register(&registry);
        // The pool's probe/failover/catch-up counters are shared handles
        // adopted into the same registry — no polling bridge.
        for (name, counter) in pools.counters() {
            registry.adopt_counter(name, &counter);
        }
        let latency = registry.histogram("router_lat_hist");
        let capture =
            CaptureRecorder::new(options.capture.clone().unwrap_or_else(CaptureOptions::from_env))?;
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            reaped_panic: AtomicBool::new(false),
            map,
            pools,
            options,
            epoch_gate: RwLock::new(()),
            admin_serial: Mutex::new(()),
            registry,
            counters,
            latency,
            timeseries: TimeSeriesStore::new(TsOptions::from_env()),
            slo: SloOptions::from_env(),
            flight: FlightRecorder::new(ObsOptions::from_env()),
            capture,
            started: Instant::now(),
            connections: Mutex::new(Vec::new()),
        });

        let mut threads = Vec::with_capacity(3);
        {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("pitex-router-acceptor".to_string())
                    .spawn(move || acceptor_loop(&shared, &listener))?,
            );
        }
        {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("pitex-router-prober".to_string())
                    .spawn(move || prober_loop(&shared))?,
            );
        }
        {
            let shared = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("pitex-router-sampler".to_string())
                    .spawn(move || sampler_loop(&shared))?,
            );
        }
        Ok(RouterHandle { addr, shared, threads: Mutex::new(threads) })
    }
}

/// A running router: its address, a shutdown switch, and the thread reaper.
pub struct RouterHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl RouterHandle {
    /// The bound address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful stop (idempotent; also triggered by a client's
    /// `SHUTDOWN`). The shard servers are untouched.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }

    /// Whether a shutdown has been requested.
    pub fn is_stopping(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Blocks until the router has fully stopped and reaps every thread.
    /// Returns `Err` with the panic payload if any router thread panicked.
    pub fn join(self) -> std::thread::Result<()> {
        let mut result = Ok(());
        for thread in self.threads.lock().unwrap().drain(..) {
            if let Err(panic) = thread.join() {
                result = Err(panic);
            }
        }
        for conn in self.shared.connections.lock().unwrap().drain(..) {
            if let Err(panic) = conn.join() {
                result = Err(panic);
            }
        }
        if result.is_ok() && self.shared.reaped_panic.load(Ordering::SeqCst) {
            result = Err(Box::new("a router connection thread panicked (reaped mid-run)"));
        }
        result
    }

    /// Convenience for tests and the CLI: shut down, then join.
    pub fn stop(self) -> std::thread::Result<()> {
        self.shutdown();
        self.join()
    }
}

fn prober_loop(shared: &Arc<Shared>) {
    let mut last_probe = Instant::now();
    while !shared.stop.load(Ordering::SeqCst) {
        std::thread::sleep(POLL.min(shared.options.probe_interval));
        if last_probe.elapsed() >= shared.options.probe_interval {
            // Catch-up drives a stale replica through UPDATE/PREPARE/COMMIT
            // barriers of its own; serializing with the router's admin
            // verbs keeps a concurrent UPDATE broadcast or RELOAD wave
            // from interleaving with (and double-applying into) a replay.
            let _admin = shared.admin_serial.lock().unwrap();
            shared.pools.probe();
            last_probe = Instant::now();
        }
    }
}

/// The router's background sampler (mirrors the shard servers'): once per
/// configured tick it snapshots the router's *own* field list into the
/// rolling rings. It deliberately does not scatter to the shards — a tick
/// must stay cheap and local; shard rings are read shard-side.
fn sampler_loop(shared: &Arc<Shared>) {
    let tick = shared.timeseries.options().tick;
    let mut next = Instant::now() + tick;
    while !shared.stop.load(Ordering::SeqCst) {
        let now = Instant::now();
        if now < next {
            std::thread::sleep(POLL.min(next - now));
            continue;
        }
        let fields = router_fields(shared, 0).into_fields();
        shared.timeseries.tick(fields.iter().map(|(k, v)| (k.as_str(), v.as_str())));
        next = Instant::now() + tick;
    }
}

fn acceptor_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                stream.set_nodelay(true).ok();
                let conn_shared = shared.clone();
                let conn = std::thread::Builder::new()
                    .name("pitex-router-conn".to_string())
                    .spawn(move || connection_loop(&conn_shared, stream));
                if let Ok(handle) = conn {
                    // Reap finished connection threads as we go (same
                    // policy as the shard servers).
                    let mut conns = shared.connections.lock().unwrap();
                    let mut live = Vec::with_capacity(conns.len() + 1);
                    for conn in conns.drain(..) {
                        if conn.is_finished() {
                            if conn.join().is_err() {
                                shared.reaped_panic.store(true, Ordering::SeqCst);
                            }
                        } else {
                            live.push(conn);
                        }
                    }
                    live.push(handle);
                    *conns = live;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// What the first bytes of a fresh connection revealed about its protocol
/// (the shard servers' sniffing idiom, shared via `pitex_serve::frame`).
enum Sniffed {
    /// The 4-byte `PFRM` magic: a binary pipelined client.
    Binary(Vec<u8>),
    /// Anything else — the text protocol or an HTTP `GET`. Carries the
    /// sniffed bytes to re-chain in front of the stream.
    Text(Vec<u8>),
    /// Closed (or the router is stopping) before the protocol was decided.
    Closed,
}

/// Reads at most 4 bytes to classify a connection's protocol. One
/// mismatching byte decides `Text` immediately, so a text client's first
/// request is never delayed waiting for 4 bytes to accumulate.
fn sniff(shared: &Shared, mut stream: &TcpStream) -> Sniffed {
    let mut buf = [0u8; 4];
    let mut got = 0;
    loop {
        if !frame::could_be_frame(&buf[..got]) {
            return Sniffed::Text(buf[..got].to_vec());
        }
        if got == buf.len() {
            return Sniffed::Binary(buf.to_vec());
        }
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                return if got == 0 { Sniffed::Closed } else { Sniffed::Text(buf[..got].to_vec()) }
            }
            Ok(n) => got += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return Sniffed::Closed;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Sniffed::Closed,
        }
    }
}

fn connection_loop(shared: &Arc<Shared>, stream: TcpStream) {
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    match sniff(shared, &stream) {
        Sniffed::Binary(head) => binary_connection_loop(shared, stream, head),
        Sniffed::Text(head) => text_connection_loop(shared, stream, head),
        Sniffed::Closed => {}
    }
}

/// The pipelined `PFRM` loop: each pass admits every complete frame
/// buffered so far, routes them in arrival order (routing is synchronous —
/// the pool call *is* the work), and flushes the burst's replies with one
/// write. Mirrors the shard servers' blocking binary loop minus the worker
/// pool hand-off.
fn binary_connection_loop(shared: &Arc<Shared>, stream: TcpStream, head: Vec<u8>) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut frames = FrameBuf::new(MAX_REQUEST_FRAME_BYTES);
    frames.extend(&head);
    let mut reader = stream;
    let mut buf = [0u8; 16 * 1024];
    let mut eof = false;
    loop {
        let mut out: Vec<u8> = Vec::new();
        let mut close = false;
        while !close {
            let payload = match frames.next_payload() {
                Ok(Some(payload)) => payload,
                Ok(None) => break,
                Err(FrameError::Oversized { len, cap }) => {
                    shared.counters.requests.inc();
                    shared.counters.errors.inc();
                    let response = Response::Err {
                        code: ErrorCode::BadRequest,
                        message: format!("frame payload of {len} bytes exceeds {cap} bytes"),
                    };
                    out.extend_from_slice(&frame::encode_response(0, &response));
                    close = true;
                    break;
                }
                Err(_) => {
                    // Desynchronized mid-stream: no reply can be framed
                    // reliably, so just close.
                    shared.counters.errors.inc();
                    close = true;
                    break;
                }
            };
            match frame::decode_request(&payload) {
                Ok((id, request)) => match handle_request(shared, request) {
                    Handled::Reply(response, close_after) => {
                        out.extend_from_slice(&frame::encode_response(id, &response));
                        close |= close_after;
                    }
                    Handled::Raw(text) => {
                        out.extend_from_slice(&frame::encode_raw_response(id, &text));
                    }
                },
                Err(e) => {
                    shared.counters.requests.inc();
                    shared.counters.errors.inc();
                    let response = Response::Err {
                        code: ErrorCode::BadRequest,
                        message: format!("malformed binary request: {e}"),
                    };
                    out.extend_from_slice(&frame::encode_response(
                        frame::payload_id(&payload),
                        &response,
                    ));
                }
            }
        }
        if !out.is_empty() && writer.write_all(&out).is_err() {
            return;
        }
        if close || eof {
            return;
        }
        match reader.read(&mut buf) {
            Ok(0) => eof = true, // one more pass to admit buffered frames
            Ok(n) => frames.extend(&buf[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// The classic blocking text/HTTP loop. `head` holds the bytes the sniffer
/// consumed before deciding the protocol; chaining them in front of the
/// stream makes the hand-off invisible to the line reader.
fn text_connection_loop(shared: &Arc<Shared>, stream: TcpStream, head: Vec<u8>) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(Cursor::new(head).chain(stream));
    let mut line = String::new();
    loop {
        // Same partial-line and budget discipline as the shard servers:
        // fragmented writes reassemble, a newline-free flood is cut off.
        let budget = (MAX_LINE_BYTES + 1).saturating_sub(line.len()) as u64;
        match std::io::Read::take(&mut reader, budget).read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                if line.len() > MAX_LINE_BYTES {
                    oversized_line_reply(shared, &mut writer);
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        if line.len() > MAX_LINE_BYTES {
            oversized_line_reply(shared, &mut writer);
            return;
        }
        if line.trim().is_empty() {
            line.clear();
            continue;
        }
        // HTTP auto-detection (the PSHM/PWRK magic-sniffing idiom, shared
        // with the shard servers): a GET request line on the protocol port
        // becomes a one-shot scrape — answer and close.
        if let Some(path) = http::request_path(line.trim()) {
            let path = path.to_string();
            if http::drain_headers(&mut reader, &shared.stop) {
                let _ = writer.write_all(http_get(shared, &path).as_bytes());
            }
            return;
        }
        let handled = handle_line(shared, line.trim());
        line.clear();
        let (out, close) = match handled {
            Handled::Reply(response, close) => {
                let mut out = response.to_line();
                out.push('\n');
                (out, close)
            }
            // The one multi-line response (`METRICS`): written verbatim,
            // framed by its `# EOF` terminator.
            Handled::Raw(text) => (text, false),
        };
        if writer.write_all(out.as_bytes()).is_err() {
            return;
        }
        if close {
            return;
        }
    }
}

fn oversized_line_reply(shared: &Arc<Shared>, writer: &mut TcpStream) {
    shared.counters.requests.inc();
    shared.counters.errors.inc();
    let response = Response::Err {
        code: ErrorCode::BadRequest,
        message: format!("request line exceeds {MAX_LINE_BYTES} bytes"),
    };
    let mut out = response.to_line();
    out.push('\n');
    let _ = writer.write_all(out.as_bytes());
}

fn internal(shared: &Shared, message: String) -> Response {
    shared.counters.errors.inc();
    Response::Err { code: ErrorCode::Internal, message }
}

/// A dispatched request line: a single-line [`Response`] (plus a
/// close-connection flag), or pre-rendered multi-line text (`METRICS`).
enum Handled {
    Reply(Response, bool),
    Raw(String),
}

/// Dispatches one request line.
fn handle_line(shared: &Arc<Shared>, line: &str) -> Handled {
    match Request::parse(line) {
        Ok(request) => handle_request(shared, request),
        Err(reason) => {
            shared.counters.requests.inc();
            shared.counters.errors.inc();
            Handled::Reply(Response::Err { code: ErrorCode::BadRequest, message: reason }, false)
        }
    }
}

/// Dispatches one parsed request — shared by the text and binary loops.
fn handle_request(shared: &Arc<Shared>, request: Request) -> Handled {
    shared.counters.requests.inc();
    let reply = |response: Response, close: bool| Handled::Reply(response, close);
    let denied = || {
        shared.counters.errors.inc();
        let message = "admin verbs are disabled on this router".to_string();
        Handled::Reply(Response::Err { code: ErrorCode::AdminDenied, message }, false)
    };
    match request {
        Request::Ping => reply(Response::Pong, false),
        Request::Quit => reply(Response::Bye, true),
        Request::Shutdown => {
            shared.stop.store(true, Ordering::SeqCst);
            reply(Response::Bye, true)
        }
        Request::Query(q) => reply(handle_query(shared, Request::Query(q)), false),
        // EXPLAIN forwards verbatim like QUERY: planning happens on the
        // owning shard, where the artifacts and latency EWMAs live.
        Request::Explain(q) => reply(handle_query(shared, Request::Explain(q)), false),
        Request::Trace(t) => reply(handle_trace(shared, t), false),
        Request::Stats => reply(handle_stats(shared), false),
        Request::Metrics => handle_metrics(shared),
        Request::Series { field, res } => reply(handle_series(shared, &field, res), false),
        Request::Health => reply(handle_health(shared), false),
        Request::Update(_)
        | Request::Reload
        | Request::Prepare
        | Request::Commit
        | Request::Epoch
        | Request::Sync { .. }
        | Request::Discard
        | Request::Flight
        | Request::Capture(_)
            if !shared.options.admin =>
        {
            denied()
        }
        Request::Flight => reply(handle_flight(shared), false),
        // CAPTURE controls *this router's* recorder: each hop owns its log
        // (shards record the resolved-backend view, the router the front
        // door), so cluster-wide capture is per-process — set
        // `PITEX_OBS_CAPTURE` on every process, toggle each over its own
        // admin socket.
        Request::Capture(action) => reply(handle_capture(shared, action), false),
        Request::Update(op) => reply(handle_update(shared, op), false),
        Request::Reload => reply(handle_reload(shared), false),
        Request::Prepare | Request::Commit => {
            shared.counters.errors.inc();
            let message =
                "PREPARE/COMMIT are shard-level; RELOAD at the router runs the cluster barrier"
                    .to_string();
            reply(Response::Err { code: ErrorCode::BadRequest, message }, false)
        }
        Request::Sync { .. } | Request::Discard => {
            shared.counters.errors.inc();
            let message = "SYNC/DISCARD are shard-level; the router's prober runs replica \
                           catch-up itself"
                .to_string();
            reply(Response::Err { code: ErrorCode::BadRequest, message }, false)
        }
        Request::Epoch => reply(handle_epoch(shared), false),
    }
}

/// The splitmix64 finalizer (same mix the shard map uses), keying replica
/// affinity on `(user, k)` — the result-cache key minus the backend, so an
/// `auto` query and its resolved-backend repeats share a favorite replica.
fn affinity_key(user: u32, k: usize) -> u64 {
    let mut x = (u64::from(user) << 32) ^ (k as u64);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps a final response to the flight-recorder outcome tag.
fn outcome_of(response: &Response) -> &'static str {
    match response {
        Response::Busy => "busy",
        Response::Err { code: ErrorCode::Deadline, .. } => "deadline",
        Response::Err { .. } => "error",
        _ => "ok",
    }
}

/// Records one routed request into the flight ring and (sampled) into the
/// router's PWRK workload log. The flight entry keeps the ring's `auto`
/// display for an unset backend; the capture record keeps the wire-level
/// `-` so a replay re-issues the request exactly as it arrived.
/// `resolved` is the concrete backend when the reply names one
/// (`EXPLAINED` does) and `-` otherwise — the router sees the front door,
/// not the owning shard's planner.
#[allow(clippy::too_many_arguments)]
fn record_request(
    shared: &Shared,
    trace_id: u64,
    verb: &'static str,
    user: u32,
    k: usize,
    requested: Option<&'static str>,
    resolved: &'static str,
    outcome: &'static str,
    us: u64,
    tags: &[u32],
    spread: f64,
) {
    // Anchor at admission: ts + us lines up with the reply's send instant.
    let ts_us = wall_now_us().saturating_sub(us);
    shared.flight.record(FlightEntry {
        trace_id,
        ts_us,
        verb,
        user,
        k,
        backend: requested.unwrap_or("auto"),
        outcome,
        us,
    });
    shared.capture.record(|| CaptureRecord {
        ts_us,
        trace_id,
        verb: verb.to_string(),
        user,
        k: k as u32,
        backend: requested.unwrap_or("-").to_string(),
        resolved: resolved.to_string(),
        outcome: outcome.to_string(),
        us,
        tags: tags.to_vec(),
        spread_bits: spread.to_bits(),
    });
}

/// Routes `QUERY` and `EXPLAIN` (the `request` must be one of the two) to
/// the owning shard, with cache-affine replica choice.
fn handle_query(shared: &Arc<Shared>, request: Request) -> Response {
    let (verb, q) = match &request {
        Request::Query(q) => ("QUERY", *q),
        Request::Explain(q) => ("EXPLAIN", *q),
        _ => unreachable!("handle_query only routes QUERY/EXPLAIN"),
    };
    // Read side of the epoch gate: a query is never in flight across the
    // commit wave of a reload.
    let _gate = shared.epoch_gate.read().unwrap();
    let shard = shared.map.shard_of(q.user);
    let t = Instant::now();
    let response = match shared
        .pools
        .call_keyed(shard, affinity_key(q.user, q.k), |client| client.request(&request))
    {
        Ok(response) => {
            match &response {
                Response::Ok(_) | Response::Explained(_) => {
                    shared.counters.ok.inc();
                    shared.latency.record(t.elapsed().as_micros() as u64);
                }
                Response::Busy => {
                    shared.counters.busy.inc();
                }
                _ => {
                    shared.counters.errors.inc();
                }
            }
            // Forward the shard's reply line verbatim — the cluster is a
            // drop-in for a single server, error codes included.
            response
        }
        Err(CallError::Saturated) => {
            shared.counters.busy.inc();
            Response::Busy
        }
        Err(CallError::Unavailable(detail)) => internal(shared, detail),
    };
    let us = t.elapsed().as_micros() as u64;
    let (resolved, tags, spread): (&'static str, &[u32], f64) = match &response {
        Response::Ok(r) => ("-", &r.tags, r.spread),
        Response::Explained(r) => (r.backend.cli_name(), &r.tags, r.spread),
        _ => ("-", &[], 0.0),
    };
    record_request(
        shared,
        mint_trace_id(),
        verb,
        q.user,
        q.k,
        q.backend.map(|b| b.cli_name()),
        resolved,
        outcome_of(&response),
        us,
        tags,
        spread,
    );
    response
}

/// Routes `TRACE` like a query, then splices the shard's timeline into the
/// router's own: the trace id minted (or echoed) here rides the shard hop
/// as `id=<hex>`, shard spans come back re-based under a `shard.` prefix,
/// and the part of the hop the shard cannot see (pool checkout,
/// serialization, both network legs) becomes the `net` span. One trace id,
/// one timeline, two processes.
fn handle_trace(shared: &Arc<Shared>, t: TraceRequest) -> Response {
    let _gate = shared.epoch_gate.read().unwrap();
    let trace_id = t.trace_id.unwrap_or_else(mint_trace_id);
    let q = t.query;
    let forwarded = Request::Trace(TraceRequest { query: q, trace_id: Some(trace_id) });
    let mut recorder = SpanRecorder::new();
    let started = recorder.origin();
    let shard = shared.map.shard_of(q.user);
    recorder.record_since("route", started);
    let dispatch_start = Instant::now();
    let outcome = shared
        .pools
        .call_keyed(shard, affinity_key(q.user, q.k), |client| client.request(&forwarded));
    let response = match outcome {
        Ok(Response::Traced(reply)) => {
            if reply.trace_id != trace_id {
                internal(
                    shared,
                    format!("shard answered trace {} for trace {}", reply.trace_id, trace_id),
                )
            } else {
                let hop_us = dispatch_start.elapsed().as_micros() as u64;
                let hop_start = recorder.offset_us(dispatch_start);
                // The shard accounts for `reply.us` of the hop; the rest
                // is the network + pool overhead only the router can see.
                let net_us = hop_us.saturating_sub(reply.us);
                recorder.record_at("net", hop_start, net_us);
                let shard_base = hop_start + net_us;
                for span in &reply.spans {
                    recorder.record_at(
                        &format!("shard.{}", span.name),
                        shard_base + span.start_us,
                        span.dur_us,
                    );
                }
                shared.counters.ok.inc();
                let total_us = recorder.offset_us(Instant::now());
                shared.latency.record(total_us);
                Response::Traced(TraceReply {
                    trace_id,
                    user: reply.user,
                    k: reply.k,
                    tags: reply.tags,
                    spread: reply.spread,
                    cached: reply.cached,
                    us: total_us,
                    spans: recorder.finish(),
                })
            }
        }
        Ok(Response::Busy) => {
            shared.counters.busy.inc();
            Response::Busy
        }
        Ok(Response::Err { code, message }) => {
            shared.counters.errors.inc();
            Response::Err { code, message }
        }
        Ok(other) => internal(shared, format!("unexpected TRACE reply: {other:?}")),
        Err(CallError::Saturated) => {
            shared.counters.busy.inc();
            Response::Busy
        }
        Err(CallError::Unavailable(detail)) => internal(shared, detail),
    };
    let us = started.elapsed().as_micros() as u64;
    let (tags, spread): (&[u32], f64) = match &response {
        Response::Traced(r) => (&r.tags, r.spread),
        _ => (&[], 0.0),
    };
    record_request(
        shared,
        trace_id,
        "TRACE",
        q.user,
        q.k,
        q.backend.map(|b| b.cli_name()),
        "-",
        outcome_of(&response),
        us,
        tags,
        spread,
    );
    response
}

fn handle_epoch(shared: &Arc<Shared>) -> Response {
    let _gate = shared.epoch_gate.read().unwrap();
    shared.counters.scatters.inc();
    let mut epochs = BTreeSet::new();
    for shard in 0..shared.pools.num_shards() {
        // Typed `request` rather than the `epoch()` sugar: a shard-side
        // protocol rejection (e.g. `serve --no-admin`) is a *reply*, not a
        // transport failure, and must neither mark the replica down nor be
        // rewrapped — it forwards verbatim.
        match shared.pools.call(shard, |client| client.request(&Request::Epoch)) {
            Ok(Response::Epoch(epoch)) => {
                epochs.insert(epoch);
            }
            Ok(Response::Err { code, message }) => {
                shared.counters.errors.inc();
                return Response::Err { code, message };
            }
            Ok(other) => {
                return internal(shared, format!("unexpected EPOCH reply: {other:?}"));
            }
            Err(CallError::Saturated) => {
                shared.counters.busy.inc();
                return Response::Busy;
            }
            Err(CallError::Unavailable(detail)) => return internal(shared, detail),
        }
    }
    if epochs.len() == 1 {
        Response::Epoch(*epochs.iter().next().unwrap())
    } else {
        internal(shared, format!("mixed epochs across shards: {epochs:?}"))
    }
}

/// Scatters `STATS` to every shard and folds the replies under the merge
/// rules the obs schema declares per field ([`MergedFields`]) — the
/// hand-maintained field table this replaces silently dropped any shard
/// field it forgot; now a field without a registered rule fails the merge
/// loudly, naming the field.
fn merged_shard_fields(shared: &Arc<Shared>) -> Result<Vec<(String, String)>, String> {
    let mut merged = MergedFields::new();
    for shard in 0..shared.pools.num_shards() {
        // Scatter policy: down-marked replicas are skipped (not re-dialed
        // per request — a blackholed peer would stall every scatter by the
        // connect timeout) and are simply absent from the aggregate;
        // `replicas_up` reports how many pass the health gate.
        for outcome in
            shared.pools.broadcast(shard, false, |client| client.request(&Request::Stats))
        {
            if let Ok(Response::Stats(stats)) = outcome.outcome {
                merged.absorb(stats.iter())?;
            }
        }
    }
    if merged.replies() == 0 {
        return Err("no shard replica reachable".to_string());
    }
    let replies = merged.replies();
    // `finish` recomputes quantiles off the merged histograms and ratios
    // off the merged sums, and turns must-agree divergence (e.g. an admin
    // reloaded one shard behind the router's back) into an error instead
    // of a coherent-looking aggregate.
    let mut fields = merged.finish()?;
    fields.extend(router_fields(shared, replies).into_fields());
    Ok(fields)
}

/// The router's own portion of the `STATS`/`METRICS` field list: cluster
/// topology, the hop-latency distribution, the flight recorder's totals,
/// and everything registered in the registry (router verb counters plus
/// the pool's adopted probe/failover/catch-up counters).
fn router_fields(shared: &Shared, replies: u64) -> FieldSet {
    let mut fields = FieldSet::new();
    fields.push("shards", shared.map.num_shards());
    let (up, total) = shared.pools.replica_health();
    fields.push("replicas", total);
    fields.push("replicas_up", up);
    fields.push("replies", replies);
    fields.push("router_uptime_s", format!("{:.1}", shared.started.elapsed().as_secs_f64()));
    let hist = shared.latency.snapshot();
    fields.push("router_lat_p50_us", hist.quantile(0.50));
    fields.push("router_lat_p90_us", hist.quantile(0.90));
    fields.push("router_lat_p99_us", hist.quantile(0.99));
    fields.push("router_flight_recorded", shared.flight.recorded());
    fields.push("router_slow_queries", shared.flight.slow_count());
    fields.push("router_capture_records", shared.capture.recorded());
    fields.push("router_capture_dropped", shared.capture.dropped());
    fields.extend_from_registry(&shared.registry);
    fields
}

fn handle_stats(shared: &Arc<Shared>) -> Response {
    let _gate = shared.epoch_gate.read().unwrap();
    shared.counters.scatters.inc();
    match merged_shard_fields(shared) {
        Ok(fields) => Response::Stats(StatsReply::new(fields)),
        Err(message) => internal(shared, message),
    }
}

/// `METRICS` at the router: the same merged field list `STATS` reports,
/// rendered as Prometheus text exposition — one scrape endpoint for the
/// whole cluster.
fn handle_metrics(shared: &Arc<Shared>) -> Handled {
    let _gate = shared.epoch_gate.read().unwrap();
    shared.counters.scatters.inc();
    match merged_shard_fields(shared) {
        Ok(fields) => Handled::Raw(render_prometheus(fields.into_iter())),
        Err(message) => Handled::Reply(internal(shared, message), false),
    }
}

/// `SERIES <field> [res]` over the router's *local* rings (its own
/// counters, hop latency, pool health) — shard rings are per shard, where
/// the samples live; ask a shard directly for its history.
fn handle_series(shared: &Shared, field: &str, res: Option<SeriesRes>) -> Response {
    match shared.timeseries.series(field, res.unwrap_or(SeriesRes::Fast)) {
        Some(dump) => Response::Series(dump.into()),
        None => {
            shared.counters.errors.inc();
            Response::Err {
                code: ErrorCode::BadRequest,
                message: format!("unknown or never-sampled router field {field:?}"),
            }
        }
    }
}

/// `HEALTH` at the router: the cluster verdict — see [`cluster_health`].
fn handle_health(shared: &Arc<Shared>) -> Response {
    let _gate = shared.epoch_gate.read().unwrap();
    shared.counters.scatters.inc();
    Response::Health(cluster_health(shared))
}

/// Scatters `HEALTH` to every shard and merges: shard verdicts come back
/// re-originated as `shard<N>`, the router's own burn-rate verdicts (over
/// its front-door counters and hop-latency histogram) append as `router`,
/// and the fold picks the worst origin. A shard with no reachable replica
/// — or one answering something other than `HEALTHY` (an old binary) —
/// contributes a synthetic paging `reachability` verdict instead of
/// silently vanishing from the aggregate: the moment health matters most
/// is when a shard is down.
fn cluster_health(shared: &Arc<Shared>) -> HealthVerdict {
    let mut slos = Vec::new();
    for shard in 0..shared.pools.num_shards() {
        let origin = format!("shard{shard}");
        match shared.pools.call(shard, |client| client.request(&Request::Health)) {
            Ok(Response::Health(verdict)) => {
                slos.extend(verdict.slos.into_iter().map(|mut v| {
                    v.origin = origin.clone();
                    v
                }));
            }
            _ => slos.push(SloVerdict {
                name: "reachability".to_string(),
                status: SloStatus::Page,
                window: "-".to_string(),
                burn: 0.0,
                field: "-".to_string(),
                origin,
            }),
        }
    }
    let own = slo::evaluate(&shared.timeseries, &shared.slo, slo::ROUTER_INPUTS);
    slos.extend(own.slos.into_iter().map(|mut v| {
        v.origin = "router".to_string();
        v
    }));
    HealthVerdict::from_slos(slos)
}

/// Routes one sniffed `GET` to its body and frames the HTTP response:
/// `/metrics` and `/health` answer for the whole cluster (merged fields,
/// merged verdict), `/series` for the router's local rings.
fn http_get(shared: &Arc<Shared>, path: &str) -> String {
    let (route, query) = match path.split_once('?') {
        Some((route, query)) => (route, query),
        None => (path, ""),
    };
    match route {
        "/metrics" => {
            let _gate = shared.epoch_gate.read().unwrap();
            shared.counters.scatters.inc();
            match merged_shard_fields(shared) {
                Ok(fields) => http::response(
                    "200 OK",
                    "text/plain; version=0.0.4",
                    &render_prometheus(fields.into_iter()),
                ),
                Err(message) => {
                    shared.counters.errors.inc();
                    http::response(
                        "500 Internal Server Error",
                        "text/plain; charset=utf-8",
                        &format!("{message}\n"),
                    )
                }
            }
        }
        "/health" => {
            let verdict = {
                let _gate = shared.epoch_gate.read().unwrap();
                shared.counters.scatters.inc();
                cluster_health(shared)
            };
            http::response(
                http::health_status_line(verdict.status),
                "application/json",
                &http::health_json(&verdict),
            )
        }
        "/series" => {
            let mut field = None;
            let mut res = SeriesRes::Fast;
            for pair in query.split('&') {
                match pair.split_once('=') {
                    Some(("field", v)) => field = Some(v),
                    Some(("res", v)) => res = SeriesRes::parse(v).unwrap_or(res),
                    _ => {}
                }
            }
            let Some(field) = field else {
                return http::response(
                    "400 Bad Request",
                    "text/plain; charset=utf-8",
                    "missing ?field=<name>\n",
                );
            };
            match shared.timeseries.series(field, res) {
                Some(dump) => {
                    http::response("200 OK", "application/json", &http::series_json(&dump))
                }
                None => http::response(
                    "404 Not Found",
                    "text/plain; charset=utf-8",
                    &format!("unknown or never-sampled router field {field:?}\n"),
                ),
            }
        }
        _ => http::response(
            "404 Not Found",
            "text/plain; charset=utf-8",
            "try /metrics, /health or /series?field=<name>[&res=fast|mid|slow]\n",
        ),
    }
}

/// Newest ring entries a one-line `FLIGHTED` reply carries (mirrors the
/// shard servers' cap).
const FLIGHT_REPLY_CAP: usize = 64;

/// Dumps the router's flight recorder: the recent-request ring plus the
/// retained slow queries.
fn handle_flight(shared: &Arc<Shared>) -> Response {
    let wire = |e: &FlightEntry| FlightWireEntry {
        trace_id: e.trace_id,
        verb: e.verb.to_string(),
        user: e.user,
        k: e.k,
        backend: e.backend.to_string(),
        outcome: e.outcome.to_string(),
        us: e.us,
        ts_us: e.ts_us,
    };
    let dump = shared.flight.dump();
    let entries = dump[dump.len().saturating_sub(FLIGHT_REPLY_CAP)..].iter().map(wire).collect();
    let slow = shared.flight.slow_queries().iter().map(wire).collect();
    Response::Flight(FlightReply {
        recorded: shared.flight.recorded(),
        slow_count: shared.flight.slow_count(),
        entries,
        slow,
    })
}

/// `CAPTURE on|off|rotate` against the router's own workload recorder
/// (mirrors the shard servers' handler).
fn handle_capture(shared: &Arc<Shared>, action: CaptureAction) -> Response {
    if !shared.capture.configured() {
        shared.counters.errors.inc();
        return Response::Err {
            code: ErrorCode::BadRequest,
            message: "no capture path configured (set PITEX_OBS_CAPTURE)".to_string(),
        };
    }
    match action {
        CaptureAction::On => shared.capture.set_enabled(true),
        CaptureAction::Off => shared.capture.set_enabled(false),
        CaptureAction::Rotate => {
            if let Err(e) = shared.capture.rotate() {
                return internal(shared, format!("capture rotate failed: {e}"));
            }
        }
    }
    Response::Captured {
        enabled: shared.capture.enabled(),
        recorded: shared.capture.recorded(),
        dropped: shared.capture.dropped(),
    }
}

/// The shards an op must reach: edge mutations are anchored at their
/// source user's shard; tag-space and vertex-count mutations change what
/// *every* shard may be asked (`shard_of` is total over users, and tags
/// are global), so they go everywhere.
fn target_shards(map: &ShardMap, op: &UpdateOp) -> Vec<usize> {
    match op {
        UpdateOp::AddEdge { src, .. }
        | UpdateOp::RemoveEdge { src, .. }
        | UpdateOp::SetEdgeTopics { src, .. } => vec![map.shard_of(*src)],
        UpdateOp::AttachTag { .. } | UpdateOp::DetachTag { .. } | UpdateOp::AddUser => {
            (0..map.num_shards()).collect()
        }
    }
}

fn handle_update(shared: &Arc<Shared>, op: UpdateOp) -> Response {
    let _admin = shared.admin_serial.lock().unwrap();
    let _gate = shared.epoch_gate.read().unwrap();
    shared.counters.updates.inc();
    let mut last: Option<(u64, u64)> = None;
    for shard in target_shards(&shared.map, &op) {
        let mut reached = 0;
        for outcome in shared
            .pools
            .broadcast(shard, true, |client| client.request(&Request::Update(op.clone())))
        {
            match outcome.outcome {
                Ok(Response::Updated { epoch, pending }) => {
                    reached += 1;
                    last = Some((epoch, pending));
                }
                Ok(Response::Err { code, message }) => {
                    // The op itself was rejected (identical models reject
                    // identically); forward the shard's verdict verbatim.
                    shared.counters.errors.inc();
                    return Response::Err { code, message };
                }
                Ok(other) => {
                    return internal(
                        shared,
                        format!("unexpected UPDATE reply from {}: {other:?}", outcome.addr),
                    )
                }
                // An unreachable replica is skipped: it must resync (be
                // restarted from current artifacts) before rejoining.
                Err(_) => {}
            }
        }
        if reached == 0 {
            return internal(shared, format!("shard {shard}: no replica accepted the update"));
        }
    }
    match last {
        Some((epoch, pending)) => Response::Updated { epoch, pending },
        None => internal(shared, "update targeted no shard".to_string()),
    }
}

/// The cluster-wide reload barrier — see the module docs for the phases.
fn handle_reload(shared: &Arc<Shared>) -> Response {
    let _admin = shared.admin_serial.lock().unwrap();
    let num_shards = shared.pools.num_shards();

    // Phase 1: PREPARE everywhere. Slow (fold + repair) but non-blocking —
    // every shard keeps answering queries from its current epoch, and the
    // epoch gate stays open for readers. PREPARE is idempotent, so a
    // barrier that failed halfway is simply retried with another RELOAD.
    for shard in 0..num_shards {
        let mut prepared = 0;
        for outcome in
            shared.pools.broadcast(shard, true, |client| client.request(&Request::Prepare))
        {
            match outcome.outcome {
                Ok(Response::Prepared(_)) => prepared += 1,
                Ok(Response::Err { code, message }) => {
                    return internal(
                        shared,
                        format!(
                            "prepare failed on {} ({}: {message}); retry RELOAD once resolved",
                            outcome.addr,
                            code.as_str()
                        ),
                    )
                }
                Ok(other) => {
                    return internal(
                        shared,
                        format!("unexpected PREPARE reply from {}: {other:?}", outcome.addr),
                    )
                }
                Err(_) => {} // dead replica: resyncs out of band
            }
        }
        if prepared == 0 {
            return internal(shared, format!("shard {shard}: no replica reachable for PREPARE"));
        }
    }

    // Phase 2: the barrier. Take the write gate — every scatter and query
    // drains first and none starts until the wave is done — then commit
    // the cheap swaps back-to-back.
    let mut reply = ReloadReply::default();
    let mut epochs = BTreeSet::new();
    {
        let _gate = shared.epoch_gate.write().unwrap();
        for shard in 0..num_shards {
            let mut committed = 0;
            for outcome in
                shared.pools.broadcast(shard, true, |client| client.request(&Request::Commit))
            {
                match outcome.outcome {
                    Ok(Response::Reloaded(r)) => {
                        committed += 1;
                        epochs.insert(r.epoch);
                        // Per-shard folds/repairs add up to the cluster
                        // total (replicas of one shard do identical work;
                        // their counts are intentionally all included —
                        // the reply reports work done, not distinct ops).
                        reply.folded += r.folded;
                        reply.resampled += r.resampled;
                        reply.reused += r.reused;
                        reply.full |= r.full;
                    }
                    Ok(other) => {
                        return internal(
                            shared,
                            format!(
                                "commit failed on {} ({other:?}); cluster may be mixed-epoch — \
                                 retry RELOAD",
                                outcome.addr
                            ),
                        )
                    }
                    Err(_) => {}
                }
            }
            if committed == 0 {
                return internal(
                    shared,
                    format!(
                        "shard {shard}: no replica reachable for COMMIT; cluster may be \
                         mixed-epoch — retry RELOAD"
                    ),
                );
            }
        }
    }
    shared.counters.reloads.inc();
    // All shards entered this barrier at a common epoch (boot, or the
    // previous barrier) and every commit advances by one, so the post-wave
    // epochs agree unless someone reloaded a shard behind the router.
    reply.epoch = epochs.iter().next_back().copied().unwrap_or(0);
    if epochs.len() > 1 {
        return internal(
            shared,
            format!("post-commit epochs disagree ({epochs:?}): a shard was reloaded out of band"),
        );
    }
    Response::Reloaded(reply)
}
