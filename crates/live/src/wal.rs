//! The durable, shippable update log (WAL) behind replica self-healing.
//!
//! `log` gives every mutation a binary codec; this module gives the codec
//! a **disk contract** and a **wire bundle** so a replica that missed
//! acknowledged `UPDATE`s can replay its way back instead of waiting for
//! an operator restart. Three artifacts live in one WAL directory:
//!
//! * `update.wal` — an append-only record stream. Each record is framed
//!   `[u32 payload_len][payload][u64 fnv64(payload)]`; the payload is a
//!   record kind (staged op vs. epoch commit), the epoch it belongs to,
//!   and the ops as an embedded `PLOG` blob ([`crate::ops_to_bytes`]).
//!   Appends are `fdatasync`ed **before** the serving layer acks the
//!   `UPDATE` — an acknowledged op is on disk, period.
//! * `base.snap` — the compacted base snapshot (a `PTIC` model blob
//!   stamped with its epoch), rewritten atomically (tmp + rename + dir
//!   sync) whenever the log crosses the [`WalOptions`] size/ops bounds.
//!   The snapshot is written *before* the log is rewritten, so a crash
//!   between the two steps leaves records the opener can skip (their
//!   epoch is ≤ the snapshot's), never a gap.
//! * the recovery rule — on open, an **incomplete frame at EOF is a torn
//!   tail** (the crash interrupted an append) and is truncated away; a
//!   complete frame whose checksum or payload does not verify is
//!   **corruption** and fails loudly ([`WalError::Corrupt`]). Silent
//!   skipping is exactly the bug a WAL exists to prevent.
//!
//! Epoch semantics mirror the serving layer: a `Staged` record is one op
//! acknowledged while epoch `e` was current; a `Commit` record marks the
//! swap *to* epoch `e`, folding
//! every staged record since the previous commit (possibly none — an
//! epoch-only swap is a commit with an empty batch). Replay is therefore
//! a pure fold: base model + committed batches → [`ModelOverlay`] →
//! [`ModelOverlay::compact`], bit-identical to the peer that took the
//! same ops live (index repair is bit-identical to a rebuild, so the
//! final model determines the final index).
//!
//! [`SyncBundle`] is the same history in wire form: the `SYNC
//! <from_epoch>` admin verb streams the suffix a stale replica needs,
//! hex-armored to fit the one-line text protocol.

use crate::log::{ops_from_bytes, ops_to_bytes, UpdateOp};
use crate::overlay::{ModelOverlay, UpdateError};
use pitex_model::TicModel;
use pitex_support::codec::{DecodeError, Decoder, Encoder};
use pitex_support::obs::AtomicHistogram;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

const WAL_MAGIC: [u8; 4] = *b"PWAL";
const WAL_VERSION: u32 = 1;
const SNAP_MAGIC: [u8; 4] = *b"PSNP";
const SNAP_VERSION: u32 = 1;
const BUNDLE_MAGIC: [u8; 4] = *b"PSYN";
const BUNDLE_VERSION: u32 = 1;

/// WAL header: magic + version + `u64` base epoch.
const WAL_HEADER_LEN: u64 = 4 + 4 + 8;

/// Errors from the durable log.
#[derive(Debug)]
pub enum WalError {
    /// Filesystem failure (open, append, fsync, rename).
    Io(std::io::Error),
    /// A *complete* record failed its checksum or did not decode — the
    /// log is damaged mid-stream and must not be trusted. The offset is
    /// the byte position of the bad record's frame.
    Corrupt { offset: u64, detail: String },
    /// Header-level damage (bad magic/version on the log or snapshot).
    Decode(DecodeError),
    /// Replaying the committed ops was rejected by the overlay — the log
    /// disagrees with the model it claims to extend.
    Replay(UpdateError),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Corrupt { offset, detail } => {
                write!(f, "wal corrupt at byte {offset}: {detail}")
            }
            WalError::Decode(e) => write!(f, "wal decode error: {e}"),
            WalError::Replay(e) => write!(f, "wal replay rejected: {e}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

impl From<DecodeError> for WalError {
    fn from(e: DecodeError) -> Self {
        WalError::Decode(e)
    }
}

/// Compaction bounds: when the log exceeds either, the serving layer
/// folds it into a fresh `base.snap`. Overridable via `PITEX_WAL_MAX_BYTES`
/// and `PITEX_WAL_MAX_OPS`.
#[derive(Clone, Copy, Debug)]
pub struct WalOptions {
    /// Compact once `update.wal` exceeds this many bytes (default 64 MiB).
    pub max_bytes: u64,
    /// Compact once the log holds this many committed ops (default 65536).
    pub max_ops: u64,
}

impl Default for WalOptions {
    fn default() -> Self {
        Self { max_bytes: 64 * 1024 * 1024, max_ops: 65_536 }
    }
}

impl WalOptions {
    /// Applies the `PITEX_WAL_MAX_BYTES` / `PITEX_WAL_MAX_OPS` overrides.
    pub fn from_env() -> Self {
        let mut options = Self::default();
        if let Some(v) = std::env::var("PITEX_WAL_MAX_BYTES").ok().and_then(|v| v.parse().ok()) {
            options.max_bytes = v;
        }
        if let Some(v) = std::env::var("PITEX_WAL_MAX_OPS").ok().and_then(|v| v.parse().ok()) {
            options.max_ops = v;
        }
        options
    }
}

/// One committed epoch transition: the ops folded by the swap *to*
/// `epoch` (empty for an epoch-only swap).
#[derive(Clone, Debug, PartialEq)]
pub struct CommittedBatch {
    /// The epoch this batch's commit swapped the replica to.
    pub epoch: u64,
    /// The staged ops the swap folded, in acknowledgement order.
    pub ops: Vec<UpdateOp>,
}

/// What [`Wal::open`] recovered from disk.
#[derive(Debug)]
pub struct WalRecovery {
    /// Epoch of the base snapshot the log extends.
    pub base_epoch: u64,
    /// The compacted base model, if a `base.snap` exists.
    pub base_model: Option<TicModel>,
    /// Committed batches in epoch order (`base_epoch + 1 ..`).
    pub committed: Vec<CommittedBatch>,
    /// Acknowledged-but-uncommitted ops (staged after the last commit).
    pub pending: Vec<UpdateOp>,
    /// Bytes of torn tail truncated away on open (0 = clean shutdown).
    pub truncated_bytes: u64,
}

impl WalRecovery {
    /// The epoch the recovered replica should resume serving at.
    pub fn epoch(&self) -> u64 {
        self.committed.last().map_or(self.base_epoch, |b| b.epoch)
    }

    /// Total committed ops in the recovered log.
    pub fn committed_ops(&self) -> u64 {
        self.committed.iter().map(|b| b.ops.len() as u64).sum()
    }
}

enum RecordKind {
    Staged,
    Commit,
}

/// The 64-bit FNV-1a of a record payload — the integrity check behind
/// the torn-tail/corruption distinction.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

fn record_payload(kind: RecordKind, epoch: u64, ops: &[UpdateOp]) -> Vec<u8> {
    let mut enc = Encoder::new(Vec::new());
    enc.u8(match kind {
        RecordKind::Staged => 0,
        RecordKind::Commit => 1,
    });
    enc.u64(epoch);
    let plog = ops_to_bytes(ops);
    let mut buf = enc.into_inner();
    buf.extend_from_slice(&plog);
    buf
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv64(payload).to_le_bytes());
    out
}

fn sync_dir(dir: &Path) -> std::io::Result<()> {
    // Rename durability needs the directory synced too; best-effort on
    // platforms where opening a directory for sync is not supported.
    match File::open(dir) {
        Ok(d) => d.sync_all(),
        Err(_) => Ok(()),
    }
}

/// Writes `base.snap` atomically: tmp file + fdatasync + rename + dir sync.
fn write_snapshot(dir: &Path, model: &TicModel, epoch: u64) -> Result<(), WalError> {
    let mut enc = Encoder::new(Vec::new());
    enc.header(SNAP_MAGIC, SNAP_VERSION);
    enc.u64(epoch);
    let model_bytes = pitex_model::serial::to_bytes(model);
    let mut buf = enc.into_inner();
    buf.extend_from_slice(&(model_bytes.len() as u64).to_le_bytes());
    buf.extend_from_slice(&model_bytes);

    let tmp = dir.join("base.snap.tmp");
    let path = dir.join("base.snap");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&buf)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, &path)?;
    sync_dir(dir)?;
    Ok(())
}

fn read_snapshot(dir: &Path) -> Result<Option<(u64, TicModel)>, WalError> {
    let path = dir.join("base.snap");
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(WalError::Io(e)),
    };
    let mut dec = Decoder::new(bytes.as_slice());
    dec.header(SNAP_MAGIC, SNAP_VERSION)?;
    let epoch = dec.u64()?;
    let len = dec.u64()? as usize;
    let offset = (4 + 4 + 8 + 8) as usize;
    if bytes.len() < offset + len {
        return Err(WalError::Decode(DecodeError::UnexpectedEof {
            needed: offset + len,
            remaining: bytes.len(),
        }));
    }
    let model = pitex_model::serial::from_bytes(&bytes[offset..offset + len])
        .map_err(|e| WalError::Corrupt { offset: offset as u64, detail: e.to_string() })?;
    Ok(Some((epoch, model)))
}

/// Lock-free timing histograms the WAL records into (microseconds): the
/// full append (write + sync), the `fdatasync` alone — the number that
/// bounds `UPDATE` ack latency — and compactions. The serving layer hands
/// a clone to [`Wal::set_timings`] and exports the same histograms
/// through `STATS`/`METRICS`, so fsync stalls show up next to query
/// latency instead of hiding under the admin lock.
#[derive(Clone, Debug, Default)]
pub struct WalTimings {
    pub append: Arc<AtomicHistogram>,
    pub fsync: Arc<AtomicHistogram>,
    pub compact: Arc<AtomicHistogram>,
}

/// The open, append-only durable log. See the module docs for the disk
/// contract; the serving layer owns one of these under its admin lock.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    file: File,
    options: WalOptions,
    bytes: u64,
    committed_ops: u64,
    timings: WalTimings,
}

impl Wal {
    /// Opens (or creates) the WAL in `dir`, recovering its history.
    ///
    /// Recovery rules, in order:
    /// * a missing or empty `update.wal` is a fresh log (epoch from
    ///   `base.snap`, or the caller's boot epoch via `default_epoch`);
    /// * an incomplete frame at EOF is a torn tail: truncated and synced;
    /// * a complete frame with a bad checksum or undecodable payload is
    ///   corruption: [`WalError::Corrupt`], the replica must not serve;
    /// * committed batches at or below the snapshot epoch are skipped
    ///   (the crash window between snapshot write and log rewrite).
    pub fn open(
        dir: impl AsRef<Path>,
        default_epoch: u64,
        options: WalOptions,
    ) -> Result<(Self, WalRecovery), WalError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let snapshot = read_snapshot(&dir)?;
        let path = dir.join("update.wal");
        let mut file = OpenOptions::new().read(true).append(true).create(true).open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let snap_epoch = snapshot.as_ref().map(|(e, _)| *e);
        let (base_epoch, records, truncated) = if bytes.is_empty() {
            // Fresh log: stamp the header now so every future open sees it.
            let base = snap_epoch.unwrap_or(default_epoch);
            let mut enc = Encoder::new(Vec::new());
            enc.header(WAL_MAGIC, WAL_VERSION);
            enc.u64(base);
            let header = enc.into_inner();
            file.write_all(&header)?;
            file.sync_data()?;
            (base, Vec::new(), 0)
        } else {
            let mut dec = Decoder::new(bytes.as_slice());
            dec.header(WAL_MAGIC, WAL_VERSION)?;
            let header_base = dec.u64()?;
            let (records, keep_len) = scan_records(&bytes, WAL_HEADER_LEN as usize)?;
            let truncated = bytes.len() as u64 - keep_len as u64;
            if truncated > 0 {
                file.set_len(keep_len as u64)?;
                file.sync_data()?;
            }
            // A snapshot written after this log's header wins (crash
            // between compaction's two steps): skip covered batches below.
            (snap_epoch.unwrap_or(header_base).max(header_base), records, truncated)
        };

        // Fold the raw record stream into committed batches + pending.
        let mut committed = Vec::new();
        let mut staged: Vec<UpdateOp> = Vec::new();
        for (kind, epoch, ops) in records {
            match kind {
                0 => staged.extend(ops),
                1 => {
                    if epoch > base_epoch {
                        committed.push(CommittedBatch { epoch, ops: std::mem::take(&mut staged) });
                    } else {
                        // Covered by the snapshot: drop the batch.
                        staged.clear();
                    }
                }
                _ => unreachable!("scan_records validates kinds"),
            }
        }

        let committed_ops = committed.iter().map(|b| b.ops.len() as u64).sum();
        let file_len = file.metadata()?.len();
        let wal = Self {
            dir,
            file,
            options,
            bytes: file_len,
            committed_ops,
            timings: WalTimings::default(),
        };
        let recovery = WalRecovery {
            base_epoch,
            base_model: snapshot.map(|(_, m)| m),
            committed,
            pending: staged,
            truncated_bytes: truncated,
        };
        Ok((wal, recovery))
    }

    /// The WAL directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Installs the timing histograms appends/fsyncs/compactions record
    /// into (the default set is recorded but unobserved).
    pub fn set_timings(&mut self, timings: WalTimings) {
        self.timings = timings;
    }

    /// Appends one acknowledged-but-uncommitted op and syncs. Call this
    /// **before** acking the `UPDATE` — the fsync is the ack's warrant.
    pub fn append_staged(&mut self, epoch: u64, op: &UpdateOp) -> Result<(), WalError> {
        self.append(RecordKind::Staged, epoch, std::slice::from_ref(op))
    }

    /// Appends the commit marker for the swap to `epoch` and syncs.
    pub fn append_commit(&mut self, epoch: u64, folded: u64) -> Result<(), WalError> {
        self.append(RecordKind::Commit, epoch, &[])?;
        self.committed_ops += folded;
        Ok(())
    }

    fn append(&mut self, kind: RecordKind, epoch: u64, ops: &[UpdateOp]) -> Result<(), WalError> {
        let buf = frame(&record_payload(kind, epoch, ops));
        let started = Instant::now();
        self.file.write_all(&buf)?;
        let pre_sync = Instant::now();
        self.file.sync_data()?;
        self.timings.fsync.record(pre_sync.elapsed().as_micros() as u64);
        self.timings.append.record(started.elapsed().as_micros() as u64);
        self.bytes += buf.len() as u64;
        Ok(())
    }

    /// Whether the log has crossed either compaction bound.
    pub fn should_compact(&self) -> bool {
        self.bytes > self.options.max_bytes || self.committed_ops >= self.options.max_ops
    }

    /// Committed ops currently in the log (resets on [`Self::compact`]).
    pub fn committed_ops(&self) -> u64 {
        self.committed_ops
    }

    /// Folds the log into a new base snapshot at `epoch` (the compacted
    /// `model`), then rewrites the log to just a header plus re-staged
    /// `pending` ops. Snapshot first, log second: a crash in between
    /// leaves stale-but-skippable records, never a hole.
    pub fn compact(
        &mut self,
        model: &TicModel,
        epoch: u64,
        pending: &[UpdateOp],
    ) -> Result<(), WalError> {
        let started = Instant::now();
        write_snapshot(&self.dir, model, epoch)?;

        let mut enc = Encoder::new(Vec::new());
        enc.header(WAL_MAGIC, WAL_VERSION);
        enc.u64(epoch);
        let mut buf = enc.into_inner();
        for op in pending {
            buf.extend_from_slice(&frame(&record_payload(
                RecordKind::Staged,
                epoch,
                std::slice::from_ref(op),
            )));
        }
        let tmp = self.dir.join("update.wal.tmp");
        let path = self.dir.join("update.wal");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&buf)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &path)?;
        sync_dir(&self.dir)?;
        self.file = OpenOptions::new().read(true).append(true).open(&path)?;
        self.bytes = buf.len() as u64;
        self.committed_ops = 0;
        self.timings.compact.record(started.elapsed().as_micros() as u64);
        Ok(())
    }
}

/// Scans the framed record stream starting at `offset`. Returns the
/// decoded `(kind, epoch, ops)` triples and the byte length of the valid
/// prefix (anything past it is a torn tail for the caller to truncate).
#[allow(clippy::type_complexity)]
fn scan_records(
    bytes: &[u8],
    offset: usize,
) -> Result<(Vec<(u8, u64, Vec<UpdateOp>)>, usize), WalError> {
    let mut records = Vec::new();
    let mut pos = offset;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < 4 {
            break; // torn: not even a length prefix
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        if remaining < 4 + len + 8 {
            break; // torn: the frame never finished hitting the disk
        }
        let payload = &bytes[pos + 4..pos + 4 + len];
        let stored =
            u64::from_le_bytes(bytes[pos + 4 + len..pos + 4 + len + 8].try_into().unwrap());
        if fnv64(payload) != stored {
            return Err(WalError::Corrupt {
                offset: pos as u64,
                detail: format!(
                    "record checksum mismatch (stored {stored:#018x}, computed {:#018x})",
                    fnv64(payload)
                ),
            });
        }
        let mut dec = Decoder::new(payload);
        let kind = dec.u8().map_err(|e| WalError::Corrupt {
            offset: pos as u64,
            detail: format!("record kind unreadable: {e}"),
        })?;
        if kind > 1 {
            return Err(WalError::Corrupt {
                offset: pos as u64,
                detail: format!("unknown record kind {kind}"),
            });
        }
        let epoch = dec.u64().map_err(|e| WalError::Corrupt {
            offset: pos as u64,
            detail: format!("record epoch unreadable: {e}"),
        })?;
        let ops = ops_from_bytes(&payload[1 + 8..]).map_err(|e| WalError::Corrupt {
            offset: pos as u64,
            detail: format!("record ops blob unreadable: {e}"),
        })?;
        records.push((kind, epoch, ops));
        pos += 4 + len + 8;
    }
    Ok((records, pos))
}

/// Replays committed batches over a base model: one overlay fold, one
/// compaction. Deterministic, so the result is bit-identical to a peer
/// that folded the same batches one swap at a time.
pub fn replay(
    base: Arc<TicModel>,
    batches: &[CommittedBatch],
) -> Result<(TicModel, u64), WalError> {
    let mut overlay = ModelOverlay::new(base);
    let mut replayed = 0u64;
    for batch in batches {
        for op in &batch.ops {
            overlay.apply(op.clone()).map_err(WalError::Replay)?;
            replayed += 1;
        }
    }
    Ok((overlay.compact(), replayed))
}

/// The `SYNC <from_epoch>` reply body: the history suffix a stale
/// replica needs to replay its way to `epoch`, plus the donor's
/// acknowledged-but-uncommitted ops so the rejoiner's overlay matches.
#[derive(Clone, Debug, PartialEq)]
pub struct SyncBundle {
    /// The donor's base (compacted) epoch: requests below this cannot be
    /// served — the history was folded away.
    pub base_epoch: u64,
    /// The donor's current epoch (== last record's epoch, or
    /// `base_epoch` with no records).
    pub epoch: u64,
    /// Committed batches with `epoch > from_epoch`, in order.
    pub records: Vec<CommittedBatch>,
    /// The donor's pending (staged, unacked-by-commit) ops.
    pub pending: Vec<UpdateOp>,
}

impl SyncBundle {
    /// Binary form (magic `PSYN`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new(Vec::new());
        enc.header(BUNDLE_MAGIC, BUNDLE_VERSION);
        enc.u64(self.base_epoch);
        enc.u64(self.epoch);
        enc.u64(self.records.len() as u64);
        let mut buf = enc.into_inner();
        for batch in &self.records {
            buf.extend_from_slice(&batch.epoch.to_le_bytes());
            let blob = ops_to_bytes(&batch.ops);
            buf.extend_from_slice(&(blob.len() as u64).to_le_bytes());
            buf.extend_from_slice(&blob);
        }
        let blob = ops_to_bytes(&self.pending);
        buf.extend_from_slice(&(blob.len() as u64).to_le_bytes());
        buf.extend_from_slice(&blob);
        buf
    }

    /// Decodes [`Self::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut dec = Decoder::new(bytes);
        dec.header(BUNDLE_MAGIC, BUNDLE_VERSION)?;
        let base_epoch = dec.u64()?;
        let epoch = dec.u64()?;
        let count = dec.u64()? as usize;
        let mut pos = (4 + 4 + 8 + 8 + 8) as usize;
        let take_blob = |pos: &mut usize| -> Result<Vec<UpdateOp>, DecodeError> {
            if bytes.len() < *pos + 8 {
                return Err(DecodeError::UnexpectedEof {
                    needed: *pos + 8,
                    remaining: bytes.len(),
                });
            }
            let len = u64::from_le_bytes(bytes[*pos..*pos + 8].try_into().unwrap()) as usize;
            *pos += 8;
            if bytes.len() < *pos + len {
                return Err(DecodeError::CorruptLength {
                    declared: len,
                    remaining: bytes.len() - *pos,
                });
            }
            let ops = ops_from_bytes(&bytes[*pos..*pos + len])?;
            *pos += len;
            Ok(ops)
        };
        let mut records = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            if bytes.len() < pos + 8 {
                return Err(DecodeError::UnexpectedEof { needed: pos + 8, remaining: bytes.len() });
            }
            let batch_epoch = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
            pos += 8;
            let ops = take_blob(&mut pos)?;
            records.push(CommittedBatch { epoch: batch_epoch, ops });
        }
        let pending = take_blob(&mut pos)?;
        Ok(Self { base_epoch, epoch, records, pending })
    }

    /// Hex armor for the one-line wire protocol.
    pub fn to_hex(&self) -> String {
        let bytes = self.to_bytes();
        let mut out = String::with_capacity(bytes.len() * 2);
        for b in bytes {
            out.push_str(&format!("{b:02x}"));
        }
        out
    }

    /// Decodes [`Self::to_hex`].
    pub fn from_hex(hex: &str) -> Result<Self, String> {
        if hex.len() % 2 != 0 {
            return Err("sync bundle hex has odd length".to_string());
        }
        let mut bytes = Vec::with_capacity(hex.len() / 2);
        let raw = hex.as_bytes();
        for pair in raw.chunks(2) {
            let hi = (pair[0] as char).to_digit(16).ok_or("bad hex digit in sync bundle")?;
            let lo = (pair[1] as char).to_digit(16).ok_or("bad hex digit in sync bundle")?;
            bytes.push((hi * 16 + lo) as u8);
        }
        Self::from_bytes(&bytes).map_err(|e| format!("sync bundle decode: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pitex-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn ops() -> Vec<UpdateOp> {
        vec![
            UpdateOp::AddUser,
            UpdateOp::AddEdge { src: 0, dst: 7, topics: vec![(0, 0.5)] },
            UpdateOp::DetachTag { tag: 2 },
        ]
    }

    #[test]
    fn fresh_wal_recovers_empty() {
        let dir = tmp_dir("fresh");
        let (wal, rec) = Wal::open(&dir, 1, WalOptions::default()).unwrap();
        assert_eq!(rec.base_epoch, 1);
        assert!(rec.committed.is_empty() && rec.pending.is_empty());
        assert_eq!(rec.truncated_bytes, 0);
        assert!(!wal.should_compact());
        drop(wal);
        // Reopen sees the same fresh state (the header persisted).
        let (_, rec) = Wal::open(&dir, 9, WalOptions::default()).unwrap();
        assert_eq!(rec.base_epoch, 1, "boot epoch comes from the header, not the caller");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn staged_then_commit_round_trips() {
        let dir = tmp_dir("roundtrip");
        let sample = ops();
        {
            let (mut wal, _) = Wal::open(&dir, 1, WalOptions::default()).unwrap();
            for op in &sample {
                wal.append_staged(1, op).unwrap();
            }
            wal.append_commit(2, sample.len() as u64).unwrap();
            wal.append_staged(2, &UpdateOp::AddUser).unwrap();
        }
        let (_, rec) = Wal::open(&dir, 1, WalOptions::default()).unwrap();
        assert_eq!(rec.base_epoch, 1);
        assert_eq!(rec.epoch(), 2);
        assert_eq!(rec.committed, vec![CommittedBatch { epoch: 2, ops: sample }]);
        assert_eq!(rec.pending, vec![UpdateOp::AddUser]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_survivors_kept() {
        let dir = tmp_dir("torn");
        {
            let (mut wal, _) = Wal::open(&dir, 1, WalOptions::default()).unwrap();
            wal.append_staged(1, &UpdateOp::AddUser).unwrap();
            wal.append_commit(2, 1).unwrap();
        }
        let path = dir.join("update.wal");
        let full = std::fs::read(&path).unwrap();
        // Chop mid-frame: the commit record loses its checksum bytes.
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let (_, rec) = Wal::open(&dir, 1, WalOptions::default()).unwrap();
        assert_eq!(rec.truncated_bytes as usize, full.len() - 3 - expected_keep(&full));
        assert!(rec.committed.is_empty(), "the torn commit never happened");
        assert_eq!(rec.pending, vec![UpdateOp::AddUser], "the fsynced staged op survives");
        // The truncation is durable: a third open sees a clean log.
        let (_, rec) = Wal::open(&dir, 1, WalOptions::default()).unwrap();
        assert_eq!(rec.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Byte length of the valid prefix of `full` minus its final record.
    fn expected_keep(full: &[u8]) -> usize {
        let (_, keep) = scan_records(&full[..full.len() - 3], WAL_HEADER_LEN as usize).unwrap();
        keep
    }

    #[test]
    fn mid_record_corruption_fails_loudly() {
        let dir = tmp_dir("corrupt");
        {
            let (mut wal, _) = Wal::open(&dir, 1, WalOptions::default()).unwrap();
            wal.append_staged(1, &UpdateOp::AddUser).unwrap();
            wal.append_commit(2, 1).unwrap();
        }
        let path = dir.join("update.wal");
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte inside the *first* record (mid-file).
        let idx = WAL_HEADER_LEN as usize + 5;
        bytes[idx] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = Wal::open(&dir, 1, WalOptions::default()).unwrap_err();
        assert!(matches!(err, WalError::Corrupt { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_folds_into_snapshot_and_resets_log() {
        let dir = tmp_dir("compact");
        let base = Arc::new(TicModel::paper_example());
        let (mut wal, _) = Wal::open(&dir, 1, WalOptions { max_bytes: 1, max_ops: 1 }).unwrap();
        wal.append_staged(1, &UpdateOp::AddUser).unwrap();
        wal.append_commit(2, 1).unwrap();
        assert!(wal.should_compact());

        let mut overlay = ModelOverlay::new(base.clone());
        overlay.apply(UpdateOp::AddUser).unwrap();
        let folded = overlay.compact();
        wal.compact(&folded, 2, &[UpdateOp::DetachTag { tag: 0 }]).unwrap();
        assert!(!wal.should_compact() || wal.bytes > 1, "ops counter reset");
        assert_eq!(wal.committed_ops(), 0);
        drop(wal);

        let (_, rec) = Wal::open(&dir, 1, WalOptions::default()).unwrap();
        assert_eq!(rec.base_epoch, 2);
        assert!(rec.committed.is_empty());
        assert_eq!(rec.pending, vec![UpdateOp::DetachTag { tag: 0 }]);
        let snap = rec.base_model.expect("base.snap written");
        assert_eq!(snap.graph().num_nodes(), base.graph().num_nodes() + 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_ahead_of_log_skips_covered_batches() {
        // Simulate the crash window: snapshot at epoch 3, log still holds
        // batches for epochs 2 and 3 plus one for epoch 4.
        let dir = tmp_dir("skip");
        let base = Arc::new(TicModel::paper_example());
        {
            let (mut wal, _) = Wal::open(&dir, 1, WalOptions::default()).unwrap();
            wal.append_staged(1, &UpdateOp::AddUser).unwrap();
            wal.append_commit(2, 1).unwrap();
            wal.append_commit(3, 0).unwrap();
            wal.append_staged(3, &UpdateOp::DetachTag { tag: 1 }).unwrap();
            wal.append_commit(4, 1).unwrap();
        }
        let mut overlay = ModelOverlay::new(base);
        overlay.apply(UpdateOp::AddUser).unwrap();
        write_snapshot(&dir, &overlay.compact(), 3).unwrap();

        let (_, rec) = Wal::open(&dir, 1, WalOptions::default()).unwrap();
        assert_eq!(rec.base_epoch, 3);
        assert_eq!(
            rec.committed,
            vec![CommittedBatch { epoch: 4, ops: vec![UpdateOp::DetachTag { tag: 1 }] }]
        );
        assert_eq!(rec.epoch(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_matches_overlay_fold() {
        let base = Arc::new(TicModel::paper_example());
        let batches = vec![
            CommittedBatch { epoch: 2, ops: vec![UpdateOp::AddUser] },
            CommittedBatch {
                epoch: 3,
                ops: vec![UpdateOp::AddEdge { src: 7, dst: 0, topics: vec![(1, 0.3)] }],
            },
        ];
        let (replayed, n) = replay(base.clone(), &batches).unwrap();
        assert_eq!(n, 2);
        let mut overlay = ModelOverlay::new(base);
        for batch in &batches {
            for op in &batch.ops {
                overlay.apply(op.clone()).unwrap();
            }
        }
        let oracle = overlay.compact();
        assert_eq!(
            pitex_model::serial::to_bytes(&replayed),
            pitex_model::serial::to_bytes(&oracle)
        );
    }

    #[test]
    fn replay_rejects_invalid_history() {
        let base = Arc::new(TicModel::paper_example());
        let batches =
            vec![CommittedBatch { epoch: 2, ops: vec![UpdateOp::RemoveEdge { src: 0, dst: 0 }] }];
        assert!(matches!(replay(base, &batches), Err(WalError::Replay(_))));
    }

    #[test]
    fn sync_bundle_round_trips_through_hex() {
        let bundle = SyncBundle {
            base_epoch: 3,
            epoch: 5,
            records: vec![
                CommittedBatch { epoch: 4, ops: ops() },
                CommittedBatch { epoch: 5, ops: vec![] },
            ],
            pending: vec![UpdateOp::AddUser],
        };
        assert_eq!(SyncBundle::from_bytes(&bundle.to_bytes()).unwrap(), bundle);
        assert_eq!(SyncBundle::from_hex(&bundle.to_hex()).unwrap(), bundle);
        assert!(SyncBundle::from_hex("abc").is_err(), "odd length");
        assert!(SyncBundle::from_hex("zz").is_err(), "bad digit");
        assert!(SyncBundle::from_hex("00ff").is_err(), "bad magic");
    }

    #[test]
    fn wal_options_env_overrides() {
        // Serialized via a unique var read-modify-write; from_env reads
        // the live environment so set/remove around the call.
        std::env::set_var("PITEX_WAL_MAX_BYTES", "1234");
        std::env::set_var("PITEX_WAL_MAX_OPS", "7");
        let options = WalOptions::from_env();
        std::env::remove_var("PITEX_WAL_MAX_BYTES");
        std::env::remove_var("PITEX_WAL_MAX_OPS");
        assert_eq!(options.max_bytes, 1234);
        assert_eq!(options.max_ops, 7);
    }
}
