//! Log₂-bucketed latency histograms: the locked single-writer variant the
//! stats paths have always used, and an atomic variant for hot paths that
//! must record without taking any lock (WAL fsyncs, metric registries).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ buckets: one per possible `u64` bit length, plus zero.
pub const NUM_BUCKETS: usize = 65;

/// A fixed-footprint log₂-bucketed histogram for latency percentiles.
///
/// The serving layer's `STATS` endpoint reports p50/p90/p99 service times.
/// Exact percentiles would require storing every sample; instead samples
/// (microseconds, say) land in power-of-two buckets, so any quantile is
/// answered in O(64) with at most a 2× overestimate — plenty for spotting a
/// latency regression, and recording is two instructions on the hot path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// `buckets[b]` counts samples with exactly `b` significant bits
    /// (bucket 0 holds the value 0, bucket 1 holds 1, bucket 2 holds 2–3, …).
    buckets: [u64; NUM_BUCKETS],
    count: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self { buckets: [0; NUM_BUCKETS], count: 0 }
    }

    /// A histogram from raw bucket counts (what [`AtomicHistogram::snapshot`]
    /// produces), so an atomic recorder can be quantiled and wired like any
    /// other histogram.
    pub fn from_buckets(buckets: [u64; NUM_BUCKETS]) -> Self {
        let count = buckets.iter().sum();
        Self { buckets, count }
    }

    /// Records one sample (any non-negative integer unit; pick one and stay
    /// with it — the serving layer uses microseconds).
    pub fn record(&mut self, value: u64) {
        let bucket = 64 - value.leading_zeros() as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The raw bucket counts (`buckets[b]` = samples with `b` significant
    /// bits).
    pub fn buckets(&self) -> &[u64; NUM_BUCKETS] {
        &self.buckets
    }

    /// The value at quantile `q ∈ [0, 1]` (0 when empty). `q = 0.5` is the
    /// median, `q = 1.0` an upper bound on the maximum.
    ///
    /// The quantile's rank is located in its log₂ bucket exactly, then the
    /// value is **linearly interpolated** inside the bucket's `[lower,
    /// upper]` range by the rank's position among the bucket's samples.
    /// Reporting the bucket upper bound instead (the old behaviour) was
    /// wrong by up to 2× whenever the quantile fell early in a wide
    /// bucket; interpolation is exact for ranks at the bucket boundary and
    /// bounded by the sample spacing inside it otherwise. The last rank of
    /// a bucket still maps to the bucket's upper bound, so `q = 1.0`
    /// remains a conservative maximum estimate.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bucket, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= target {
                let lower = bucket_lower_bound(bucket);
                let upper = bucket_upper_bound(bucket);
                let frac = (target - seen) as f64 / n as f64;
                let width = (upper - lower) as f64;
                // Saturating: f64 rounding at bucket 64 can overshoot the
                // integer width by a few ULPs.
                return lower.saturating_add((frac * width).round() as u64).min(upper);
            }
            seen += n;
        }
        u64::MAX
    }

    /// Merges another histogram into this one (parallel reduction).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
    }

    /// An approximate sum of the recorded samples (each sample counted at
    /// its bucket's upper bound, so the estimate is an over-count of at
    /// most 2×). What the Prometheus `_sum` series is exported from, since
    /// the buckets do not retain exact values.
    pub fn approx_sum(&self) -> u64 {
        self.buckets
            .iter()
            .enumerate()
            .map(|(b, &n)| n.saturating_mul(bucket_upper_bound(b).min(u64::MAX / 2)))
            .fold(0u64, u64::saturating_add)
    }

    /// Serializes the non-empty buckets as `bucket:count` pairs joined by
    /// commas (`-` when empty) — a single whitespace-free token, so it fits
    /// a `key=value` field of the serving `STATS` line. A scatter-gather
    /// router reassembles per-shard histograms with
    /// [`from_wire`](Self::from_wire) and [`merge`](Self::merge), which is the only way
    /// to aggregate percentiles correctly (percentiles themselves do not
    /// add).
    pub fn to_wire(&self) -> String {
        if self.count == 0 {
            return "-".to_string();
        }
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| format!("{b}:{n}"))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Parses the [`to_wire`](Self::to_wire) encoding.
    pub fn from_wire(s: &str) -> Result<LatencyHistogram, String> {
        let mut hist = LatencyHistogram::new();
        if s == "-" {
            return Ok(hist);
        }
        for pair in s.split(',') {
            let (bucket, count) =
                pair.split_once(':').ok_or_else(|| format!("bad histogram pair {pair:?}"))?;
            let bucket: usize =
                bucket.parse().map_err(|_| format!("bad histogram bucket {bucket:?}"))?;
            let count: u64 = count.parse().map_err(|_| format!("bad histogram count {count:?}"))?;
            if bucket >= hist.buckets.len() {
                return Err(format!("histogram bucket {bucket} out of range"));
            }
            hist.buckets[bucket] += count;
            hist.count += count;
        }
        Ok(hist)
    }
}

/// The inclusive upper bound of log₂ bucket `b`.
pub(crate) fn bucket_upper_bound(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        64.. => u64::MAX,
        b => (1u64 << b) - 1,
    }
}

/// The inclusive lower bound of log₂ bucket `b` (the smallest value with
/// exactly `b` significant bits).
pub(crate) fn bucket_lower_bound(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        b => 1u64 << (b - 1),
    }
}

/// A [`LatencyHistogram`] whose buckets are relaxed atomics, so concurrent
/// hot paths (worker threads, WAL appenders) record without a lock: one
/// `leading_zeros` and one `fetch_add`.
///
/// Reads ([`snapshot`](Self::snapshot)) are not atomic across buckets — a
/// concurrent recorder may land between two bucket loads — which is fine
/// for monitoring: the snapshot is some valid recent history, never torn
/// within a bucket.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; NUM_BUCKETS],
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    pub fn new() -> Self {
        Self { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }

    /// Records one sample. Lock-free; relaxed ordering (counters carry no
    /// synchronization obligations).
    pub fn record(&self, value: u64) {
        let bucket = 64 - value.leading_zeros() as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// A point-in-time copy as a plain [`LatencyHistogram`] (for quantiles
    /// and the wire encoding).
    pub fn snapshot(&self) -> LatencyHistogram {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        LatencyHistogram::from_buckets(buckets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_histogram_matches_locked_recording() {
        let atomic = AtomicHistogram::new();
        let mut locked = LatencyHistogram::new();
        for v in [0u64, 1, 3, 7, 100, 1000, u64::MAX] {
            atomic.record(v);
            locked.record(v);
        }
        let snap = atomic.snapshot();
        assert_eq!(snap.count(), locked.count());
        assert_eq!(snap.to_wire(), locked.to_wire());
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), locked.quantile(q));
        }
    }

    #[test]
    fn from_buckets_recounts() {
        let mut buckets = [0u64; NUM_BUCKETS];
        buckets[0] = 2;
        buckets[5] = 3;
        let h = LatencyHistogram::from_buckets(buckets);
        assert_eq!(h.count(), 5);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 31);
    }

    /// Exact quantile of a sample set, for pinning the histogram's error.
    fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
        sorted[rank]
    }

    /// What `quantile()` used to return: the upper bound of the bucket the
    /// rank falls in — the 2x-error behaviour the interpolation fixes.
    fn upper_bound_quantile(hist: &LatencyHistogram, q: f64) -> u64 {
        let target = ((q * hist.count() as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (bucket, &n) in hist.buckets().iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_upper_bound(bucket);
            }
        }
        u64::MAX
    }

    #[test]
    fn interpolated_quantiles_track_a_sorted_sample_oracle() {
        let mut state = 0x5eedu64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };

        // Stream A: uniform within each log2 bucket (the interpolation's
        // model holds exactly). Error vs the sorted oracle must be tight —
        // the bucket-upper-bound answer is off by up to 2x on the same
        // stream.
        let mut hist = LatencyHistogram::new();
        let mut samples: Vec<u64> = Vec::with_capacity(20_000);
        for _ in 0..20_000 {
            let bucket = 4 + (next() % 14) as usize; // buckets 4..=17
            let lower = bucket_lower_bound(bucket);
            let v = lower + next() % lower; // uniform in [lower, 2*lower)
            hist.record(v);
            samples.push(v);
        }
        samples.sort_unstable();
        for q in [0.10, 0.25, 0.50, 0.90, 0.99, 0.999] {
            let oracle = oracle_quantile(&samples, q);
            let got = hist.quantile(q);
            let err = (got as f64 - oracle as f64).abs() / oracle as f64;
            assert!(err <= 0.05, "q={q}: interpolated {got} vs oracle {oracle} (err {err:.3})");
        }

        // Stream B: uniform on [1, 100_000) — the top bucket is truncated,
        // so the uniform-within-bucket model is pessimistic there. Even
        // then, interpolation must never be further from the oracle than
        // the old upper-bound answer, and p99 specifically must shed most
        // of the old 2x error (oracle ~99000, old answer 131071).
        let mut hist = LatencyHistogram::new();
        let mut samples: Vec<u64> = Vec::with_capacity(20_000);
        for _ in 0..20_000 {
            let v = 1 + next() % 99_999;
            hist.record(v);
            samples.push(v);
        }
        samples.sort_unstable();
        for q in [0.10, 0.25, 0.50, 0.90, 0.99, 0.999] {
            let oracle = oracle_quantile(&samples, q);
            let got = hist.quantile(q);
            let old = upper_bound_quantile(&hist, q);
            let err = (got as f64 - oracle as f64).abs();
            let old_err = (old as f64 - oracle as f64).abs();
            assert!(err <= old_err, "q={q}: {got} drifted past the old answer {old} ({oracle})");
        }
        let p99 = hist.quantile(0.99) as f64;
        let oracle99 = oracle_quantile(&samples, 0.99) as f64;
        assert!((p99 - oracle99).abs() / oracle99 <= 0.35, "p99 {p99} vs {oracle99}");
        assert!(
            (upper_bound_quantile(&hist, 0.99) as f64 - oracle99) / oracle99 > 0.30,
            "precondition: the old answer really was far off on this stream"
        );

        // q=1.0 stays a conservative upper bound on the true maximum.
        assert!(hist.quantile(1.0) >= *samples.last().unwrap());
    }

    #[test]
    fn quantile_is_monotone_in_q() {
        let mut hist = LatencyHistogram::new();
        for v in [0u64, 1, 2, 5, 9, 17, 100, 5000, 70_000] {
            hist.record(v);
        }
        let mut last = 0;
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let v = hist.quantile(q);
            assert!(v >= last, "quantile must not decrease: q={q} gave {v} after {last}");
            last = v;
        }
    }

    #[test]
    fn approx_sum_bounds_the_true_sum() {
        let mut h = LatencyHistogram::new();
        let samples = [1u64, 3, 7, 100, 1000];
        let true_sum: u64 = samples.iter().sum();
        for v in samples {
            h.record(v);
        }
        assert!(h.approx_sum() >= true_sum);
        assert!(h.approx_sum() < true_sum * 2);
    }
}
