//! Reverse-reachable set sampling (§4).
//!
//! One sample instance picks a target `v` uniformly from `R_W(u)` and grows
//! the *reverse* reachable set of `v`: each in-edge of a reached vertex is
//! kept alive with probability `p(e|W)`. The indicator `1[u ⇝ v]` is 1 iff
//! `u` joins the set, and `Ê_RR = (hits/θ)·|R_W(u)|`.
//!
//! The instance probes every in-edge of every vertex it reaches, including
//! the mass of low-probability fan-in edges around celebrities — the
//! Example 3 pathology (`ENE_RR = O(|E_W(u)|·E[I(v^{in} ⇝ v*|W)])`,
//! Lemma 4). The walk stops as soon as `u` is found (the indicator is
//! already determined).

use crate::bounds::{SampleBudget, SamplingParams};
use crate::estimator::{reachable_positive, Estimate, SpreadEstimator};
use pitex_graph::traverse::BfsScratch;
use pitex_graph::{DiGraph, NodeId};
use pitex_model::EdgeProbs;
use pitex_support::EpochVisited;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Reverse-reachable set spread estimator.
#[derive(Debug)]
pub struct RrSampler {
    visited: EpochVisited,
    frontier: Vec<NodeId>,
    reach_scratch: BfsScratch,
    reach_buf: Vec<NodeId>,
}

impl RrSampler {
    pub fn new(num_nodes: usize) -> Self {
        Self {
            visited: EpochVisited::new(num_nodes),
            frontier: Vec::new(),
            reach_scratch: BfsScratch::new(num_nodes),
            reach_buf: Vec::new(),
        }
    }

    /// One reverse instance rooted at `target`; returns whether `user` was
    /// reached.
    fn run_instance(
        &mut self,
        graph: &DiGraph,
        user: NodeId,
        target: NodeId,
        probs: &mut dyn EdgeProbs,
        rng: &mut StdRng,
        edges_visited: &mut u64,
    ) -> bool {
        if target == user {
            return true;
        }
        self.visited.grow(graph.num_nodes());
        self.visited.reset();
        self.frontier.clear();
        self.visited.insert(target);
        self.frontier.push(target);
        while let Some(v) = self.frontier.pop() {
            for (e, s) in graph.in_edges(v) {
                if self.visited.contains(s) {
                    continue;
                }
                *edges_visited += 1;
                let p = probs.prob(e);
                if p > 0.0 && rng.gen_bool(p.min(1.0)) {
                    if s == user {
                        return true;
                    }
                    self.visited.insert(s);
                    self.frontier.push(s);
                }
            }
        }
        false
    }
}

impl SpreadEstimator for RrSampler {
    fn estimate(
        &mut self,
        graph: &DiGraph,
        user: NodeId,
        probs: &mut dyn EdgeProbs,
        params: &SamplingParams,
    ) -> Estimate {
        reachable_positive(graph, user, probs, &mut self.reach_scratch, &mut self.reach_buf);
        let reachable = self.reach_buf.len();
        if reachable <= 1 {
            return Estimate::isolated();
        }
        // Targets are drawn from a snapshot of R_W(u); the borrow of
        // reach_buf must not alias the instance runner's scratch.
        let targets = std::mem::take(&mut self.reach_buf);
        let mut rng =
            StdRng::seed_from_u64(params.seed ^ (user as u64).wrapping_mul(0xA24B_AED4_963E_E407));
        let lambda = params.lambda();
        let max_iters = params.max_iterations(reachable);

        let mut hits = 0u64;
        let mut edges_visited = 0u64;
        let mut iterations = 0u64;
        while iterations < max_iters {
            let target = targets[rng.gen_range(0..targets.len())];
            if self.run_instance(graph, user, target, probs, &mut rng, &mut edges_visited) {
                hits += 1;
            }
            iterations += 1;
            // Accumulated spread is hits·|R|; the threshold Λ·|R| reduces to
            // hits ≥ Λ.
            if matches!(params.budget, SampleBudget::Adaptive) && hits as f64 >= lambda {
                break;
            }
        }
        self.reach_buf = targets;
        Estimate {
            spread: hits as f64 / iterations as f64 * reachable as f64,
            samples_used: iterations,
            edges_visited,
            reachable,
        }
    }

    fn name(&self) -> &'static str {
        "RR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitex_graph::gen;
    use pitex_model::FixedEdgeProbs;

    fn params_fixed(n: u64) -> SamplingParams {
        SamplingParams::enumeration(0.5, 100.0, 10, 2).with_fixed_budget(n)
    }

    #[test]
    fn certain_path_gives_exact_spread() {
        let g = gen::path(4);
        let mut probs = FixedEdgeProbs::uniform(g.num_edges(), 1.0);
        let mut rr = RrSampler::new(g.num_nodes());
        let est = rr.estimate(&g, 0, &mut probs, &params_fixed(400));
        // Every target is reached with certainty: estimate is exactly |R|.
        assert_eq!(est.spread, 4.0);
        assert_eq!(est.reachable, 4);
    }

    #[test]
    fn isolated_user_short_circuits() {
        let g = gen::path(3);
        let mut probs = FixedEdgeProbs::uniform(g.num_edges(), 0.0);
        let mut rr = RrSampler::new(g.num_nodes());
        let est = rr.estimate(&g, 2, &mut probs, &params_fixed(50));
        assert_eq!(est.spread, 1.0);
    }

    #[test]
    fn star_estimate_converges_to_closed_form() {
        let n = 50usize;
        let g = gen::star_low_impact(n);
        let mut probs = FixedEdgeProbs::uniform(g.num_edges(), 1.0 / n as f64);
        let mut rr = RrSampler::new(g.num_nodes());
        let est = rr.estimate(&g, 0, &mut probs, &params_fixed(60_000));
        assert!((est.spread - 2.0).abs() < 0.15, "got {}", est.spread);
    }

    #[test]
    fn celebrity_reverse_probing_is_expensive() {
        // Example 3: estimating any fan's influence probes the celebrity's
        // full fan-in every time the celebrity joins the reverse set.
        let n = 60usize;
        let g = gen::celebrity(n);
        let fan = (n + 1) as u32;
        let mut probs = pitex_model::FixedEdgeProbs::new(
            (0..g.num_edges() as u32)
                .map(|e| {
                    let (s, _) = g.edge_endpoints(e);
                    if s == 0 {
                        1.0 // celebrity -> follower
                    } else {
                        1.0 / n as f64 // fan -> celebrity
                    }
                })
                .collect(),
        );
        let mut rr = RrSampler::new(g.num_nodes());
        let iters = 400u64;
        let est = rr.estimate(&g, fan, &mut probs, &params_fixed(iters));
        // Reverse sets rooted at followers always include the celebrity and
        // thus probe all n fan edges.
        assert!(
            est.edges_visited as f64 > 0.5 * iters as f64 * n as f64,
            "expected heavy reverse probing, got {}",
            est.edges_visited
        );
    }

    #[test]
    fn hits_scale_to_reachable_size() {
        // Two-node graph with p = 0.5: E[I] = 1.5, |R| = 2.
        let g = gen::path(2);
        let mut probs = FixedEdgeProbs::uniform(1, 0.5);
        let mut rr = RrSampler::new(g.num_nodes());
        let est = rr.estimate(&g, 0, &mut probs, &params_fixed(40_000));
        assert!((est.spread - 1.5).abs() < 0.05, "got {}", est.spread);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = gen::celebrity(20);
        let mut probs = FixedEdgeProbs::uniform(g.num_edges(), 0.3);
        let mut rr = RrSampler::new(g.num_nodes());
        let p = params_fixed(300);
        let a = rr.estimate(&g, 21, &mut probs, &p);
        let b = rr.estimate(&g, 21, &mut probs, &p);
        assert_eq!(a, b);
    }
}
