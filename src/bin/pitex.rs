//! `pitex` — command-line interface for the PITEX library.
//!
//! ```text
//! pitex gen     --profile lastfm [--scale 0.5] --out model.bin
//! pitex stats   --model model.bin
//! pitex index   --model model.bin --out index.bin [--per-vertex 8] [--delay]
//! pitex query   --model model.bin --user 42 --k 3 [--method lazy|mc|rr|tim|exact|lt]
//!               [--index index.bin] [--top 5] [--epsilon 0.7] [--delta 1000]
//! pitex serve   --model model.bin [--port 7411] [--threads 4] [--method lazy]
//! pitex update  --model model.bin --out new.bin (--ops FILE | --op "SET_EDGE 0 1 0:0.9")
//! pitex client  --addr 127.0.0.1:7411 --user 42 --k 3 | --stats [--json] | --shutdown
//!               | --bench | --update "OP…" | --admin epoch|reload
//!               | --trace --user 42 --k 3 | --metrics | --flight
//! pitex shardmap --out cluster.map --replicas "h:1,h:2;h:3,h:4" [--seed 42]
//! pitex router  --map cluster.map [--port 7400]
//! pitex top     --addr 127.0.0.1:7411 [--interval-ms 1000] [--count N] [--json]
//! pitex doctor  --addr 127.0.0.1:7400 [--map cluster.map] [--user N] [--k N]
//! pitex record  --addr 127.0.0.1:7411 (--on | --off | --rotate)
//! pitex replay  --addr 127.0.0.1:7411 (--log capture.pwrk [--verify] | --rate 500) [--json]
//! ```
//!
//! The CLI covers the offline/online lifecycle end-to-end: generate (or
//! later: load) a model, build and persist an index, answer queries, run /
//! exercise the query server, mutate a model offline (`update`) or a
//! running server (`client --update` / `--admin reload`), and scale out:
//! `shardmap` writes the cluster's user-partitioning artifact and `router`
//! serves the same line protocol over many shard servers (`client` pointed
//! at a router works unchanged). `record`/`replay` close the loop on
//! production traffic: capture the arrival stream into a PWRK workload
//! log, replay it open-loop at recorded (or scaled, or synthetic Poisson)
//! pace, verify answers bit-identically, and attribute tail latency to
//! the serving phases.

use pitex::index::serial;
use pitex::live::{ops_from_file_bytes, repair_rr_index};
use pitex::prelude::*;
use pitex::serve::{
    schedule_from_log, CaptureAction, LoadGen, Replay, Response, ServeClient, ServeOptions, Server,
    SyntheticSchedule,
};
use pitex::support::obs::slo::{HealthVerdict, SloStatus};
use pitex::support::obs::timeseries::SeriesRes;
use pitex::support::obs::{format_trace_id, read_log};
use pitex::support::stats::{human_bytes, human_duration};
use std::collections::HashMap;
use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A command failure: either a message for stderr, or a broken stdout pipe
/// (`pitex query | head -1`), which is a *success* — the consumer simply
/// stopped reading.
enum CliError {
    Msg(String),
    Pipe,
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Msg(msg)
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> Self {
        CliError::Msg(msg.to_string())
    }
}

/// `println!` that degrades a broken pipe into [`CliError::Pipe`] instead of
/// panicking (Rust's default `println!` aborts on SIGPIPE-turned-EPIPE).
fn write_stdout(args: std::fmt::Arguments) -> Result<(), CliError> {
    let mut out = std::io::stdout().lock();
    match out.write_fmt(args).and_then(|()| out.write_all(b"\n")) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Err(CliError::Pipe),
        Err(e) => Err(CliError::Msg(format!("writing to stdout: {e}"))),
    }
}

macro_rules! outln {
    ($($arg:tt)*) => {
        write_stdout(format_args!($($arg)*))?
    };
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_opts(rest) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "gen" => cmd_gen(&opts),
        "stats" => cmd_stats(&opts),
        "index" => cmd_index(&opts),
        "query" => cmd_query(&opts),
        "serve" => cmd_serve(&opts),
        "update" => cmd_update(&opts),
        "client" => cmd_client(&opts),
        "shardmap" => cmd_shardmap(&opts),
        "router" => cmd_router(&opts),
        "top" => cmd_top(&opts),
        "doctor" => cmd_doctor(&opts),
        "record" => cmd_record(&opts),
        "replay" => cmd_replay(&opts),
        "help" | "--help" | "-h" => write_stdout(format_args!("{USAGE}")),
        other => Err(CliError::Msg(format!("unknown command {other:?}"))),
    };
    match result {
        // A closed pipe downstream is not an error; exit quietly.
        Ok(()) | Err(CliError::Pipe) => ExitCode::SUCCESS,
        Err(CliError::Msg(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "pitex — personalized social influential tags exploration (SIGMOD'17)

USAGE:
  pitex gen    --profile <lastfm|diggs|dblp|twitter> [--scale F] [--tags N] --out FILE
  pitex stats  --model FILE
  pitex index  --model FILE --out FILE [--per-vertex F] [--index-seed N] [--delay]
  pitex query  --model FILE --user N --k N [--backend NAME] [--index FILE]
               [--explain] [--timeout-us N] [--top N] [--epsilon F] [--delta F] [--seed N]
  pitex serve  --model FILE [--backend NAME] [--index FILE] [--port N] [--threads N]
               [--cache N] [--queue N] [--deadline-ms N] [--epsilon F] [--delta F] [--seed N]
               [--dirty-threshold F] [--no-admin] [--wal DIR]
  pitex update --model FILE --out FILE (--ops FILE | --op \"SET_EDGE 0 1 0:0.9\")
               [--index FILE --index-out FILE [--dirty-threshold F]]
  pitex client --addr HOST:PORT [--binary] (--user N --k N [--timeout-us N] [--repeat N]
               [--backend NAME] [--explain] [--trace]
               | --stats [--json] | --metrics | --flight | --ping | --shutdown
               | --update \"OP...\" | --admin epoch|reload
               | --bench [--clients N] [--requests N] [--user N] [--k N]
                 [--backend NAME] [--pipeline N])
  pitex shardmap (--out FILE --replicas \"A:P,A:P;A:P,A:P\" [--seed N] [--binary]
               | --map FILE [--user N])
  pitex router --map FILE [--port N] [--max-in-flight N] [--idle-conns N]
               [--probe-ms N] [--no-admin]
  pitex top    --addr HOST:PORT [--interval-ms N] [--count N] [--json]
  pitex doctor --addr HOST:PORT [--map FILE] [--user N] [--k N]
  pitex record --addr HOST:PORT (--on | --off | --rotate)
  pitex replay --addr HOST:PORT (--log FILE [--speed F] [--verify]
               | --rate F [--requests N] [--users N] [--zipf F] [--burst N]
                 [--update-every N] [--k N] [--seed N])
               [--conns N] [--trace-every N] [--backend NAME] [--timeout-us N]
               [--binary] [--json]

OBSERVABILITY: `client --trace` runs one traced query and prints its span
          timeline (through a router: `shard.*` spans show the hop);
          `client --metrics` scrapes Prometheus text exposition;
          `client --flight` dumps the flight recorder (admin-gated);
          `top` is a live terminal dashboard over STATS + FLIGHT, with
          rolling sparklines from the SERIES time-series rings
          (`top --json` prints one machine-readable snapshot and exits);
          `replay --json` prints the replay report the same way.
          PITEX_OBS_FLIGHT sizes the ring, PITEX_OBS_SLOW_US sets the
          slow-query threshold (0 = off).

HEALTH:   every server and router keeps rolling time-series of its stats
          fields (PITEX_OBS_TS_TICK_MS per tick; SERIES <field>
          fast|mid|slow dumps a ring) and evaluates SLO burn rates over
          them (PITEX_SLO_* thresholds; HEALTH answers ok|warn|page with
          the tripping window + burn). The same listener answers HTTP:
          GET /metrics, /health (503 on page), /series?field=NAME.
          `doctor` probes every hop (--map adds each shard replica),
          ranks the burning objectives, and traces the worst hop to name
          the slow phase. PITEX_OBS_STALL_US=N injects an N-us execute
          stall (fault drill).

CAPTURE:  PITEX_OBS_CAPTURE=FILE makes a server (or router) sample
          admitted requests into a PWRK workload log;
          PITEX_OBS_CAPTURE_RATE=N keeps 1-in-N. `record` toggles or
          rotates the log at runtime (admin-gated). `replay --log`
          re-issues a recording OPEN-LOOP — latency measured from each
          request's scheduled arrival, so stalls show up in the tail
          instead of being coordinated-omitted away — with `--verify`
          asserting bit-identical answers; `replay --rate` synthesizes
          Poisson arrivals with Zipf user skew. Both print a per-phase
          (queue/plan/cache/execute/net) latency attribution from a
          traced sample (every `--trace-every`-th request).

BACKENDS (--backend / --method): lazy (default), mc, rr, tim, exact, lt,
         indexest / indexest+ / delaymat (require --index),
         auto — the cost-based planner picks per query (an --index widens
         its options); --explain prints the decision it made.

SHARDMAP: --replicas lists shards separated by ';', each shard its replica
          addresses separated by ','. A router is a drop-in single server:
          point `pitex client` at it unchanged.

WIRE:     `client --binary` / `replay --binary` (or PITEX_CLIENT_BINARY=1)
          speak the pipelined PFRM binary frame protocol; servers and
          routers auto-detect text, binary and HTTP per connection on one
          port. The router->shard hop is binary by default
          (PITEX_CLUSTER_BINARY=0 reverts it). `client --bench
          --binary --pipeline N` keeps N queries in flight per connection.

WAL:      `serve --wal DIR` persists every acknowledged UPDATE to an
          epoch-stamped log (fsynced before the ack); a restart replays it
          and resumes at the pre-crash epoch. PITEX_WAL_MAX_BYTES /
          PITEX_WAL_MAX_OPS bound the log before it compacts into DIR's
          base snapshot.

UPDATE OPS: ADD_EDGE s d z:p[,z:p..] | REMOVE_EDGE s d | SET_EDGE s d z:p[,..]
            | ATTACH_TAG w z:p[,..] | DETACH_TAG w | ADD_USER  ('-' = empty row)";

type Opts = HashMap<String, String>;

/// Flags that take no value.
const BOOL_FLAGS: [&str; 16] = [
    "delay", "stats", "ping", "shutdown", "bench", "json", "no-admin", "binary", "explain",
    "trace", "metrics", "flight", "verify", "on", "off", "rotate",
];

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(key) = flag.strip_prefix("--") else {
            return Err(format!("expected --flag, found {flag:?}"));
        };
        if BOOL_FLAGS.contains(&key) {
            opts.insert(key.to_string(), "true".to_string());
            continue;
        }
        let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        opts.insert(key.to_string(), value.clone());
    }
    Ok(opts)
}

fn want<'a>(opts: &'a Opts, key: &str) -> Result<&'a str, String> {
    opts.get(key).map(|s| s.as_str()).ok_or_else(|| format!("missing --{key}"))
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("cannot parse {what} from {s:?}"))
}

fn load_model(opts: &Opts) -> Result<TicModel, String> {
    let path = want(opts, "model")?;
    pitex::model::serial::load(path).map_err(|e| format!("loading {path}: {e}"))
}

fn cmd_gen(opts: &Opts) -> Result<(), CliError> {
    let profile_name = want(opts, "profile")?;
    let mut profile = match profile_name {
        "lastfm" => DatasetProfile::lastfm_like(),
        "diggs" => DatasetProfile::diggs_like(),
        "dblp" => DatasetProfile::dblp_like(),
        "twitter" => DatasetProfile::twitter_like(),
        other => return Err(format!("unknown profile {other:?}").into()),
    };
    if let Some(scale) = opts.get("scale") {
        profile = profile.scaled(parse(scale, "--scale")?);
    }
    if let Some(tags) = opts.get("tags") {
        profile = profile.with_tags(parse(tags, "--tags")?);
    }
    let out = want(opts, "out")?;
    let t = Instant::now();
    let model = profile.generate();
    pitex::model::serial::save(&model, out).map_err(|e| e.to_string())?;
    outln!(
        "generated {}: {} users, {} edges, {} tags, {} topics -> {out} in {}",
        profile.name,
        model.graph().num_nodes(),
        model.graph().num_edges(),
        model.num_tags(),
        model.num_topics(),
        human_duration(t.elapsed())
    );
    Ok(())
}

fn cmd_stats(opts: &Opts) -> Result<(), CliError> {
    let model = load_model(opts)?;
    let stats = pitex::datasets::DatasetStats::compute(want(opts, "model")?, &model);
    outln!("{}", pitex::datasets::DatasetStats::header());
    outln!("{stats}");
    outln!("model heap footprint: {}", human_bytes(model.heap_bytes()));
    Ok(())
}

fn cmd_index(opts: &Opts) -> Result<(), CliError> {
    let model = load_model(opts)?;
    let out = want(opts, "out")?;
    let per_vertex: f64 =
        opts.get("per-vertex").map(|s| parse(s, "--per-vertex")).transpose()?.unwrap_or(8.0);
    // The index sampling seed. `serve`/`update` repair the index under the
    // same `--index-seed` flag and default, so repairs stay bit-identical
    // to rebuilds without the user threading a value through.
    let index_seed: u64 =
        opts.get("index-seed").map(|s| parse(s, "--index-seed")).transpose()?.unwrap_or(42);
    let budget = IndexBudget::PerVertex(per_vertex);
    let t = Instant::now();
    let bytes = if opts.contains_key("delay") {
        let index = DelayMatIndex::build(&model, budget, index_seed);
        serial::delay_index_to_bytes(&index)
    } else {
        let index = RrIndex::build(&model, budget, index_seed);
        serial::rr_index_to_bytes(&index)
    };
    std::fs::write(out, &bytes).map_err(|e| e.to_string())?;
    outln!(
        "built {} index: {} -> {out} in {}",
        if opts.contains_key("delay") { "delay-materialized" } else { "RR-Graph" },
        human_bytes(bytes.len() as u64),
        human_duration(t.elapsed())
    );
    Ok(())
}

fn cmd_query(opts: &Opts) -> Result<(), CliError> {
    let user: u32 = parse(want(opts, "user")?, "--user")?;
    let k: usize = parse(want(opts, "k")?, "--k")?;
    if k == 0 {
        return Err("--k must be at least 1".into());
    }
    let top: usize = opts.get("top").map(|s| parse(s, "--top")).transpose()?.unwrap_or(1);
    let explain = opts.contains_key("explain");
    let timeout_us: Option<u64> =
        opts.get("timeout-us").map(|s| parse(s, "--timeout-us")).transpose()?;
    let budget = timeout_us.map(Duration::from_micros);
    let handle = build_handle(opts)?;
    let nodes = handle.model().graph().num_nodes();
    if (user as usize) >= nodes {
        return Err(format!("user {user} out of range (|V| = {nodes})").into());
    }

    let t = Instant::now();
    if top <= 1 {
        let (result, decision) = if handle.backend() == EngineBackend::Auto {
            let (result, decision) = handle.query_auto(user, k, budget);
            (result, Some(decision))
        } else {
            (handle.engine().query(user, k), None)
        };
        let backend = decision.as_ref().map(|d| d.chosen).unwrap_or_else(|| handle.backend());
        outln!(
            "W* = {} with spread {:.4} [{} backend, {}]",
            result.tags,
            result.spread,
            backend.label(),
            human_duration(t.elapsed())
        );
        outln!(
            "evaluated {} sets, {} infeasible, {} subtrees pruned, {} samples, {} edge probes",
            result.stats.tag_sets_evaluated,
            result.stats.tag_sets_infeasible,
            result.stats.partials_pruned,
            result.stats.samples_used,
            result.stats.edges_visited
        );
        if explain {
            print_plan(&handle, user, k, decision, result.stats.elapsed)?;
        }
    } else {
        // A ranking resolves the backend once (per-candidate replanning
        // would let the ranking mix estimators mid-list).
        let decision =
            (handle.backend() == EngineBackend::Auto).then(|| handle.plan(user, k, budget));
        let backend = decision.as_ref().map(|d| d.chosen).unwrap_or_else(|| handle.backend());
        let mut engine = handle.engine_for(backend).map_err(|e| CliError::Msg(e.to_string()))?;
        let ranking = engine.query_top_n(user, k, top);
        outln!(
            "top-{top} tag sets [{} backend, {}]:",
            backend.label(),
            human_duration(t.elapsed())
        );
        for (rank, (tags, spread)) in ranking.iter().enumerate() {
            outln!("  {:>2}. {tags}  spread {spread:.4}", rank + 1);
        }
        if explain {
            print_plan(&handle, user, k, decision, t.elapsed())?;
        }
    }
    Ok(())
}

/// `--explain`: print the planner's decision next to the answer. A forced
/// backend gets a trivial decision (what the planner would have predicted
/// for it); `auto` shows the real one, rejected alternatives included.
fn print_plan(
    handle: &EngineHandle,
    user: u32,
    k: usize,
    decision: Option<pitex::core::PlanDecision>,
    actual: Duration,
) -> Result<(), CliError> {
    let decision = decision.unwrap_or_else(|| pitex::core::PlanDecision {
        chosen: handle.backend(),
        predicted_us: handle.predicted_us(handle.backend(), user, k),
        degraded: false,
        rejected: Vec::new(),
    });
    outln!(
        "plan: {} (predicted {}us, actual {}us{})",
        decision.chosen.label(),
        decision.predicted_us,
        actual.as_micros(),
        if decision.degraded { ", DEGRADED to fit the deadline" } else { "" }
    );
    for rejected in &decision.rejected {
        let predicted = rejected
            .predicted_us
            .map(|us| format!("predicted {us}us"))
            .unwrap_or_else(|| "not costable".to_string());
        outln!(
            "  rejected {}: {} ({})",
            rejected.backend.label(),
            predicted,
            rejected.reason.as_str()
        );
    }
    Ok(())
}

/// Shared by `query` and `serve`: accuracy/seed flags → engine config.
fn config_from_opts(opts: &Opts) -> Result<PitexConfig, String> {
    Ok(PitexConfig {
        epsilon: opts.get("epsilon").map(|s| parse(s, "--epsilon")).transpose()?.unwrap_or(0.7),
        delta: opts.get("delta").map(|s| parse(s, "--delta")).transpose()?.unwrap_or(1000.0),
        seed: opts.get("seed").map(|s| parse(s, "--seed")).transpose()?.unwrap_or(42),
        strategy: ExplorationStrategy::BestEffort,
    })
}

/// Shared by `query`, `client` and `serve`: resolves the `--backend` (or
/// legacy `--method`) name; an unknown name lists every valid method from
/// the backend registry.
fn backend_from_opts(opts: &Opts) -> Result<EngineBackend, String> {
    let method =
        opts.get("backend").or_else(|| opts.get("method")).map(|s| s.as_str()).unwrap_or("lazy");
    EngineBackend::parse(method).ok_or_else(|| {
        format!("unknown method {method:?} (valid: {})", pitex::core::registry::method_names())
    })
}

/// Shared by `query` and `serve`: loads `--model` and (only when the
/// backend can use it) `--index` into an owned engine handle. A fixed
/// index backend *requires* `--index`; `auto` *accepts* one of either kind
/// (sniffed by magic) to widen the planner's options.
fn build_handle(opts: &Opts) -> Result<EngineHandle, CliError> {
    let backend = backend_from_opts(opts)?;
    let config = config_from_opts(opts)?;
    let model = Arc::new(load_model(opts)?);

    let mut rr_index = None;
    let mut delay_index = None;
    if backend.needs_rr_index() || backend.needs_delay_index() {
        let path = opts
            .get("index")
            .ok_or_else(|| format!("{} needs --index FILE", backend.cli_name()))?;
        let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
        if backend.needs_delay_index() {
            delay_index =
                Some(Arc::new(serial::delay_index_from_bytes(&bytes).map_err(|e| e.to_string())?));
        } else {
            rr_index =
                Some(Arc::new(serial::rr_index_from_bytes(&bytes).map_err(|e| e.to_string())?));
        }
    } else if backend == EngineBackend::Auto {
        if let Some(path) = opts.get("index") {
            let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
            match serial::index_kind(&bytes) {
                Some(serial::IndexKind::Rr) => {
                    rr_index = Some(Arc::new(
                        serial::rr_index_from_bytes(&bytes).map_err(|e| e.to_string())?,
                    ));
                }
                Some(serial::IndexKind::Delay) => {
                    delay_index = Some(Arc::new(
                        serial::delay_index_from_bytes(&bytes).map_err(|e| e.to_string())?,
                    ));
                }
                None => return Err(format!("{path} is not a pitex index artifact").into()),
            }
        }
    }
    EngineHandle::with_indexes(model, backend, rr_index, delay_index, config)
        .map_err(|e| CliError::Msg(e.to_string()))
}

/// Shared by `serve` and `update`: index-repair tuning. The sample budget
/// and seed are *not* flags here — they travel inside the index artifact
/// (written by `pitex index`), so repair always reproduces the exact
/// streams the index was built from.
fn repair_from_opts(opts: &Opts) -> Result<RepairOptions, String> {
    let mut repair = RepairOptions::default().with_env();
    if let Some(t) = opts.get("dirty-threshold") {
        repair.dirty_threshold = parse(t, "--dirty-threshold")?;
    }
    Ok(repair)
}

fn cmd_serve(opts: &Opts) -> Result<(), CliError> {
    let handle = build_handle(opts)?;
    let backend = handle.backend();
    let port: u16 = opts.get("port").map(|s| parse(s, "--port")).transpose()?.unwrap_or(0);
    let options = ServeOptions {
        workers: opts.get("threads").map(|s| parse(s, "--threads")).transpose()?.unwrap_or(4),
        queue_depth: opts.get("queue").map(|s| parse(s, "--queue")).transpose()?.unwrap_or(64),
        default_deadline: Duration::from_millis(
            opts.get("deadline-ms")
                .map(|s| parse(s, "--deadline-ms"))
                .transpose()?
                .unwrap_or(5_000),
        ),
        cache_capacity: opts.get("cache").map(|s| parse(s, "--cache")).transpose()?.unwrap_or(1024),
        admin: !opts.contains_key("no-admin"),
        repair: repair_from_opts(opts)?,
        wal: opts.get("wal").map(std::path::PathBuf::from),
        capture: None,    // read PITEX_OBS_CAPTURE from the environment
        event_loop: None, // read PITEX_SERVE_EVENT_LOOP from the environment
    };
    let server = Server::spawn(handle, ("127.0.0.1", port), options.clone())
        .map_err(|e| format!("binding 127.0.0.1:{port}: {e}"))?;
    // One parseable line for scripts (stdout is line-buffered: flushed now),
    // then block until a client sends SHUTDOWN.
    outln!(
        "pitex_serve listening on {} [{} backend, {} workers, queue {}, cache {}, deadline {}{}]",
        server.addr(),
        backend.label(),
        options.workers.max(1),
        options.queue_depth,
        options.cache_capacity,
        human_duration(options.default_deadline),
        match &options.wal {
            Some(dir) => format!(", wal {}", dir.display()),
            None => String::new(),
        }
    );
    server.join().map_err(|_| "a server thread panicked".to_string())?;
    outln!("pitex_serve stopped");
    Ok(())
}

/// `pitex update`: apply an ops file (binary `PLOG` or text, see `--help`)
/// or a single inline op to a model offline, writing the compacted model —
/// and, when `--index`/`--index-out` are given, incrementally repairing
/// the RR-Graph index to match.
fn cmd_update(opts: &Opts) -> Result<(), CliError> {
    // Flag validation up front, before anything is written to disk.
    if opts.contains_key("index-out") && !opts.contains_key("index") {
        return Err("--index-out needs --index FILE to repair from".into());
    }
    if opts.contains_key("index") && !opts.contains_key("index-out") {
        return Err("--index needs --index-out FILE for the repaired index".into());
    }
    let model = Arc::new(load_model(opts)?);
    let out = want(opts, "out")?;
    let ops = match (opts.get("ops"), opts.get("op")) {
        (Some(path), None) => {
            let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
            ops_from_file_bytes(&bytes).map_err(|e| format!("{path}: {e}"))?
        }
        (None, Some(text)) => vec![UpdateOp::parse_text(text)?],
        _ => return Err("update needs exactly one of --ops FILE or --op \"TEXT\"".into()),
    };

    // Load and decode the old index *before* writing anything: a bad
    // --index file must not leave a mutated model beside a stale index.
    let old_index = match opts.get("index") {
        Some(index_path) => {
            let bytes =
                std::fs::read(index_path).map_err(|e| format!("reading {index_path}: {e}"))?;
            Some(serial::rr_index_from_bytes(&bytes).map_err(|e| format!("{index_path}: {e}"))?)
        }
        None => None,
    };

    let mut overlay = ModelOverlay::new(model.clone());
    let count = ops.len();
    overlay.apply_all(ops).map_err(|(i, e)| format!("op {} of {count} rejected: {e}", i + 1))?;
    let t = Instant::now();
    let new_model = overlay.compact();
    pitex::model::serial::save(&new_model, out).map_err(|e| e.to_string())?;
    outln!(
        "applied {count} ops: {} users, {} edges, {} tags -> {out} in {}",
        new_model.graph().num_nodes(),
        new_model.graph().num_edges(),
        new_model.num_tags(),
        human_duration(t.elapsed())
    );

    if let Some(old_index) = old_index {
        let index_out = want(opts, "index-out")?;
        let repair = repair_from_opts(opts)?;
        let t = Instant::now();
        let (repaired, report) = repair_rr_index(&old_index, &model, &new_model, &repair);
        let bytes = serial::rr_index_to_bytes(&repaired);
        std::fs::write(index_out, &bytes).map_err(|e| e.to_string())?;
        if report.full_rebuild {
            outln!(
                "index rebuilt in full ({}): {} graphs, {} -> {index_out} in {}",
                report.reason.as_deref().unwrap_or("unknown"),
                report.theta,
                human_bytes(bytes.len() as u64),
                human_duration(t.elapsed())
            );
        } else {
            outln!(
                "index repaired: {} of {} graphs resampled ({} reused) -> {index_out} in {}",
                report.resampled,
                report.theta,
                report.reused,
                human_duration(t.elapsed())
            );
        }
    }
    Ok(())
}

/// `pitex shardmap`: write the cluster's user-partitioning artifact from a
/// `--replicas` spec, or inspect an existing map (optionally answering
/// which shard owns `--user`).
fn cmd_shardmap(opts: &Opts) -> Result<(), CliError> {
    if let Some(path) = opts.get("map") {
        let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
        let map = ShardMap::from_file_bytes(&bytes).map_err(|e| format!("{path}: {e}"))?;
        if let Some(user) = opts.get("user") {
            let user: u32 = parse(user, "--user")?;
            let shard = map.shard_of(user);
            outln!("user {user} -> shard {shard} [{}]", map.replicas(shard).join(" "));
        } else {
            outln!("{}", map.to_text().trim_end());
        }
        return Ok(());
    }
    let spec = want(opts, "replicas")?;
    let shards: Vec<Vec<String>> = spec
        .split(';')
        .map(|shard| {
            shard
                .split(',')
                .map(|addr| addr.trim().to_string())
                .filter(|addr| !addr.is_empty())
                .collect()
        })
        .collect();
    let seed: u64 = opts.get("seed").map(|s| parse(s, "--seed")).transpose()?.unwrap_or(42);
    let map = ShardMap::with_seed(shards, seed)?;
    let out = want(opts, "out")?;
    let bytes =
        if opts.contains_key("binary") { map.to_bytes() } else { map.to_text().into_bytes() };
    std::fs::write(out, &bytes).map_err(|e| e.to_string())?;
    outln!(
        "wrote shard map: {} shards, {} replicas, seed {} -> {out}",
        map.num_shards(),
        map.num_replicas(),
        map.seed()
    );
    Ok(())
}

/// `pitex router`: serve the `pitex serve` line protocol over the shards
/// of a map file — scatter-gather front-end, health-gated failover, and
/// the cluster-wide reload barrier.
fn cmd_router(opts: &Opts) -> Result<(), CliError> {
    let path = want(opts, "map")?;
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    let map = ShardMap::from_file_bytes(&bytes).map_err(|e| format!("{path}: {e}"))?;
    let port: u16 = opts.get("port").map(|s| parse(s, "--port")).transpose()?.unwrap_or(0);
    let mut options = RouterOptions::default().with_env();
    if let Some(v) = opts.get("max-in-flight") {
        options.pool.max_in_flight = parse(v, "--max-in-flight")?;
    }
    if let Some(v) = opts.get("idle-conns") {
        options.pool.idle_per_replica = parse(v, "--idle-conns")?;
    }
    if let Some(v) = opts.get("probe-ms") {
        options.probe_interval = Duration::from_millis(parse(v, "--probe-ms")?);
    }
    options.admin = !opts.contains_key("no-admin");
    let shards = map.num_shards();
    let replicas = map.num_replicas();
    let router = Router::spawn(map, ("127.0.0.1", port), options)
        .map_err(|e| format!("binding 127.0.0.1:{port}: {e}"))?;
    // One parseable line for scripts, then block until SHUTDOWN.
    outln!("pitex_router listening on {} [{shards} shards, {replicas} replicas]", router.addr());
    router.join().map_err(|_| "a router thread panicked".to_string())?;
    outln!("pitex_router stopped");
    Ok(())
}

/// `pitex top` — a `watch`-style terminal dashboard over `STATS` and
/// `FLIGHT`. Works identically against a single server and a router (where
/// the stats are the cluster-wide merge). `--count N` renders N frames and
/// exits (N=0, the default, runs until interrupted); frames after the
/// first start with an ANSI clear so the view updates in place. `--json`
/// prints a single machine-readable snapshot (one JSON object, numbers
/// unquoted — `pitex top --json | jq .qps`) and exits.
fn cmd_top(opts: &Opts) -> Result<(), CliError> {
    let addr = want(opts, "addr")?;
    let interval_ms: u64 =
        opts.get("interval-ms").map(|s| parse(s, "--interval-ms")).transpose()?.unwrap_or(1000);
    let count: u64 = opts.get("count").map(|s| parse(s, "--count")).transpose()?.unwrap_or(0);
    let mut client =
        ServeClient::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    if opts.contains_key("json") {
        let stats = client.stats().map_err(|e| format!("STATS failed: {e}"))?;
        outln!("{}", stats_json(&stats));
        return Ok(());
    }
    let mut frame = 0u64;
    loop {
        let stats = client.stats().map_err(|e| format!("STATS failed: {e}"))?;
        // FLIGHT is admin-gated; a denial just leaves the panel out.
        let flight = client.flight().ok();
        if frame > 0 {
            outln!("\x1b[2J\x1b[H");
        }
        let get = |key: &str| stats.get(key).unwrap_or("-").to_string();
        outln!("pitex top — {addr}  epoch {}  backend {}", get("epoch"), get("backend"));
        if stats.get("shards").is_some() {
            outln!(
                "cluster: {} shards, {}/{} replicas up, {} failovers, {} probes ({} failed)",
                get("shards"),
                get("replicas_up"),
                get("replicas"),
                get("router_failovers"),
                get("router_probes"),
                get("router_probe_failures")
            );
        }
        outln!(
            "requests {}  ok {}  busy {}  deadline {}  errors {}  qps {}",
            get("requests"),
            get("ok"),
            get("busy"),
            get("deadline"),
            get("errors"),
            get("qps")
        );
        outln!(
            "latency p50 {}us  p90 {}us  p99 {}us  mean {}us",
            get("lat_p50_us"),
            get("lat_p90_us"),
            get("lat_p99_us"),
            get("lat_mean_us")
        );
        // Rolling sparklines from the SERIES rings. A router answers with
        // its own fields (router_*); a shard with the serving set. Absent
        // rings (server younger than one tick) just omit the panel.
        let cluster = stats.get("shards").is_some();
        let (req_field, p99_field) = if cluster {
            ("router_requests", "router_lat_p99_us")
        } else {
            ("requests", "lat_p99_us")
        };
        for (label, field) in [("req/tick", req_field), ("p99 us  ", p99_field)] {
            let points = client
                .series(field, Some(SeriesRes::Fast))
                .ok()
                .and_then(|reply| reply.scalar_points());
            if let Some(points) = points.filter(|p| !p.is_empty()) {
                let tail = &points[points.len().saturating_sub(30)..];
                outln!("{label}  {}  now {}", sparkline(tail), tail.last().unwrap());
            }
        }
        outln!(
            "cache: {} entries, {} hits / {} misses (rate {})",
            get("cache_len"),
            get("cache_hits"),
            get("cache_misses"),
            get("cache_hit_rate")
        );
        if let Some(reply) = &flight {
            outln!(
                "flight: {} recorded, {} slow — most recent first:",
                reply.recorded,
                reply.slow_count
            );
            for e in reply.entries.iter().rev().take(15) {
                outln!(
                    "  {} {:<7} user {:>6} k {} [{}] {} in {}us",
                    format_trace_id(e.trace_id),
                    e.verb,
                    e.user,
                    e.k,
                    e.backend,
                    e.outcome,
                    e.us
                );
            }
        }
        frame += 1;
        if count != 0 && frame >= count {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(interval_ms.max(50)));
    }
}

/// Renders values as a one-line unicode sparkline, scaled to the max.
fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().fold(0.0f64, f64::max);
    values
        .iter()
        .map(|v| {
            if max <= 0.0 || !v.is_finite() {
                BARS[0]
            } else {
                BARS[(((v / max) * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// One probed hop of a `doctor` run: the front door, or (with `--map`) a
/// shard replica probed directly.
struct DoctorHop {
    label: String,
    addr: String,
    verdict: Result<HealthVerdict, String>,
}

/// `pitex doctor` — one-shot triage across every hop of a deployment.
/// Pulls `HEALTH` from the front door (against a router that is already
/// the merged cluster verdict) and, with `--map`, from every shard replica
/// directly; prints each hop's verdict, ranks the burning objectives
/// worst-first, and runs one traced query against the worst hop so the
/// diagnosis ends with *which phase* is slow there — a stalled shard shows
/// `execute` at the top. `--user`/`--k` pick the traced query (choose a
/// cold key: a cache hit skips the execute phase being diagnosed).
fn cmd_doctor(opts: &Opts) -> Result<(), CliError> {
    let addr = want(opts, "addr")?;
    let user: u32 = opts.get("user").map(|s| parse(s, "--user")).transpose()?.unwrap_or(0);
    let k: usize = opts.get("k").map(|s| parse(s, "--k")).transpose()?.unwrap_or(2);

    let mut targets: Vec<(String, String)> = vec![("front".to_string(), addr.to_string())];
    if let Some(path) = opts.get("map") {
        let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
        let map = ShardMap::from_file_bytes(&bytes).map_err(|e| format!("{path}: {e}"))?;
        for shard in 0..map.num_shards() {
            for replica in map.replicas(shard) {
                targets.push((format!("shard{shard}"), replica.clone()));
            }
        }
    }

    let hops: Vec<DoctorHop> = targets
        .into_iter()
        .map(|(label, addr)| {
            let verdict = ServeClient::connect(&addr)
                .and_then(|mut client| client.health())
                .map_err(|e| e.to_string());
            DoctorHop { label, addr, verdict }
        })
        .collect();

    outln!("doctor — {} hop(s) probed", hops.len());
    for hop in &hops {
        match &hop.verdict {
            Ok(v) if v.status == SloStatus::Ok => {
                outln!("  {:<8} {:<21} ok", hop.label, hop.addr);
            }
            Ok(v) => {
                outln!(
                    "  {:<8} {:<21} {}  worst={}",
                    hop.label,
                    hop.addr,
                    v.status.name(),
                    v.worst
                );
            }
            Err(e) => outln!("  {:<8} {:<21} UNREACHABLE ({e})", hop.label, hop.addr),
        }
    }

    // Rank every objective across every hop, worst burn first. The front
    // door's merged verdict already carries per-origin evidence (shardN /
    // router), so even without --map the diagnosis names the component.
    let mut burning: Vec<(String, &pitex::support::obs::slo::SloVerdict)> = Vec::new();
    for hop in &hops {
        if let Ok(verdict) = &hop.verdict {
            for slo in &verdict.slos {
                if slo.status != SloStatus::Ok {
                    let whom = if slo.origin == "self" {
                        hop.label.clone()
                    } else {
                        format!("{}/{}", hop.label, slo.origin)
                    };
                    burning.push((whom, slo));
                }
            }
        }
    }
    burning.sort_by(|a, b| {
        b.1.status
            .cmp(&a.1.status)
            .then(b.1.burn.partial_cmp(&a.1.burn).unwrap_or(std::cmp::Ordering::Equal))
    });
    if burning.is_empty() && hops.iter().all(|h| h.verdict.is_ok()) {
        outln!("diagnosis: no objective is burning — all hops ok");
        return Ok(());
    }
    outln!("diagnosis:");
    for (rank, (whom, slo)) in burning.iter().enumerate() {
        outln!(
            "  {}. {whom} {}: {} ({} window, burn {:.2}, field {})",
            rank + 1,
            slo.name,
            slo.status.name(),
            slo.window,
            slo.burn,
            slo.field
        );
    }
    for hop in hops.iter().filter(|h| h.verdict.is_err()) {
        outln!("  ({} at {} is unreachable — start there)", hop.label, hop.addr);
    }

    // Phase attribution: trace one query against the worst reachable hop
    // (prefer a directly-probed shard over the front door — its spans name
    // the shard's own phases without the hop overhead in the way).
    let worst = hops
        .iter()
        .filter_map(|h| h.verdict.as_ref().ok().map(|v| (h, v)))
        .filter(|(_, v)| v.status != SloStatus::Ok)
        .max_by(|a, b| {
            a.1.status
                .cmp(&b.1.status)
                .then_with(|| (a.0.label != "front").cmp(&(b.0.label != "front")))
        });
    if let Some((hop, _)) = worst {
        let traced = ServeClient::connect(&hop.addr)
            .and_then(|mut client| client.trace(user, k, None, None, None));
        match traced {
            Ok(reply) => {
                let mut spans = reply.spans.clone();
                spans.sort_by_key(|span| std::cmp::Reverse(span.dur_us));
                outln!("slowest phases at {} ({}), one traced query:", hop.label, hop.addr);
                for span in spans.iter().take(6) {
                    outln!("  {:>9}us  {}", span.dur_us, span.name);
                }
            }
            Err(e) => outln!("(could not trace {} at {}: {e})", hop.label, hop.addr),
        }
    }
    Ok(())
}

/// `pitex record`: control a server's (or router's) PWRK workload
/// recorder over the admin `CAPTURE` verb. The target process must have
/// been started with `PITEX_OBS_CAPTURE=FILE`; `--rotate` renames the
/// live log aside (`FILE.1`, `FILE.2`, …) and starts a fresh one — the
/// rotated file is what `pitex replay --log` wants.
fn cmd_record(opts: &Opts) -> Result<(), CliError> {
    let addr = want(opts, "addr")?;
    let action =
        match (opts.contains_key("on"), opts.contains_key("off"), opts.contains_key("rotate")) {
            (true, false, false) => CaptureAction::On,
            (false, true, false) => CaptureAction::Off,
            (false, false, true) => CaptureAction::Rotate,
            _ => return Err("record needs exactly one of --on | --off | --rotate".into()),
        };
    let mut client =
        ServeClient::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    let (enabled, recorded, dropped) =
        client.capture(action).map_err(|e| format!("capture failed: {e}"))?;
    outln!(
        "capture {}: {recorded} recorded, {dropped} dropped",
        if enabled { "on" } else { "off" }
    );
    Ok(())
}

/// `pitex replay`: drive a server (or router) open-loop from a PWRK
/// recording (`--log`, recorded pace scaled by `--speed`) or a synthetic
/// Poisson/Zipf schedule (`--rate`), print the latency-attribution
/// report, and — under `--log --verify` — exit nonzero unless every
/// compared answer is bit-identical to the recording.
fn cmd_replay(opts: &Opts) -> Result<(), CliError> {
    let addr = want(opts, "addr")?;
    let backend_override: Option<EngineBackend> =
        match opts.get("backend").or_else(|| opts.get("method")) {
            Some(_) => Some(backend_from_opts(opts)?),
            None => None,
        };
    let verify = opts.contains_key("verify");
    let items = if let Some(path) = opts.get("log") {
        let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
        let log = read_log(&bytes).map_err(|e| format!("{path}: {e}"))?;
        if log.truncated_bytes > 0 {
            eprintln!(
                "note: {path} ends in a torn record ({} trailing bytes ignored)",
                log.truncated_bytes
            );
        }
        let speed: f64 = opts.get("speed").map(|s| parse(s, "--speed")).transpose()?.unwrap_or(1.0);
        schedule_from_log(&log, speed)
    } else if let Some(rate) = opts.get("rate") {
        if verify {
            return Err("--verify needs --log FILE (a recording to compare against)".into());
        }
        let defaults = SyntheticSchedule::default();
        SyntheticSchedule {
            rate: parse(rate, "--rate")?,
            requests: opts
                .get("requests")
                .map(|s| parse(s, "--requests"))
                .transpose()?
                .unwrap_or(defaults.requests),
            users: opts.get("users").map(|s| parse(s, "--users")).transpose()?.unwrap_or(64),
            zipf: opts.get("zipf").map(|s| parse(s, "--zipf")).transpose()?.unwrap_or(1.0),
            k: opts.get("k").map(|s| parse(s, "--k")).transpose()?.unwrap_or(2),
            burst: opts.get("burst").map(|s| parse(s, "--burst")).transpose()?.unwrap_or(0),
            update_every: opts
                .get("update-every")
                .map(|s| parse(s, "--update-every"))
                .transpose()?
                .unwrap_or(0),
            backend: backend_override,
            timeout_us: opts.get("timeout-us").map(|s| parse(s, "--timeout-us")).transpose()?,
            seed: opts
                .get("seed")
                .map(|s| parse(s, "--seed"))
                .transpose()?
                .unwrap_or(defaults.seed),
        }
        .build()
    } else {
        return Err("replay needs --log FILE or --rate F".into());
    };
    if items.is_empty() {
        return Err("nothing to replay (the schedule is empty)".into());
    }
    let replay = Replay {
        conns: opts.get("conns").map(|s| parse(s, "--conns")).transpose()?.unwrap_or(4),
        verify,
        trace_every: opts
            .get("trace-every")
            .map(|s| parse(s, "--trace-every"))
            .transpose()?
            .unwrap_or(16),
        binary: binary_wire(opts),
    };
    let report = replay.run(addr, &items).map_err(|e| format!("replay failed: {e}"))?;
    if opts.contains_key("json") {
        outln!("{}", replay_json(&report));
    } else {
        outln!("{}", report.render().trim_end());
    }
    if report.mismatches > 0 {
        return Err(format!(
            "{} of {} verified replies diverged from the recording",
            report.mismatches, report.verified
        )
        .into());
    }
    Ok(())
}

/// Renders a [`ReplayReport`] as one JSON object — the machine-readable
/// twin of [`ReplayReport::render`], mirroring `top --json`: headline
/// counters unquoted, open-loop latency percentiles, the verify verdict,
/// and per-phase p50/p99 from the traced sample
/// (`pitex replay ... --json | jq '.phases.execute.p99_us'`).
fn replay_json(report: &pitex::serve::ReplayReport) -> String {
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"scheduled\":{},\"sent\":{},\"ok\":{},\"cached\":{},\"busy\":{},\"errors\":{},\
         \"elapsed_ms\":{},\"qps\":{:.1},",
        report.scheduled,
        report.sent,
        report.ok,
        report.cached,
        report.busy,
        report.errors,
        report.elapsed.as_millis(),
        report.qps(),
    ));
    out.push_str(&format!(
        "\"latency\":{{\"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"max_us\":{}}},",
        report.latency.quantile(0.50),
        report.latency.quantile(0.90),
        report.latency.quantile(0.99),
        report.latency.quantile(1.0),
    ));
    out.push_str(&format!(
        "\"verified\":{},\"mismatches\":{},\"mismatch_examples\":[{}],",
        report.verified,
        report.mismatches,
        report
            .mismatch_examples
            .iter()
            .map(|e| format!("\"{}\"", json_escape(e)))
            .collect::<Vec<_>>()
            .join(","),
    ));
    out.push_str("\"phases\":{");
    let phases: Vec<String> = report
        .phases
        .iter()
        .map(|(name, hist)| {
            format!(
                "\"{}\":{{\"p50_us\":{},\"p99_us\":{}}}",
                json_escape(name),
                hist.quantile(0.50),
                hist.quantile(0.99)
            )
        })
        .collect();
    out.push_str(&phases.join(","));
    out.push_str("}}");
    out
}

/// Renders a `STATS` reply as one JSON object. Numeric values stay
/// unquoted so `jq '.qps'` and friends work directly; shared by
/// `client --stats --json` and `top --json`.
fn stats_json(stats: &pitex::serve::StatsReply) -> String {
    let fields: Vec<String> = stats
        .iter()
        .map(|(key, value)| {
            let is_number = value.parse::<f64>().is_ok_and(f64::is_finite);
            if is_number {
                format!("\"{}\":{}", json_escape(key), value)
            } else {
                format!("\"{}\":\"{}\"", json_escape(key), json_escape(value))
            }
        })
        .collect();
    format!("{{{}}}", fields.join(","))
}

/// Minimal JSON string escaping for `--stats --json` values.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Whether a serving-side command should speak the `PFRM` binary frames:
/// the `--binary` flag, or `PITEX_CLIENT_BINARY` (any value but `0`).
fn binary_wire(opts: &Opts) -> bool {
    opts.contains_key("binary")
        || std::env::var("PITEX_CLIENT_BINARY").map(|v| v != "0").unwrap_or(false)
}

fn cmd_client(opts: &Opts) -> Result<(), CliError> {
    let addr = want(opts, "addr")?;
    let binary = binary_wire(opts);
    let connect = || {
        ServeClient::connect_with(addr, None, binary)
            .map_err(|e| format!("connecting to {addr}: {e}"))
    };

    if opts.contains_key("ping") {
        connect()?.ping().map_err(|e| e.to_string())?;
        outln!("PONG");
        return Ok(());
    }
    if opts.contains_key("stats") {
        let stats = connect()?.stats().map_err(|e| e.to_string())?;
        if opts.contains_key("json") {
            outln!("{}", stats_json(&stats));
        } else {
            for (key, value) in stats.iter() {
                outln!("{key}={value}");
            }
        }
        return Ok(());
    }
    if opts.contains_key("metrics") {
        let text = connect()?.metrics().map_err(|e| e.to_string())?;
        outln!("{}", text.trim_end());
        return Ok(());
    }
    if opts.contains_key("flight") {
        let reply = connect()?.flight().map_err(|e| format!("flight dump failed: {e}"))?;
        outln!("flight: {} recorded, {} slow", reply.recorded, reply.slow_count);
        let print_entries = |entries: &[pitex::serve::FlightWireEntry]| -> Result<(), CliError> {
            for e in entries {
                outln!(
                    "  {} {:<7} user {:>6} k {} [{}] {} in {}us",
                    format_trace_id(e.trace_id),
                    e.verb,
                    e.user,
                    e.k,
                    e.backend,
                    e.outcome,
                    e.us
                );
            }
            Ok(())
        };
        print_entries(&reply.entries)?;
        if !reply.slow.is_empty() {
            outln!("slow queries (over PITEX_OBS_SLOW_US):");
            print_entries(&reply.slow)?;
        }
        return Ok(());
    }
    if let Some(text) = opts.get("update") {
        let op = UpdateOp::parse_text(text)?;
        let (epoch, pending) =
            connect()?.update(op).map_err(|e| format!("update rejected: {e}"))?;
        outln!("staged (epoch {epoch}, {pending} pending; RELOAD to apply)");
        return Ok(());
    }
    if let Some(verb) = opts.get("admin") {
        match verb.as_str() {
            "epoch" => {
                let epoch = connect()?.epoch().map_err(|e| e.to_string())?;
                outln!("epoch {epoch}");
            }
            "reload" => {
                let r = connect()?.reload().map_err(|e| format!("reload failed: {e}"))?;
                if r.folded == 0 {
                    outln!("nothing pending (epoch {})", r.epoch);
                } else if r.full {
                    outln!(
                        "reloaded to epoch {}: {} ops folded, index rebuilt in full ({} graphs)",
                        r.epoch,
                        r.folded,
                        r.resampled
                    );
                } else {
                    outln!(
                        "reloaded to epoch {}: {} ops folded, {} graphs resampled, {} reused",
                        r.epoch,
                        r.folded,
                        r.resampled,
                        r.reused
                    );
                }
            }
            other => return Err(format!("unknown --admin verb {other:?} (epoch|reload)").into()),
        }
        return Ok(());
    }
    if opts.contains_key("shutdown") {
        connect()?.shutdown_server().map_err(|e| e.to_string())?;
        outln!("server shutting down");
        return Ok(());
    }
    // An explicit per-request backend override (absent = server's default;
    // `auto` asks the server-side planner).
    let backend_override: Option<EngineBackend> =
        match opts.get("backend").or_else(|| opts.get("method")) {
            Some(_) => Some(backend_from_opts(opts)?),
            None => None,
        };
    if opts.contains_key("bench") {
        let gen = LoadGen {
            clients: opts.get("clients").map(|s| parse(s, "--clients")).transpose()?.unwrap_or(4),
            requests_per_client: opts
                .get("requests")
                .map(|s| parse(s, "--requests"))
                .transpose()?
                .unwrap_or(64),
            user: opts.get("user").map(|s| parse(s, "--user")).transpose()?.unwrap_or(0),
            k: opts.get("k").map(|s| parse(s, "--k")).transpose()?.unwrap_or(2),
            timeout_us: opts.get("timeout-us").map(|s| parse(s, "--timeout-us")).transpose()?,
            backend: backend_override,
            binary,
            pipeline: opts
                .get("pipeline")
                .map(|s| parse(s, "--pipeline"))
                .transpose()?
                .unwrap_or(1),
        };
        let report = gen.run(addr).map_err(|e| format!("load generation: {e}"))?;
        outln!(
            "closed loop: {} clients x {} requests in {}",
            gen.clients.max(1),
            gen.requests_per_client,
            human_duration(report.elapsed)
        );
        outln!(
            "  ok {} (cached {}), busy {}, errors {} -> {:.1} queries/s",
            report.ok,
            report.cached,
            report.busy,
            report.errors,
            report.qps()
        );
        outln!(
            "  client-side latency: mean {:.1}us, min {:.1}us, max {:.1}us, p50 {}us, p99 {}us",
            report.latency_us.mean(),
            report.latency_us.min(),
            report.latency_us.max(),
            report.latency_hist.quantile(0.50),
            report.latency_hist.quantile(0.99)
        );
        outln!(
            "  note: closed-loop percentiles understate tails under stalls \
             (coordinated omission); for open-loop tails use `pitex replay --rate`"
        );
        return Ok(());
    }

    // Plain query mode.
    let user: u32 = parse(want(opts, "user")?, "--user")?;
    let k: usize = parse(want(opts, "k")?, "--k")?;
    let repeat: usize = opts.get("repeat").map(|s| parse(s, "--repeat")).transpose()?.unwrap_or(1);
    let timeout_us: Option<u64> =
        opts.get("timeout-us").map(|s| parse(s, "--timeout-us")).transpose()?;
    let mut client = connect()?;
    if opts.contains_key("trace") {
        let reply = client
            .trace(user, k, timeout_us, backend_override, None)
            .map_err(|e| format!("trace failed: {e}"))?;
        let tags = TagSet::new(reply.tags.clone());
        outln!(
            "trace {} — W* = {tags} with spread {:.4} [user {}, k {}, {} in {}us]",
            format_trace_id(reply.trace_id),
            reply.spread,
            reply.user,
            reply.k,
            if reply.cached { "cache hit" } else { "computed" },
            reply.us
        );
        for span in &reply.spans {
            outln!("  {:>9}us  {:>9}us  {}", span.start_us, span.dur_us, span.name);
        }
        return Ok(());
    }
    if opts.contains_key("explain") {
        let reply = client
            .explain(user, k, timeout_us, backend_override)
            .map_err(|e| format!("explain failed: {e}"))?;
        let tags = TagSet::new(reply.tags.clone());
        outln!(
            "W* = {tags} with spread {:.4} [user {}, k {}, {} backend in {}us]",
            reply.spread,
            reply.user,
            reply.k,
            reply.backend.label(),
            reply.us
        );
        outln!(
            "plan: {} (predicted {}us, actual {}us{})",
            reply.backend.label(),
            reply.predicted_us,
            reply.actual_us,
            if reply.degraded { ", DEGRADED to fit the deadline" } else { "" }
        );
        for rejected in &reply.rejected {
            let predicted = rejected
                .predicted_us
                .map(|us| format!("predicted {us}us"))
                .unwrap_or_else(|| "not costable".to_string());
            outln!(
                "  rejected {}: {} ({})",
                rejected.backend.label(),
                predicted,
                rejected.reason.as_str()
            );
        }
        return Ok(());
    }
    for _ in 0..repeat.max(1) {
        let response = match (timeout_us, backend_override) {
            (_, Some(backend)) => client.query_with_backend(user, k, timeout_us, backend),
            (Some(t), None) => client.query_with_timeout(user, k, t),
            (None, None) => client.query(user, k),
        }
        .map_err(|e| e.to_string())?;
        match response {
            Response::Ok(reply) => {
                let tags = TagSet::new(reply.tags.clone());
                outln!(
                    "W* = {tags} with spread {:.4} [user {}, k {}, {} in {}us]",
                    reply.spread,
                    reply.user,
                    reply.k,
                    if reply.cached { "cache hit" } else { "computed" },
                    reply.us
                );
            }
            Response::Busy => return Err("server is busy (queue full)".into()),
            Response::Err { code, message } => {
                return Err(format!("server error {}: {message}", code.as_str()).into())
            }
            other => return Err(format!("unexpected reply: {other:?}").into()),
        }
    }
    Ok(())
}
