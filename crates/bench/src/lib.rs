//! Shared experiment harness for the PITEX evaluation (§7).
//!
//! Every bench target under `benches/` reproduces one table or figure of the
//! paper and prints the same rows/series the paper plots. The harness keys
//! its work off environment variables so the whole suite finishes on a
//! laptop by default while remaining scalable:
//!
//! * `PITEX_SCALE` — multiplies the per-dataset default scales (default 1;
//!   the built-in defaults already shrink dblp/twitter, see
//!   [`BenchEnv::profiles`]);
//! * `PITEX_QUERIES` — queries per configuration (default 5; the paper
//!   averages 100);
//! * `PITEX_INDEX_C` — RR-Graphs per vertex for index construction
//!   (default 8; `theoretical` budgets are impractical, see DESIGN.md);
//! * `PITEX_SEED` — master seed (default 42).

use pitex_core::{ExplorationStrategy, PitexConfig, PitexEngine, PitexResult};
use pitex_datasets::{DatasetProfile, UserGroup, UserGroups};
use pitex_index::{DelayMatIndex, IndexBudget, RrIndex};
use pitex_model::TicModel;
use pitex_support::{OnlineStats, Timer};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Experiment-wide settings resolved from the environment.
#[derive(Clone, Copy, Debug)]
pub struct BenchEnv {
    pub scale: f64,
    pub queries: usize,
    pub index_per_vertex: f64,
    pub seed: u64,
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

impl BenchEnv {
    pub fn from_env() -> Self {
        Self {
            scale: env_f64("PITEX_SCALE", 1.0),
            queries: env_usize("PITEX_QUERIES", 3),
            index_per_vertex: env_f64("PITEX_INDEX_C", 8.0),
            seed: env_usize("PITEX_SEED", 42) as u64,
        }
    }

    /// The four profiles at bench-default scales. The paper-relative scale
    /// factors (1, 0.2, 0.01, 0.002) keep each figure in laptop-minutes;
    /// `PITEX_SCALE` multiplies them. Tag vocabularies of the two big
    /// stand-ins shrink so `C(|Ω|, 3)` stays tractable for the *online*
    /// methods the figures include (documented in EXPERIMENTS.md).
    pub fn profiles(&self) -> Vec<DatasetProfile> {
        let clamp = |f: f64| f.clamp(1e-6, 1.0);
        vec![
            DatasetProfile::lastfm_like().scaled(clamp(1.0 * self.scale)),
            DatasetProfile::diggs_like().scaled(clamp(0.05 * self.scale)),
            DatasetProfile::dblp_like().scaled(clamp(0.002 * self.scale)).with_tags(50),
            DatasetProfile::twitter_like().scaled(clamp(0.002 * self.scale)).with_tags(80),
        ]
    }

    /// A smaller profile set for the online-sampling-heavy figures.
    pub fn small_profiles(&self) -> Vec<DatasetProfile> {
        let clamp = |f: f64| f.clamp(1e-6, 1.0);
        vec![
            DatasetProfile::lastfm_like().scaled(clamp(0.5 * self.scale)),
            DatasetProfile::diggs_like().scaled(clamp(0.03 * self.scale)),
            DatasetProfile::dblp_like().scaled(clamp(0.0015 * self.scale)).with_tags(40),
            DatasetProfile::twitter_like().scaled(clamp(0.001 * self.scale)).with_tags(50),
        ]
    }

    pub fn index_budget(&self) -> IndexBudget {
        IndexBudget::PerVertex(self.index_per_vertex)
    }
}

/// A generated dataset plus its query-user buckets.
pub struct PreparedDataset {
    pub profile: DatasetProfile,
    pub model: TicModel,
    pub groups: UserGroups,
}

/// Generates a profile and buckets its users.
pub fn prepare(profile: DatasetProfile) -> PreparedDataset {
    let model = profile.generate();
    let groups = UserGroups::from_graph(model.graph());
    PreparedDataset { profile, model, groups }
}

/// The two index artifacts with their construction times (Table 3).
pub struct Indexes {
    pub rr: RrIndex,
    pub rr_build_secs: f64,
    pub delay: DelayMatIndex,
    pub delay_build_secs: f64,
}

/// Builds both index flavours.
pub fn build_indexes(model: &TicModel, budget: IndexBudget, seed: u64) -> Indexes {
    let t = Timer::start();
    let rr = RrIndex::build(model, budget, seed);
    let rr_build_secs = t.seconds();
    let t = Timer::start();
    let delay = DelayMatIndex::build(model, budget, seed);
    let delay_build_secs = t.seconds();
    Indexes { rr, rr_build_secs, delay, delay_build_secs }
}

/// Every method of the §7 comparison, in the paper's plotting order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    Rr,
    Mc,
    Lazy,
    Tim,
    IndexEst,
    IndexEstPlus,
    DelayMat,
}

impl Method {
    pub const ALL: [Method; 7] = [
        Method::Rr,
        Method::Mc,
        Method::Lazy,
        Method::Tim,
        Method::IndexEst,
        Method::IndexEstPlus,
        Method::DelayMat,
    ];

    /// The methods compared after Fig. 7/8 ("we only compare Lazy with the
    /// other offline solutions in the remaining part of this section").
    pub const OFFLINE_PLUS_LAZY: [Method; 4] =
        [Method::Lazy, Method::IndexEst, Method::IndexEstPlus, Method::DelayMat];

    /// The online sampling methods (Figs. 6 and 13).
    pub const ONLINE: [Method; 3] = [Method::Rr, Method::Mc, Method::Lazy];

    pub fn label(self) -> &'static str {
        match self {
            Method::Rr => "RR",
            Method::Mc => "MC",
            Method::Lazy => "LAZY",
            Method::Tim => "TIM",
            Method::IndexEst => "INDEXEST",
            Method::IndexEstPlus => "INDEXEST+",
            Method::DelayMat => "DELAYMAT",
        }
    }

    pub fn needs_index(self) -> bool {
        matches!(self, Method::IndexEst | Method::IndexEstPlus | Method::DelayMat)
    }

    /// Builds an engine for this method.
    pub fn engine<'a>(
        self,
        model: &'a TicModel,
        indexes: Option<&'a Indexes>,
        config: PitexConfig,
    ) -> PitexEngine<'a> {
        match self {
            Method::Rr => PitexEngine::with_rr(model, config),
            Method::Mc => PitexEngine::with_mc(model, config),
            Method::Lazy => PitexEngine::with_lazy(model, config),
            Method::Tim => PitexEngine::with_tim(model, config),
            Method::IndexEst => {
                PitexEngine::with_index(model, &indexes.expect("index required").rr, config)
            }
            Method::IndexEstPlus => {
                PitexEngine::with_index_plus(model, &indexes.expect("index required").rr, config)
            }
            Method::DelayMat => {
                PitexEngine::with_delay(model, &indexes.expect("index required").delay, config)
            }
        }
    }
}

/// Averaged outcome of a query batch.
#[derive(Clone, Copy, Debug)]
pub struct BatchOutcome {
    pub time: OnlineStats,
    pub spread: OnlineStats,
    pub edges_visited: OnlineStats,
}

/// Runs `k`-tag PITEX queries for every user in `users` and averages.
pub fn run_batch(
    method: Method,
    model: &TicModel,
    indexes: Option<&Indexes>,
    users: &[u32],
    k: usize,
    config: PitexConfig,
) -> BatchOutcome {
    let mut engine = method.engine(model, indexes, config);
    let mut time = OnlineStats::new();
    let mut spread = OnlineStats::new();
    let mut edges = OnlineStats::new();
    for &u in users {
        let timer = Timer::start();
        let result: PitexResult = engine.query(u, k);
        time.push(timer.seconds());
        spread.push(result.spread);
        edges.push(result.stats.edges_visited as f64);
    }
    BatchOutcome { time, spread, edges_visited: edges }
}

/// Draws the default mid-group query users for a dataset.
pub fn default_queries(data: &PreparedDataset, env: &BenchEnv, group: UserGroup) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(env.seed ^ 0xBEEF);
    data.groups.sample(group, env.queries, &mut rng)
}

/// The paper's default engine configuration (ε = 0.7, δ = 1000,
/// best-effort exploration — §7.3 notes all reported approaches use it).
pub fn default_config(seed: u64) -> PitexConfig {
    PitexConfig { epsilon: 0.7, delta: 1000.0, seed, strategy: ExplorationStrategy::BestEffort }
}

/// Prints a figure banner.
pub fn banner(title: &str, detail: &str) {
    println!();
    println!("================================================================");
    println!("{title}");
    println!("{detail}");
    println!("================================================================");
}

/// One measured cell of a "per user group" figure (Figs. 7, 8, 13).
pub struct GroupFigureRow {
    pub dataset: &'static str,
    pub group: UserGroup,
    pub method: Method,
    pub outcome: BatchOutcome,
}

/// Runs `methods` over every profile × user group; one query batch each.
/// Indexes are built once per dataset when any method needs them.
pub fn group_figure(
    env: &BenchEnv,
    methods: &[Method],
    profiles: Vec<DatasetProfile>,
    k: usize,
) -> Vec<GroupFigureRow> {
    let mut rows = Vec::new();
    let needs_index = methods.iter().any(|m| m.needs_index());
    for profile in profiles {
        let name = profile.name;
        eprintln!("[prepare] {name} ({} nodes)", profile.num_nodes);
        let data = prepare(profile);
        let indexes = needs_index.then(|| build_indexes(&data.model, env.index_budget(), env.seed));
        for group in UserGroup::ALL {
            let users = default_queries(&data, env, group);
            for &method in methods {
                let outcome = run_batch(
                    method,
                    &data.model,
                    indexes.as_ref(),
                    &users,
                    k,
                    default_config(env.seed),
                );
                eprintln!(
                    "[done] {name}/{}/{}: {:.4}s avg",
                    group.label(),
                    method.label(),
                    outcome.time.mean()
                );
                rows.push(GroupFigureRow { dataset: name, group, method, outcome });
            }
        }
    }
    rows
}

/// One measured cell of a parameter sweep (Figs. 9–12, 14).
pub struct SweepRow {
    pub dataset: &'static str,
    pub value: f64,
    pub method: Method,
    pub outcome: BatchOutcome,
}

/// Sweeps a query-time parameter (ε, δ or k) over the mid user group.
/// `apply` mutates the engine config (or chooses k) per value.
pub fn param_sweep(
    env: &BenchEnv,
    methods: &[Method],
    profiles: Vec<DatasetProfile>,
    values: &[f64],
    mut apply: impl FnMut(&mut PitexConfig, &mut usize, f64),
) -> Vec<SweepRow> {
    let mut rows = Vec::new();
    let needs_index = methods.iter().any(|m| m.needs_index());
    for profile in profiles {
        let name = profile.name;
        eprintln!("[prepare] {name} ({} nodes)", profile.num_nodes);
        let data = prepare(profile);
        let indexes = needs_index.then(|| build_indexes(&data.model, env.index_budget(), env.seed));
        let users = default_queries(&data, env, UserGroup::Mid);
        for &value in values {
            for &method in methods {
                let mut config = default_config(env.seed);
                let mut k = 3usize;
                apply(&mut config, &mut k, value);
                let outcome = run_batch(method, &data.model, indexes.as_ref(), &users, k, config);
                eprintln!(
                    "[done] {name}/{value}/{}: {:.4}s avg",
                    method.label(),
                    outcome.time.mean()
                );
                rows.push(SweepRow { dataset: name, value, method, outcome });
            }
        }
    }
    rows
}

/// Prints a group-figure table with one metric column per method.
pub fn print_group_table(
    rows: &[GroupFigureRow],
    methods: &[Method],
    metric: impl Fn(&BatchOutcome) -> f64,
    metric_name: &str,
) {
    let mut datasets: Vec<&'static str> = rows.iter().map(|r| r.dataset).collect();
    datasets.dedup();
    for dataset in datasets {
        println!();
        println!("--- {dataset}: {metric_name} ---");
        print!("{:<8}", "group");
        for m in methods {
            print!(" {:>12}", m.label());
        }
        println!();
        for group in UserGroup::ALL {
            print!("{:<8}", group.label());
            for &m in methods {
                let cell = rows
                    .iter()
                    .find(|r| r.dataset == dataset && r.group == group && r.method == m)
                    .map(|r| metric(&r.outcome))
                    .unwrap_or(f64::NAN);
                print!(" {:>12.6}", cell);
            }
            println!();
        }
    }
}

/// Prints a sweep table with one metric column per method.
pub fn print_sweep_table(
    rows: &[SweepRow],
    methods: &[Method],
    param_name: &str,
    metric: impl Fn(&BatchOutcome) -> f64,
    metric_name: &str,
) {
    let mut datasets: Vec<&'static str> = rows.iter().map(|r| r.dataset).collect();
    datasets.dedup();
    for dataset in datasets {
        println!();
        println!("--- {dataset}: {metric_name} vs {param_name} ---");
        print!("{:<10}", param_name);
        for m in methods {
            print!(" {:>12}", m.label());
        }
        println!();
        let mut values: Vec<f64> =
            rows.iter().filter(|r| r.dataset == dataset).map(|r| r.value).collect();
        values.dedup();
        for value in values {
            print!("{:<10}", value);
            for &m in methods {
                let cell = rows
                    .iter()
                    .find(|r| r.dataset == dataset && r.value == value && r.method == m)
                    .map(|r| metric(&r.outcome))
                    .unwrap_or(f64::NAN);
                print!(" {:>12.6}", cell);
            }
            println!();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults_are_sane() {
        let env = BenchEnv { scale: 1.0, queries: 5, index_per_vertex: 8.0, seed: 42 };
        let profiles = env.profiles();
        assert_eq!(profiles.len(), 4);
        assert_eq!(profiles[0].num_nodes, 1_300);
        assert!(profiles[2].num_nodes <= 5_000);
    }

    #[test]
    fn batch_runs_all_methods_on_a_tiny_dataset() {
        let env = BenchEnv { scale: 1.0, queries: 2, index_per_vertex: 4.0, seed: 1 };
        let data = prepare(DatasetProfile::lastfm_like().scaled(0.1));
        let indexes = build_indexes(&data.model, env.index_budget(), env.seed);
        let users = default_queries(&data, &env, UserGroup::Mid);
        for method in Method::ALL {
            let out =
                run_batch(method, &data.model, Some(&indexes), &users, 2, default_config(env.seed));
            assert_eq!(out.time.count(), 2, "{}", method.label());
            assert!(out.spread.mean() >= 0.0);
        }
    }
}
