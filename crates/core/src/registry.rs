//! The backend registry — the **single** place that knows how to construct
//! every spread estimator, what artifacts each needs, and how each behaves
//! under cache invalidation and planning.
//!
//! Before this module existed, the same nine-way backend dispatch lived in
//! three places (the CLI, [`crate::EngineHandle`], and the serve layer's
//! cache-invalidation policy), each free to drift from the others. The
//! registry collapses them: one [`BackendSpec`] per estimator describes its
//! wire name, artifact requirement ([`ArtifactNeed`]), cache-invalidation
//! scope ([`CacheScope`]), planner tier ([`Plannability`]) and construction
//! — and every layer reads the same table. The planner
//! ([`crate::plan::Planner`]) chooses *among* these specs; nothing outside
//! this module and `core::plan` should ever match over the full backend
//! list again.

use crate::backends::EngineBackend;
use crate::engine::PitexConfig;
use crate::tim::TimEstimator;
use pitex_index::{DelayMatEstimator, DelayMatIndex, IndexEstimator, IndexPlusEstimator, RrIndex};
use pitex_model::TicModel;
use pitex_sampling::{
    ExactEstimator, LazySampler, LtSampler, McSampler, RrSampler, SpreadEstimator,
};

/// Which prebuilt artifact a backend needs before it can be constructed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArtifactNeed {
    /// Model only — constructible anywhere.
    None,
    /// A prebuilt [`RrIndex`].
    RrIndex,
    /// A prebuilt [`DelayMatIndex`].
    DelayIndex,
}

/// How a snapshot swap must treat cached answers computed by this backend.
///
/// Per-user invalidation is applied only where staleness is provable from
/// locality: EXACT answers change only for affected users; the forward
/// samplers (MC, LAZY) are seeded per `(params, user)` and only ever probe
/// out-edges of vertices forward-reachable from the user, so an unaffected
/// user replays bit-identically; the RR-index estimators additionally drift
/// for members of resampled graphs (their RNG streams diverge after the
/// first mutated probe). LT is *not* scopable: its per-vertex weight
/// normalizer sums **all** in-edges of every contacted vertex, so an
/// estimate can depend on an edge whose source the user never reaches.
/// RR/TIM sampling draws global targets per query — estimates anywhere can
/// move. Those clear outright, as does DELAYMAT (its counters are rebuilt
/// wholesale).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheScope {
    /// Only users whose true answer can change (reverse-reachability set).
    AffectedUsers,
    /// Affected users ∪ members of resampled RR-Graphs.
    AffectedPlusDirty,
    /// Every cached answer of this backend.
    Everything,
}

/// Whether `backend=auto` may select this estimator, and in which tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Plannability {
    /// Carries the paper's `(1−ε)/(1+ε)` guarantee — the planner's normal
    /// candidate pool.
    Accurate,
    /// No accuracy guarantee (the TIM baseline): only chosen when the
    /// deadline cannot fit any accurate backend.
    Fallback,
    /// Answers a *different* question (LT propagation instead of IC) — the
    /// planner never substitutes it.
    Excluded,
}

/// The shared immutable state an estimator is built over.
pub struct EngineParts<'a> {
    pub model: &'a TicModel,
    pub rr_index: Option<&'a RrIndex>,
    pub delay_index: Option<&'a DelayMatIndex>,
    pub config: PitexConfig,
}

/// Error returned when a backend is asked for without the index artifact it
/// needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MissingIndexError {
    backend: EngineBackend,
}

impl MissingIndexError {
    /// The backend that could not be constructed.
    pub fn backend(&self) -> EngineBackend {
        self.backend
    }
}

impl std::fmt::Display for MissingIndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "backend {} needs a prebuilt {} index",
            self.backend.label(),
            if self.backend.needs_delay_index() { "delay-materialized" } else { "RR-Graph" }
        )
    }
}

impl std::error::Error for MissingIndexError {}

/// Everything one backend knows about itself. Object-safe: the registry is
/// a table of `&'static dyn BackendSpec`.
pub trait BackendSpec: Send + Sync {
    /// The enum tag this spec describes.
    fn backend(&self) -> EngineBackend;

    /// CLI / wire-protocol method name.
    fn cli_name(&self) -> &'static str;

    /// Display label matching the paper's plots.
    fn label(&self) -> &'static str;

    /// The prebuilt artifact this backend requires.
    fn artifact(&self) -> ArtifactNeed {
        ArtifactNeed::None
    }

    /// Cache-invalidation scope after a snapshot swap.
    fn cache_scope(&self) -> CacheScope;

    /// Planner tier for `backend=auto`.
    fn plannability(&self) -> Plannability {
        Plannability::Accurate
    }

    /// Model-free construction for a graph of `n` vertices (edge
    /// probabilities arrive later through [`pitex_model::EdgeProbs`]).
    /// `None` for backends that need a model or an index at build time.
    fn build_for_nodes(&self, _n: usize) -> Option<Box<dyn SpreadEstimator + 'static>> {
        None
    }

    /// Full construction over shared snapshots.
    fn build<'a>(
        &self,
        parts: &EngineParts<'a>,
    ) -> Result<Box<dyn SpreadEstimator + 'a>, MissingIndexError>;
}

macro_rules! online_spec {
    ($spec:ident, $backend:ident, $cli:literal, $label:literal, $scope:ident, $plan:ident,
     |$n:ident| $make:expr) => {
        struct $spec;
        impl BackendSpec for $spec {
            fn backend(&self) -> EngineBackend {
                EngineBackend::$backend
            }
            fn cli_name(&self) -> &'static str {
                $cli
            }
            fn label(&self) -> &'static str {
                $label
            }
            fn cache_scope(&self) -> CacheScope {
                CacheScope::$scope
            }
            fn plannability(&self) -> Plannability {
                Plannability::$plan
            }
            fn build_for_nodes(&self, $n: usize) -> Option<Box<dyn SpreadEstimator + 'static>> {
                Some(Box::new($make))
            }
            fn build<'a>(
                &self,
                parts: &EngineParts<'a>,
            ) -> Result<Box<dyn SpreadEstimator + 'a>, MissingIndexError> {
                let $n = parts.model.graph().num_nodes();
                Ok(Box::new($make))
            }
        }
    };
}

online_spec!(LazySpec, Lazy, "lazy", "LAZY", AffectedUsers, Accurate, |n| LazySampler::new(n));
online_spec!(McSpec, Mc, "mc", "MC", AffectedUsers, Accurate, |n| McSampler::new(n));
online_spec!(RrSpec, Rr, "rr", "RR", Everything, Accurate, |n| RrSampler::new(n));
online_spec!(TimSpec, Tim, "tim", "TIM", Everything, Fallback, |n| TimEstimator::new(n));
online_spec!(ExactSpec, Exact, "exact", "EXACT", AffectedUsers, Accurate, |_n| {
    ExactEstimator::new()
});
online_spec!(LtSpec, Lt, "lt", "LT", Everything, Excluded, |n| LtSampler::new(n));

struct IndexEstSpec;
impl BackendSpec for IndexEstSpec {
    fn backend(&self) -> EngineBackend {
        EngineBackend::IndexEst
    }
    fn cli_name(&self) -> &'static str {
        "indexest"
    }
    fn label(&self) -> &'static str {
        "INDEXEST"
    }
    fn artifact(&self) -> ArtifactNeed {
        ArtifactNeed::RrIndex
    }
    fn cache_scope(&self) -> CacheScope {
        CacheScope::AffectedPlusDirty
    }
    fn build<'a>(
        &self,
        parts: &EngineParts<'a>,
    ) -> Result<Box<dyn SpreadEstimator + 'a>, MissingIndexError> {
        let index = parts.rr_index.ok_or(MissingIndexError { backend: self.backend() })?;
        Ok(Box::new(IndexEstimator::new(index)))
    }
}

struct IndexEstPlusSpec;
impl BackendSpec for IndexEstPlusSpec {
    fn backend(&self) -> EngineBackend {
        EngineBackend::IndexEstPlus
    }
    fn cli_name(&self) -> &'static str {
        "indexest+"
    }
    fn label(&self) -> &'static str {
        "INDEXEST+"
    }
    fn artifact(&self) -> ArtifactNeed {
        ArtifactNeed::RrIndex
    }
    fn cache_scope(&self) -> CacheScope {
        CacheScope::AffectedPlusDirty
    }
    fn build<'a>(
        &self,
        parts: &EngineParts<'a>,
    ) -> Result<Box<dyn SpreadEstimator + 'a>, MissingIndexError> {
        let index = parts.rr_index.ok_or(MissingIndexError { backend: self.backend() })?;
        Ok(Box::new(IndexPlusEstimator::new(index, parts.model.edge_topics())))
    }
}

struct DelayMatSpec;
impl BackendSpec for DelayMatSpec {
    fn backend(&self) -> EngineBackend {
        EngineBackend::DelayMat
    }
    fn cli_name(&self) -> &'static str {
        "delaymat"
    }
    fn label(&self) -> &'static str {
        "DELAYMAT"
    }
    fn artifact(&self) -> ArtifactNeed {
        ArtifactNeed::DelayIndex
    }
    fn cache_scope(&self) -> CacheScope {
        CacheScope::Everything
    }
    fn build<'a>(
        &self,
        parts: &EngineParts<'a>,
    ) -> Result<Box<dyn SpreadEstimator + 'a>, MissingIndexError> {
        let index = parts.delay_index.ok_or(MissingIndexError { backend: self.backend() })?;
        Ok(Box::new(DelayMatEstimator::new(index, parts.model.edge_topics(), parts.config.seed)))
    }
}

/// The registry table, indexed by `EngineBackend as usize` (declaration
/// order, i.e. [`EngineBackend::ALL`] order).
static REGISTRY: [&dyn BackendSpec; 9] = [
    &LazySpec,
    &McSpec,
    &RrSpec,
    &TimSpec,
    &ExactSpec,
    &LtSpec,
    &IndexEstSpec,
    &IndexEstPlusSpec,
    &DelayMatSpec,
];

/// The spec of a concrete backend (`None` for [`EngineBackend::Auto`],
/// which is a planner directive, not a construction).
pub fn spec(backend: EngineBackend) -> Option<&'static dyn BackendSpec> {
    REGISTRY.get(backend as usize).copied()
}

/// All concrete specs, in [`EngineBackend::ALL`] order.
pub fn all_specs() -> &'static [&'static dyn BackendSpec; 9] {
    &REGISTRY
}

/// Whether `backend` is constructible from the given artifact availability
/// (`Auto` always is — the planner works with whatever exists).
pub fn available(backend: EngineBackend, rr_index: bool, delay_index: bool) -> bool {
    match spec(backend) {
        None => true,
        Some(spec) => match spec.artifact() {
            ArtifactNeed::None => true,
            ArtifactNeed::RrIndex => rr_index,
            ArtifactNeed::DelayIndex => delay_index,
        },
    }
}

/// [`available`] as a `Result`: `Err` names the backend that is missing
/// its artifact — the allocation-free validity check handle construction
/// uses.
pub fn require_artifacts(
    backend: EngineBackend,
    rr_index: bool,
    delay_index: bool,
) -> Result<(), MissingIndexError> {
    if available(backend, rr_index, delay_index) {
        Ok(())
    } else {
        Err(MissingIndexError { backend })
    }
}

/// Every method name a caller may pass (`--backend`, the `QUERY`/`EXPLAIN`
/// backend operand), comma-separated — the one listing error messages must
/// quote so they can never drift from the registry.
pub fn method_names() -> String {
    let mut names: Vec<&'static str> = REGISTRY.iter().map(|s| s.cli_name()).collect();
    names.push("auto");
    names.join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn registry_order_matches_the_enum() {
        for (i, backend) in EngineBackend::ALL.into_iter().enumerate() {
            let spec = spec(backend).expect("every concrete backend has a spec");
            assert_eq!(spec.backend(), backend);
            assert_eq!(backend as usize, i, "table index must equal the discriminant");
        }
        assert!(spec(EngineBackend::Auto).is_none(), "auto is a directive, not a construction");
    }

    #[test]
    fn method_names_cover_every_backend_and_auto() {
        let names = method_names();
        for backend in EngineBackend::ALL {
            assert!(names.contains(backend.cli_name()), "{names} misses {}", backend.cli_name());
        }
        assert!(names.contains("auto"));
    }

    #[test]
    fn build_errors_name_the_missing_artifact() {
        let model = TicModel::paper_example();
        let parts = EngineParts {
            model: &model,
            rr_index: None,
            delay_index: None,
            config: PitexConfig::default(),
        };
        for backend in
            [EngineBackend::IndexEst, EngineBackend::IndexEstPlus, EngineBackend::DelayMat]
        {
            let err = match spec(backend).unwrap().build(&parts) {
                Ok(_) => panic!("{} must demand the index", backend.label()),
                Err(err) => err,
            };
            assert_eq!(err.backend(), backend);
            assert!(err.to_string().contains(backend.label()));
        }
    }

    #[test]
    fn every_backend_builds_with_full_artifacts() {
        let model = Arc::new(TicModel::paper_example());
        let rr = RrIndex::build(&model, pitex_index::IndexBudget::Fixed(1_000), 2);
        let delay = DelayMatIndex::build(&model, pitex_index::IndexBudget::Fixed(1_000), 2);
        let parts = EngineParts {
            model: &model,
            rr_index: Some(&rr),
            delay_index: Some(&delay),
            config: PitexConfig::default(),
        };
        for spec in all_specs() {
            let est = spec.build(&parts).expect("all artifacts present");
            assert_eq!(est.name(), spec.label(), "estimator name matches the registry label");
        }
    }

    #[test]
    fn model_free_builders_exist_exactly_for_online_backends() {
        for spec in all_specs() {
            let model_free = spec.build_for_nodes(7).is_some();
            assert_eq!(model_free, spec.artifact() == ArtifactNeed::None, "{}", spec.cli_name());
        }
    }

    #[test]
    fn availability_follows_artifacts() {
        assert!(available(EngineBackend::Lazy, false, false));
        assert!(!available(EngineBackend::IndexEst, false, true));
        assert!(available(EngineBackend::IndexEst, true, false));
        assert!(!available(EngineBackend::DelayMat, true, false));
        assert!(available(EngineBackend::Auto, false, false));
    }
}
