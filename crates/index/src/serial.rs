//! Index persistence (Table 3 compares on-disk sizes of the two schemes).

use crate::build::{IndexBudget, RrIndex};
use crate::delay::DelayMatIndex;
use crate::rrgraph::RrGraph;
use pitex_support::codec::{DecodeError, Decoder, Encoder};

const RR_MAGIC: [u8; 4] = *b"PRRI";
const DELAY_MAGIC: [u8; 4] = *b"PDLY";
// v2: per-draw RNG streams (the sample stream changed) + the build budget
// and seed are persisted so repair reads them off the artifact. v1 files
// fail loudly with BadVersion instead of silently voiding the
// repair==rebuild contract.
const VERSION: u32 = 2;

fn encode_budget(enc: &mut Encoder<Vec<u8>>, budget: IndexBudget) {
    match budget {
        IndexBudget::PerVertex(c) => {
            enc.u8(0);
            enc.f64(c);
        }
        IndexBudget::Fixed(n) => {
            enc.u8(1);
            enc.u64(n);
        }
        IndexBudget::Theoretical { epsilon, delta, k_max } => {
            enc.u8(2);
            enc.f64(epsilon);
            enc.f64(delta);
            enc.u64(k_max as u64);
        }
    }
}

fn decode_budget(dec: &mut Decoder<&[u8]>) -> Result<IndexBudget, DecodeError> {
    Ok(match dec.u8()? {
        0 => IndexBudget::PerVertex(dec.f64()?),
        1 => IndexBudget::Fixed(dec.u64()?),
        2 => IndexBudget::Theoretical {
            epsilon: dec.f64()?,
            delta: dec.f64()?,
            k_max: dec.u64()? as usize,
        },
        other => return Err(DecodeError::BadVersion { expected: 2, found: other as u32 }),
    })
}

/// Errors from index persistence.
#[derive(Debug)]
pub enum IndexIoError {
    Io(std::io::Error),
    Decode(DecodeError),
}

impl std::fmt::Display for IndexIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexIoError::Io(e) => write!(f, "i/o error: {e}"),
            IndexIoError::Decode(e) => write!(f, "decode error: {e}"),
        }
    }
}

impl std::error::Error for IndexIoError {}

impl From<std::io::Error> for IndexIoError {
    fn from(e: std::io::Error) -> Self {
        IndexIoError::Io(e)
    }
}

impl From<DecodeError> for IndexIoError {
    fn from(e: DecodeError) -> Self {
        IndexIoError::Decode(e)
    }
}

/// Which index scheme a serialized artifact holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexKind {
    /// A full RR-Graph index (`PRRI`).
    Rr,
    /// A delay-materialized counter index (`PDLY`).
    Delay,
}

/// Sniffs an artifact's scheme by magic without decoding it — what
/// `pitex query --backend auto --index FILE` uses to load whichever index
/// kind it was handed (`None`: neither magic, not an index file).
pub fn index_kind(bytes: &[u8]) -> Option<IndexKind> {
    match bytes.get(..4) {
        Some(magic) if magic == RR_MAGIC => Some(IndexKind::Rr),
        Some(magic) if magic == DELAY_MAGIC => Some(IndexKind::Delay),
        _ => None,
    }
}

/// Serializes a full RR-Graph index.
pub fn rr_index_to_bytes(index: &RrIndex) -> Vec<u8> {
    let mut enc = Encoder::new(Vec::new());
    enc.header(RR_MAGIC, VERSION);
    enc.u32(index.num_nodes() as u32);
    enc.u64(index.theta());
    encode_budget(&mut enc, index.budget());
    enc.u64(index.seed());
    enc.u64(index.graphs().len() as u64);
    for g in index.graphs() {
        enc.u32(g.target());
        enc.u32_slice(g.nodes());
        enc.u64(g.num_edges() as u64);
        for (src_local, e) in g.edges() {
            enc.u32(g.nodes()[src_local as usize]);
            enc.u32(g.nodes()[e.dst_local as usize]);
            enc.u32(e.edge_id);
            enc.f32(e.c);
        }
    }
    enc.into_inner()
}

/// Deserializes a full RR-Graph index (membership tables are rebuilt).
pub fn rr_index_from_bytes(bytes: &[u8]) -> Result<RrIndex, IndexIoError> {
    let mut dec = Decoder::new(bytes);
    dec.header(RR_MAGIC, VERSION)?;
    let num_nodes = dec.u32()? as usize;
    let theta = dec.u64()?;
    let budget = decode_budget(&mut dec)?;
    let seed = dec.u64()?;
    let count = dec.u64()? as usize;
    let mut graphs = Vec::with_capacity(count);
    for _ in 0..count {
        let target = dec.u32()?;
        let nodes = dec.u32_slice()?;
        let edge_count = dec.u64()? as usize;
        let mut edges = Vec::with_capacity(edge_count);
        for _ in 0..edge_count {
            let s = dec.u32()?;
            let t = dec.u32()?;
            let e = dec.u32()?;
            let c = dec.f32()?;
            edges.push((s, t, e, c));
        }
        graphs.push(RrGraph::from_parts(target, nodes, &edges));
    }
    Ok(RrIndex::from_graphs(num_nodes, theta, budget, seed, graphs))
}

/// Serializes a delay-materialized index.
pub fn delay_index_to_bytes(index: &DelayMatIndex) -> Vec<u8> {
    let mut enc = Encoder::new(Vec::new());
    enc.header(DELAY_MAGIC, VERSION);
    enc.u32(index.num_nodes() as u32);
    enc.u64(index.theta());
    encode_budget(&mut enc, index.budget());
    enc.u64(index.seed());
    enc.u32_slice(index.counts());
    enc.into_inner()
}

/// Deserializes a delay-materialized index.
pub fn delay_index_from_bytes(bytes: &[u8]) -> Result<DelayMatIndex, IndexIoError> {
    let mut dec = Decoder::new(bytes);
    dec.header(DELAY_MAGIC, VERSION)?;
    let num_nodes = dec.u32()? as usize;
    let theta = dec.u64()?;
    let budget = decode_budget(&mut dec)?;
    let seed = dec.u64()?;
    let counts = dec.u32_slice()?;
    Ok(DelayMatIndex::from_counts(num_nodes, theta, budget, seed, counts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::IndexBudget;
    use pitex_model::TicModel;

    #[test]
    fn rr_index_round_trip() {
        let model = TicModel::paper_example();
        let index = RrIndex::build_with_threads(&model, IndexBudget::Fixed(500), 61, 2);
        let back = rr_index_from_bytes(&rr_index_to_bytes(&index)).unwrap();
        assert_eq!(back.theta(), index.theta());
        assert_eq!(back.graphs(), index.graphs());
        for u in 0..model.graph().num_nodes() as u32 {
            assert_eq!(back.graphs_containing(u), index.graphs_containing(u));
        }
    }

    #[test]
    fn delay_index_round_trip() {
        let model = TicModel::paper_example();
        let index = DelayMatIndex::build_with_threads(&model, IndexBudget::Fixed(500), 67, 2);
        let back = delay_index_from_bytes(&delay_index_to_bytes(&index)).unwrap();
        assert_eq!(back, index);
    }

    #[test]
    fn formats_are_not_interchangeable() {
        let model = TicModel::paper_example();
        let delay = DelayMatIndex::build_with_threads(&model, IndexBudget::Fixed(10), 1, 1);
        let bytes = delay_index_to_bytes(&delay);
        assert!(rr_index_from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncated_inputs_fail_cleanly() {
        let model = TicModel::paper_example();
        let index = RrIndex::build_with_threads(&model, IndexBudget::Fixed(50), 3, 1);
        let mut bytes = rr_index_to_bytes(&index);
        bytes.truncate(bytes.len() / 3);
        assert!(rr_index_from_bytes(&bytes).is_err());
    }

    #[test]
    fn index_kind_sniffs_by_magic() {
        let model = TicModel::paper_example();
        let full = RrIndex::build_with_threads(&model, IndexBudget::Fixed(50), 3, 1);
        let delay = DelayMatIndex::build_with_threads(&model, IndexBudget::Fixed(50), 3, 1);
        assert_eq!(index_kind(&rr_index_to_bytes(&full)), Some(IndexKind::Rr));
        assert_eq!(index_kind(&delay_index_to_bytes(&delay)), Some(IndexKind::Delay));
        assert_eq!(index_kind(b"GARBAGE!"), None);
        assert_eq!(index_kind(b"PR"), None, "too short to carry a magic");
    }

    #[test]
    fn delay_size_reflects_scheme_economy() {
        // Table 3's point: the delay index is orders of magnitude smaller.
        let model = TicModel::paper_example();
        let full = RrIndex::build_with_threads(&model, IndexBudget::Fixed(5_000), 5, 2);
        let delay = DelayMatIndex::build_with_threads(&model, IndexBudget::Fixed(5_000), 5, 2);
        let full_bytes = rr_index_to_bytes(&full).len();
        let delay_bytes = delay_index_to_bytes(&delay).len();
        assert!(delay_bytes * 100 < full_bytes, "delay {delay_bytes}B vs full {full_bytes}B");
    }
}
