//! Query workload generation (§7.1).
//!
//! "We filter users with no outgoing edge and divide the rest of the users
//! into three groups based on their out-degrees: high (top 1%), mid (top
//! 1–10%) and low (the rest) ... For each user group, we generate 100 PITEX
//! queries with randomly selected users within the group."

use pitex_graph::{DiGraph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// The out-degree bucket a query user is drawn from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UserGroup {
    /// Top 1% by out-degree.
    High,
    /// Top 1–10%.
    Mid,
    /// The remaining ~90%.
    Low,
}

impl UserGroup {
    /// All groups in the paper's plotting order.
    pub const ALL: [UserGroup; 3] = [UserGroup::High, UserGroup::Mid, UserGroup::Low];

    pub fn label(self) -> &'static str {
        match self {
            UserGroup::High => "high",
            UserGroup::Mid => "mid",
            UserGroup::Low => "low",
        }
    }
}

/// Users partitioned by out-degree percentile (zero-out-degree users are
/// excluded entirely, as in the paper).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UserGroups {
    high: Vec<NodeId>,
    mid: Vec<NodeId>,
    low: Vec<NodeId>,
}

impl UserGroups {
    /// Buckets all users of `graph` with out-degree ≥ 1.
    pub fn from_graph(graph: &DiGraph) -> Self {
        let mut eligible: Vec<NodeId> =
            graph.nodes().filter(|&v| graph.out_degree(v) > 0).collect();
        eligible.sort_by_key(|&v| (std::cmp::Reverse(graph.out_degree(v)), v));
        let n = eligible.len();
        let high_end = (n as f64 * 0.01).ceil() as usize;
        let mid_end = (n as f64 * 0.10).ceil() as usize;
        let high_end = high_end.clamp(usize::from(n > 0), n);
        let mid_end = mid_end.clamp(high_end, n);
        Self {
            high: eligible[..high_end].to_vec(),
            mid: eligible[high_end..mid_end].to_vec(),
            low: eligible[mid_end..].to_vec(),
        }
    }

    /// Members of a group (sorted by descending out-degree).
    pub fn members(&self, group: UserGroup) -> &[NodeId] {
        match group {
            UserGroup::High => &self.high,
            UserGroup::Mid => &self.mid,
            UserGroup::Low => &self.low,
        }
    }

    /// Draws `count` query users from a group (with replacement only if the
    /// group is smaller than `count`).
    pub fn sample<R: Rng>(&self, group: UserGroup, count: usize, rng: &mut R) -> Vec<NodeId> {
        let members = self.members(group);
        assert!(!members.is_empty(), "group {group:?} is empty");
        if members.len() >= count {
            let mut picked: Vec<NodeId> = members.choose_multiple(rng, count).copied().collect();
            picked.sort_unstable();
            picked
        } else {
            (0..count).map(|_| *members.choose(rng).unwrap()).collect()
        }
    }

    /// Total eligible users.
    pub fn eligible(&self) -> usize {
        self.high.len() + self.mid.len() + self.low.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitex_graph::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graph() -> DiGraph {
        let mut rng = StdRng::seed_from_u64(3);
        gen::preferential_attachment(2_000, 3, 0.3, &mut rng)
    }

    #[test]
    fn groups_partition_eligible_users() {
        let g = graph();
        let groups = UserGroups::from_graph(&g);
        let eligible = g.nodes().filter(|&v| g.out_degree(v) > 0).count();
        assert_eq!(groups.eligible(), eligible);
        // Rough percentile sizes.
        assert!(groups.members(UserGroup::High).len() >= eligible / 200);
        assert!(groups.members(UserGroup::High).len() <= eligible / 50);
        assert!(groups.members(UserGroup::Low).len() > eligible / 2);
    }

    #[test]
    fn high_group_has_highest_degrees() {
        let g = graph();
        let groups = UserGroups::from_graph(&g);
        let min_high =
            groups.members(UserGroup::High).iter().map(|&v| g.out_degree(v)).min().unwrap();
        let max_mid =
            groups.members(UserGroup::Mid).iter().map(|&v| g.out_degree(v)).max().unwrap();
        let max_low =
            groups.members(UserGroup::Low).iter().map(|&v| g.out_degree(v)).max().unwrap();
        assert!(min_high >= max_mid);
        assert!(max_mid >= max_low);
    }

    #[test]
    fn zero_out_degree_users_are_excluded() {
        let g = gen::star_low_impact(50); // 50 leaves with no out-edges
        let groups = UserGroups::from_graph(&g);
        assert_eq!(groups.eligible(), 1, "only the root has out-edges");
    }

    #[test]
    fn sampling_is_within_group_and_deterministic() {
        let g = graph();
        let groups = UserGroups::from_graph(&g);
        let mut rng = StdRng::seed_from_u64(5);
        let q = groups.sample(UserGroup::Mid, 20, &mut rng);
        assert_eq!(q.len(), 20);
        for u in &q {
            assert!(groups.members(UserGroup::Mid).contains(u));
        }
        let mut rng2 = StdRng::seed_from_u64(5);
        assert_eq!(q, groups.sample(UserGroup::Mid, 20, &mut rng2));
    }

    #[test]
    fn small_groups_sample_with_replacement() {
        let g = gen::path(30); // every vertex except the last has degree 1
        let groups = UserGroups::from_graph(&g);
        let mut rng = StdRng::seed_from_u64(6);
        let q = groups.sample(UserGroup::High, 10, &mut rng);
        assert_eq!(q.len(), 10);
    }
}
