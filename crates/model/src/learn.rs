//! Propagation-log substrate: cascade synthesis and TIC parameter learning.
//!
//! The paper derives `p(e|z)` and `p(w|z)` "from a log of past propagation"
//! using the TIC learner of Barbieri et al.\[2\] (§3.1, §7.1). Real action
//! logs are not available here, so this module provides the closest
//! synthetic equivalent: [`synthesize_log`] plays forward the generative
//! process of the TIC model to produce cascades, and [`learn`] runs a small
//! expectation–maximization loop that recovers tag–topic and edge–topic
//! probabilities from such a log. The learned model plugs into PITEX exactly
//! like a generated one.
//!
//! The learner assumes one latent topic per cascade (the mixture-of-cascades
//! simplification of the TIC family): cascade `c` with tag set `W_c`,
//! successful activations `A_c` and failed attempts `F_c` has
//!
//! ```text
//! P(c | z) = p(z) · Π_{w∈W_c} p(w|z) · Π_{e∈A_c} p(e|z) · Π_{e∈F_c} (1 − p(e|z))
//! ```
//!
//! E-step: responsibilities `r_cz ∝ P(c|z)` (computed in log space).
//! M-step: responsibility-weighted frequencies with Laplace smoothing.

use crate::edge_topics::EdgeTopics;
use crate::ids::{TagId, TagSet};
use crate::posterior::{EdgeProbs, PosteriorEdgeProbs};
use crate::tag_topic::TagTopicMatrix;
use crate::tic::TicModel;
use pitex_graph::{EdgeId, NodeId};
use pitex_support::EpochVisited;
use rand::Rng;

/// One recorded cascade: the item's tags, who started it, and the outcome of
/// every activation attempt (the "log of past propagation" of §3.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cascade {
    /// The user who posted the item.
    pub seed: NodeId,
    /// Tags describing the propagated content.
    pub tags: TagSet,
    /// Edges whose activation attempt succeeded, in propagation order.
    pub activated: Vec<EdgeId>,
    /// Edges whose activation attempt failed.
    pub failed: Vec<EdgeId>,
}

/// A synthesized action log.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ActionLog {
    pub cascades: Vec<Cascade>,
}

impl ActionLog {
    pub fn len(&self) -> usize {
        self.cascades.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cascades.is_empty()
    }
}

/// Plays the IC process forward under ground-truth parameters to produce a
/// log of `num_cascades` cascades. Seeds are drawn uniformly among vertices
/// with out-degree ≥ 1; tag sets have 1..=`max_tags` feasible tags.
pub fn synthesize_log<R: Rng>(
    model: &TicModel,
    num_cascades: usize,
    max_tags: usize,
    rng: &mut R,
) -> ActionLog {
    let graph = model.graph();
    let candidates: Vec<NodeId> = graph.nodes().filter(|&v| graph.out_degree(v) > 0).collect();
    assert!(!candidates.is_empty(), "graph has no vertex with out-edges");
    assert!(max_tags >= 1);

    let mut cache = model.new_prob_cache();
    let mut visited = EpochVisited::new(graph.num_nodes());
    let mut frontier = Vec::new();
    let mut cascades = Vec::with_capacity(num_cascades);

    for _ in 0..num_cascades {
        let seed = candidates[rng.gen_range(0..candidates.len())];
        // Draw a feasible tag set: a random first tag, then extensions that
        // keep the posterior non-empty.
        let first = rng.gen_range(0..model.num_tags() as TagId);
        let mut tags = TagSet::from([first]);
        let extra = rng.gen_range(0..max_tags);
        for _ in 0..extra {
            let candidate = tags.with(rng.gen_range(0..model.num_tags() as TagId));
            if !model.posterior(&candidate).is_empty() {
                tags = candidate;
            }
        }
        let posterior = model.posterior(&tags);
        let mut probs = PosteriorEdgeProbs::new(model.edge_topics(), &posterior, &mut cache);

        // Forward IC with full attempt recording.
        visited.reset();
        visited.insert(seed);
        frontier.clear();
        frontier.push(seed);
        let mut activated = Vec::new();
        let mut failed = Vec::new();
        while let Some(v) = frontier.pop() {
            for (e, t) in graph.out_edges(v) {
                if visited.contains(t) {
                    continue; // IC: only the first exposure attempts activation
                }
                let p = probs.prob(e);
                if p > 0.0 && rng.gen_bool(p) {
                    activated.push(e);
                    visited.insert(t);
                    frontier.push(t);
                } else {
                    failed.push(e);
                }
            }
        }
        cascades.push(Cascade { seed, tags, activated, failed });
    }
    ActionLog { cascades }
}

/// Learner configuration.
#[derive(Clone, Copy, Debug)]
pub struct LearnConfig {
    /// Number of latent topics to fit.
    pub num_topics: usize,
    /// EM iterations.
    pub iterations: usize,
    /// Laplace smoothing mass for tag and edge frequencies.
    pub smoothing: f64,
    /// Entries of `p(w|z)` below this fraction of the row maximum are
    /// dropped to produce a sparse matrix (PITEX relies on sparsity).
    pub sparsify_threshold: f64,
    /// RNG seed for responsibility initialization.
    pub seed: u64,
}

impl Default for LearnConfig {
    fn default() -> Self {
        Self {
            num_topics: 4,
            iterations: 25,
            smoothing: 0.05,
            sparsify_threshold: 0.05,
            seed: 0x9e3779b9,
        }
    }
}

/// Result of fitting: a model over the same graph plus training diagnostics.
#[derive(Clone, Debug)]
pub struct LearnOutcome {
    pub tag_topic: TagTopicMatrix,
    pub edge_topics: EdgeTopics,
    /// Per-iteration expected complete-data log-likelihood (monotone
    /// non-decreasing up to smoothing effects; exposed for diagnostics).
    pub log_likelihood: Vec<f64>,
}

/// Fits TIC parameters to an action log with EM.
pub fn learn(
    graph: &pitex_graph::DiGraph,
    log: &ActionLog,
    num_tags: usize,
    cfg: &LearnConfig,
) -> LearnOutcome {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    assert!(!log.is_empty(), "cannot learn from an empty log");
    let z_count = cfg.num_topics;
    let c_count = log.cascades.len();
    let m = graph.num_edges();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Parameters: dense during fitting, sparsified at the end.
    // p_wz[w][z], p_ez[e][z], prior[z].
    let mut p_wz = vec![vec![1.0 / num_tags as f64; z_count]; num_tags];
    let mut p_ez = vec![vec![0.0f64; z_count]; m];
    let mut prior = vec![1.0 / z_count as f64; z_count];

    // Initialize edge probabilities from per-edge success frequency with a
    // topic-specific random perturbation (symmetric init would make EM stall
    // on a saddle point).
    let mut succ = vec![0u32; m];
    let mut tries = vec![0u32; m];
    for c in &log.cascades {
        for &e in &c.activated {
            succ[e as usize] += 1;
            tries[e as usize] += 1;
        }
        for &e in &c.failed {
            tries[e as usize] += 1;
        }
    }
    for e in 0..m {
        let base = (succ[e] as f64 + cfg.smoothing) / (tries[e] as f64 + 2.0 * cfg.smoothing);
        for p_z in p_ez[e].iter_mut() {
            let jitter: f64 = rng.gen_range(0.5..1.5);
            *p_z = (base * jitter).clamp(1e-4, 1.0 - 1e-4);
        }
    }
    // p(w|z) is a distribution over tags *per topic*: normalize columns.
    for z in 0..z_count {
        let mut total = 0.0;
        for row in p_wz.iter_mut() {
            row[z] = rng.gen_range(0.5..1.5) / num_tags as f64;
            total += row[z];
        }
        for row in p_wz.iter_mut() {
            row[z] /= total;
        }
    }

    let mut responsibilities = vec![0.0f64; z_count];
    let mut log_likelihood = Vec::with_capacity(cfg.iterations);
    // Accumulators for the M-step.
    let mut tag_mass = vec![vec![0.0f64; z_count]; num_tags];
    let mut edge_succ = vec![vec![0.0f64; z_count]; m];
    let mut edge_try = vec![vec![0.0f64; z_count]; m];
    let mut prior_mass = vec![0.0f64; z_count];

    for _ in 0..cfg.iterations {
        for row in &mut tag_mass {
            row.fill(0.0);
        }
        for row in &mut edge_succ {
            row.fill(0.0);
        }
        for row in &mut edge_try {
            row.fill(0.0);
        }
        prior_mass.fill(0.0);
        let mut ll = 0.0f64;

        // E-step.
        for c in &log.cascades {
            let mut max_log = f64::NEG_INFINITY;
            for z in 0..z_count {
                let mut lp = prior[z].max(1e-300).ln();
                for w in c.tags.iter() {
                    lp += p_wz[w as usize][z].max(1e-300).ln();
                }
                for &e in &c.activated {
                    lp += p_ez[e as usize][z].max(1e-300).ln();
                }
                for &e in &c.failed {
                    lp += (1.0 - p_ez[e as usize][z]).max(1e-300).ln();
                }
                responsibilities[z] = lp;
                max_log = max_log.max(lp);
            }
            let mut total = 0.0;
            for r in responsibilities.iter_mut() {
                *r = (*r - max_log).exp();
                total += *r;
            }
            ll += max_log + total.ln();
            for r in responsibilities.iter_mut() {
                *r /= total;
            }
            // Accumulate.
            for z in 0..z_count {
                let r = responsibilities[z];
                prior_mass[z] += r;
                for w in c.tags.iter() {
                    tag_mass[w as usize][z] += r;
                }
                for &e in &c.activated {
                    edge_succ[e as usize][z] += r;
                    edge_try[e as usize][z] += r;
                }
                for &e in &c.failed {
                    edge_try[e as usize][z] += r;
                }
            }
        }
        log_likelihood.push(ll);

        // M-step.
        for z in 0..z_count {
            prior[z] =
                (prior_mass[z] + cfg.smoothing) / (c_count as f64 + cfg.smoothing * z_count as f64);
        }
        let norm: f64 = prior.iter().sum();
        for p in &mut prior {
            *p /= norm;
        }
        for z in 0..z_count {
            let mut col_total = 0.0f64;
            for mass in tag_mass.iter() {
                col_total += mass[z] + cfg.smoothing;
            }
            for w in 0..num_tags {
                p_wz[w][z] = (tag_mass[w][z] + cfg.smoothing) / col_total;
            }
        }
        for e in 0..m {
            for z in 0..z_count {
                p_ez[e][z] = ((edge_succ[e][z] + cfg.smoothing)
                    / (edge_try[e][z] + 2.0 * cfg.smoothing))
                    .clamp(1e-4, 1.0 - 1e-4);
            }
        }
    }

    // Sparsify: keep entries above threshold · row max; always keep the max.
    let tag_rows: Vec<Vec<(u16, f32)>> = (0..num_tags)
        .map(|w| {
            let row_max = p_wz[w].iter().cloned().fold(0.0f64, f64::max);
            let mut row: Vec<(u16, f32)> = (0..z_count)
                .filter(|&z| p_wz[w][z] >= cfg.sparsify_threshold * row_max && p_wz[w][z] > 0.0)
                .map(|z| (z as u16, p_wz[w][z] as f32))
                .collect();
            // Renormalize the surviving entries.
            let total: f32 = row.iter().map(|&(_, p)| p).sum();
            for (_, p) in &mut row {
                *p /= total;
            }
            row
        })
        .collect();
    // Sparsify edges: keep topics whose probability is meaningfully above
    // the floor; always keep the row maximum.
    let edge_rows: Vec<Vec<(u16, f32)>> = (0..m)
        .map(|e| {
            let row_max = p_ez[e].iter().cloned().fold(0.0f64, f64::max);
            (0..z_count)
                .filter(|&z| p_ez[e][z] >= 0.5 * row_max && p_ez[e][z] > 2e-4)
                .map(|z| (z as u16, p_ez[e][z] as f32))
                .collect()
        })
        .collect();

    LearnOutcome {
        tag_topic: TagTopicMatrix::new(tag_rows, prior),
        edge_topics: EdgeTopics::new(edge_rows, z_count),
        log_likelihood,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genmodel::{random_model, EdgeProbKind, ModelGenConfig};
    use pitex_graph::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ground_truth() -> TicModel {
        let mut rng = StdRng::seed_from_u64(21);
        let graph = gen::erdos_renyi(40, 160, &mut rng);
        let cfg = ModelGenConfig {
            num_topics: 3,
            num_tags: 12,
            density: 0.34,
            topics_per_edge: (1, 2),
            edge_prob: EdgeProbKind::Uniform { lo: 0.2, hi: 0.8 },
        };
        random_model(graph, &cfg, &mut rng)
    }

    #[test]
    fn synthesized_log_is_well_formed() {
        let model = ground_truth();
        let log = synthesize_log(&model, 50, 3, &mut StdRng::seed_from_u64(3));
        assert_eq!(log.len(), 50);
        for c in &log.cascades {
            assert!(model.graph().out_degree(c.seed) > 0);
            assert!(!c.tags.is_empty() && c.tags.len() <= 3);
            assert!(!model.posterior(&c.tags).is_empty(), "tag sets are feasible");
            // Activated edges form a connected trace from the seed.
            for &e in &c.activated {
                let (s, _) = model.graph().edge_endpoints(e);
                assert!(
                    s == c.seed || c.activated.iter().any(|&e2| model.graph().edge_target(e2) == s),
                    "activation source must itself be active"
                );
            }
            // No edge appears as both success and failure.
            for &e in &c.activated {
                assert!(!c.failed.contains(&e));
            }
        }
    }

    #[test]
    fn cascades_only_use_positive_probability_edges() {
        let model = ground_truth();
        let log = synthesize_log(&model, 30, 2, &mut StdRng::seed_from_u64(4));
        for c in &log.cascades {
            for &e in &c.activated {
                assert!(model.edge_prob(e, &c.tags) > 0.0);
            }
        }
    }

    #[test]
    fn em_log_likelihood_is_monotone() {
        let model = ground_truth();
        let log = synthesize_log(&model, 200, 2, &mut StdRng::seed_from_u64(5));
        let cfg = LearnConfig { num_topics: 3, iterations: 15, ..Default::default() };
        let outcome = learn(model.graph(), &log, model.num_tags(), &cfg);
        let ll = &outcome.log_likelihood;
        assert_eq!(ll.len(), 15);
        for w in ll.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-6 * w[0].abs().max(1.0),
                "EM log-likelihood decreased: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn learned_model_has_correct_shape_and_plugs_into_tic() {
        let model = ground_truth();
        let log = synthesize_log(&model, 150, 2, &mut StdRng::seed_from_u64(6));
        let cfg = LearnConfig { num_topics: 3, iterations: 10, ..Default::default() };
        let outcome = learn(model.graph(), &log, model.num_tags(), &cfg);
        assert_eq!(outcome.tag_topic.num_tags(), model.num_tags());
        assert_eq!(outcome.edge_topics.num_edges(), model.graph().num_edges());
        // The learned parameters must form a valid TicModel.
        let learned = TicModel::new(model.graph().clone(), outcome.tag_topic, outcome.edge_topics);
        assert!(learned.num_topics() == 3);
    }

    #[test]
    fn learned_edge_probabilities_track_observed_frequencies() {
        // Edges that frequently activate in the log should receive higher
        // learned probabilities than edges that always fail.
        let model = ground_truth();
        let log = synthesize_log(&model, 400, 2, &mut StdRng::seed_from_u64(7));
        let cfg = LearnConfig { num_topics: 3, iterations: 10, ..Default::default() };
        let outcome = learn(model.graph(), &log, model.num_tags(), &cfg);

        let m = model.graph().num_edges();
        let mut succ = vec![0u32; m];
        let mut tries = vec![0u32; m];
        for c in &log.cascades {
            for &e in &c.activated {
                succ[e as usize] += 1;
                tries[e as usize] += 1;
            }
            for &e in &c.failed {
                tries[e as usize] += 1;
            }
        }
        let hot: Vec<usize> =
            (0..m).filter(|&e| tries[e] >= 8 && succ[e] as f64 / tries[e] as f64 > 0.6).collect();
        let cold: Vec<usize> = (0..m).filter(|&e| tries[e] >= 8 && succ[e] == 0).collect();
        if hot.is_empty() || cold.is_empty() {
            return; // seed produced no contrast; other seeds cover this
        }
        let avg = |edges: &[usize]| -> f64 {
            edges.iter().map(|&e| outcome.edge_topics.p_max(e as u32) as f64).sum::<f64>()
                / edges.len() as f64
        };
        assert!(avg(&hot) > avg(&cold) + 0.1, "hot {} vs cold {}", avg(&hot), avg(&cold));
    }
}
