//! Integration coverage for `core::batch::query_batch`: determinism under a
//! fixed seed, agreement with one-at-a-time `query` across backends, and
//! the owned-handle variant `query_batch_shared`.

use pitex::core::{query_batch, query_batch_shared};
use pitex::prelude::*;
use std::sync::Arc;

fn workload(model: &TicModel) -> Vec<(NodeId, usize)> {
    let n = model.graph().num_nodes() as u32;
    (0..n).map(|u| (u, 2)).chain((0..n).map(|u| (u, 1))).collect()
}

/// Same seed, same queries, any thread count → bit-identical results.
#[test]
fn batch_is_deterministic_under_a_fixed_seed() {
    let model = TicModel::paper_example();
    let queries = workload(&model);
    for backend in [EngineBackend::Lazy, EngineBackend::Mc, EngineBackend::Rr] {
        let handle = EngineHandle::new(
            Arc::new(model.clone()),
            backend,
            PitexConfig { seed: 0xDEAD_BEEF, ..PitexConfig::default() },
        )
        .unwrap();
        let runs: Vec<Vec<PitexResult>> =
            (0..3).map(|run| query_batch_shared(&handle, &queries, 1 + run * 3)).collect();
        for (run, results) in runs.iter().enumerate().skip(1) {
            for (a, b) in runs[0].iter().zip(results) {
                assert_eq!(
                    a.tags,
                    b.tags,
                    "{}: run {run}, user {} k {}",
                    backend.label(),
                    a.user,
                    a.k
                );
                assert_eq!(a.spread, b.spread, "{}: run {run}", backend.label());
            }
        }
    }
}

/// A parallel batch answers exactly what a fresh engine answers per query.
#[test]
fn batch_agrees_with_one_at_a_time_queries_across_backends() {
    let model = TicModel::paper_example();
    let config = PitexConfig::default();
    let queries = workload(&model);
    for backend in [EngineBackend::Exact, EngineBackend::Lazy, EngineBackend::Mc, EngineBackend::Rr]
    {
        let handle = EngineHandle::new(Arc::new(model.clone()), backend, config).unwrap();
        let batched = query_batch_shared(&handle, &queries, 4);
        assert_eq!(batched.len(), queries.len());
        for (&(user, k), result) in queries.iter().zip(&batched) {
            let single = handle.engine().query(user, k);
            assert_eq!(result.user, user, "{}", backend.label());
            assert_eq!(
                result.tags,
                single.tags,
                "{}: user {user} k {k} diverged from a fresh engine",
                backend.label()
            );
            assert_eq!(result.spread, single.spread, "{}", backend.label());
        }
    }
}

/// The borrowed-closure API and the owned-handle API are interchangeable.
#[test]
fn shared_handle_matches_borrowed_closure_api() {
    let model = TicModel::paper_example();
    let config = PitexConfig::default();
    let queries = workload(&model);
    let borrowed = query_batch(|| PitexEngine::with_lazy(&model, config), &queries, 3);
    let handle = EngineHandle::new(Arc::new(model.clone()), EngineBackend::Lazy, config).unwrap();
    let shared = query_batch_shared(&handle, &queries, 3);
    for (a, b) in borrowed.iter().zip(&shared) {
        assert_eq!(a.tags, b.tags, "user {} k {}", a.user, a.k);
        assert_eq!(a.spread, b.spread);
    }
}

/// Index-backed batches work through the handle and stay deterministic.
#[test]
fn index_backed_batch_through_a_shared_handle() {
    let model = Arc::new(TicModel::paper_example());
    let index = Arc::new(RrIndex::build(&model, IndexBudget::Fixed(3_000), 3));
    let handle = EngineHandle::with_indexes(
        model.clone(),
        EngineBackend::IndexEstPlus,
        Some(index),
        None,
        PitexConfig::default(),
    )
    .unwrap();
    let queries: Vec<(NodeId, usize)> =
        (0..model.graph().num_nodes() as u32).map(|u| (u, 2)).collect();
    let a = query_batch_shared(&handle, &queries, 4);
    let b = query_batch_shared(&handle, &queries, 2);
    assert_eq!(a.len(), queries.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.tags, y.tags, "user {}", x.user);
        assert_eq!(x.spread, y.spread);
    }
    // The Fig. 2 query keeps its ground truth through the index path.
    assert_eq!(a[0].tags, TagSet::from([2, 3]));
}

/// Input order is preserved even with more threads than queries.
#[test]
fn order_preserved_with_excess_threads() {
    let model = TicModel::paper_example();
    let handle =
        EngineHandle::new(Arc::new(model), EngineBackend::Exact, PitexConfig::default()).unwrap();
    let queries: Vec<(NodeId, usize)> = vec![(5, 1), (0, 2), (3, 1)];
    let results = query_batch_shared(&handle, &queries, 64);
    let echoed: Vec<(NodeId, usize)> = results.iter().map(|r| (r.user, r.k)).collect();
    assert_eq!(echoed, queries);
}
