//! The mutable overlay over an immutable [`TicModel`] snapshot.
//!
//! Queries always run against immutable CSR/TIC snapshots (that is what
//! keeps the serving hot path lock-free), so updates cannot be applied in
//! place. Instead they are validated and *staged* here: the overlay records
//! the final state of every touched edge and tag on top of the base
//! snapshot, and [`ModelOverlay::compact`] folds base + overlay into a
//! fresh [`TicModel`] — a **pure function of `(snapshot, ops)`**, so two
//! replicas that apply the same log reach bit-identical models (and, with
//! the per-draw index sampling of `pitex_index`, bit-identical indexes).

use crate::log::{TopicRow, UpdateOp};
use pitex_graph::{GraphBuilder, NodeId};
use pitex_model::{EdgeTopics, TagId, TagTopicMatrix, TicModel, TopicId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Why an [`UpdateOp`] was rejected. Rejected ops leave the overlay
/// untouched — the staged state is always valid.
#[derive(Clone, Debug, PartialEq)]
pub enum UpdateError {
    /// An endpoint is outside the (overlaid) vertex range.
    UnknownVertex { vertex: NodeId, num_nodes: usize },
    /// Self-loops carry no influence and are rejected outright.
    SelfLoop { vertex: NodeId },
    /// `AddEdge` for a pair that already exists (base or staged).
    EdgeExists { src: NodeId, dst: NodeId },
    /// `RemoveEdge`/`SetEdgeTopics` for a pair that does not exist.
    NoSuchEdge { src: NodeId, dst: NodeId },
    /// A tag id beyond the overlaid vocabulary (`AttachTag` may extend it
    /// by exactly one: `tag == |Ω|`).
    UnknownTag { tag: TagId, num_tags: usize },
    /// A topic id outside `0..|Z|` (the topic space is fixed per model).
    BadTopic { topic: TopicId, num_topics: usize },
    /// A probability outside `(0, 1]`.
    BadProb { prob: f32 },
    /// A topic row repeats a topic id.
    DuplicateTopic { topic: TopicId },
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            UpdateError::UnknownVertex { vertex, num_nodes } => {
                write!(f, "vertex {vertex} out of range (|V| = {num_nodes})")
            }
            UpdateError::SelfLoop { vertex } => write!(f, "self-loop on vertex {vertex}"),
            UpdateError::EdgeExists { src, dst } => write!(f, "edge ({src}, {dst}) already exists"),
            UpdateError::NoSuchEdge { src, dst } => write!(f, "no edge ({src}, {dst})"),
            UpdateError::UnknownTag { tag, num_tags } => {
                write!(f, "tag {tag} out of range (|Omega| = {num_tags}; attach at id {num_tags} to grow)")
            }
            UpdateError::BadTopic { topic, num_topics } => {
                write!(f, "topic {topic} out of range (|Z| = {num_topics})")
            }
            UpdateError::BadProb { prob } => write!(f, "probability {prob} outside (0, 1]"),
            UpdateError::DuplicateTopic { topic } => write!(f, "topic {topic} repeated in row"),
        }
    }
}

impl std::error::Error for UpdateError {}

/// Staged mutations over a base snapshot. See the module docs.
#[derive(Clone, Debug)]
pub struct ModelOverlay {
    base: Arc<TicModel>,
    /// Every successfully applied op, in order (the log).
    ops: Vec<UpdateOp>,
    /// Final staged state per touched edge pair: `Some(row)` = present
    /// with that `p(e|z)` row, `None` = removed.
    edges: BTreeMap<(NodeId, NodeId), Option<TopicRow>>,
    /// Final staged `p(w|z)` row per touched tag.
    tags: BTreeMap<TagId, TopicRow>,
    /// Vertices appended beyond the base graph.
    added_users: u32,
    /// Tags appended beyond the base vocabulary.
    added_tags: u32,
}

impl ModelOverlay {
    /// An empty overlay over `base`.
    pub fn new(base: Arc<TicModel>) -> Self {
        Self {
            base,
            ops: Vec::new(),
            edges: BTreeMap::new(),
            tags: BTreeMap::new(),
            added_users: 0,
            added_tags: 0,
        }
    }

    /// The immutable snapshot underneath.
    pub fn base(&self) -> &Arc<TicModel> {
        &self.base
    }

    /// Number of staged ops.
    pub fn pending(&self) -> usize {
        self.ops.len()
    }

    /// The staged ops, in application order.
    pub fn ops(&self) -> &[UpdateOp] {
        &self.ops
    }

    /// `|V|` including staged additions.
    pub fn num_nodes(&self) -> usize {
        self.base.graph().num_nodes() + self.added_users as usize
    }

    /// `|Ω|` including staged additions.
    pub fn num_tags(&self) -> usize {
        self.base.num_tags() + self.added_tags as usize
    }

    /// Whether the staged ops change the vertex count (which forces a full
    /// index rebuild: the target distribution of every draw changes).
    pub fn grows_vertices(&self) -> bool {
        self.added_users > 0
    }

    /// Whether any staged op touches the tag–topic matrix (which changes
    /// the posterior of *every* tag set, i.e. every user's answer).
    pub fn touches_tags(&self) -> bool {
        self.added_tags > 0 || !self.tags.is_empty()
    }

    /// Does the pair currently (base + staged) exist?
    fn edge_present(&self, src: NodeId, dst: NodeId) -> bool {
        match self.edges.get(&(src, dst)) {
            Some(state) => state.is_some(),
            // Staged vertices have no base edges (and are out of range for
            // the base CSR).
            None => {
                (src as usize) < self.base.graph().num_nodes()
                    && self.base.graph().find_edge(src, dst).is_some()
            }
        }
    }

    fn check_vertex(&self, v: NodeId) -> Result<(), UpdateError> {
        if (v as usize) < self.num_nodes() {
            Ok(())
        } else {
            Err(UpdateError::UnknownVertex { vertex: v, num_nodes: self.num_nodes() })
        }
    }

    fn check_row(&self, topics: &TopicRow) -> Result<(), UpdateError> {
        let num_topics = self.base.num_topics();
        let mut seen: Vec<TopicId> = Vec::with_capacity(topics.len());
        for &(z, p) in topics {
            if (z as usize) >= num_topics {
                return Err(UpdateError::BadTopic { topic: z, num_topics });
            }
            if !(p > 0.0 && p <= 1.0) {
                return Err(UpdateError::BadProb { prob: p });
            }
            if seen.contains(&z) {
                return Err(UpdateError::DuplicateTopic { topic: z });
            }
            seen.push(z);
        }
        Ok(())
    }

    /// Validates and stages one op. On `Err` the overlay is unchanged.
    pub fn apply(&mut self, op: UpdateOp) -> Result<(), UpdateError> {
        match &op {
            UpdateOp::AddEdge { src, dst, topics } => {
                self.check_vertex(*src)?;
                self.check_vertex(*dst)?;
                if src == dst {
                    return Err(UpdateError::SelfLoop { vertex: *src });
                }
                self.check_row(topics)?;
                if self.edge_present(*src, *dst) {
                    return Err(UpdateError::EdgeExists { src: *src, dst: *dst });
                }
                self.edges.insert((*src, *dst), Some(topics.clone()));
            }
            UpdateOp::RemoveEdge { src, dst } => {
                self.check_vertex(*src)?;
                self.check_vertex(*dst)?;
                if !self.edge_present(*src, *dst) {
                    return Err(UpdateError::NoSuchEdge { src: *src, dst: *dst });
                }
                self.edges.insert((*src, *dst), None);
            }
            UpdateOp::SetEdgeTopics { src, dst, topics } => {
                self.check_vertex(*src)?;
                self.check_vertex(*dst)?;
                self.check_row(topics)?;
                if !self.edge_present(*src, *dst) {
                    return Err(UpdateError::NoSuchEdge { src: *src, dst: *dst });
                }
                self.edges.insert((*src, *dst), Some(topics.clone()));
            }
            UpdateOp::AttachTag { tag, topics } => {
                self.check_row(topics)?;
                let num_tags = self.num_tags();
                if (*tag as usize) > num_tags {
                    return Err(UpdateError::UnknownTag { tag: *tag, num_tags });
                }
                if (*tag as usize) == num_tags {
                    self.added_tags += 1;
                }
                self.tags.insert(*tag, topics.clone());
            }
            UpdateOp::DetachTag { tag } => {
                let num_tags = self.num_tags();
                if (*tag as usize) >= num_tags {
                    return Err(UpdateError::UnknownTag { tag: *tag, num_tags });
                }
                self.tags.insert(*tag, Vec::new());
            }
            UpdateOp::AddUser => {
                self.added_users += 1;
            }
        }
        self.ops.push(op);
        Ok(())
    }

    /// Stages a batch; stops at the first invalid op, reporting its
    /// position. Ops before the failure stay staged.
    pub fn apply_all(
        &mut self,
        ops: impl IntoIterator<Item = UpdateOp>,
    ) -> Result<usize, (usize, UpdateError)> {
        let mut applied = 0;
        for (i, op) in ops.into_iter().enumerate() {
            self.apply(op).map_err(|e| (i, e))?;
            applied += 1;
        }
        Ok(applied)
    }

    /// Folds base + staged state into a fresh model. Deterministic: the
    /// result depends only on the base snapshot and the applied ops (edge
    /// ids are re-assigned in the CSR's canonical `(src, dst)` order, the
    /// same order a from-scratch build would use).
    pub fn compact(&self) -> TicModel {
        let base_graph = self.base.graph();
        let base_et = self.base.edge_topics();

        // Final edge set with its rows, keyed by pair.
        let mut rows: BTreeMap<(NodeId, NodeId), TopicRow> = BTreeMap::new();
        for (e, s, t) in base_graph.edges() {
            match self.edges.get(&(s, t)) {
                Some(None) => {}
                Some(Some(row)) => {
                    rows.insert((s, t), row.clone());
                }
                None => {
                    rows.insert((s, t), base_et.row(e).collect());
                }
            }
        }
        for (&(s, t), state) in &self.edges {
            if let Some(row) = state {
                rows.insert((s, t), row.clone());
            }
        }

        let mut builder = GraphBuilder::new(self.num_nodes());
        for &(s, t) in rows.keys() {
            builder.add_edge(s, t);
        }
        let graph = builder.build();
        let edge_rows: Vec<TopicRow> =
            (0..graph.num_edges() as u32).map(|e| rows[&graph.edge_endpoints(e)].clone()).collect();
        let edge_topics = EdgeTopics::new(edge_rows, self.base.num_topics());

        let tt = self.base.tag_topic();
        let tag_rows: Vec<TopicRow> = (0..self.num_tags() as TagId)
            .map(|w| match self.tags.get(&w) {
                Some(row) => row.clone(),
                None => tt.row(w).collect(),
            })
            .collect();
        let tag_topic = TagTopicMatrix::new(tag_rows, tt.prior().to_vec());

        TicModel::new(graph, tag_topic, edge_topics)
    }

    /// The set of users whose *true* answer can change under the staged
    /// ops, or `None` when that is every user (any tag mutation shifts the
    /// posterior of every tag set).
    ///
    /// A user `u`'s spread depends only on edges reachable from `u`, so an
    /// edge mutation `(x, y)` affects exactly the users that can reach `x`
    /// — computed by reverse BFS from `x` over the in-edges of the base
    /// *and* the compacted graph (an added edge creates reachability that
    /// only exists in the new graph; a removed one only in the old).
    /// `AddUser` affects nobody: the new vertex is isolated.
    pub fn affected_users(&self, new_model: &TicModel) -> Option<Vec<NodeId>> {
        if self.touches_tags() {
            return None;
        }
        // One multi-source reverse BFS per graph, seeded with every
        // mutation source at once (reachability to *any* source is what
        // matters, so the sources need no individual traversals).
        let mut affected: Vec<bool> = vec![false; self.num_nodes()];
        let mut queue: Vec<NodeId> = Vec::new();
        let mut seen: Vec<bool> = Vec::new();
        for graph in [self.base.graph(), new_model.graph()] {
            seen.clear();
            seen.resize(graph.num_nodes(), false);
            queue.clear();
            for &(src, _) in self.edges.keys() {
                // A staged vertex does not exist in the base graph.
                if (src as usize) < graph.num_nodes() && !seen[src as usize] {
                    seen[src as usize] = true;
                    queue.push(src);
                }
            }
            while let Some(v) = queue.pop() {
                affected[v as usize] = true;
                for (_, u) in graph.in_edges(v) {
                    if !seen[u as usize] {
                        seen[u as usize] = true;
                        queue.push(u);
                    }
                }
            }
        }
        Some((0..self.num_nodes() as NodeId).filter(|&v| affected[v as usize]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn overlay() -> ModelOverlay {
        ModelOverlay::new(Arc::new(TicModel::paper_example()))
    }

    #[test]
    fn empty_overlay_compacts_to_the_base() {
        let o = overlay();
        let compacted = o.compact();
        assert_eq!(compacted.graph(), o.base().graph());
        assert_eq!(compacted.edge_topics(), o.base().edge_topics());
        assert_eq!(compacted.tag_topic(), o.base().tag_topic());
    }

    #[test]
    fn add_remove_set_edge_round_trip() {
        let mut o = overlay();
        // u2 (id 1) has no out-edges in Fig. 2; give it one, retune it,
        // and drop an original edge.
        o.apply(UpdateOp::AddEdge { src: 1, dst: 4, topics: vec![(0, 0.3)] }).unwrap();
        o.apply(UpdateOp::SetEdgeTopics { src: 1, dst: 4, topics: vec![(2, 0.7)] }).unwrap();
        o.apply(UpdateOp::RemoveEdge { src: 5, dst: 6 }).unwrap();
        let m = o.compact();
        assert_eq!(m.graph().num_edges(), 7); // 7 - 1 + 1
        let e = m.graph().find_edge(1, 4).unwrap();
        assert_eq!(m.edge_topics().row(e).collect::<Vec<_>>(), vec![(2, 0.7)]);
        assert_eq!(m.graph().find_edge(5, 6), None);
        assert_eq!(o.pending(), 3);
    }

    #[test]
    fn edge_validation_catches_everything() {
        let mut o = overlay();
        let add = |s, d| UpdateOp::AddEdge { src: s, dst: d, topics: vec![(0, 0.5)] };
        assert_eq!(
            o.apply(add(0, 99)),
            Err(UpdateError::UnknownVertex { vertex: 99, num_nodes: 7 })
        );
        assert_eq!(o.apply(add(3, 3)), Err(UpdateError::SelfLoop { vertex: 3 }));
        assert_eq!(o.apply(add(0, 1)), Err(UpdateError::EdgeExists { src: 0, dst: 1 }));
        assert_eq!(
            o.apply(UpdateOp::RemoveEdge { src: 1, dst: 0 }),
            Err(UpdateError::NoSuchEdge { src: 1, dst: 0 })
        );
        assert_eq!(
            o.apply(UpdateOp::AddEdge { src: 1, dst: 0, topics: vec![(9, 0.5)] }),
            Err(UpdateError::BadTopic { topic: 9, num_topics: 3 })
        );
        assert_eq!(
            o.apply(UpdateOp::AddEdge { src: 1, dst: 0, topics: vec![(0, 1.5)] }),
            Err(UpdateError::BadProb { prob: 1.5 })
        );
        assert_eq!(
            o.apply(UpdateOp::AddEdge { src: 1, dst: 0, topics: vec![(0, 0.2), (0, 0.3)] }),
            Err(UpdateError::DuplicateTopic { topic: 0 })
        );
        assert_eq!(o.pending(), 0, "rejected ops are not staged");
        // Removing a staged edge and re-adding it works.
        o.apply(UpdateOp::RemoveEdge { src: 0, dst: 1 }).unwrap();
        assert_eq!(
            o.apply(UpdateOp::SetEdgeTopics { src: 0, dst: 1, topics: vec![(0, 0.9)] }),
            Err(UpdateError::NoSuchEdge { src: 0, dst: 1 })
        );
        o.apply(add(0, 1)).unwrap();
        let m = o.compact();
        let e = m.graph().find_edge(0, 1).unwrap();
        assert_eq!(m.edge_topics().row(e).collect::<Vec<_>>(), vec![(0, 0.5)]);
    }

    #[test]
    fn tag_attach_detach_and_growth() {
        let mut o = overlay();
        assert_eq!(
            o.apply(UpdateOp::AttachTag { tag: 6, topics: vec![] }),
            Err(UpdateError::UnknownTag { tag: 6, num_tags: 4 })
        );
        o.apply(UpdateOp::AttachTag { tag: 4, topics: vec![(0, 0.5), (2, 0.5)] }).unwrap();
        assert_eq!(o.num_tags(), 5);
        o.apply(UpdateOp::DetachTag { tag: 2 }).unwrap();
        let m = o.compact();
        assert_eq!(m.num_tags(), 5);
        assert_eq!(m.tag_topic().row_len(2), 0, "detached row is empty");
        assert_eq!(m.tag_topic().row(4).collect::<Vec<_>>(), vec![(0, 0.5), (2, 0.5)]);
        assert!(o.touches_tags());
        // A detached tag makes sets containing it infeasible.
        assert!(m.posterior(&pitex_model::TagSet::from([2])).is_empty());
    }

    #[test]
    fn add_user_appends_isolated_vertices() {
        let mut o = overlay();
        o.apply(UpdateOp::AddUser).unwrap();
        o.apply(UpdateOp::AddUser).unwrap();
        assert!(o.grows_vertices());
        o.apply(UpdateOp::AddEdge { src: 7, dst: 8, topics: vec![(1, 0.4)] }).unwrap();
        let m = o.compact();
        assert_eq!(m.graph().num_nodes(), 9);
        assert!(m.graph().find_edge(7, 8).is_some());
    }

    #[test]
    fn affected_users_is_reachability_to_the_edge_source() {
        let mut o = overlay();
        // Mutate (5, 6): u6 (id 5) is reached by u1, u3, u4 (0, 2, 3).
        o.apply(UpdateOp::SetEdgeTopics { src: 5, dst: 6, topics: vec![(2, 0.9)] }).unwrap();
        let m = o.compact();
        assert_eq!(o.affected_users(&m), Some(vec![0, 2, 3, 5]));
    }

    #[test]
    fn affected_users_sees_added_reachability() {
        let mut o = overlay();
        // New edge (1, 3): u2 gains reachability to u4's subtree, and u1
        // reaches u2. The mutation site is src = 1.
        o.apply(UpdateOp::AddEdge { src: 1, dst: 3, topics: vec![(0, 0.8)] }).unwrap();
        let m = o.compact();
        assert_eq!(o.affected_users(&m), Some(vec![0, 1]));
    }

    #[test]
    fn tag_ops_affect_everyone() {
        let mut o = overlay();
        o.apply(UpdateOp::DetachTag { tag: 0 }).unwrap();
        let m = o.compact();
        assert_eq!(o.affected_users(&m), None);
    }

    #[test]
    fn add_user_affects_nobody() {
        let mut o = overlay();
        o.apply(UpdateOp::AddUser).unwrap();
        let m = o.compact();
        assert_eq!(o.affected_users(&m), Some(vec![]));
    }

    #[test]
    fn apply_all_reports_the_failing_position() {
        let mut o = overlay();
        let err = o
            .apply_all([
                UpdateOp::AddUser,
                UpdateOp::RemoveEdge { src: 1, dst: 0 },
                UpdateOp::AddUser,
            ])
            .unwrap_err();
        assert_eq!(err.0, 1);
        assert_eq!(o.pending(), 1, "ops before the failure stay staged");
    }

    #[test]
    fn compaction_is_a_pure_function_of_snapshot_and_ops() {
        let ops = [
            UpdateOp::AddEdge { src: 1, dst: 4, topics: vec![(0, 0.3), (1, 0.2)] },
            UpdateOp::RemoveEdge { src: 0, dst: 1 },
            UpdateOp::DetachTag { tag: 1 },
            UpdateOp::AddUser,
        ];
        let build = || {
            let mut o = overlay();
            o.apply_all(ops.iter().cloned()).unwrap();
            o.compact()
        };
        let (a, b) = (build(), build());
        assert_eq!(a.graph(), b.graph());
        assert_eq!(a.edge_topics(), b.edge_topics());
        assert_eq!(a.tag_topic(), b.tag_topic());
    }
}
