//! Case generation and configuration.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-suite configuration; only the case count is meaningful here.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Drives one property through its cases; see [`TestRunner::next_case`].
pub struct TestRunner {
    rng: StdRng,
    case: u32,
    cases: u32,
}

impl TestRunner {
    /// Builds a runner whose stream is determined by `test_name`, so a
    /// failure reproduces on every run without recording a seed file.
    /// `PROPTEST_CASES` overrides the configured count.
    pub fn new(test_name: &str, config: ProptestConfig) -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(config.cases);
        // FNV-1a over the test name: stable across compilers and runs.
        let mut seed: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { rng: StdRng::seed_from_u64(seed), case: 0, cases }
    }

    /// Returns `(case index, RNG)` for the next case, or `None` when done.
    pub fn next_case(&mut self) -> Option<(u32, &mut StdRng)> {
        if self.case == self.cases {
            return None;
        }
        let case = self.case;
        self.case += 1;
        Some((case, &mut self.rng))
    }
}
