//! Vendored stand-in for the [`criterion`](https://docs.rs/criterion)
//! benchmark harness.
//!
//! Supports exactly what the `pitex_bench` targets use: a [`Criterion`]
//! handle whose [`bench_function`](Criterion::bench_function) hands the
//! closure a [`Bencher`], plus the [`criterion_group!`] /
//! [`criterion_main!`] wiring macros. Measurement is a short warm-up
//! followed by a time-boxed sampling loop; each benchmark prints one line
//! with the mean iteration time. There is no statistical analysis, HTML
//! report, or saved baseline (see `vendor/README.md`).
//!
//! Because the bench targets set `harness = false`, `cargo bench` invokes
//! their `main` with harness flags such as `--bench`; [`criterion_main!`]
//! accepts and ignores them, and honors a single positional argument as a
//! substring filter on benchmark names, like the real harness.
//!
//! ## Machine-readable summaries
//!
//! When `PITEX_BENCH_JSON` names a directory, each bench target
//! additionally writes `BENCH_<target>.json` there on exit — one record
//! per benchmark with `name`, `iters` and `ns_per_iter` — so a perf
//! trajectory can be tracked across commits without scraping stdout
//! (see EXPERIMENTS.md).

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One completed benchmark, as written to the JSON summary.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    pub name: String,
    pub iters: u64,
    pub ns_per_iter: f64,
}

/// Results of every `bench_function` run in this process, drained by
/// [`write_json_summary`] at the end of `main`.
static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Entry point handed to each registered benchmark function.
pub struct Criterion {
    filter: Option<String>,
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            filter: None,
            warm_up: Duration::from_millis(100),
            measure: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Restricts runs to benchmarks whose name contains `filter`.
    pub fn with_filter(mut self, filter: impl Into<String>) -> Self {
        self.filter = Some(filter.into());
        self
    }

    /// Runs one named benchmark: warm-up, then timed samples, then a
    /// one-line report on stdout.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measure: self.measure,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let mean = if bencher.iters == 0 {
            Duration::ZERO
        } else {
            bencher.elapsed / bencher.iters as u32
        };
        println!("bench: {name:<50} {mean:>12.3?}/iter ({} iters)", bencher.iters);
        let ns_per_iter = if bencher.iters == 0 {
            0.0
        } else {
            bencher.elapsed.as_nanos() as f64 / bencher.iters as f64
        };
        RESULTS.lock().unwrap().push(BenchRecord {
            name: name.to_string(),
            iters: bencher.iters,
            ns_per_iter,
        });
        self
    }
}

/// Writes the `BENCH_<target>.json` summary into `dir` and returns its
/// path, draining the per-process result registry. Called by
/// [`write_json_summary`]; public for tests and custom harnesses.
pub fn write_json_summary_to(
    target: &str,
    dir: &std::path::Path,
) -> std::io::Result<std::path::PathBuf> {
    let records: Vec<BenchRecord> = std::mem::take(&mut *RESULTS.lock().unwrap());
    let rows: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                r#"{{"name":"{}","iters":{},"ns_per_iter":{:.1}}}"#,
                r.name.replace('\\', "\\\\").replace('"', "\\\""),
                r.iters,
                r.ns_per_iter
            )
        })
        .collect();
    let json = format!(r#"{{"target":"{target}","results":[{}]}}{}"#, rows.join(","), "\n");
    let path = dir.join(format!("BENCH_{target}.json"));
    std::fs::write(&path, json)?;
    Ok(path)
}

/// End-of-run hook invoked by [`criterion_main!`]: writes the JSON summary
/// into `$PITEX_BENCH_JSON` if that directory is configured, and stays
/// silent otherwise (stdout remains the human report either way).
pub fn write_json_summary(target: &str) {
    if let Ok(dir) = std::env::var("PITEX_BENCH_JSON") {
        if let Err(e) = write_json_summary_to(target, std::path::Path::new(&dir)) {
            eprintln!("warning: could not write BENCH_{target}.json to {dir}: {e}");
        }
    }
}

/// Times the routine under benchmark.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly: untimed warm-up until the warm-up budget
    /// elapses, then timed iterations until the measurement budget elapses
    /// (always at least one of each).
    ///
    /// Iterations run in geometrically growing batches with one clock read
    /// per batch, so timer overhead stays amortized to nothing even for
    /// nanosecond-scale routines.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_start = Instant::now();
        loop {
            std::hint::black_box(routine());
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let mut batch = 1u64;
        let run_start = Instant::now();
        loop {
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.iters += batch;
            let elapsed = run_start.elapsed();
            if elapsed >= self.measure {
                self.elapsed = elapsed;
                break;
            }
            batch = batch.saturating_mul(2).min(1 << 20);
        }
    }
}

/// Re-export so `use criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Bundles benchmark functions into a group runner, honoring CLI name
/// filters and ignoring libtest/criterion harness flags.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            if let Some(filter) =
                std::env::args().skip(1).find(|a| !a.starts_with('-'))
            {
                criterion = criterion.with_filter(filter);
            }
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a `harness = false` bench target. On exit the
/// accumulated results are written as `BENCH_<target>.json` when
/// `PITEX_BENCH_JSON` names a directory (`CARGO_CRATE_NAME` is the bench
/// target's name, since every bench file compiles as its own crate).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_summary(env!("CARGO_CRATE_NAME"));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts_iters() {
        let mut c =
            Criterion { filter: None, warm_up: Duration::ZERO, measure: Duration::from_millis(5) };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran >= 2, "warm-up plus at least one timed iteration");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion::default().with_filter("needle");
        let mut ran = false;
        c.bench_function("haystack_only", |b| {
            b.iter(|| ran = true);
        });
        assert!(!ran);
    }

    #[test]
    fn json_summary_has_one_record_per_bench() {
        // Other tests share the global registry; run them through a
        // private name and assert on the drained file content.
        let mut c = Criterion {
            filter: Some("json_smoke".to_string()),
            warm_up: Duration::ZERO,
            measure: Duration::from_millis(2),
        };
        c.bench_function("json_smoke_a", |b| b.iter(|| 1u64 + 1));
        c.bench_function("json_smoke_b", |b| b.iter(|| 2u64 * 2));
        let dir = std::env::temp_dir().join(format!("pitex-bench-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = write_json_summary_to("unit_target", &dir).unwrap();
        assert_eq!(path.file_name().unwrap(), "BENCH_unit_target.json");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.starts_with(r#"{"target":"unit_target","results":["#), "{json}");
        assert!(json.contains(r#""name":"json_smoke_a""#), "{json}");
        assert!(json.contains(r#""name":"json_smoke_b""#), "{json}");
        assert!(json.contains(r#""ns_per_iter":"#), "{json}");
        // The registry drains: a second write no longer carries these
        // records (other tests may race their own into the registry, so
        // only absence is asserted).
        let json2 =
            std::fs::read_to_string(write_json_summary_to("unit_target", &dir).unwrap()).unwrap();
        assert!(!json2.contains("json_smoke_a"), "{json2}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
