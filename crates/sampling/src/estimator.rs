//! The common estimator interface and its result type.

use crate::bounds::SamplingParams;
use pitex_graph::{DiGraph, NodeId};
use pitex_model::EdgeProbs;

/// The outcome of one influence estimation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Estimate {
    /// Estimated `E[I(u|W)]` (the seed user counts, so ≥ 1 whenever the
    /// graph contains `u`).
    pub spread: f64,
    /// Sample instances drawn (0 for exact/tree methods).
    pub samples_used: u64,
    /// Edge probes performed — the complexity measure of §4 and Fig. 13.
    pub edges_visited: u64,
    /// `|R_W(u)|`: vertices reachable from `u` over positive-probability
    /// edges (Table 1).
    pub reachable: usize,
}

impl Estimate {
    /// An estimate for a user with no live out-edges: spread exactly 1.
    pub fn isolated() -> Self {
        Self { spread: 1.0, samples_used: 0, edges_visited: 0, reachable: 1 }
    }
}

/// An influence-spread estimator.
///
/// Implementations receive edge probabilities through `&mut dyn EdgeProbs`
/// so one estimator instance serves real tag sets, Lemma-8 upper-bound
/// graphs and `p_max` graphs alike. The trait is object-safe: the engine
/// selects backends at runtime.
pub trait SpreadEstimator {
    /// Estimates `E[I(u|W)]` on `graph` under the given edge probabilities.
    fn estimate(
        &mut self,
        graph: &DiGraph,
        user: NodeId,
        probs: &mut dyn EdgeProbs,
        params: &SamplingParams,
    ) -> Estimate;

    /// A short human-readable name (`"MC"`, `"RR"`, `"LAZY"`, ...), used by
    /// the experiment harness to label output rows like the paper's plots.
    fn name(&self) -> &'static str;
}

/// Computes `R_W(u)` — vertices reachable from `u` across edges with
/// positive probability — into `out`, reusing `scratch`.
pub(crate) fn reachable_positive(
    graph: &DiGraph,
    user: NodeId,
    probs: &mut dyn EdgeProbs,
    scratch: &mut pitex_graph::traverse::BfsScratch,
    out: &mut Vec<NodeId>,
) {
    out.clear();
    scratch.run(graph, user, out, |e| probs.positive(e));
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitex_graph::gen;
    use pitex_graph::traverse::BfsScratch;
    use pitex_model::FixedEdgeProbs;

    #[test]
    fn reachable_positive_respects_zero_edges() {
        let g = gen::path(4); // 0 -> 1 -> 2 -> 3
        let mut probs = FixedEdgeProbs::new(vec![0.5, 0.0, 0.9]);
        let mut scratch = BfsScratch::new(g.num_nodes());
        let mut out = Vec::new();
        reachable_positive(&g, 0, &mut probs, &mut scratch, &mut out);
        assert_eq!(out, vec![0, 1], "the zero edge cuts off 2 and 3");
    }

    #[test]
    fn isolated_estimate_is_unit_spread() {
        let e = Estimate::isolated();
        assert_eq!(e.spread, 1.0);
        assert_eq!(e.reachable, 1);
    }
}
