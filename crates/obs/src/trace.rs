//! Per-request trace spans: a 64-bit trace id minted at admission, a span
//! recorder measuring against one origin instant, and a whitespace-free
//! wire encoding so the `TRACE` verb can carry the timeline in a single
//! `key=value` token (and the router can splice shard spans into its own).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Mints a fresh trace id: a process-wide counter mixed through
/// splitmix64, seeded once from the shared wall-clock anchor
/// ([`crate::capture::clock_anchor`] — the same clock capture records and
/// flight entries stamp through), so ids are unique within a process and
/// effectively unique across a cluster without coordination. Cheap enough
/// (one `fetch_add` + a few multiplies) that *every* request gets one at
/// admission — `TRACE` only changes whether it is surfaced.
pub fn mint_trace_id() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let seed = *SEED.get_or_init(|| {
        let (_, anchor_us) = crate::capture::clock_anchor();
        if anchor_us == 0 {
            0x9e3779b97f4a7c15
        } else {
            anchor_us | 1
        }
    });
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    // splitmix64 finalizer over seed ⊕ counter.
    let mut z = seed ^ n.wrapping_mul(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A trace id as it travels the wire: 16 lowercase hex digits.
pub fn format_trace_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parses [`format_trace_id`] output (any 1–16 digit hex token).
pub fn parse_trace_id(s: &str) -> Result<u64, String> {
    if s.is_empty() || s.len() > 16 {
        return Err(format!("bad trace id {s:?}"));
    }
    u64::from_str_radix(s, 16).map_err(|_| format!("bad trace id {s:?}"))
}

/// One named interval inside a request, offset from the request's
/// admission instant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Phase name (`queue`, `plan`, `cache`, `execute`, `net`, `route`,
    /// `wal_fsync`, …). Router-side splicing prefixes shard spans with
    /// `shard.`.
    pub name: String,
    /// Microseconds from the request origin to the span start.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
}

/// Encodes spans as `name:start:dur` triples joined by commas, `-` when
/// empty — a single whitespace-free token for the `spans=` field of a
/// `TRACED` reply.
pub fn spans_to_wire(spans: &[Span]) -> String {
    if spans.is_empty() {
        return "-".to_string();
    }
    spans
        .iter()
        .map(|s| format!("{}:{}:{}", s.name, s.start_us, s.dur_us))
        .collect::<Vec<_>>()
        .join(",")
}

/// Parses [`spans_to_wire`] output. Span names may contain dots (for the
/// router's `shard.` prefix) but not colons, commas or whitespace.
pub fn spans_from_wire(s: &str) -> Result<Vec<Span>, String> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|token| {
            let mut parts = token.split(':');
            let (Some(name), Some(start), Some(dur), None) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(format!("bad span token {token:?}"));
            };
            if name.is_empty() || name.contains(char::is_whitespace) {
                return Err(format!("bad span name {name:?}"));
            }
            Ok(Span {
                name: name.to_string(),
                start_us: start.parse().map_err(|_| format!("bad span start {start:?}"))?,
                dur_us: dur.parse().map_err(|_| format!("bad span duration {dur:?}"))?,
            })
        })
        .collect()
}

/// Records spans against one origin instant (the request's admission).
/// Spans can be closed out of order; [`finish`](Self::finish) returns them
/// sorted by start offset.
#[derive(Debug)]
pub struct SpanRecorder {
    origin: Instant,
    spans: Vec<Span>,
}

impl SpanRecorder {
    pub fn new() -> Self {
        Self::starting_at(Instant::now())
    }

    /// A recorder whose offsets measure from `origin` (lets the server
    /// reuse the admission timestamp it already took).
    pub fn starting_at(origin: Instant) -> Self {
        Self { origin, spans: Vec::new() }
    }

    pub fn origin(&self) -> Instant {
        self.origin
    }

    /// Microseconds from the origin to `t`.
    pub fn offset_us(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.origin).as_micros() as u64
    }

    /// Records a span that started at `start` and just ended.
    pub fn record_since(&mut self, name: &str, start: Instant) {
        let start_us = self.offset_us(start);
        let end_us = self.offset_us(Instant::now());
        self.push(Span {
            name: name.to_string(),
            start_us,
            dur_us: end_us.saturating_sub(start_us),
        });
    }

    /// Records a span from explicit offsets (for durations measured
    /// elsewhere, e.g. the worker's own engine timing).
    pub fn record_at(&mut self, name: &str, start_us: u64, dur_us: u64) {
        self.push(Span { name: name.to_string(), start_us, dur_us });
    }

    pub fn push(&mut self, span: Span) {
        self.spans.push(span);
    }

    /// All spans so far, sorted by start offset (stable, so equal starts
    /// keep recording order).
    pub fn finish(mut self) -> Vec<Span> {
        self.spans.sort_by_key(|s| s.start_us);
        self.spans
    }
}

impl Default for SpanRecorder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_distinct_and_round_trip() {
        let a = mint_trace_id();
        let b = mint_trace_id();
        assert_ne!(a, b);
        for id in [a, b, 0, u64::MAX] {
            let s = format_trace_id(id);
            assert_eq!(s.len(), 16);
            assert_eq!(parse_trace_id(&s).unwrap(), id);
        }
        assert!(parse_trace_id("").is_err());
        assert!(parse_trace_id("xyz").is_err());
        assert!(parse_trace_id("00000000000000000").is_err(), "17 digits");
    }

    #[test]
    fn spans_round_trip_the_wire() {
        let spans = vec![
            Span { name: "plan".into(), start_us: 0, dur_us: 12 },
            Span { name: "shard.execute".into(), start_us: 40, dur_us: 900 },
        ];
        let wire = spans_to_wire(&spans);
        assert!(!wire.contains(' '));
        assert_eq!(spans_from_wire(&wire).unwrap(), spans);
        assert_eq!(spans_to_wire(&[]), "-");
        assert_eq!(spans_from_wire("-").unwrap(), Vec::new());
        assert!(spans_from_wire("noduration:1").is_err());
        assert!(spans_from_wire("a:1:2:3").is_err());
        assert!(spans_from_wire(":1:2").is_err());
    }

    #[test]
    fn recorder_sorts_by_start() {
        let mut rec = SpanRecorder::new();
        rec.record_at("late", 100, 5);
        rec.record_at("early", 2, 50);
        let spans = rec.finish();
        assert_eq!(spans[0].name, "early");
        assert_eq!(spans[1].name, "late");
    }

    #[test]
    fn recorder_measures_real_time() {
        let mut rec = SpanRecorder::new();
        let start = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        rec.record_since("sleep", start);
        let spans = rec.finish();
        assert_eq!(spans.len(), 1);
        assert!(spans[0].dur_us >= 1_000, "slept 2ms, recorded {}us", spans[0].dur_us);
    }
}
