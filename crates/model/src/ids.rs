//! Identifier types for tags and topics, and the canonical [`TagSet`].

/// Dense tag identifier (`0..|Ω|`). Tags are the user-interpretable keywords
/// PITEX selects; the paper's datasets use 50–276 of them (Table 2).
pub type TagId = u32;

/// Dense topic identifier (`0..|Z|`). Topics are the latent variables of the
/// TIC model; the paper's datasets use 9–50 of them (Table 2).
pub type TopicId = u16;

/// A candidate tag set `W ⊆ Ω`, stored sorted and deduplicated.
///
/// Tag sets are tiny (`k ≤ K = 10` in the paper's setting) so a sorted
/// `Vec` beats any hashed structure; sortedness also gives canonical
/// equality and cheap subset tests.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TagSet {
    tags: Vec<TagId>,
}

impl TagSet {
    /// The empty tag set (the root of best-effort exploration).
    pub fn empty() -> Self {
        Self { tags: Vec::new() }
    }

    /// Builds a tag set from arbitrary ids; sorts and deduplicates.
    pub fn new(mut tags: Vec<TagId>) -> Self {
        tags.sort_unstable();
        tags.dedup();
        Self { tags }
    }

    /// Builds from a slice.
    pub fn from_slice(tags: &[TagId]) -> Self {
        Self::new(tags.to_vec())
    }

    /// Number of tags.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Sorted tag ids.
    pub fn tags(&self) -> &[TagId] {
        &self.tags
    }

    /// Membership test (binary search).
    pub fn contains(&self, tag: TagId) -> bool {
        self.tags.binary_search(&tag).is_ok()
    }

    /// Returns a new set with `tag` inserted (no-op if present).
    pub fn with(&self, tag: TagId) -> TagSet {
        match self.tags.binary_search(&tag) {
            Ok(_) => self.clone(),
            Err(pos) => {
                let mut tags = Vec::with_capacity(self.tags.len() + 1);
                tags.extend_from_slice(&self.tags[..pos]);
                tags.push(tag);
                tags.extend_from_slice(&self.tags[pos..]);
                TagSet { tags }
            }
        }
    }

    /// True if `self ⊆ other`.
    pub fn is_subset_of(&self, other: &TagSet) -> bool {
        // Both sorted: linear merge scan.
        let mut it = other.tags.iter();
        'outer: for &t in &self.tags {
            for &o in it.by_ref() {
                if o == t {
                    continue 'outer;
                }
                if o > t {
                    return false;
                }
            }
            return false;
        }
        true
    }

    /// Smallest tag id, if any. Best-effort exploration (Appx. C) extends a
    /// partial set only with tags *smaller* than its minimum so every set is
    /// generated exactly once.
    pub fn min_tag(&self) -> Option<TagId> {
        self.tags.first().copied()
    }

    /// Iterates over the tags.
    pub fn iter(&self) -> impl Iterator<Item = TagId> + '_ {
        self.tags.iter().copied()
    }
}

impl From<Vec<TagId>> for TagSet {
    fn from(tags: Vec<TagId>) -> Self {
        TagSet::new(tags)
    }
}

impl<const N: usize> From<[TagId; N]> for TagSet {
    fn from(tags: [TagId; N]) -> Self {
        TagSet::new(tags.to_vec())
    }
}

impl std::fmt::Display for TagSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.tags.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "w{t}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_sorts_and_dedups() {
        let w = TagSet::new(vec![3, 1, 3, 2]);
        assert_eq!(w.tags(), &[1, 2, 3]);
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn with_inserts_in_order() {
        let w = TagSet::from([5, 1]);
        let w2 = w.with(3);
        assert_eq!(w2.tags(), &[1, 3, 5]);
        assert_eq!(w.with(5), w, "inserting an existing tag is a no-op");
    }

    #[test]
    fn subset_tests() {
        let small = TagSet::from([2, 4]);
        let big = TagSet::from([1, 2, 3, 4]);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(TagSet::empty().is_subset_of(&small));
        assert!(!TagSet::from([9]).is_subset_of(&big));
    }

    #[test]
    fn contains_and_min() {
        let w = TagSet::from([7, 2, 9]);
        assert!(w.contains(7));
        assert!(!w.contains(3));
        assert_eq!(w.min_tag(), Some(2));
        assert_eq!(TagSet::empty().min_tag(), None);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(TagSet::from([3, 4]).to_string(), "{w3, w4}");
        assert_eq!(TagSet::empty().to_string(), "{}");
    }

    #[test]
    fn canonical_equality() {
        assert_eq!(TagSet::new(vec![2, 1]), TagSet::new(vec![1, 2, 2]));
    }
}
