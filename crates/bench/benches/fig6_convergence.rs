//! Fig. 6 — Empirical convergence of sampling-based influence estimation.
//!
//! For each dataset: take the user with the largest out-degree and their
//! most influential single tag, then estimate the spread with MC, RR and
//! LAZY at fixed sample counts θ_W ∈ {10³, 10⁴, 10⁵, 10⁶}. The paper's
//! observation: MC and LAZY converge at smaller θ_W than RR (Bernoulli
//! estimates are the worst case of the Chernoff–Hoeffding bound).

use pitex_bench::{banner, prepare, BenchEnv};
use pitex_core::BackendKind;
use pitex_model::{PosteriorEdgeProbs, TagSet};
use pitex_sampling::SamplingParams;

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Fig. 6: estimate vs sample count θ_W for MC / RR / LAZY",
        "top out-degree user, their most influential single tag",
    );

    let thetas: [u64; 4] = [1_000, 10_000, 100_000, 1_000_000];
    for profile in env.small_profiles() {
        let name = profile.name;
        let data = prepare(profile);
        let model = &data.model;
        let user = model.graph().nodes_by_out_degree_desc()[0];

        // Most influential single tag, judged by a quick LAZY pass.
        let probe_params =
            SamplingParams::enumeration(0.7, 1000.0, model.num_tags(), 1).with_seed(env.seed);
        let mut prober = BackendKind::Lazy.make(model);
        let mut cache = model.new_prob_cache();
        let mut best_tag = 0u32;
        let mut best_spread = f64::NEG_INFINITY;
        for tag in 0..model.num_tags() as u32 {
            let posterior = model.posterior(&TagSet::from([tag]));
            if posterior.is_empty() {
                continue;
            }
            let mut probs = PosteriorEdgeProbs::new(model.edge_topics(), &posterior, &mut cache);
            let est = prober.estimate(model.graph(), user, &mut probs, &probe_params);
            if est.spread > best_spread {
                best_spread = est.spread;
                best_tag = tag;
            }
        }

        println!();
        println!(
            "--- {name}: user {user} (out-degree {}), tag w{best_tag} ---",
            model.graph().out_degree(user)
        );
        println!("{:<10} {:>12} {:>12} {:>12}", "theta", "MC", "RR", "LAZY");
        let posterior = model.posterior(&TagSet::from([best_tag]));
        for theta in thetas {
            print!("{:<10}", theta);
            for kind in [BackendKind::Mc, BackendKind::Rr, BackendKind::Lazy] {
                let mut est = kind.make(model);
                let params = probe_params.with_fixed_budget(theta);
                let mut probs =
                    PosteriorEdgeProbs::new(model.edge_topics(), &posterior, &mut cache);
                let e = est.estimate(model.graph(), user, &mut probs, &params);
                print!(" {:>12.4}", e.spread);
            }
            println!();
        }
    }
}
