//! Ablation — the martingale stopping rule (§5.1, line 17 of Algo. 2).
//!
//! Compares one LAZY spread *estimation* under (a) the adaptive
//! accumulated-spread stopping rule and (b) the fixed worst-case sample
//! count `⌈Λ·|R_W(u)|⌉` (the Eq. 2 size at `E[I] = 1`). Early stopping
//! should cut samples by roughly the factor `E[I(u|W)]` at equal answer
//! quality — the rule stops once the accumulated spread certifies the
//! estimate.

use pitex_bench::{banner, default_config, prepare, BenchEnv};
use pitex_core::PitexEngine;
use pitex_datasets::{DatasetProfile, UserGroup};
use pitex_model::PosteriorEdgeProbs;
use pitex_sampling::{LazySampler, SpreadEstimator};
use pitex_support::{OnlineStats, Timer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Ablation: adaptive stopping vs fixed worst-case sampling (LAZY)",
        "per-estimation comparison on each query's winning tag set; k = 3",
    );

    let data = prepare(DatasetProfile::lastfm_like().scaled((0.5 * env.scale).min(1.0)));
    let mut rng = StdRng::seed_from_u64(env.seed);
    let users = data.groups.sample(UserGroup::Mid, env.queries.max(3), &mut rng);

    // Winning tag sets, one per user (found once, outside the timing).
    let mut engine = PitexEngine::with_lazy(&data.model, default_config(env.seed));
    let targets: Vec<(u32, pitex_model::TagSet)> =
        users.iter().map(|&u| (u, engine.query(u, 3).tags)).collect();
    let base_params = engine.sampling_params(3);

    println!();
    println!(
        "{:<12} {:>12} {:>16} {:>12} {:>14}",
        "mode", "time(ms)", "samples/estim.", "spread", "edges/estim."
    );
    for (label, adaptive) in [("adaptive", true), ("fixed", false)] {
        let mut sampler = LazySampler::new(data.model.graph().num_nodes());
        let mut cache = data.model.new_prob_cache();
        let mut time = OnlineStats::new();
        let mut samples = OnlineStats::new();
        let mut spread = OnlineStats::new();
        let mut edges = OnlineStats::new();
        for (user, tags) in &targets {
            let posterior = data.model.posterior(tags);
            let mut probs =
                PosteriorEdgeProbs::new(data.model.edge_topics(), &posterior, &mut cache);
            // Worst-case budget: reachable-set size is what Eq. 2 needs; a
            // cheap pre-pass supplies it for the fixed mode.
            let params = if adaptive {
                base_params
            } else {
                let reach = pitex_graph::bfs_reachable(data.model.graph(), *user, |e| {
                    pitex_model::EdgeProbs::positive(&mut probs, e)
                });
                base_params.with_fixed_budget(base_params.max_iterations(reach.len()))
            };
            let mut probs =
                PosteriorEdgeProbs::new(data.model.edge_topics(), &posterior, &mut cache);
            let timer = Timer::start();
            let est = sampler.estimate(data.model.graph(), *user, &mut probs, &params);
            time.push(timer.seconds() * 1e3);
            samples.push(est.samples_used as f64);
            spread.push(est.spread);
            edges.push(est.edges_visited as f64);
        }
        println!(
            "{:<12} {:>12.3} {:>16.0} {:>12.3} {:>14.0}",
            label,
            time.mean(),
            samples.mean(),
            spread.mean(),
            edges.mean()
        );
    }
    println!();
    println!("expected shape: identical spreads; adaptive divides samples by");
    println!("≈ E[I(u|W)] (the stopping rule certifies early on influential users).");
}
