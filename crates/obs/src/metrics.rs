//! The typed metrics registry: one static [`SCHEMA`] table declares every
//! field the serving stack exports — its exposition kind *and* its
//! cluster merge rule — so the shard `STATS` reply, the router's
//! scatter-gather aggregation and the `METRICS` Prometheus exposition are
//! three views over a single registration table.
//!
//! The PR 4 `cache_len=0` bug (a shard field the router's hand-maintained
//! sum table forgot) is the motivating failure: with the schema, a field
//! without a merge rule fails *loudly* at merge time
//! ([`MergedFields::absorb`] returns an error naming the field), and a
//! registration under an undeclared name panics in debug builds.

use crate::hist::LatencyHistogram;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// How a field renders in the Prometheus exposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone count; exposed as `# TYPE … counter`.
    Counter,
    /// Point-in-time level; exposed as `# TYPE … gauge`.
    Gauge,
    /// A [`LatencyHistogram`] wire string; exposed as a full Prometheus
    /// histogram (cumulative `_bucket{le=…}`, `_sum`, `_count`).
    Histogram,
    /// A non-numeric identity (e.g. `backend=lazy`); exposed as an info
    /// gauge with the value as a label.
    Label,
}

/// How a field aggregates across shard replies in the router's
/// scatter-gather merge. Declared next to the kind at registration — the
/// router reads the rule off the table instead of maintaining its own
/// field list.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MergeRule {
    /// Integer values add (counters, additive gauges like `cache_len`).
    Sum,
    /// Float values add, reported with two decimals (`qps`).
    SumF64,
    /// The numerically largest reply wins, its string kept verbatim
    /// (`prepared`, uptimes).
    Max,
    /// The numerically smallest reply wins (`wal`: 1 only when *every*
    /// replica is durable).
    Min,
    /// Every reply must report the same value; divergence is a merge
    /// error, not a silent pick (`epoch` — mixed epochs mean a broken
    /// barrier and must surface).
    MustAgree,
    /// First non-empty value wins (identity labels like `backend`).
    Label,
    /// Decision-weighted mean: `Σ value·weight / Σ weight`, with the
    /// weight read from the field named by substituting this pattern's
    /// `*` capture into `weight` (e.g. `ewma_*_us` weighted by `plan_*`).
    /// Replies with a non-positive value are skipped — their placeholder
    /// would dilute the estimate. One decimal.
    WeightedMean { weight: &'static str },
    /// [`LatencyHistogram`] wire strings merge bucket-wise.
    HistMerge,
    /// Recomputed after the merge as quantile `q` of the (merged)
    /// histogram field named by substituting the `*` capture into `hist`;
    /// per-shard values are ignored (percentiles do not add).
    Quantile { hist: &'static str, q: f64 },
    /// Recomputed after the merge as `num / (den[0] + den[1])`, four
    /// decimals (`cache_hit_rate`); per-shard values are ignored.
    Ratio { num: &'static str, den: [&'static str; 2] },
}

/// One registered field: a literal name or a single-`*` pattern, its
/// exposition kind, merge rule, and help text.
#[derive(Debug)]
pub struct FieldSpec {
    /// Literal field name, or a pattern with exactly one `*` wildcard
    /// (matching a non-empty infix). Literals beat patterns.
    pub pattern: &'static str,
    pub kind: MetricKind,
    pub merge: MergeRule,
    pub help: &'static str,
}

/// The registration table: every field any PITEX server or router exports
/// through `STATS`/`METRICS`. Shard STATS, the router merge and the
/// Prometheus exposition all derive from this list — adding a field
/// *anywhere* without a row here fails the merge loudly and the
/// completeness tests.
pub static SCHEMA: &[FieldSpec] = &[
    // --- identity / topology ---------------------------------------------
    FieldSpec {
        pattern: "backend",
        kind: MetricKind::Label,
        merge: MergeRule::Label,
        help: "configured engine backend",
    },
    FieldSpec {
        pattern: "epoch",
        kind: MetricKind::Gauge,
        merge: MergeRule::MustAgree,
        help: "snapshot epoch being served",
    },
    FieldSpec {
        pattern: "prepared",
        kind: MetricKind::Gauge,
        merge: MergeRule::Max,
        help: "whether a prepared (staged, unswapped) reload is pending",
    },
    FieldSpec {
        pattern: "workers",
        kind: MetricKind::Gauge,
        merge: MergeRule::Sum,
        help: "query worker threads",
    },
    FieldSpec {
        pattern: "uptime_us",
        kind: MetricKind::Counter,
        merge: MergeRule::Max,
        help: "microseconds since boot",
    },
    FieldSpec {
        pattern: "uptime_s",
        kind: MetricKind::Gauge,
        merge: MergeRule::Max,
        help: "seconds since boot",
    },
    FieldSpec {
        pattern: "shards",
        kind: MetricKind::Gauge,
        merge: MergeRule::MustAgree,
        help: "shards in the cluster map",
    },
    FieldSpec {
        pattern: "replicas",
        kind: MetricKind::Gauge,
        merge: MergeRule::Sum,
        help: "replicas in the cluster map",
    },
    FieldSpec {
        pattern: "replicas_up",
        kind: MetricKind::Gauge,
        merge: MergeRule::Sum,
        help: "replicas passing the health gate",
    },
    FieldSpec {
        pattern: "replies",
        kind: MetricKind::Gauge,
        merge: MergeRule::Sum,
        help: "shard replies folded into this aggregate",
    },
    // --- request counters -------------------------------------------------
    FieldSpec {
        pattern: "requests",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "request lines handled",
    },
    FieldSpec {
        pattern: "ok",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "successful query replies",
    },
    FieldSpec {
        pattern: "busy",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "requests shed because the queue was full",
    },
    FieldSpec {
        pattern: "deadline",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "requests that ran out of deadline",
    },
    FieldSpec {
        pattern: "errors",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "error replies",
    },
    FieldSpec {
        pattern: "worker_panics",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "worker threads that panicked mid-query",
    },
    FieldSpec {
        pattern: "conn_aborted",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "pipelined replies dropped because the connection died first",
    },
    // --- update / reload / WAL --------------------------------------------
    FieldSpec {
        pattern: "updates_applied",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "UPDATE ops accepted into the overlay",
    },
    FieldSpec {
        pattern: "updates_pending",
        kind: MetricKind::Gauge,
        merge: MergeRule::Sum,
        help: "ops staged but not yet folded",
    },
    FieldSpec {
        pattern: "reloads",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "snapshot swaps performed",
    },
    FieldSpec {
        pattern: "wal",
        kind: MetricKind::Gauge,
        merge: MergeRule::Min,
        help: "1 when updates are WAL-durable (cluster: on every replica)",
    },
    FieldSpec {
        pattern: "wal_replayed_records",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "committed batches replayed from the WAL at boot",
    },
    FieldSpec {
        pattern: "wal_replayed_ops",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "ops replayed from the WAL at boot",
    },
    FieldSpec {
        pattern: "wal_truncated_bytes",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "torn-tail bytes truncated from the WAL at boot",
    },
    FieldSpec {
        pattern: "wal_compactions",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "WAL compactions since boot",
    },
    FieldSpec {
        pattern: "sync_served",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "SYNC requests answered with a bundle",
    },
    // --- cache -------------------------------------------------------------
    FieldSpec {
        pattern: "cache_hits",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "result-cache hits",
    },
    FieldSpec {
        pattern: "cache_misses",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "result-cache misses",
    },
    FieldSpec {
        pattern: "cache_insertions",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "result-cache insertions",
    },
    FieldSpec {
        pattern: "cache_evictions",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "result-cache evictions",
    },
    FieldSpec {
        pattern: "cache_len",
        kind: MetricKind::Gauge,
        merge: MergeRule::Sum,
        help: "entries currently cached",
    },
    FieldSpec {
        pattern: "cache_hit_rate",
        kind: MetricKind::Gauge,
        merge: MergeRule::Ratio { num: "cache_hits", den: ["cache_hits", "cache_misses"] },
        help: "hits / (hits + misses)",
    },
    // --- throughput / latency ----------------------------------------------
    FieldSpec {
        pattern: "qps",
        kind: MetricKind::Gauge,
        merge: MergeRule::SumF64,
        help: "successful queries per second since boot",
    },
    FieldSpec {
        pattern: "lat_mean_us",
        kind: MetricKind::Gauge,
        merge: MergeRule::WeightedMean { weight: "ok" },
        help: "mean OK service time",
    },
    // Any histogram field merges bucket-wise, and any *_pNN_us field is
    // recomputed from its histogram after the merge — one row each covers
    // query latency, router-hop latency and the WAL timing families.
    FieldSpec {
        pattern: "*_hist",
        kind: MetricKind::Histogram,
        merge: MergeRule::HistMerge,
        help: "log2-bucketed distribution (bucket:count pairs)",
    },
    FieldSpec {
        pattern: "*_p50_us",
        kind: MetricKind::Gauge,
        merge: MergeRule::Quantile { hist: "*_hist", q: 0.50 },
        help: "p50 of the matching distribution",
    },
    FieldSpec {
        pattern: "*_p90_us",
        kind: MetricKind::Gauge,
        merge: MergeRule::Quantile { hist: "*_hist", q: 0.90 },
        help: "p90 of the matching distribution",
    },
    FieldSpec {
        pattern: "*_p99_us",
        kind: MetricKind::Gauge,
        merge: MergeRule::Quantile { hist: "*_hist", q: 0.99 },
        help: "p99 of the matching distribution",
    },
    // --- planner -----------------------------------------------------------
    FieldSpec {
        pattern: "plan_*",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "plans that chose this backend (plan_degraded: deadline degradations)",
    },
    FieldSpec {
        pattern: "ewma_*_us",
        kind: MetricKind::Gauge,
        merge: MergeRule::WeightedMean { weight: "plan_*" },
        help: "per-backend latency EWMA, decision-weighted across shards",
    },
    // --- observability's own bookkeeping -----------------------------------
    FieldSpec {
        pattern: "flight_recorded",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "request summaries recorded by the flight recorder",
    },
    FieldSpec {
        pattern: "slow_queries",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "requests over the PITEX_OBS_SLOW_US threshold",
    },
    FieldSpec {
        pattern: "capture_records",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "requests sampled into the PWRK workload log",
    },
    FieldSpec {
        pattern: "capture_dropped",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "sampled workload records lost to capture I/O errors",
    },
    // --- router-side fields (prefixed; a router-of-routers would sum) ------
    FieldSpec {
        pattern: "router_requests",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "request lines handled by the router",
    },
    FieldSpec {
        pattern: "router_ok",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "queries the router answered OK",
    },
    FieldSpec {
        pattern: "router_busy",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "queries shed at or behind the router",
    },
    FieldSpec {
        pattern: "router_errors",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "error replies issued by the router",
    },
    FieldSpec {
        pattern: "router_failovers",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "replica failovers inside a call",
    },
    FieldSpec {
        pattern: "router_scatters",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "scatter-gather fan-outs",
    },
    FieldSpec {
        pattern: "router_updates",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "UPDATE broadcasts routed",
    },
    FieldSpec {
        pattern: "router_reloads",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "cluster-wide reload barriers run",
    },
    FieldSpec {
        pattern: "router_uptime_s",
        kind: MetricKind::Gauge,
        merge: MergeRule::Max,
        help: "seconds since router boot",
    },
    FieldSpec {
        pattern: "router_capture_records",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "requests sampled into the router's PWRK workload log",
    },
    FieldSpec {
        pattern: "router_capture_dropped",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "sampled router workload records lost to capture I/O errors",
    },
    FieldSpec {
        pattern: "router_catchup_replicas",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "stale replicas healed in place by the prober",
    },
    FieldSpec {
        pattern: "router_catchup_epochs",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "epoch barriers replayed onto healing replicas",
    },
    FieldSpec {
        pattern: "router_catchup_ops",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "ops replayed onto healing replicas",
    },
    FieldSpec {
        pattern: "router_probes",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "prober sweeps completed",
    },
    FieldSpec {
        pattern: "router_probe_failures",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "replica probes that failed (marked the replica down)",
    },
    FieldSpec {
        pattern: "router_flight_recorded",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "request summaries recorded by the router's flight recorder",
    },
    FieldSpec {
        pattern: "router_slow_queries",
        kind: MetricKind::Counter,
        merge: MergeRule::Sum,
        help: "router-observed requests over the slow threshold",
    },
];

/// Matches `name` against a literal-or-single-`*` pattern; returns the
/// `*` capture (empty string for a literal match).
fn pattern_match<'a>(pattern: &str, name: &'a str) -> Option<&'a str> {
    match pattern.split_once('*') {
        None => (pattern == name).then_some(""),
        Some((prefix, suffix)) => {
            let rest = name.strip_prefix(prefix)?;
            let capture = rest.strip_suffix(suffix)?;
            (!capture.is_empty()).then_some(capture)
        }
    }
}

/// Substitutes `capture` for the `*` in `pattern` (identity for literals).
pub(crate) fn pattern_subst(pattern: &str, capture: &str) -> String {
    pattern.replacen('*', capture, 1)
}

/// Looks a field name up in [`SCHEMA`]: exact (literal) rows win over
/// pattern rows. `None` means the field is not registered — exporting it
/// anywhere is a bug the merge and the completeness tests surface.
///
/// The scatter-gather merge calls this once per field per shard reply, so
/// the literal rows (the vast majority) are indexed into a hash map on
/// first use; only the handful of `*` rows are scanned, in SCHEMA order.
pub fn spec_for(name: &str) -> Option<&'static FieldSpec> {
    use std::collections::HashMap;
    use std::sync::OnceLock;
    static LITERALS: OnceLock<HashMap<&'static str, &'static FieldSpec>> = OnceLock::new();
    static PATTERNS: OnceLock<Vec<&'static FieldSpec>> = OnceLock::new();
    let literals = LITERALS.get_or_init(|| {
        SCHEMA.iter().filter(|s| !s.pattern.contains('*')).map(|s| (s.pattern, s)).collect()
    });
    if let Some(spec) = literals.get(name) {
        return Some(spec);
    }
    PATTERNS
        .get_or_init(|| SCHEMA.iter().filter(|s| s.pattern.contains('*')).collect())
        .iter()
        .copied()
        .find(|s| pattern_match(s.pattern, name).is_some())
}

/// The `*` capture of the pattern row that matched `name` (empty for a
/// literal row).
pub(crate) fn capture_for(spec: &FieldSpec, name: &str) -> String {
    pattern_match(spec.pattern, name).unwrap_or("").to_string()
}

// ---------------------------------------------------------------------------
// Typed handles
// ---------------------------------------------------------------------------

/// A monotone counter handle. Cloning shares the underlying cell, so a
/// subsystem (e.g. a connection pool) can own the handle while the
/// registry exports it.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time level handle (set, not only incremented).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An atomic latency EWMA: the typed metric behind the planner's
/// per-backend cost estimates. Racy read-modify-write by design — a lost
/// update costs one smoothing step, never correctness — so observation is
/// lock-free.
#[derive(Debug)]
pub struct Ewma {
    bits: AtomicU64,
    count: AtomicU64,
}

impl Default for Ewma {
    fn default() -> Self {
        Self::new()
    }
}

impl Ewma {
    pub fn new() -> Self {
        Self { bits: AtomicU64::new(0f64.to_bits()), count: AtomicU64::new(0) }
    }

    /// Feeds one sample: the first observation seeds the estimate, later
    /// ones smooth with factor `alpha`.
    pub fn observe(&self, sample: f64, alpha: f64) {
        let prior = self.count.fetch_add(1, Ordering::Relaxed);
        let old = f64::from_bits(self.bits.load(Ordering::Relaxed));
        let new = if prior == 0 { sample } else { alpha * sample + (1.0 - alpha) * old };
        self.bits.store(new.to_bits(), Ordering::Relaxed);
    }

    /// The current estimate (`None` before the first observation).
    pub fn value(&self) -> Option<f64> {
        if self.count.load(Ordering::Relaxed) == 0 {
            return None;
        }
        Some(f64::from_bits(self.bits.load(Ordering::Relaxed)))
    }

    /// Observations folded in so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies another EWMA's state (snapshot swaps inherit learned costs).
    pub fn inherit(&self, other: &Ewma) {
        self.bits.store(other.bits.load(Ordering::Relaxed), Ordering::Relaxed);
        self.count.store(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Arc<crate::hist::AtomicHistogram>),
}

/// A runtime registry of typed metric handles, each registered under a
/// [`SCHEMA`]-declared name. [`export`](Self::export) yields the current
/// values as `STATS`-ready fields; registration under a name the schema
/// does not know (or twice) panics — that is the "typed" part: the
/// registration table is checked, not advisory.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<(&'static str, Metric)>>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&self, name: &'static str, metric: Metric, kinds: &[MetricKind]) {
        let spec = spec_for(name)
            .unwrap_or_else(|| panic!("metric {name:?} is not declared in the obs SCHEMA"));
        assert!(
            kinds.contains(&spec.kind),
            "metric {name:?} registered as {kinds:?} but declared as {:?}",
            spec.kind
        );
        let mut entries = self.entries.lock().unwrap();
        assert!(entries.iter().all(|(n, _)| *n != name), "metric {name:?} registered twice");
        entries.push((name, metric));
    }

    /// Registers and returns a counter under `name`.
    pub fn counter(&self, name: &'static str) -> Counter {
        let c = Counter::new();
        self.register(name, Metric::Counter(c.clone()), &[MetricKind::Counter]);
        c
    }

    /// Registers and returns a gauge under `name`.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        let g = Gauge::new();
        self.register(name, Metric::Gauge(g.clone()), &[MetricKind::Gauge]);
        g
    }

    /// Registers and returns a lock-free histogram under `name` (which
    /// must be a `*_hist` field).
    pub fn histogram(&self, name: &'static str) -> Arc<crate::hist::AtomicHistogram> {
        let h = Arc::new(crate::hist::AtomicHistogram::new());
        self.register(name, Metric::Histogram(h.clone()), &[MetricKind::Histogram]);
        h
    }

    /// Adopts an externally owned counter (e.g. a connection pool's) so it
    /// exports under `name` alongside the registry's own.
    pub fn adopt_counter(&self, name: &'static str, counter: &Counter) {
        // A counter whose schema row says Gauge is fine: monotone storage,
        // level semantics (`updates_pending` is stored, not added).
        self.register(
            name,
            Metric::Counter(counter.clone()),
            &[MetricKind::Counter, MetricKind::Gauge],
        );
    }

    /// Current values of every registered metric, as `STATS` fields
    /// (histograms as their wire encoding).
    pub fn export(&self) -> Vec<(String, String)> {
        self.entries
            .lock()
            .unwrap()
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => c.get().to_string(),
                    Metric::Gauge(g) => g.get().to_string(),
                    Metric::Histogram(h) => h.snapshot().to_wire(),
                };
                (name.to_string(), value)
            })
            .collect()
    }
}

/// A `STATS` field list under schema enforcement: every `push` asserts (in
/// debug builds — CI runs the tests there) that the name resolves in
/// [`SCHEMA`], so a new field cannot ship without a merge rule.
#[derive(Debug, Default)]
pub struct FieldSet {
    fields: Vec<(String, String)>,
}

impl FieldSet {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, name: impl Into<String>, value: impl ToString) {
        let name = name.into();
        debug_assert!(
            spec_for(&name).is_some(),
            "STATS field {name:?} is not declared in the obs SCHEMA"
        );
        self.fields.push((name, value.to_string()));
    }

    pub fn extend_from_registry(&mut self, registry: &Registry) {
        self.fields.extend(registry.export());
    }

    pub fn into_fields(self) -> Vec<(String, String)> {
        self.fields
    }
}

// ---------------------------------------------------------------------------
// Scatter-gather merge
// ---------------------------------------------------------------------------

/// Accumulates shard `STATS` replies field-by-field under the merge rules
/// declared in [`SCHEMA`] — the router's aggregation, derived from the
/// registration table instead of a hand-maintained field list.
#[derive(Debug, Default)]
pub struct MergedFields {
    replies: u64,
    sums: BTreeMap<String, u64>,
    sums_f64: BTreeMap<String, f64>,
    /// Max/Min keep the winning reply's string verbatim next to its value,
    /// so float formatting survives the merge.
    max: BTreeMap<String, (f64, String)>,
    min: BTreeMap<String, (f64, String)>,
    agree: BTreeMap<String, BTreeSet<String>>,
    labels: BTreeMap<String, String>,
    weighted: BTreeMap<String, (f64, u64)>,
    hists: BTreeMap<String, LatencyHistogram>,
    /// Quantile/Ratio fields seen in replies, recomputed in
    /// [`finish`](Self::finish).
    derived: BTreeSet<String>,
}

impl MergedFields {
    pub fn new() -> Self {
        Self::default()
    }

    /// Replies absorbed so far.
    pub fn replies(&self) -> u64 {
        self.replies
    }

    /// Folds one shard reply in. An unregistered field is an error — the
    /// loud version of the silent drop the hand-maintained table allowed.
    pub fn absorb<'a>(
        &mut self,
        fields: impl Iterator<Item = (&'a str, &'a str)> + Clone,
    ) -> Result<(), String> {
        let lookup = fields.clone();
        let weight_of = |weight_pattern: &'static str, capture: &str| -> u64 {
            let weight_field = pattern_subst(weight_pattern, capture);
            lookup
                .clone()
                .find(|(k, _)| *k == weight_field)
                .and_then(|(_, v)| v.parse::<u64>().ok())
                .unwrap_or(0)
        };
        self.replies += 1;
        for (name, value) in fields {
            let spec = spec_for(name)
                .ok_or_else(|| format!("no merge rule registered for STATS field {name:?}"))?;
            match spec.merge {
                MergeRule::Sum => {
                    *self.sums.entry(name.to_string()).or_insert(0) +=
                        value.parse::<u64>().unwrap_or(0);
                }
                MergeRule::SumF64 => {
                    *self.sums_f64.entry(name.to_string()).or_insert(0.0) +=
                        value.parse::<f64>().unwrap_or(0.0);
                }
                MergeRule::Max => {
                    let v = value.parse::<f64>().unwrap_or(f64::NEG_INFINITY);
                    let entry = self
                        .max
                        .entry(name.to_string())
                        .or_insert((f64::NEG_INFINITY, String::new()));
                    if v > entry.0 || entry.1.is_empty() {
                        *entry = (v, value.to_string());
                    }
                }
                MergeRule::Min => {
                    let v = value.parse::<f64>().unwrap_or(f64::INFINITY);
                    let entry =
                        self.min.entry(name.to_string()).or_insert((f64::INFINITY, String::new()));
                    if v < entry.0 || entry.1.is_empty() {
                        *entry = (v, value.to_string());
                    }
                }
                MergeRule::MustAgree => {
                    self.agree.entry(name.to_string()).or_default().insert(value.to_string());
                }
                MergeRule::Label => {
                    if !value.is_empty() {
                        self.labels.entry(name.to_string()).or_insert_with(|| value.to_string());
                    }
                }
                MergeRule::WeightedMean { weight } => {
                    let v = value.parse::<f64>().unwrap_or(0.0);
                    if v > 0.0 {
                        let w = weight_of(weight, &capture_for(spec, name)).max(1);
                        let entry = self.weighted.entry(name.to_string()).or_insert((0.0, 0));
                        entry.0 += v * w as f64;
                        entry.1 += w;
                    }
                }
                MergeRule::HistMerge => {
                    let hist = LatencyHistogram::from_wire(value)
                        .map_err(|e| format!("bad histogram in field {name:?}: {e}"))?;
                    self.hists.entry(name.to_string()).or_default().merge(&hist);
                }
                MergeRule::Quantile { .. } | MergeRule::Ratio { .. } => {
                    self.derived.insert(name.to_string());
                }
            }
        }
        Ok(())
    }

    /// Finalizes the aggregate: recomputes derived fields (quantiles off
    /// the merged histograms, ratios off the merged sums) and surfaces
    /// must-agree divergence as an error.
    pub fn finish(self) -> Result<Vec<(String, String)>, String> {
        let mut out: Vec<(String, String)> = Vec::new();
        for (name, values) in &self.agree {
            if values.len() > 1 {
                return Err(format!("mixed {name} across shard replies: {values:?}"));
            }
            if let Some(v) = values.iter().next() {
                out.push((name.clone(), v.clone()));
            }
        }
        for (name, sum) in &self.sums {
            out.push((name.clone(), sum.to_string()));
        }
        for (name, sum) in &self.sums_f64 {
            out.push((name.clone(), format!("{sum:.2}")));
        }
        for (name, (_, raw)) in &self.max {
            out.push((name.clone(), raw.clone()));
        }
        for (name, (_, raw)) in &self.min {
            out.push((name.clone(), raw.clone()));
        }
        for (name, value) in &self.labels {
            out.push((name.clone(), value.clone()));
        }
        for (name, (weighted_sum, weight)) in &self.weighted {
            out.push((name.clone(), format!("{:.1}", weighted_sum / (*weight).max(1) as f64)));
        }
        for (name, hist) in &self.hists {
            out.push((name.clone(), hist.to_wire()));
        }
        for name in &self.derived {
            let spec = spec_for(name).expect("derived fields were schema-checked in absorb");
            match spec.merge {
                MergeRule::Quantile { hist, q } => {
                    let hist_field = pattern_subst(hist, &capture_for(spec, name));
                    let value = self.hists.get(&hist_field).map(|h| h.quantile(q)).unwrap_or(0);
                    out.push((name.clone(), value.to_string()));
                }
                MergeRule::Ratio { num, den } => {
                    let get = |k: &str| self.sums.get(k).copied().unwrap_or(0);
                    let denom = get(den[0]) + get(den[1]);
                    let value = if denom == 0 { 0.0 } else { get(num) as f64 / denom as f64 };
                    out.push((name.clone(), format!("{value:.4}")));
                }
                _ => unreachable!("only Quantile/Ratio land in derived"),
            }
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Prometheus exposition
// ---------------------------------------------------------------------------

/// Renders `STATS`-shaped fields as Prometheus text exposition, with
/// `# TYPE` lines read off [`SCHEMA`] and histogram fields expanded into
/// cumulative `_bucket{le=…}` / `_sum` / `_count` series. Every metric is
/// prefixed `pitex_`; the text ends with `# EOF` (which the line-based
/// protocol also uses as the response terminator).
pub fn render_prometheus(fields: impl Iterator<Item = (String, String)>) -> String {
    let mut out = String::new();
    let mut sorted: Vec<(String, String)> = fields.collect();
    sorted.sort();
    for (name, value) in sorted {
        let Some(spec) = spec_for(&name) else { continue };
        let metric = format!("pitex_{name}");
        out.push_str(&format!("# HELP {metric} {}\n", spec.help));
        match spec.kind {
            MetricKind::Counter => {
                out.push_str(&format!("# TYPE {metric} counter\n"));
                out.push_str(&format!("{metric} {}\n", numeric(&value)));
            }
            MetricKind::Gauge => {
                out.push_str(&format!("# TYPE {metric} gauge\n"));
                out.push_str(&format!("{metric} {}\n", numeric(&value)));
            }
            MetricKind::Label => {
                out.push_str(&format!("# TYPE {metric} gauge\n"));
                out.push_str(&format!("{metric}{{value=\"{value}\"}} 1\n"));
            }
            MetricKind::Histogram => {
                let hist = LatencyHistogram::from_wire(&value).unwrap_or_default();
                // Prometheus names the series after the distribution, not
                // the transport field: strip the `_hist` suffix.
                let metric = metric.strip_suffix("_hist").unwrap_or(&metric).to_string();
                out.push_str(&format!("# TYPE {metric} histogram\n"));
                let mut cumulative = 0u64;
                for (b, &n) in hist.buckets().iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    cumulative += n;
                    let le = crate::hist::bucket_upper_bound(b);
                    out.push_str(&format!("{metric}_bucket{{le=\"{le}\"}} {cumulative}\n"));
                }
                out.push_str(&format!(
                    "{metric}_bucket{{le=\"+Inf\"}} {}\n{metric}_sum {}\n{metric}_count {}\n",
                    hist.count(),
                    hist.approx_sum(),
                    hist.count()
                ));
            }
        }
    }
    out.push_str("# EOF\n");
    out
}

/// A value token that Prometheus will parse as a number (non-numeric
/// strings would corrupt the exposition; they should be `Label` kinds).
fn numeric(value: &str) -> String {
    if value.parse::<f64>().is_ok() {
        value.to_string()
    } else {
        "0".to_string()
    }
}

/// One parsed exposition sample: metric name, optional single label
/// (`key="value"`), value.
#[derive(Clone, Debug, PartialEq)]
pub struct PromSample {
    pub name: String,
    pub label: Option<(String, String)>,
    pub value: f64,
}

/// Parses [`render_prometheus`] output back into samples — what the
/// round-trip tests and the CI smoke use to assert the exposition is
/// well-formed. Comment lines (`# …`) are validated to be HELP/TYPE/EOF;
/// anything else must be `name[{k="v"}] value`.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    let mut saw_eof = false;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if comment == "EOF" {
                saw_eof = true;
            } else if !comment.starts_with("HELP ") && !comment.starts_with("TYPE ") {
                return Err(format!("bad exposition comment {line:?}"));
            }
            continue;
        }
        let (series, value) =
            line.rsplit_once(' ').ok_or_else(|| format!("bad exposition line {line:?}"))?;
        let value: f64 = value.parse().map_err(|_| format!("bad exposition value in {line:?}"))?;
        let (name, label) = match series.split_once('{') {
            None => (series.to_string(), None),
            Some((name, rest)) => {
                let body = rest.strip_suffix('}').ok_or_else(|| format!("bad labels {line:?}"))?;
                let (k, v) =
                    body.split_once('=').ok_or_else(|| format!("bad label pair {line:?}"))?;
                let v = v
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| format!("unquoted label value {line:?}"))?;
                (name.to_string(), Some((k.to_string(), v.to_string())))
            }
        };
        samples.push(PromSample { name, label, value });
    }
    if !saw_eof {
        return Err("exposition missing # EOF terminator".to_string());
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_patterns_resolve_expected_fields() {
        for (name, rule) in [
            ("requests", MergeRule::Sum),
            ("epoch", MergeRule::MustAgree),
            ("wal", MergeRule::Min),
            ("qps", MergeRule::SumF64),
            ("plan_lazy", MergeRule::Sum),
            ("plan_degraded", MergeRule::Sum),
            ("lat_hist", MergeRule::HistMerge),
            ("wal_fsync_hist", MergeRule::HistMerge),
            ("router_lat_hist", MergeRule::HistMerge),
        ] {
            assert_eq!(spec_for(name).unwrap().merge, rule, "{name}");
        }
        assert!(matches!(
            spec_for("ewma_lazy_us").unwrap().merge,
            MergeRule::WeightedMean { weight: "plan_*" }
        ));
        assert!(matches!(
            spec_for("lat_p99_us").unwrap().merge,
            MergeRule::Quantile { hist: "*_hist", q } if (q - 0.99).abs() < 1e-9
        ));
        assert!(matches!(spec_for("wal_fsync_p99_us").unwrap().merge, MergeRule::Quantile { .. }));
        assert!(spec_for("made_up_field").is_none());
        // Literals beat patterns: lat_mean_us is not swallowed by any glob.
        assert!(matches!(
            spec_for("lat_mean_us").unwrap().merge,
            MergeRule::WeightedMean { weight: "ok" }
        ));
    }

    #[test]
    fn schema_patterns_are_unique_and_well_formed() {
        let mut seen = BTreeSet::new();
        for spec in SCHEMA {
            assert!(seen.insert(spec.pattern), "duplicate schema row {:?}", spec.pattern);
            assert!(
                spec.pattern.matches('*').count() <= 1,
                "pattern {:?} has more than one wildcard",
                spec.pattern
            );
        }
    }

    #[test]
    fn registry_exports_registered_values() {
        let registry = Registry::new();
        let requests = registry.counter("requests");
        let cache_len = registry.gauge("cache_len");
        let hist = registry.histogram("lat_hist");
        requests.inc();
        requests.add(2);
        cache_len.set(7);
        hist.record(100);
        let fields: BTreeMap<String, String> = registry.export().into_iter().collect();
        assert_eq!(fields["requests"], "3");
        assert_eq!(fields["cache_len"], "7");
        assert_eq!(fields["lat_hist"], "7:1");
    }

    #[test]
    #[should_panic(expected = "not declared")]
    fn registry_rejects_undeclared_names() {
        Registry::new().counter("made_up_field");
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn registry_rejects_duplicates() {
        let registry = Registry::new();
        let _a = registry.counter("requests");
        let _b = registry.counter("requests");
    }

    fn reply(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
    }

    fn absorb_all(merged: &mut MergedFields, pairs: &[(&str, &str)]) {
        let owned = reply(pairs);
        merged.absorb(owned.iter().map(|(k, v)| (k.as_str(), v.as_str()))).unwrap();
    }

    #[test]
    fn merge_follows_declared_rules() {
        let mut merged = MergedFields::new();
        absorb_all(
            &mut merged,
            &[
                ("requests", "10"),
                ("epoch", "3"),
                ("qps", "1.50"),
                ("backend", "lazy"),
                ("prepared", "0"),
                ("wal", "1"),
                ("plan_lazy", "4"),
                ("ewma_lazy_us", "100.0"),
                ("lat_hist", "3:4"),
                ("lat_p50_us", "7"),
                ("cache_hits", "3"),
                ("cache_misses", "1"),
                ("cache_hit_rate", "0.7500"),
            ],
        );
        absorb_all(
            &mut merged,
            &[
                ("requests", "5"),
                ("epoch", "3"),
                ("qps", "0.25"),
                ("backend", "lazy"),
                ("prepared", "1"),
                ("wal", "0"),
                ("plan_lazy", "1"),
                ("ewma_lazy_us", "200.0"),
                ("lat_hist", "5:1"),
                ("lat_p50_us", "31"),
                ("cache_hits", "1"),
                ("cache_misses", "3"),
                ("cache_hit_rate", "0.2500"),
            ],
        );
        let out: BTreeMap<String, String> = merged.finish().unwrap().into_iter().collect();
        assert_eq!(out["requests"], "15");
        assert_eq!(out["epoch"], "3");
        assert_eq!(out["qps"], "1.75");
        assert_eq!(out["backend"], "lazy");
        assert_eq!(out["prepared"], "1");
        assert_eq!(out["wal"], "0", "cluster is durable only if every replica is");
        assert_eq!(out["plan_lazy"], "5");
        // Decision-weighted: (100*4 + 200*1) / 5 = 120.
        assert_eq!(out["ewma_lazy_us"], "120.0");
        // Histogram merged bucket-wise; p50 recomputed from the merge
        // (5 samples, rank 3 of 4 in bucket 3 = [4,7], interpolated to
        // 4 + 3/4*3 = 6), not averaged.
        assert_eq!(out["lat_hist"], "3:4,5:1");
        assert_eq!(out["lat_p50_us"], "6");
        // Hit rate recomputed from merged counts: 4 / 8.
        assert_eq!(out["cache_hit_rate"], "0.5000");
    }

    #[test]
    fn merge_rejects_unregistered_fields() {
        let mut merged = MergedFields::new();
        let owned = reply(&[("no_such_field", "1")]);
        let err = merged.absorb(owned.iter().map(|(k, v)| (k.as_str(), v.as_str()))).unwrap_err();
        assert!(err.contains("no_such_field"), "{err}");
    }

    #[test]
    fn merge_surfaces_epoch_divergence() {
        let mut merged = MergedFields::new();
        absorb_all(&mut merged, &[("epoch", "3")]);
        absorb_all(&mut merged, &[("epoch", "4")]);
        let err = merged.finish().unwrap_err();
        assert!(err.contains("mixed epoch"), "{err}");
    }

    #[test]
    fn ewma_smooths_and_inherits() {
        let e = Ewma::new();
        assert_eq!(e.value(), None);
        e.observe(100.0, 0.2);
        assert_eq!(e.value(), Some(100.0), "first observation seeds");
        e.observe(200.0, 0.2);
        assert!((e.value().unwrap() - 120.0).abs() < 1e-9);
        let f = Ewma::new();
        f.inherit(&e);
        assert_eq!(f.value(), e.value());
        assert_eq!(f.count(), 2);
    }

    #[test]
    fn prometheus_round_trips() {
        let registry = Registry::new();
        let requests = registry.counter("requests");
        requests.add(42);
        let hist = registry.histogram("lat_hist");
        hist.record(3);
        hist.record(100);
        let mut fields = FieldSet::new();
        fields.extend_from_registry(&registry);
        fields.push("backend", "lazy");
        fields.push("qps", "1.25");
        let text = render_prometheus(fields.into_fields().into_iter());
        let samples = parse_prometheus(&text).unwrap();
        let get = |name: &str| samples.iter().find(|s| s.name == name).unwrap();
        assert_eq!(get("pitex_requests").value, 42.0);
        assert_eq!(get("pitex_qps").value, 1.25);
        assert_eq!(get("pitex_backend").label, Some(("value".to_string(), "lazy".to_string())));
        assert_eq!(get("pitex_lat_count").value, 2.0);
        let buckets: Vec<&PromSample> =
            samples.iter().filter(|s| s.name == "pitex_lat_bucket").collect();
        assert_eq!(buckets.last().unwrap().label.as_ref().unwrap().1, "+Inf");
        // Cumulative counts are monotone.
        let values: Vec<f64> = buckets.iter().map(|s| s.value).collect();
        assert!(values.windows(2).all(|w| w[0] <= w[1]), "{values:?}");
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn parse_prometheus_rejects_garbage() {
        assert!(parse_prometheus("pitex_x 1\n").is_err(), "missing EOF");
        assert!(parse_prometheus("pitex_x notanumber\n# EOF\n").is_err());
        assert!(parse_prometheus("# BOGUS comment\n# EOF\n").is_err());
        assert!(parse_prometheus("pitex_x{a=b} 1\n# EOF\n").is_err(), "unquoted label");
    }
}
