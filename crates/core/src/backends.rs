//! Backend naming and selection types.
//!
//! The attribute and construction knowledge for each backend lives in the
//! [`crate::registry`] table; the enums here are the *names* every layer
//! passes around. [`EngineBackend::Auto`] is the planner directive — it
//! resolves to one of the nine concrete constructions per query through
//! [`crate::plan::Planner`].

use crate::registry;
use pitex_model::TicModel;
use pitex_sampling::SpreadEstimator;

/// Every spread-estimation method the paper's evaluation compares (§7.1),
/// plus the exact evaluator for tiny graphs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Monte-Carlo forward sampling.
    Mc,
    /// Reverse-reachable set sampling.
    Rr,
    /// Lazy propagation sampling (§5.1).
    Lazy,
    /// Tree-based baseline (no guarantee).
    Tim,
    /// Possible-world enumeration (tiny graphs only).
    Exact,
}

impl BackendKind {
    /// The online (index-free) methods of Fig. 7/13.
    pub const ONLINE: [BackendKind; 3] = [BackendKind::Rr, BackendKind::Mc, BackendKind::Lazy];

    /// The full-engine backend this kind names.
    pub fn engine_backend(self) -> EngineBackend {
        match self {
            BackendKind::Mc => EngineBackend::Mc,
            BackendKind::Rr => EngineBackend::Rr,
            BackendKind::Lazy => EngineBackend::Lazy,
            BackendKind::Tim => EngineBackend::Tim,
            BackendKind::Exact => EngineBackend::Exact,
        }
    }

    /// Builds the estimator through the registry. Index-based backends
    /// additionally need an index artifact and are constructed through
    /// [`crate::EngineHandle`] instead.
    pub fn make<'a>(self, model: &'a TicModel) -> Box<dyn SpreadEstimator + 'a> {
        self.make_for_nodes(model.graph().num_nodes())
    }

    /// Builds the estimator for a graph of `n` vertices (the samplers are
    /// model-agnostic: edge probabilities arrive through [`pitex_model::EdgeProbs`]).
    pub fn make_for_nodes(self, n: usize) -> Box<dyn SpreadEstimator + 'static> {
        registry::spec(self.engine_backend())
            .expect("every BackendKind is concrete")
            .build_for_nodes(n)
            .expect("every BackendKind is model-free")
    }

    /// Display label matching the paper's plots.
    pub fn label(self) -> &'static str {
        self.engine_backend().label()
    }
}

/// Every engine construction the CLI and the serving layer can name —
/// the online samplers of [`BackendKind`], the LT variant, the three
/// index-based estimators (which additionally need an index artifact; see
/// [`crate::EngineHandle`]) — plus [`Auto`](EngineBackend::Auto), which
/// defers the choice to the cost-based planner per query.
///
/// The discriminants of the nine concrete variants index the
/// [`crate::registry`] table; keep declaration order and
/// [`ALL`](Self::ALL) in sync.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineBackend {
    /// Lazy propagation sampling (§5.1) — the paper's default.
    Lazy,
    /// Monte-Carlo forward sampling.
    Mc,
    /// Reverse-reachable set sampling.
    Rr,
    /// Tree-based baseline.
    Tim,
    /// Possible-world enumeration (tiny graphs only).
    Exact,
    /// Linear Threshold propagation (footnote 1).
    Lt,
    /// INDEXEST over a prebuilt RR-Graph index.
    IndexEst,
    /// INDEXEST+ (edge-cut filtered) over a prebuilt RR-Graph index.
    IndexEstPlus,
    /// DELAYMAT over a prebuilt delay-materialized index.
    DelayMat,
    /// Let the cost-based planner ([`crate::plan::Planner`]) pick the
    /// cheapest suitable backend per query, degrading under tight
    /// deadlines. Not a construction — it resolves to one of the above.
    Auto,
}

impl EngineBackend {
    /// All nine concrete constructions, in CLI listing order (`Auto` is a
    /// directive, not a construction, and is deliberately absent).
    pub const ALL: [EngineBackend; 9] = [
        EngineBackend::Lazy,
        EngineBackend::Mc,
        EngineBackend::Rr,
        EngineBackend::Tim,
        EngineBackend::Exact,
        EngineBackend::Lt,
        EngineBackend::IndexEst,
        EngineBackend::IndexEstPlus,
        EngineBackend::DelayMat,
    ];

    /// Parses the CLI / wire-protocol method name (`lazy`, `mc`, `rr`,
    /// `tim`, `exact`, `lt`, `indexest`, `indexest+`, `delaymat`, `auto`).
    pub fn parse(name: &str) -> Option<EngineBackend> {
        if name == "auto" {
            return Some(EngineBackend::Auto);
        }
        EngineBackend::ALL.into_iter().find(|b| b.cli_name() == name)
    }

    /// The CLI / wire-protocol method name ([`parse`](Self::parse)'s inverse).
    pub fn cli_name(self) -> &'static str {
        match registry::spec(self) {
            Some(spec) => spec.cli_name(),
            None => "auto",
        }
    }

    /// Display label matching the paper's method names.
    pub fn label(self) -> &'static str {
        match registry::spec(self) {
            Some(spec) => spec.label(),
            None => "AUTO",
        }
    }

    /// Whether this construction needs a prebuilt [`pitex_index::RrIndex`].
    /// `Auto` needs nothing — it plans with whatever artifacts exist.
    pub fn needs_rr_index(self) -> bool {
        registry::spec(self).is_some_and(|s| s.artifact() == registry::ArtifactNeed::RrIndex)
    }

    /// Whether this construction needs a prebuilt
    /// [`pitex_index::DelayMatIndex`].
    pub fn needs_delay_index(self) -> bool {
        registry::spec(self).is_some_and(|s| s.artifact() == registry::ArtifactNeed::DelayIndex)
    }
}

impl std::fmt::Display for EngineBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitex_model::{FixedEdgeProbs, TicModel};
    use pitex_sampling::SamplingParams;

    #[test]
    fn labels_match_estimator_names() {
        let model = TicModel::paper_example();
        for kind in [
            BackendKind::Mc,
            BackendKind::Rr,
            BackendKind::Lazy,
            BackendKind::Tim,
            BackendKind::Exact,
        ] {
            let est = kind.make(&model);
            assert_eq!(est.name(), kind.label());
        }
    }

    #[test]
    fn engine_backend_names_round_trip() {
        for backend in EngineBackend::ALL {
            assert_eq!(EngineBackend::parse(backend.cli_name()), Some(backend));
            assert_eq!(backend.to_string(), backend.label());
        }
        assert_eq!(EngineBackend::parse("auto"), Some(EngineBackend::Auto));
        assert_eq!(EngineBackend::Auto.cli_name(), "auto");
        assert_eq!(EngineBackend::Auto.to_string(), "AUTO");
        assert_eq!(EngineBackend::parse("frob"), None);
        assert!(EngineBackend::IndexEstPlus.needs_rr_index());
        assert!(!EngineBackend::IndexEstPlus.needs_delay_index());
        assert!(EngineBackend::DelayMat.needs_delay_index());
        assert!(!EngineBackend::Lazy.needs_rr_index());
        assert!(!EngineBackend::Auto.needs_rr_index(), "auto plans around missing artifacts");
        assert!(!EngineBackend::Auto.needs_delay_index());
    }

    #[test]
    fn all_online_backends_estimate_a_certain_path() {
        let model = TicModel::paper_example();
        let params = SamplingParams::enumeration(0.5, 100.0, 4, 2).with_fixed_budget(500);
        for kind in BackendKind::ONLINE {
            let mut est = kind.make(&model);
            let mut probs = FixedEdgeProbs::uniform(model.graph().num_edges(), 1.0);
            let e = est.estimate(model.graph(), 2, &mut probs, &params);
            // From u3 everything downstream (u4, u6, u7) is reachable.
            assert_eq!(e.spread, 4.0, "{}", kind.label());
        }
    }
}
