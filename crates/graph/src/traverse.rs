//! Deterministic traversal helpers.
//!
//! These compute *certain* reachability (every edge present), used for
//! `R_W(u)` — the set of vertices `u` can possibly reach once zero-probability
//! edges are removed (Table 1 of the paper) — and for reverse reachability
//! inside RR-Graphs.

use crate::csr::{DiGraph, NodeId};
use pitex_support::EpochVisited;

/// Result of a BFS: visited vertices in discovery order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReachableSet {
    /// Vertices reachable from the root (root included), discovery order.
    pub nodes: Vec<NodeId>,
}

impl ReachableSet {
    /// Number of reachable vertices, root included (`|R_W(u)| ≥ 1`).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Forward BFS over edges accepted by `keep_edge(edge_id)`.
///
/// `keep_edge` receives the edge id so callers can consult per-edge model
/// data (`p(e|W) > 0`, `p(e|W) ≥ c(e)`, ...).
pub fn bfs_reachable<F>(graph: &DiGraph, root: NodeId, mut keep_edge: F) -> ReachableSet
where
    F: FnMut(u32) -> bool,
{
    let mut visited = EpochVisited::new(graph.num_nodes());
    visited.reset();
    let mut order = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    visited.insert(root);
    order.push(root);
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        for (e, t) in graph.out_edges(v) {
            if keep_edge(e) && visited.insert(t) {
                order.push(t);
                queue.push_back(t);
            }
        }
    }
    ReachableSet { nodes: order }
}

/// A reusable BFS engine that owns its scratch buffers.
///
/// PITEX evaluates hundreds of candidate tag sets per query; this avoids
/// reallocating the visited set and queue for every one of them.
#[derive(Debug)]
pub struct BfsScratch {
    visited: EpochVisited,
    queue: std::collections::VecDeque<NodeId>,
}

impl BfsScratch {
    pub fn new(num_nodes: usize) -> Self {
        Self { visited: EpochVisited::new(num_nodes), queue: std::collections::VecDeque::new() }
    }

    /// Forward BFS; appends discovered vertices (root included) to `out`.
    pub fn run<F>(&mut self, graph: &DiGraph, root: NodeId, out: &mut Vec<NodeId>, mut keep_edge: F)
    where
        F: FnMut(u32) -> bool,
    {
        self.visited.grow(graph.num_nodes());
        self.visited.reset();
        self.queue.clear();
        self.visited.insert(root);
        out.push(root);
        self.queue.push_back(root);
        while let Some(v) = self.queue.pop_front() {
            for (e, t) in graph.out_edges(v) {
                if keep_edge(e) && self.visited.insert(t) {
                    out.push(t);
                    self.queue.push_back(t);
                }
            }
        }
    }

    /// Reverse BFS (walks in-edges); appends discovered vertices to `out`.
    pub fn run_reverse<F>(
        &mut self,
        graph: &DiGraph,
        root: NodeId,
        out: &mut Vec<NodeId>,
        mut keep_edge: F,
    ) where
        F: FnMut(u32) -> bool,
    {
        self.visited.grow(graph.num_nodes());
        self.visited.reset();
        self.queue.clear();
        self.visited.insert(root);
        out.push(root);
        self.queue.push_back(root);
        while let Some(v) = self.queue.pop_front() {
            for (e, s) in graph.in_edges(v) {
                if keep_edge(e) && self.visited.insert(s) {
                    out.push(s);
                    self.queue.push_back(s);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::GraphBuilder;

    fn chain_with_branch() -> DiGraph {
        // 0 -> 1 -> 2 -> 3, plus 1 -> 4; 5 isolated
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.add_edge(1, 4);
        b.build()
    }

    #[test]
    fn full_reachability() {
        let g = chain_with_branch();
        let r = bfs_reachable(&g, 0, |_| true);
        assert_eq!(r.len(), 5);
        assert!(!r.nodes.contains(&5));
    }

    #[test]
    fn edge_filter_cuts_subtrees() {
        let g = chain_with_branch();
        let cut = g.find_edge(1, 2).unwrap();
        let r = bfs_reachable(&g, 0, |e| e != cut);
        assert_eq!(r.nodes, vec![0, 1, 4]);
    }

    #[test]
    fn root_is_always_reachable() {
        let g = chain_with_branch();
        let r = bfs_reachable(&g, 5, |_| true);
        assert_eq!(r.nodes, vec![5]);
    }

    #[test]
    fn reverse_bfs_finds_ancestors() {
        let g = chain_with_branch();
        let mut scratch = BfsScratch::new(g.num_nodes());
        let mut out = Vec::new();
        scratch.run_reverse(&g, 3, &mut out, |_| true);
        out.sort_unstable();
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn scratch_is_reusable_across_roots() {
        let g = chain_with_branch();
        let mut scratch = BfsScratch::new(g.num_nodes());
        let mut out = Vec::new();
        scratch.run(&g, 0, &mut out, |_| true);
        assert_eq!(out.len(), 5);
        out.clear();
        scratch.run(&g, 2, &mut out, |_| true);
        out.sort_unstable();
        assert_eq!(out, vec![2, 3]);
    }
}
