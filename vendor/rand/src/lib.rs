//! Vendored stand-in for the [`rand`](https://docs.rs/rand) crate (0.8 API
//! subset).
//!
//! PITEX only ever draws from explicitly seeded generators — every sampler,
//! generator and test takes a `SeedableRng::seed_from_u64` seed — so all
//! this crate has to provide is a good deterministic `u64` stream and the
//! handful of `Rng` / [`seq::SliceRandom`] adapters the workspace calls.
//! The stream is xoshiro256++ seeded through SplitMix64, which passes the
//! statistical bars that matter for Monte-Carlo estimation; it is **not**
//! bit-compatible with the real `StdRng` (ChaCha12). See `vendor/README.md`.

pub mod rngs;
pub mod seq;

/// Source of raw random words. Everything else is derived from
/// [`RngCore::next_u64`].
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (the high half of a word).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from the generator's native stream
/// (the `Standard` distribution of the real crate).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a uniform value can be drawn from (`Range` / `RangeInclusive`
/// over the numeric types PITEX samples).
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics on an empty range.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Debiased uniform integer in `[0, span)` via Lemire-style rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection zone keeps the multiply-shift map exactly uniform.
    let zone = span.wrapping_neg() % span;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let wide = (v as u128) * (span as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= zone {
            return hi;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                match (end - start).checked_add(1) {
                    Some(span) => start + uniform_below(rng, span as u64) as $t,
                    // start..=MAX over the full domain: every word is valid.
                    None => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, usize);

impl SampleRange<u64> for core::ops::Range<u64> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + uniform_below(rng, self.end - self.start)
    }
}

impl SampleRange<u64> for core::ops::RangeInclusive<u64> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        match (end - start).checked_add(1) {
            Some(span) => start + uniform_below(rng, span),
            None => rng.next_u64(),
        }
    }
}

macro_rules! float_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing sampling adapters, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws from the type's standard distribution (`[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_in(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic_and_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&w));
            let x = rng.gen_range(5usize..=5);
            assert_eq!(x, 5);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "p=0.3 produced {hits}/100000");
    }
}
