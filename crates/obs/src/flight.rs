//! The flight recorder: an always-on, lock-light ring buffer of the last
//! N request summaries, plus a threshold-triggered slow-query log. When a
//! node misbehaves, `FLIGHT` dumps what it was *just* doing — no need to
//! have had tracing enabled in advance.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One recorded request summary. Verb/backend/outcome are `&'static str`
/// so recording never allocates beyond the slot write.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightEntry {
    pub trace_id: u64,
    /// Wall-clock microseconds since `UNIX_EPOCH` at admission, stamped
    /// through the shared [`crate::capture::wall_now_us`] anchor so
    /// flight entries line up with `PWRK` capture records and `TRACE`
    /// timelines from the same process.
    pub ts_us: u64,
    pub verb: &'static str,
    pub user: u32,
    pub k: usize,
    pub backend: &'static str,
    /// `ok`, `busy`, `deadline`, `error`, …
    pub outcome: &'static str,
    pub us: u64,
}

/// Flight-recorder knobs, read from the environment once at server boot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObsOptions {
    /// Ring capacity (`PITEX_OBS_FLIGHT`, default 256; 0 disables
    /// recording entirely).
    pub flight_capacity: usize,
    /// Slow-query threshold in microseconds (`PITEX_OBS_SLOW_US`,
    /// default 0 = disabled): requests at or over it are copied into the
    /// separate slow log, which survives ring churn.
    pub slow_us: u64,
}

impl Default for ObsOptions {
    fn default() -> Self {
        Self { flight_capacity: 256, slow_us: 0 }
    }
}

impl ObsOptions {
    /// Reads `PITEX_OBS_FLIGHT` / `PITEX_OBS_SLOW_US`, falling back to the
    /// defaults on unset or unparsable values.
    pub fn from_env() -> Self {
        let parse = |key: &str| std::env::var(key).ok().and_then(|v| v.parse::<u64>().ok());
        Self {
            flight_capacity: parse("PITEX_OBS_FLIGHT")
                .map(|v| v as usize)
                .unwrap_or(Self::default().flight_capacity),
            slow_us: parse("PITEX_OBS_SLOW_US").unwrap_or(Self::default().slow_us),
        }
    }
}

struct Slot {
    entry: Mutex<Option<FlightEntry>>,
}

/// How many slow-log entries are retained (oldest evicted first).
const SLOW_LOG_CAP: usize = 64;

/// A fixed-capacity ring of the most recent request summaries.
///
/// Lock-light by construction: writers claim a slot with one relaxed
/// `fetch_add` on the cursor, then take that slot's *own* mutex — two
/// writers contend only when the ring has wrapped all the way around
/// between them, and readers only block the one slot they are copying.
/// No allocation on the record path.
pub struct FlightRecorder {
    slots: Vec<Slot>,
    cursor: AtomicU64,
    recorded: AtomicU64,
    slow_us: u64,
    slow: Mutex<VecDeque<FlightEntry>>,
    slow_count: AtomicU64,
}

impl FlightRecorder {
    pub fn new(options: ObsOptions) -> Self {
        let mut slots = Vec::with_capacity(options.flight_capacity);
        for _ in 0..options.flight_capacity {
            slots.push(Slot { entry: Mutex::new(None) });
        }
        Self {
            slots,
            cursor: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            slow_us: options.slow_us,
            slow: Mutex::new(VecDeque::new()),
            slow_count: AtomicU64::new(0),
        }
    }

    /// Records one request summary. A poisoned slot mutex (a panic while
    /// holding it) just skips the write — the recorder must never take a
    /// request down with it.
    pub fn record(&self, entry: FlightEntry) {
        if self.slow_us > 0 && entry.us >= self.slow_us {
            self.slow_count.fetch_add(1, Ordering::Relaxed);
            if let Ok(mut slow) = self.slow.lock() {
                if slow.len() == SLOW_LOG_CAP {
                    slow.pop_front();
                }
                slow.push_back(entry.clone());
            }
        }
        if self.slots.is_empty() {
            return;
        }
        let slot = self.cursor.fetch_add(1, Ordering::Relaxed) as usize % self.slots.len();
        if let Ok(mut guard) = self.slots[slot].entry.lock() {
            *guard = Some(entry);
            self.recorded.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total entries recorded into the ring since boot.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Requests that crossed the slow threshold since boot.
    pub fn slow_count(&self) -> u64 {
        self.slow_count.load(Ordering::Relaxed)
    }

    /// The ring contents, oldest first. A best-effort snapshot: entries
    /// recorded mid-dump may or may not appear.
    pub fn dump(&self) -> Vec<FlightEntry> {
        let len = self.slots.len();
        if len == 0 {
            return Vec::new();
        }
        let cursor = self.cursor.load(Ordering::Relaxed) as usize;
        let mut out = Vec::new();
        for i in 0..len {
            let slot = (cursor + i) % len;
            if let Ok(guard) = self.slots[slot].entry.lock() {
                if let Some(entry) = guard.as_ref() {
                    out.push(entry.clone());
                }
            }
        }
        out
    }

    /// The retained slow-query entries, oldest first.
    pub fn slow_queries(&self) -> Vec<FlightEntry> {
        self.slow.lock().map(|s| s.iter().cloned().collect()).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(trace_id: u64, us: u64) -> FlightEntry {
        FlightEntry {
            trace_id,
            ts_us: crate::capture::wall_now_us(),
            verb: "QUERY",
            user: 7,
            k: 5,
            backend: "lazy",
            outcome: "ok",
            us,
        }
    }

    #[test]
    fn ring_keeps_the_most_recent_entries() {
        let rec = FlightRecorder::new(ObsOptions { flight_capacity: 4, slow_us: 0 });
        for i in 0..10u64 {
            rec.record(entry(i, 100));
        }
        let dump = rec.dump();
        assert_eq!(dump.len(), 4);
        let ids: Vec<u64> = dump.iter().map(|e| e.trace_id).collect();
        assert_eq!(ids, vec![6, 7, 8, 9], "oldest first, only the last capacity survive");
        assert_eq!(rec.recorded(), 10);
    }

    #[test]
    fn zero_capacity_disables_the_ring() {
        let rec = FlightRecorder::new(ObsOptions { flight_capacity: 0, slow_us: 50 });
        rec.record(entry(1, 100));
        assert!(rec.dump().is_empty());
        assert_eq!(rec.recorded(), 0);
        // …but the slow log still works.
        assert_eq!(rec.slow_count(), 1);
        assert_eq!(rec.slow_queries().len(), 1);
    }

    #[test]
    fn slow_log_triggers_at_threshold_and_is_bounded() {
        let rec = FlightRecorder::new(ObsOptions { flight_capacity: 8, slow_us: 500 });
        rec.record(entry(1, 499));
        rec.record(entry(2, 500));
        rec.record(entry(3, 9_000));
        assert_eq!(rec.slow_count(), 2);
        let slow: Vec<u64> = rec.slow_queries().iter().map(|e| e.trace_id).collect();
        assert_eq!(slow, vec![2, 3]);
        for i in 0..(SLOW_LOG_CAP as u64 + 10) {
            rec.record(entry(100 + i, 1_000));
        }
        assert_eq!(rec.slow_queries().len(), SLOW_LOG_CAP);
        assert_eq!(rec.slow_queries().last().unwrap().trace_id, 100 + SLOW_LOG_CAP as u64 + 9);
    }

    #[test]
    fn slow_threshold_zero_disables_the_slow_log() {
        let rec = FlightRecorder::new(ObsOptions { flight_capacity: 4, slow_us: 0 });
        rec.record(entry(1, u64::MAX));
        assert_eq!(rec.slow_count(), 0);
        assert!(rec.slow_queries().is_empty());
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let rec = std::sync::Arc::new(FlightRecorder::new(ObsOptions {
            flight_capacity: 16,
            slow_us: 0,
        }));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let rec = rec.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    rec.record(entry(t * 1_000 + i, 10));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.recorded(), 2_000);
        assert_eq!(rec.dump().len(), 16);
    }
}
