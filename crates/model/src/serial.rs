//! Binary persistence for complete TIC models.
//!
//! `pitex-datasets` caches generated profiles between benchmark runs; this
//! module round-trips a [`TicModel`] (graph + tag–topic matrix + edge
//! topics) through the workspace codec.

use crate::edge_topics::EdgeTopics;
use crate::tag_topic::TagTopicMatrix;
use crate::tic::TicModel;
use pitex_support::codec::{DecodeError, Decoder, Encoder};

const MAGIC: [u8; 4] = *b"PTIC";
const VERSION: u32 = 1;

/// Errors from model persistence.
#[derive(Debug)]
pub enum ModelIoError {
    Io(std::io::Error),
    Decode(DecodeError),
    Graph(pitex_graph::io::GraphIoError),
}

impl std::fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelIoError::Io(e) => write!(f, "i/o error: {e}"),
            ModelIoError::Decode(e) => write!(f, "decode error: {e}"),
            ModelIoError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for ModelIoError {}

impl From<std::io::Error> for ModelIoError {
    fn from(e: std::io::Error) -> Self {
        ModelIoError::Io(e)
    }
}

impl From<DecodeError> for ModelIoError {
    fn from(e: DecodeError) -> Self {
        ModelIoError::Decode(e)
    }
}

impl From<pitex_graph::io::GraphIoError> for ModelIoError {
    fn from(e: pitex_graph::io::GraphIoError) -> Self {
        ModelIoError::Graph(e)
    }
}

fn encode_sparse_rows(
    enc: &mut Encoder<Vec<u8>>,
    rows: impl Iterator<Item = Vec<(u16, f32)>>,
    count: usize,
) {
    enc.u64(count as u64);
    for row in rows {
        enc.u32(row.len() as u32);
        for (z, p) in row {
            enc.u32(z as u32);
            enc.f32(p);
        }
    }
}

fn decode_sparse_rows(dec: &mut Decoder<&[u8]>) -> Result<Vec<Vec<(u16, f32)>>, DecodeError> {
    let count = dec.u64()? as usize;
    let mut rows = Vec::with_capacity(count);
    for _ in 0..count {
        let len = dec.u32()? as usize;
        let mut row = Vec::with_capacity(len);
        for _ in 0..len {
            let z = dec.u32()? as u16;
            let p = dec.f32()?;
            row.push((z, p));
        }
        rows.push(row);
    }
    Ok(rows)
}

/// Serializes a model to bytes.
pub fn to_bytes(model: &TicModel) -> Vec<u8> {
    let mut enc = Encoder::new(Vec::new());
    enc.header(MAGIC, VERSION);

    let graph_bytes = pitex_graph::io::to_bytes(model.graph());
    enc.u64(graph_bytes.len() as u64);
    let mut enc = {
        let mut buf = enc.into_inner();
        buf.extend_from_slice(&graph_bytes);
        Encoder::new(buf)
    };

    let tt = model.tag_topic();
    enc.u32(tt.num_topics() as u32);
    let prior: Vec<f32> = tt.prior().iter().map(|&p| p as f32).collect();
    enc.f32_slice(&prior);
    encode_sparse_rows(
        &mut enc,
        (0..tt.num_tags() as u32).map(|w| tt.row(w).collect()),
        tt.num_tags(),
    );

    let et = model.edge_topics();
    encode_sparse_rows(
        &mut enc,
        (0..et.num_edges() as u32).map(|e| et.row(e).collect()),
        et.num_edges(),
    );
    enc.into_inner()
}

/// Deserializes a model written by [`to_bytes`].
pub fn from_bytes(bytes: &[u8]) -> Result<TicModel, ModelIoError> {
    let mut dec = Decoder::new(bytes);
    dec.header(MAGIC, VERSION)?;
    let graph_len = dec.u64()? as usize;
    // The graph blob is embedded verbatim; split it off manually.
    let header_len = 8 + 8; // magic+version, graph length
    if bytes.len() < header_len + graph_len {
        return Err(ModelIoError::Decode(DecodeError::UnexpectedEof {
            needed: header_len + graph_len,
            remaining: bytes.len(),
        }));
    }
    let graph = pitex_graph::io::from_bytes(&bytes[header_len..header_len + graph_len])?;
    let mut dec = Decoder::new(&bytes[header_len + graph_len..]);

    let num_topics = dec.u32()? as usize;
    let prior_f32 = dec.f32_slice()?;
    let prior: Vec<f64> = prior_f32.iter().map(|&p| p as f64).collect();
    // Renormalize to absorb f32 rounding so the TagTopicMatrix validator
    // (sum within 1e-6) accepts a round-tripped prior.
    let total: f64 = prior.iter().sum();
    let prior: Vec<f64> = prior.into_iter().map(|p| p / total).collect();
    let tag_rows = decode_sparse_rows(&mut dec)?;
    let edge_rows = decode_sparse_rows(&mut dec)?;

    let tag_topic = TagTopicMatrix::new(tag_rows, prior);
    let edge_topics = EdgeTopics::new(edge_rows, num_topics);
    Ok(TicModel::new(graph, tag_topic, edge_topics))
}

/// Writes a model to a file.
pub fn save<P: AsRef<std::path::Path>>(model: &TicModel, path: P) -> Result<(), ModelIoError> {
    std::fs::write(path, to_bytes(model))?;
    Ok(())
}

/// Reads a model from a file.
pub fn load<P: AsRef<std::path::Path>>(path: P) -> Result<TicModel, ModelIoError> {
    let bytes = std::fs::read(path)?;
    from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genmodel::{random_model, ModelGenConfig};
    use crate::ids::TagSet;
    use pitex_graph::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_example_round_trips() {
        let model = TicModel::paper_example();
        let bytes = to_bytes(&model);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back.graph(), model.graph());
        assert_eq!(back.edge_topics(), model.edge_topics());
        assert_eq!(back.tag_topic().num_tags(), model.tag_topic().num_tags());
        // Posterior semantics survive the round trip.
        let w = TagSet::from([0, 1]);
        let e = model.graph().find_edge(0, 1).unwrap();
        assert!((back.edge_prob(e, &w) - model.edge_prob(e, &w)).abs() < 1e-6);
    }

    #[test]
    fn random_model_round_trips() {
        let mut rng = StdRng::seed_from_u64(17);
        let graph = gen::preferential_attachment(150, 2, 0.3, &mut rng);
        let model = random_model(graph, &ModelGenConfig::default(), &mut rng);
        let back = from_bytes(&to_bytes(&model)).unwrap();
        assert_eq!(back.graph(), model.graph());
        assert_eq!(back.edge_topics(), model.edge_topics());
    }

    #[test]
    fn corrupted_input_fails_cleanly() {
        let model = TicModel::paper_example();
        let mut bytes = to_bytes(&model);
        bytes.truncate(bytes.len() / 2);
        assert!(from_bytes(&bytes).is_err());
        assert!(from_bytes(b"junk").is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("pitex-model-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bin");
        let model = TicModel::paper_example();
        save(&model, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.graph(), model.graph());
        let _ = std::fs::remove_file(&path);
    }
}
