//! Exact influence-spread evaluation by possible-world enumeration.
//!
//! Influence spread is #P-hard in general (§4 cites Chen et al.), but on
//! graphs with few *uncertain* edges (0 < p < 1) it can be computed exactly
//! by summing over all live-edge worlds. This is the ground truth used by
//! the test suite (e.g. to pin the paper's `E[I(u1|{w1,w2})] = 1.5125`) and
//! by the best-effort engine tests, and it doubles as a usable backend for
//! toy graphs.

use crate::bounds::SamplingParams;
use crate::estimator::{Estimate, SpreadEstimator};
use pitex_graph::traverse::bfs_reachable;
use pitex_graph::{DiGraph, EdgeId, NodeId};
use pitex_model::EdgeProbs;

/// Hard cap on uncertain edges: `2^20` worlds ≈ one million BFS runs.
pub const MAX_UNCERTAIN_EDGES: usize = 20;

/// Computes `E[I(u|W)]` exactly.
///
/// # Panics
/// If more than [`MAX_UNCERTAIN_EDGES`] reachable-relevant edges have
/// probability strictly between 0 and 1.
pub fn exact_spread(graph: &DiGraph, user: NodeId, probs: &mut dyn EdgeProbs) -> f64 {
    // Only edges whose source is reachable from `user` over positive edges
    // can matter; everything else can be ignored.
    let reach = bfs_reachable(graph, user, |e| probs.positive(e));
    let mut in_reach = vec![false; graph.num_nodes()];
    for &v in &reach.nodes {
        in_reach[v as usize] = true;
    }
    let mut certain: Vec<EdgeId> = Vec::new();
    let mut uncertain: Vec<(EdgeId, f64)> = Vec::new();
    for (e, s, _) in graph.edges() {
        if !in_reach[s as usize] {
            continue;
        }
        let p = probs.prob(e);
        if p >= 1.0 {
            certain.push(e);
        } else if p > 0.0 {
            uncertain.push((e, p));
        }
    }
    assert!(
        uncertain.len() <= MAX_UNCERTAIN_EDGES,
        "exact evaluation limited to {MAX_UNCERTAIN_EDGES} uncertain edges, got {}",
        uncertain.len()
    );

    let mut live = vec![false; graph.num_edges()];
    for &e in &certain {
        live[e as usize] = true;
    }
    let worlds = 1u64 << uncertain.len();
    let mut total = 0.0f64;
    for mask in 0..worlds {
        let mut weight = 1.0f64;
        for (bit, &(e, p)) in uncertain.iter().enumerate() {
            let alive = mask >> bit & 1 == 1;
            live[e as usize] = alive;
            weight *= if alive { p } else { 1.0 - p };
        }
        if weight == 0.0 {
            continue;
        }
        let world_reach = bfs_reachable(graph, user, |e| live[e as usize]);
        total += weight * world_reach.len() as f64;
    }
    total
}

/// [`SpreadEstimator`] wrapper around [`exact_spread`] (ignores sampling
/// parameters; reports zero samples).
#[derive(Debug, Default)]
pub struct ExactEstimator;

impl ExactEstimator {
    pub fn new() -> Self {
        Self
    }
}

impl SpreadEstimator for ExactEstimator {
    fn estimate(
        &mut self,
        graph: &DiGraph,
        user: NodeId,
        probs: &mut dyn EdgeProbs,
        _params: &SamplingParams,
    ) -> Estimate {
        let reach = bfs_reachable(graph, user, |e| probs.positive(e));
        let spread = exact_spread(graph, user, probs);
        Estimate { spread, samples_used: 0, edges_visited: 0, reachable: reach.len() }
    }

    fn name(&self) -> &'static str {
        "EXACT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitex_graph::gen;
    use pitex_model::FixedEdgeProbs;

    #[test]
    fn deterministic_path() {
        let g = gen::path(4);
        let mut probs = FixedEdgeProbs::uniform(3, 1.0);
        assert_eq!(exact_spread(&g, 0, &mut probs), 4.0);
        assert_eq!(exact_spread(&g, 2, &mut probs), 2.0);
    }

    #[test]
    fn two_node_closed_form() {
        let g = gen::path(2);
        let mut probs = FixedEdgeProbs::uniform(1, 0.37);
        assert!((exact_spread(&g, 0, &mut probs) - 1.37).abs() < 1e-12);
    }

    #[test]
    fn path_closed_form() {
        // E[I] = 1 + p + p² + p³ on a 4-path.
        let g = gen::path(4);
        let p = 0.5f64;
        let mut probs = FixedEdgeProbs::uniform(3, p);
        let expected = 1.0 + p + p * p + p * p * p;
        assert!((exact_spread(&g, 0, &mut probs) - expected).abs() < 1e-12);
    }

    #[test]
    fn star_closed_form() {
        // E[I] = 1 + n·p on a star.
        let n = 10usize;
        let g = gen::star_low_impact(n);
        let p = 0.1f64;
        let mut probs = FixedEdgeProbs::uniform(n, p);
        assert!((exact_spread(&g, 0, &mut probs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn diamond_handles_correlated_paths() {
        // 0->1, 0->2, 1->3, 2->3 with p everywhere:
        // P(3 active) = 1 - (1 - p²)².
        let mut b = pitex_graph::GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 3);
        b.add_edge(2, 3);
        let g = b.build();
        let p = 0.6f64;
        let mut probs = FixedEdgeProbs::uniform(4, p);
        let expected = 1.0 + 2.0 * p + (1.0 - (1.0 - p * p) * (1.0 - p * p));
        assert!((exact_spread(&g, 0, &mut probs) - expected).abs() < 1e-12);
    }

    #[test]
    fn cycle_termination_and_value() {
        // 0 -> 1 -> 0 with p = 0.5: from 0, E[I] = 1.5 (the back edge
        // cannot add vertices).
        let g = gen::cycle(2);
        let mut probs = FixedEdgeProbs::uniform(2, 0.5);
        assert!((exact_spread(&g, 0, &mut probs) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn unreachable_uncertain_edges_do_not_count_against_cap() {
        // A big uncertain component unreachable from the query user must
        // not trip the enumeration cap.
        let mut b = pitex_graph::GraphBuilder::new(40);
        b.add_edge(0, 1);
        for v in 2..39u32 {
            b.add_edge(v, v + 1);
        }
        let g = b.build();
        let mut probs = FixedEdgeProbs::uniform(g.num_edges(), 0.5);
        assert!((exact_spread(&g, 0, &mut probs) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn estimator_wrapper_reports_reachable() {
        let g = gen::path(3);
        let mut probs = FixedEdgeProbs::uniform(2, 0.5);
        let mut exact = ExactEstimator::new();
        let params = SamplingParams::enumeration(0.7, 1000.0, 4, 2);
        let est = exact.estimate(&g, 0, &mut probs, &params);
        assert_eq!(est.reachable, 3);
        assert!((est.spread - 1.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exact evaluation limited")]
    fn rejects_too_many_uncertain_edges() {
        let g = gen::star_low_impact(MAX_UNCERTAIN_EDGES + 1);
        let mut probs = FixedEdgeProbs::uniform(g.num_edges(), 0.5);
        exact_spread(&g, 0, &mut probs);
    }
}
