//! Cross-backend agreement on random small models: every estimator must
//! land within the sampling tolerance of the exact possible-world value,
//! for arbitrary users and tag sets — the empirical face of Theorem 2.

use pitex::model::genmodel::{random_model, EdgeProbKind, ModelGenConfig};
use pitex::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small random model whose positive-edge count stays within the exact
/// evaluator's enumeration budget for the users we query.
fn small_model(seed: u64) -> TicModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = pitex::graph::gen::random_dag(14, 0.18, &mut rng);
    let cfg = ModelGenConfig {
        num_topics: 4,
        num_tags: 8,
        density: 0.5,
        topics_per_edge: (1, 2),
        edge_prob: EdgeProbKind::Uniform { lo: 0.15, hi: 0.7 },
    };
    random_model(graph, &cfg, &mut rng)
}

#[test]
fn samplers_track_exact_values() {
    for seed in [1u64, 2, 3] {
        let model = small_model(seed);
        let mut exact = PitexEngine::with_exact(&model, PitexConfig::default());
        // Tight parameters so the sampled estimates concentrate.
        let config = PitexConfig { epsilon: 0.3, delta: 1000.0, ..Default::default() };
        let mut engines = [
            PitexEngine::with_mc(&model, config),
            PitexEngine::with_rr(&model, config),
            PitexEngine::with_lazy(&model, config),
        ];
        for user in [0u32, 1, 2] {
            for tags in [TagSet::from([0, 3]), TagSet::from([1, 5]), TagSet::from([2, 6, 7])] {
                let truth = exact.estimate_tag_set(user, &tags);
                for engine in engines.iter_mut() {
                    let est = engine.estimate_tag_set(user, &tags);
                    assert!(
                        (est - truth).abs() <= 0.3 * truth + 0.05,
                        "seed {seed} user {user} {tags} {}: {est} vs exact {truth}",
                        engine.backend_name()
                    );
                }
            }
        }
    }
}

#[test]
fn index_backends_track_exact_values() {
    let model = small_model(7);
    let index = RrIndex::build(&model, IndexBudget::Fixed(120_000), 3);
    let delay = DelayMatIndex::build(&model, IndexBudget::Fixed(120_000), 3);
    let mut exact = PitexEngine::with_exact(&model, PitexConfig::default());
    let config = PitexConfig::default();
    let mut engines = [
        PitexEngine::with_index(&model, &index, config),
        PitexEngine::with_index_plus(&model, &index, config),
        PitexEngine::with_delay(&model, &delay, config),
    ];
    for user in [0u32, 2, 5] {
        for tags in [TagSet::from([0, 3]), TagSet::from([1, 5])] {
            let truth = exact.estimate_tag_set(user, &tags);
            for engine in engines.iter_mut() {
                let est = engine.estimate_tag_set(user, &tags);
                assert!(
                    (est - truth).abs() <= 0.25 * truth + 0.1,
                    "user {user} {tags} {}: {est} vs exact {truth}",
                    engine.backend_name()
                );
            }
        }
    }
}

#[test]
fn queries_pick_near_optimal_sets() {
    // Sampling noise may swap near-ties, but the chosen set's *exact*
    // spread must be within the (1−ε)/(1+ε) band of the exact optimum
    // (Theorem 2's statement).
    for seed in [11u64, 12] {
        let model = small_model(seed);
        let mut exact_engine = PitexEngine::with_exact(
            &model,
            PitexConfig { strategy: ExplorationStrategy::Enumerate, ..Default::default() },
        );
        let optimum = exact_engine.query(0, 2);
        let config = PitexConfig { epsilon: 0.3, ..Default::default() };
        for mut engine in
            [PitexEngine::with_mc(&model, config), PitexEngine::with_lazy(&model, config)]
        {
            let picked = engine.query(0, 2);
            let picked_exact = exact_engine.estimate_tag_set(0, &picked.tags);
            let band = (1.0 - 0.3) / (1.0 + 0.3);
            assert!(
                picked_exact >= band * optimum.spread - 1e-9,
                "seed {seed} {}: picked {} with exact spread {picked_exact}, optimum {} at {}",
                engine.backend_name(),
                picked.tags,
                optimum.tags,
                optimum.spread
            );
        }
    }
}

#[test]
fn strategies_agree_under_sampling_backend_with_same_seed() {
    // With a deterministic seed the same estimator produces the same
    // estimates, so enumeration and best-effort must return sets with the
    // same estimated spread value (the argmax may differ only on exact
    // ties).
    let model = small_model(21);
    for strategy in [ExplorationStrategy::Enumerate, ExplorationStrategy::BestEffort] {
        let config = PitexConfig { strategy, epsilon: 0.4, ..Default::default() };
        let mut a = PitexEngine::with_lazy(&model, config);
        let mut b = PitexEngine::with_lazy(&model, config);
        assert_eq!(a.query(1, 2).tags, b.query(1, 2).tags, "{strategy:?} must be deterministic");
    }
}
