//! Backend selection helpers for the experiment harness.

use crate::tim::TimEstimator;
use pitex_index::{DelayMatEstimator, DelayMatIndex, IndexEstimator, IndexPlusEstimator, RrIndex};
use pitex_model::TicModel;
use pitex_sampling::{ExactEstimator, LazySampler, McSampler, RrSampler, SpreadEstimator};

/// Every spread-estimation method the paper's evaluation compares (§7.1),
/// plus the exact evaluator for tiny graphs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Monte-Carlo forward sampling.
    Mc,
    /// Reverse-reachable set sampling.
    Rr,
    /// Lazy propagation sampling (§5.1).
    Lazy,
    /// Tree-based baseline (no guarantee).
    Tim,
    /// Possible-world enumeration (tiny graphs only).
    Exact,
}

impl BackendKind {
    /// The online (index-free) methods of Fig. 7/13.
    pub const ONLINE: [BackendKind; 3] = [BackendKind::Rr, BackendKind::Mc, BackendKind::Lazy];

    /// Builds the estimator. Index-based backends need an index and are
    /// constructed through [`index_backend`]/[`delay_backend`] instead.
    pub fn make<'a>(self, model: &'a TicModel) -> Box<dyn SpreadEstimator + 'a> {
        self.make_for_nodes(model.graph().num_nodes())
    }

    /// Builds the estimator for a graph of `n` vertices (the samplers are
    /// model-agnostic: edge probabilities arrive through [`pitex_model::EdgeProbs`]).
    pub fn make_for_nodes(self, n: usize) -> Box<dyn SpreadEstimator + 'static> {
        match self {
            BackendKind::Mc => Box::new(McSampler::new(n)),
            BackendKind::Rr => Box::new(RrSampler::new(n)),
            BackendKind::Lazy => Box::new(LazySampler::new(n)),
            BackendKind::Tim => Box::new(TimEstimator::new(n)),
            BackendKind::Exact => Box::new(ExactEstimator::new()),
        }
    }

    /// Display label matching the paper's plots.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Mc => "MC",
            BackendKind::Rr => "RR",
            BackendKind::Lazy => "LAZY",
            BackendKind::Tim => "TIM",
            BackendKind::Exact => "EXACT",
        }
    }
}

/// Every engine construction the CLI and the serving layer can name —
/// the online samplers of [`BackendKind`], the LT variant, and the three
/// index-based estimators (which additionally need an index artifact; see
/// [`crate::EngineHandle`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineBackend {
    /// Lazy propagation sampling (§5.1) — the paper's default.
    Lazy,
    /// Monte-Carlo forward sampling.
    Mc,
    /// Reverse-reachable set sampling.
    Rr,
    /// Tree-based baseline.
    Tim,
    /// Possible-world enumeration (tiny graphs only).
    Exact,
    /// Linear Threshold propagation (footnote 1).
    Lt,
    /// INDEXEST over a prebuilt RR-Graph index.
    IndexEst,
    /// INDEXEST+ (edge-cut filtered) over a prebuilt RR-Graph index.
    IndexEstPlus,
    /// DELAYMAT over a prebuilt delay-materialized index.
    DelayMat,
}

impl EngineBackend {
    /// All nine constructions, in CLI listing order.
    pub const ALL: [EngineBackend; 9] = [
        EngineBackend::Lazy,
        EngineBackend::Mc,
        EngineBackend::Rr,
        EngineBackend::Tim,
        EngineBackend::Exact,
        EngineBackend::Lt,
        EngineBackend::IndexEst,
        EngineBackend::IndexEstPlus,
        EngineBackend::DelayMat,
    ];

    /// Parses the CLI / wire-protocol method name (`lazy`, `mc`, `rr`,
    /// `tim`, `exact`, `lt`, `indexest`, `indexest+`, `delaymat`).
    pub fn parse(name: &str) -> Option<EngineBackend> {
        Some(match name {
            "lazy" => EngineBackend::Lazy,
            "mc" => EngineBackend::Mc,
            "rr" => EngineBackend::Rr,
            "tim" => EngineBackend::Tim,
            "exact" => EngineBackend::Exact,
            "lt" => EngineBackend::Lt,
            "indexest" => EngineBackend::IndexEst,
            "indexest+" => EngineBackend::IndexEstPlus,
            "delaymat" => EngineBackend::DelayMat,
            _ => return None,
        })
    }

    /// The CLI / wire-protocol method name ([`parse`](Self::parse)'s inverse).
    pub fn cli_name(self) -> &'static str {
        match self {
            EngineBackend::Lazy => "lazy",
            EngineBackend::Mc => "mc",
            EngineBackend::Rr => "rr",
            EngineBackend::Tim => "tim",
            EngineBackend::Exact => "exact",
            EngineBackend::Lt => "lt",
            EngineBackend::IndexEst => "indexest",
            EngineBackend::IndexEstPlus => "indexest+",
            EngineBackend::DelayMat => "delaymat",
        }
    }

    /// Display label matching the paper's method names.
    pub fn label(self) -> &'static str {
        match self {
            EngineBackend::Lazy => "LAZY",
            EngineBackend::Mc => "MC",
            EngineBackend::Rr => "RR",
            EngineBackend::Tim => "TIM",
            EngineBackend::Exact => "EXACT",
            EngineBackend::Lt => "LT",
            EngineBackend::IndexEst => "INDEXEST",
            EngineBackend::IndexEstPlus => "INDEXEST+",
            EngineBackend::DelayMat => "DELAYMAT",
        }
    }

    /// Whether this construction needs a prebuilt [`RrIndex`].
    pub fn needs_rr_index(self) -> bool {
        matches!(self, EngineBackend::IndexEst | EngineBackend::IndexEstPlus)
    }

    /// Whether this construction needs a prebuilt [`DelayMatIndex`].
    pub fn needs_delay_index(self) -> bool {
        matches!(self, EngineBackend::DelayMat)
    }
}

impl std::fmt::Display for EngineBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// INDEXEST backend over a prebuilt index.
pub fn index_backend<'a>(index: &'a RrIndex) -> Box<dyn SpreadEstimator + 'a> {
    Box::new(IndexEstimator::new(index))
}

/// INDEXEST+ backend over a prebuilt index.
pub fn index_plus_backend<'a>(
    model: &'a TicModel,
    index: &'a RrIndex,
) -> Box<dyn SpreadEstimator + 'a> {
    Box::new(IndexPlusEstimator::new(index, model.edge_topics()))
}

/// DELAYMAT backend over a prebuilt counter index.
pub fn delay_backend<'a>(
    model: &'a TicModel,
    index: &'a DelayMatIndex,
    seed: u64,
) -> Box<dyn SpreadEstimator + 'a> {
    Box::new(DelayMatEstimator::new(index, model.edge_topics(), seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitex_model::{FixedEdgeProbs, TicModel};
    use pitex_sampling::SamplingParams;

    #[test]
    fn labels_match_estimator_names() {
        let model = TicModel::paper_example();
        for kind in [
            BackendKind::Mc,
            BackendKind::Rr,
            BackendKind::Lazy,
            BackendKind::Tim,
            BackendKind::Exact,
        ] {
            let est = kind.make(&model);
            assert_eq!(est.name(), kind.label());
        }
    }

    #[test]
    fn engine_backend_names_round_trip() {
        for backend in EngineBackend::ALL {
            assert_eq!(EngineBackend::parse(backend.cli_name()), Some(backend));
            assert_eq!(backend.to_string(), backend.label());
        }
        assert_eq!(EngineBackend::parse("frob"), None);
        assert!(EngineBackend::IndexEstPlus.needs_rr_index());
        assert!(!EngineBackend::IndexEstPlus.needs_delay_index());
        assert!(EngineBackend::DelayMat.needs_delay_index());
        assert!(!EngineBackend::Lazy.needs_rr_index());
    }

    #[test]
    fn all_online_backends_estimate_a_certain_path() {
        let model = TicModel::paper_example();
        let params = SamplingParams::enumeration(0.5, 100.0, 4, 2).with_fixed_budget(500);
        for kind in BackendKind::ONLINE {
            let mut est = kind.make(&model);
            let mut probs = FixedEdgeProbs::uniform(model.graph().num_edges(), 1.0);
            let e = est.estimate(model.graph(), 2, &mut probs, &params);
            // From u3 everything downstream (u4, u6, u7) is reachable.
            assert_eq!(e.spread, 4.0, "{}", kind.label());
        }
    }
}
