//! Sample-size and stopping-rule machinery (Lemmas 2–3, Appx. B.2–B.3).
//!
//! Lemma 2 (quoted from Tang et al.) gives, for error `ε` and confidence
//! parameter `δ`, the sufficient per-tag-set sample count
//!
//! ```text
//! θ_W = (2+ε)/ε² · |R_W(u)| · ln(2·δ·C(|Ω|,k)) / E[I(u|W)]        (Eq. 2)
//! ```
//!
//! and Lemma 3 shows the same bound serves Monte-Carlo sampling. Since
//! `E[I(u|W)]` is the unknown being estimated, all samplers use the
//! equivalent **martingale stopping rule** (after Tang et al.\[35\], which
//! Algo. 2 line 17 invokes): keep drawing until the *accumulated spread*
//! `s = Σ_i I_{g_i}(u|W)` reaches `Λ·|R_W(u)|`, where
//! `Λ = (2+ε)/ε² · ln(2·δ·C(|Ω|,k))`. Because every iteration contributes at
//! least 1 (the seed user is always active), termination within
//! `⌈Λ·|R_W(u)|⌉` iterations is unconditional.
//!
//! > Faithfulness note: the stopping expression printed in Algo. 2 line 17
//! > is garbled (its `log(2/(δ·C))` goes negative for `δ·C > 2`); the rule
//! > above is the standard one consistent with Lemma 2, and it reproduces
//! > the paper's measured behaviour (sample counts shrink as ε or δ grow —
//! > Figs. 9 and 14).

use pitex_model::combi;

/// How many sample instances an estimator may draw.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SampleBudget {
    /// Adaptive: stop at the Lemma 2/3 accumulated-spread threshold.
    Adaptive,
    /// Exactly this many instances (used by the Fig. 6 convergence study).
    Fixed(u64),
}

/// Accuracy parameters of a PITEX query, shared by all estimators.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SamplingParams {
    /// Relative error target `ε` (paper default 0.7).
    pub epsilon: f64,
    /// Confidence parameter `δ`: guarantees hold with probability
    /// `1 − δ⁻¹` (paper default 1000).
    pub delta: f64,
    /// `ln` of the number of candidate tag sets sharing the union bound:
    /// `ln C(|Ω|, k)` for plain enumeration (Eq. 2), `ln φ_k` for
    /// best-effort (Eq. 12), `ln φ_K` for the index (Eq. 7).
    pub ln_candidates: f64,
    /// Sampling budget policy.
    pub budget: SampleBudget,
    /// Base RNG seed; estimators derive per-user streams from it.
    pub seed: u64,
}

impl SamplingParams {
    /// Parameters for enumerating all `C(num_tags, k)` tag sets, with the
    /// paper's defaults for unspecified knobs.
    pub fn enumeration(epsilon: f64, delta: f64, num_tags: usize, k: usize) -> Self {
        Self {
            epsilon,
            delta,
            ln_candidates: combi::ln_choose(num_tags as u64, k as u64),
            budget: SampleBudget::Adaptive,
            seed: DEFAULT_SEED,
        }
    }

    /// Parameters for best-effort exploration over all sets of size ≤ k.
    pub fn best_effort(epsilon: f64, delta: f64, num_tags: usize, k: usize) -> Self {
        Self {
            epsilon,
            delta,
            ln_candidates: combi::ln_phi(num_tags as u64, k as u64),
            budget: SampleBudget::Adaptive,
            seed: DEFAULT_SEED,
        }
    }

    /// The paper's default setting: ε = 0.7, δ = 1000.
    pub fn paper_defaults(num_tags: usize, k: usize) -> Self {
        Self::best_effort(0.7, 1000.0, num_tags, k)
    }

    /// `Λ = (2+ε)/ε² · (ln 2 + ln δ + ln_candidates)` — the per-unit
    /// accumulated-spread threshold of the stopping rule.
    pub fn lambda(&self) -> f64 {
        assert!(self.epsilon > 0.0 && self.epsilon < 1.0, "ε must be in (0,1)");
        assert!(self.delta > 1.0, "δ must exceed 1");
        let ln_total = (2.0f64).ln() + self.delta.ln() + self.ln_candidates.max(0.0);
        (2.0 + self.epsilon) / (self.epsilon * self.epsilon) * ln_total
    }

    /// Accumulated-spread stopping threshold for a user whose certain
    /// reachable set has `reachable` vertices: `Λ·|R_W(u)|`.
    pub fn stop_threshold(&self, reachable: usize) -> f64 {
        self.lambda() * reachable.max(1) as f64
    }

    /// Hard iteration cap guaranteeing termination (`E[I] ≥ 1` ⇒ the
    /// adaptive rule fires by then).
    pub fn max_iterations(&self, reachable: usize) -> u64 {
        match self.budget {
            SampleBudget::Fixed(n) => n,
            SampleBudget::Adaptive => self.stop_threshold(reachable).ceil() as u64 + 1,
        }
    }

    /// Returns a copy with a fixed sample budget.
    pub fn with_fixed_budget(mut self, samples: u64) -> Self {
        self.budget = SampleBudget::Fixed(samples);
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Theoretical Eq. 2 sample size given a known spread (used in tests and
    /// analysis; online estimation uses the stopping rule instead).
    pub fn theta_w(&self, reachable: usize, expected_spread: f64) -> f64 {
        self.stop_threshold(reachable) / expected_spread.max(1.0)
    }
}

/// Default RNG seed for reproducible query results.
const DEFAULT_SEED: u64 = 0x9173_7e58;

#[cfg(test)]
mod tests {
    use super::*;

    fn params(eps: f64, delta: f64) -> SamplingParams {
        SamplingParams::enumeration(eps, delta, 50, 3)
    }

    #[test]
    fn lambda_decreases_with_epsilon() {
        let a = params(0.3, 1000.0).lambda();
        let b = params(0.7, 1000.0).lambda();
        let c = params(0.9, 1000.0).lambda();
        assert!(a > b && b > c, "{a} > {b} > {c}");
    }

    #[test]
    fn lambda_grows_logarithmically_with_delta() {
        let base = params(0.7, 10.0).lambda();
        let big = params(0.7, 10_000.0).lambda();
        assert!(big > base);
        // log growth: 1000x delta adds a bounded factor, not 1000x.
        assert!(big < base * 4.0, "{big} vs {base}");
    }

    #[test]
    fn lambda_matches_closed_form() {
        let p = params(0.5, 100.0);
        let expected =
            (2.5 / 0.25) * ((2.0f64).ln() + (100.0f64).ln() + pitex_model::combi::ln_choose(50, 3));
        assert!((p.lambda() - expected).abs() < 1e-9);
    }

    #[test]
    fn stop_threshold_scales_with_reachable_set() {
        let p = params(0.7, 1000.0);
        assert!((p.stop_threshold(10) - 10.0 * p.lambda()).abs() < 1e-9);
        assert_eq!(p.stop_threshold(0), p.stop_threshold(1), "clamped at 1");
    }

    #[test]
    fn fixed_budget_overrides_cap() {
        let p = params(0.7, 1000.0).with_fixed_budget(123);
        assert_eq!(p.max_iterations(1_000_000), 123);
    }

    #[test]
    fn best_effort_uses_phi_candidates() {
        let enumeration = SamplingParams::enumeration(0.7, 1000.0, 50, 3);
        let best_effort = SamplingParams::best_effort(0.7, 1000.0, 50, 3);
        assert!(best_effort.ln_candidates > enumeration.ln_candidates);
    }

    #[test]
    fn theta_w_matches_eq2_shape() {
        let p = params(0.7, 1000.0);
        // θ_W is inversely proportional to the expected spread.
        let t1 = p.theta_w(100, 1.0);
        let t10 = p.theta_w(100, 10.0);
        assert!((t1 / t10 - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "ε must be in (0,1)")]
    fn rejects_bad_epsilon() {
        params(1.5, 1000.0).lambda();
    }
}
