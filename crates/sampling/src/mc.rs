//! Monte-Carlo forward sampling (§4).
//!
//! One sample instance starts from `u` and walks the graph, keeping each
//! out-edge of an activated vertex alive with probability `p(e|W)`. The
//! estimate is the mean number of activated vertices. Every out-edge of an
//! activated vertex is probed once per instance — including the many edges
//! that fail — which is exactly the inefficiency Example 2 pinpoints
//! (`ENE_MC = O(|E_W(u)|·E[I(u ⇝ v^{ot}|W)])`, Lemma 5) and lazy
//! propagation removes.

use crate::bounds::{SampleBudget, SamplingParams};
use crate::estimator::{reachable_positive, Estimate, SpreadEstimator};
use pitex_graph::traverse::BfsScratch;
use pitex_graph::{DiGraph, NodeId};
use pitex_model::EdgeProbs;
use pitex_support::EpochVisited;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Forward Monte-Carlo spread estimator.
#[derive(Debug)]
pub struct McSampler {
    visited: EpochVisited,
    frontier: Vec<NodeId>,
    reach_scratch: BfsScratch,
    reach_buf: Vec<NodeId>,
}

impl McSampler {
    pub fn new(num_nodes: usize) -> Self {
        Self {
            visited: EpochVisited::new(num_nodes),
            frontier: Vec::new(),
            reach_scratch: BfsScratch::new(num_nodes),
            reach_buf: Vec::new(),
        }
    }

    /// One IC instance from `user`; returns vertices activated (≥ 1).
    /// `edges_visited` is incremented for every probed edge.
    fn run_instance(
        &mut self,
        graph: &DiGraph,
        user: NodeId,
        probs: &mut dyn EdgeProbs,
        rng: &mut StdRng,
        edges_visited: &mut u64,
    ) -> u64 {
        self.visited.grow(graph.num_nodes());
        self.visited.reset();
        self.frontier.clear();
        self.visited.insert(user);
        self.frontier.push(user);
        let mut activated = 1u64;
        while let Some(v) = self.frontier.pop() {
            for (e, t) in graph.out_edges(v) {
                if self.visited.contains(t) {
                    continue;
                }
                *edges_visited += 1;
                let p = probs.prob(e);
                if p > 0.0 && rng.gen_bool(p.min(1.0)) {
                    self.visited.insert(t);
                    self.frontier.push(t);
                    activated += 1;
                }
            }
        }
        activated
    }
}

impl SpreadEstimator for McSampler {
    fn estimate(
        &mut self,
        graph: &DiGraph,
        user: NodeId,
        probs: &mut dyn EdgeProbs,
        params: &SamplingParams,
    ) -> Estimate {
        reachable_positive(graph, user, probs, &mut self.reach_scratch, &mut self.reach_buf);
        let reachable = self.reach_buf.len();
        if reachable <= 1 {
            return Estimate::isolated();
        }
        let mut rng =
            StdRng::seed_from_u64(params.seed ^ (user as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let threshold = params.stop_threshold(reachable);
        let max_iters = params.max_iterations(reachable);

        let mut accumulated = 0u64;
        let mut edges_visited = 0u64;
        let mut iterations = 0u64;
        while iterations < max_iters {
            accumulated += self.run_instance(graph, user, probs, &mut rng, &mut edges_visited);
            iterations += 1;
            if matches!(params.budget, SampleBudget::Adaptive) && accumulated as f64 >= threshold {
                break;
            }
        }
        Estimate {
            spread: accumulated as f64 / iterations as f64,
            samples_used: iterations,
            edges_visited,
            reachable,
        }
    }

    fn name(&self) -> &'static str {
        "MC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitex_graph::gen;
    use pitex_model::FixedEdgeProbs;

    fn params_fixed(n: u64) -> SamplingParams {
        SamplingParams::enumeration(0.5, 100.0, 10, 2).with_fixed_budget(n)
    }

    #[test]
    fn certain_path_gives_exact_spread() {
        let g = gen::path(5);
        let mut probs = FixedEdgeProbs::uniform(g.num_edges(), 1.0);
        let mut mc = McSampler::new(g.num_nodes());
        let est = mc.estimate(&g, 0, &mut probs, &params_fixed(50));
        assert_eq!(est.spread, 5.0);
        assert_eq!(est.reachable, 5);
    }

    #[test]
    fn isolated_user_short_circuits() {
        let g = gen::path(3);
        let mut probs = FixedEdgeProbs::uniform(g.num_edges(), 0.0);
        let mut mc = McSampler::new(g.num_nodes());
        let est = mc.estimate(&g, 0, &mut probs, &params_fixed(50));
        assert_eq!(est.spread, 1.0);
        assert_eq!(est.samples_used, 0);
    }

    #[test]
    fn star_estimate_converges_to_closed_form() {
        // Fig. 3(a): root + n leaves with p = 1/n each: E[I] = 2.
        let n = 50usize;
        let g = gen::star_low_impact(n);
        let mut probs = FixedEdgeProbs::uniform(g.num_edges(), 1.0 / n as f64);
        let mut mc = McSampler::new(g.num_nodes());
        let est = mc.estimate(&g, 0, &mut probs, &params_fixed(20_000));
        assert!((est.spread - 2.0).abs() < 0.1, "got {}", est.spread);
    }

    #[test]
    fn mc_probes_every_edge_per_instance_on_star() {
        // The Example 2 pathology: each instance probes all n edges.
        let n = 100usize;
        let g = gen::star_low_impact(n);
        let mut probs = FixedEdgeProbs::uniform(g.num_edges(), 1.0 / n as f64);
        let mut mc = McSampler::new(g.num_nodes());
        let iters = 500u64;
        let est = mc.estimate(&g, 0, &mut probs, &params_fixed(iters));
        assert!(
            est.edges_visited >= iters * n as u64,
            "expected ≥ {} probes, got {}",
            iters * n as u64,
            est.edges_visited
        );
    }

    #[test]
    fn adaptive_budget_stops_early() {
        let g = gen::path(4);
        let mut probs = FixedEdgeProbs::uniform(g.num_edges(), 1.0);
        let mut mc = McSampler::new(g.num_nodes());
        let params = SamplingParams::enumeration(0.7, 10.0, 10, 2);
        let est = mc.estimate(&g, 0, &mut probs, &params);
        // Spread 4 per instance: the threshold Λ·4 is met in ≈ Λ iterations.
        let cap = params.max_iterations(est.reachable);
        assert!(est.samples_used < cap, "{} < {cap}", est.samples_used);
        assert_eq!(est.spread, 4.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = gen::star_low_impact(30);
        let mut probs = FixedEdgeProbs::uniform(g.num_edges(), 0.2);
        let mut mc = McSampler::new(g.num_nodes());
        let p = params_fixed(200);
        let a = mc.estimate(&g, 0, &mut probs, &p);
        let b = mc.estimate(&g, 0, &mut probs, &p);
        assert_eq!(a, b);
    }
}
