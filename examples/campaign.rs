//! Campaign scenario: the paper's motivating example (Fig. 1).
//!
//! ```sh
//! cargo run --release --example campaign
//! ```
//!
//! A political campaign wants to know which standpoints ("hashtags") give a
//! candidate the widest reach in a retweet network. We synthesize a
//! lastfm-scale social network with named issue tags, then explore the
//! selling points of a hub account vs a long-tail account, including how the
//! answer changes with k.

use pitex::prelude::*;

/// Issue hashtags for presentation (the synthetic model has 50 tags; we
/// name the first 12 after the paper's motivating example).
const ISSUES: [&str; 12] = [
    "#infrastructure-rebuild",
    "#income-tax-reduction",
    "#social-security",
    "#foreign-policy",
    "#us-china-relation",
    "#healthcare",
    "#education",
    "#climate",
    "#jobs",
    "#housing",
    "#energy",
    "#immigration",
];

fn tag_label(t: TagId) -> String {
    ISSUES.get(t as usize).map(|s| s.to_string()).unwrap_or_else(|| format!("#tag-{t}"))
}

fn main() {
    // A lastfm-sized propagation network with learned-shaped TIC parameters.
    let model = DatasetProfile::lastfm_like().generate();
    let groups = UserGroups::from_graph(model.graph());
    println!(
        "retweet network: {} accounts, {} follow edges",
        model.graph().num_nodes(),
        model.graph().num_edges()
    );

    let candidate = groups.members(UserGroup::High)[0]; // a front-runner
    let longtail = groups.members(UserGroup::Low)[10]; // a "we-media" user

    let mut engine = PitexEngine::with_lazy(&model, PitexConfig::default());
    for (who, user) in [("front-runner", candidate), ("long-tail account", longtail)] {
        println!(
            "\n=== {who}: account {user} ({} followers reached directly) ===",
            model.graph().out_degree(user)
        );
        for k in [1usize, 3] {
            let result = engine.query(user, k);
            let labels: Vec<String> = result.tags.iter().map(tag_label).collect();
            println!(
                "  top-{k} issues: {:<60} expected reach {:>8.2} accounts ({:?})",
                labels.join(", "),
                result.spread,
                result.stats.elapsed
            );
        }
    }

    // The publicity manager's follow-up: how much reach does each individual
    // issue contribute for the front-runner?
    println!("\n=== per-issue reach for the front-runner ===");
    let mut singles: Vec<(f64, TagId)> = (0..model.num_tags() as TagId)
        .map(|t| (engine.estimate_tag_set(candidate, &TagSet::from([t])), t))
        .collect();
    singles.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    for (spread, tag) in singles.iter().take(5) {
        println!("  {:<28} {spread:>8.2}", tag_label(*tag));
    }
}
