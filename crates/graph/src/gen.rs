//! Synthetic graph generators for the PITEX evaluation.
//!
//! The paper evaluates on four real social networks (Table 2). We reproduce
//! their *shape* with standard generators: preferential attachment for
//! power-law degree distributions (lastfm/diggs/dblp-like) and a sparse
//! Erdős–Rényi layer for the low-density twitter retweet graph. The two
//! adversarial graphs of Fig. 3 — where MC respectively RR degrade to
//! quadratic cost — are reproduced verbatim for the complexity experiments.

use crate::csr::{DiGraph, GraphBuilder, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Directed Erdős–Rényi `G(n, m)`: `m` distinct edges drawn uniformly.
///
/// Uses rejection sampling; keeps `m` well below `n·(n−1)` or generation
/// degenerates (asserted).
pub fn erdos_renyi<R: Rng>(n: usize, m: usize, rng: &mut R) -> DiGraph {
    assert!(n >= 2, "need at least two vertices");
    let max_edges = n * (n - 1);
    assert!(m <= max_edges / 2, "requested density too high for rejection sampling");
    let mut builder = GraphBuilder::new(n);
    builder.reserve_edges(m);
    let mut seen = pitex_support::FxHashSet::default();
    seen.reserve(m * 2);
    while seen.len() < m {
        let s = rng.gen_range(0..n as u32);
        let t = rng.gen_range(0..n as u32);
        if s != t && seen.insert((s, t)) {
            builder.add_edge(s, t);
        }
    }
    builder.build()
}

/// Directed preferential attachment (Bollobás-style): vertices arrive one at
/// a time and attach `m_per_node` out-edges; targets are chosen proportional
/// to in-degree + 1. Produces the heavy-tailed in-degree distribution of
/// follower networks; each new vertex also receives an edge from a random
/// earlier vertex with probability `back_prob`, creating the hubs with large
/// *out*-degree that the paper's "high" query group needs.
pub fn preferential_attachment<R: Rng>(
    n: usize,
    m_per_node: usize,
    back_prob: f64,
    rng: &mut R,
) -> DiGraph {
    assert!(n >= 2 && m_per_node >= 1);
    let mut builder = GraphBuilder::new(n);
    builder.reserve_edges(n * m_per_node);
    // Repeated-target list: each time v gains an in-edge we push v, so a
    // uniform draw from the list is proportional to (in-degree + 1).
    let mut targets: Vec<NodeId> = Vec::with_capacity(2 * n * m_per_node);
    targets.push(0);
    for v in 1..n as u32 {
        let picks = m_per_node.min(v as usize);
        // Draw distinct targets: duplicates would be collapsed by the CSR
        // builder and silently shrink |E| ~20% below the profile's target on
        // hub-heavy shapes. `targets[start..]` is exactly this vertex's
        // accepted picks, so it doubles as the dedup set; bounded retries
        // keep a dominant hub at tiny v from spinning on duplicates.
        let start = targets.len();
        let mut attempts = 0;
        while targets.len() - start < picks && attempts < picks * 20 {
            attempts += 1;
            let t = *targets.choose(rng).expect("target list non-empty");
            // `t != v` is defensive: today `targets` holds only vertices < v
            // here (v is pushed after this loop), so retries come solely
            // from the duplicate check.
            if t != v && !targets[start..].contains(&t) {
                builder.add_edge(v, t);
                targets.push(t);
            }
        }
        if rng.gen_bool(back_prob) {
            let s = rng.gen_range(0..v);
            builder.add_edge(s, v);
            targets.push(v);
        }
        targets.push(v);
    }
    builder.build()
}

/// Fig. 3(a): a root with an edge to each of `n` leaves.
///
/// "a user who has a lot of followers but has a low impact": the root is
/// vertex 0; leaves are `1..=n`. With edge probability `1/n`, MC sampling
/// probes all `n` edges per instance while the expected spread is 2, giving
/// the quadratic blow-up of Example 2.
pub fn star_low_impact(n: usize) -> DiGraph {
    let mut builder = GraphBuilder::new(n + 1);
    for leaf in 1..=n as u32 {
        builder.add_edge(0, leaf);
    }
    builder.build()
}

/// Fig. 3(b): a celebrity `v` with edges to `n` followers, and `n` extra
/// fans each pointing at `v`.
///
/// Layout: vertex 0 is the celebrity, `1..=n` are the followers
/// (celebrity → follower), `n+1..=2n` are the fans (fan → celebrity).
/// With `p(fan→v) = 1/n` and `p(v→follower) = 1`, RR sampling probes all of
/// `v`'s in-edges per reverse instance (Example 3).
pub fn celebrity(n: usize) -> DiGraph {
    let mut builder = GraphBuilder::new(2 * n + 1);
    for follower in 1..=n as u32 {
        builder.add_edge(0, follower);
    }
    for fan in (n as u32 + 1)..=(2 * n as u32) {
        builder.add_edge(fan, 0);
    }
    builder.build()
}

/// A directed path `0 → 1 → … → n−1`.
pub fn path(n: usize) -> DiGraph {
    let mut builder = GraphBuilder::new(n);
    for v in 0..n.saturating_sub(1) as u32 {
        builder.add_edge(v, v + 1);
    }
    builder.build()
}

/// A directed cycle over `n ≥ 2` vertices.
pub fn cycle(n: usize) -> DiGraph {
    assert!(n >= 2);
    let mut builder = GraphBuilder::new(n);
    for v in 0..n as u32 {
        builder.add_edge(v, (v + 1) % n as u32);
    }
    builder.build()
}

/// Complete directed graph on `n` vertices (both directions, no loops).
pub fn complete(n: usize) -> DiGraph {
    let mut builder = GraphBuilder::new(n);
    for s in 0..n as u32 {
        for t in 0..n as u32 {
            if s != t {
                builder.add_edge(s, t);
            }
        }
    }
    builder.build()
}

/// A random DAG: each ordered pair `(i, j)` with `i < j` becomes an edge
/// with probability `p`. Useful for exact-evaluation tests (no cycles).
pub fn random_dag<R: Rng>(n: usize, p: f64, rng: &mut R) -> DiGraph {
    let mut builder = GraphBuilder::new(n);
    for i in 0..n as u32 {
        for j in (i + 1)..n as u32 {
            if rng.gen_bool(p) {
                builder.add_edge(i, j);
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erdos_renyi_has_requested_edges() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = erdos_renyi(100, 500, &mut rng);
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 500);
    }

    #[test]
    fn preferential_attachment_is_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(42);
        let g = preferential_attachment(2000, 3, 0.3, &mut rng);
        assert_eq!(g.num_nodes(), 2000);
        let max_in = g.nodes().map(|v| g.in_degree(v)).max().unwrap();
        let mean_in = g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(
            max_in as f64 > 8.0 * mean_in,
            "expected a hub: max in-degree {max_in} vs mean {mean_in:.2}"
        );
    }

    #[test]
    fn preferential_attachment_creates_out_hubs() {
        let mut rng = StdRng::seed_from_u64(43);
        let g = preferential_attachment(2000, 3, 0.3, &mut rng);
        let max_out = g.nodes().map(|v| g.out_degree(v)).max().unwrap();
        assert!(max_out >= 4, "back edges should give some vertex out-degree above m");
    }

    #[test]
    fn star_shape_matches_fig3a() {
        let g = star_low_impact(50);
        assert_eq!(g.num_nodes(), 51);
        assert_eq!(g.num_edges(), 50);
        assert_eq!(g.out_degree(0), 50);
        assert!(g.nodes().skip(1).all(|v| g.out_degree(v) == 0 && g.in_degree(v) == 1));
    }

    #[test]
    fn celebrity_shape_matches_fig3b() {
        let n = 40;
        let g = celebrity(n);
        assert_eq!(g.num_nodes(), 2 * n + 1);
        assert_eq!(g.num_edges(), 2 * n);
        assert_eq!(g.out_degree(0), n);
        assert_eq!(g.in_degree(0), n);
    }

    #[test]
    fn path_and_cycle() {
        let p = path(5);
        assert_eq!(p.num_edges(), 4);
        let c = cycle(5);
        assert_eq!(c.num_edges(), 5);
        assert!(c.nodes().all(|v| c.out_degree(v) == 1 && c.in_degree(v) == 1));
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 30);
    }

    #[test]
    fn random_dag_is_acyclic_by_construction() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = random_dag(30, 0.2, &mut rng);
        for (_, s, t) in g.edges() {
            assert!(s < t, "edges must go forward in topological order");
        }
    }

    #[test]
    fn generators_are_deterministic_under_seed() {
        let g1 = preferential_attachment(200, 2, 0.2, &mut StdRng::seed_from_u64(9));
        let g2 = preferential_attachment(200, 2, 0.2, &mut StdRng::seed_from_u64(9));
        assert_eq!(g1, g2);
    }
}
