//! The adaptive planner — what `backend=auto` costs and how it degrades.
//!
//! * `plan_decision` — one full [`Planner::plan`] pass (cost every
//!   backend, rank, record): the pure planning overhead a `backend=auto`
//!   query pays before any sampling happens;
//! * `plan_auto_query` vs `plan_forced_query` — an end-to-end Fig. 2 query
//!   through [`EngineHandle::query_auto`] against the same query forced
//!   onto the backend the planner resolves to: the difference is the
//!   planner's *total* per-query overhead (decision + EWMA feedback);
//! * the printed **degradation sweep** — the planner's chosen backend as
//!   the deadline budget shrinks from 10 s to 10 µs, after the EWMAs have
//!   been warmed by real measurements: the regime boundaries (accurate →
//!   fallback) made visible.

use criterion::{criterion_group, criterion_main, Criterion};
use pitex_bench::banner;
use pitex_core::plan::PlanInput;
use pitex_core::{EngineBackend, EngineHandle, PitexConfig};
use pitex_index::{DelayMatIndex, IndexBudget, RrIndex};
use pitex_model::TicModel;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn auto_handle() -> EngineHandle {
    let model = Arc::new(TicModel::paper_example());
    let rr = Arc::new(RrIndex::build(&model, IndexBudget::Fixed(3_000), 3));
    let delay = Arc::new(DelayMatIndex::build(&model, IndexBudget::Fixed(3_000), 3));
    EngineHandle::with_indexes(
        model,
        EngineBackend::Auto,
        Some(rr),
        Some(delay),
        PitexConfig::default(),
    )
    .unwrap()
}

fn bench_plan(c: &mut Criterion) {
    banner(
        "bench_plan: planner overhead vs. the forced-backend floor, degradation under deadlines",
        "Fig. 2 model with both index artifacts; EWMAs warmed by real queries",
    );
    let handle = auto_handle();

    // Warm every plannable backend's EWMA with real measurements so the
    // sweep below reflects observed costs, not static seeds.
    for backend in EngineBackend::ALL {
        if backend == EngineBackend::Lt || !handle.planner().available(backend) {
            continue;
        }
        for _ in 0..5 {
            let t = Instant::now();
            handle.engine_for(backend).unwrap().query(0, 2);
            handle.planner().observe(backend, t.elapsed().as_micros() as u64);
        }
    }

    c.bench_function("plan_decision", |b| {
        b.iter(|| handle.plan(0, 2, Some(Duration::from_millis(5))))
    });

    let resolved = handle.plan(0, 2, None).chosen;
    c.bench_function("plan_auto_query", |b| b.iter(|| handle.query_auto(0, 2, None).0.spread));
    c.bench_function("plan_forced_query", |b| {
        b.iter(|| handle.engine_for(resolved).unwrap().query(0, 2).spread)
    });

    // The headline numbers, measured directly so they can be printed.
    const N: u32 = 2_000;
    let t = Instant::now();
    for _ in 0..N {
        handle.plan(0, 2, Some(Duration::from_millis(5)));
    }
    let plan_ns = t.elapsed().as_nanos() as f64 / f64::from(N);
    let t = Instant::now();
    for _ in 0..N {
        handle.query_auto(0, 2, None);
    }
    let auto_us = t.elapsed().as_secs_f64() * 1e6 / f64::from(N);
    let t = Instant::now();
    for _ in 0..N {
        handle.engine_for(resolved).unwrap().query(0, 2);
    }
    let forced_us = t.elapsed().as_secs_f64() * 1e6 / f64::from(N);
    println!(
        "plan: decision {plan_ns:.0}ns; auto query {auto_us:.1}us vs forced {} {forced_us:.1}us \
         (overhead {:+.1}us/query)",
        resolved.label(),
        auto_us - forced_us
    );

    // Degradation sweep: what auto resolves to as the budget shrinks.
    println!("plan: degradation sweep (user 0, k 2, EWMAs warmed):");
    for budget_us in [10_000_000u64, 1_000_000, 100_000, 10_000, 1_000, 100, 10] {
        let decision =
            handle.planner().plan(PlanInput { degree: 2, k: 2, budget_us: Some(budget_us) });
        println!(
            "  budget {budget_us:>9}us -> {} (predicted {}us{})",
            decision.chosen.label(),
            decision.predicted_us,
            if decision.degraded { ", degraded" } else { "" }
        );
    }
}

criterion_group!(benches, bench_plan);
criterion_main!(benches);
