//! Table 2 — Statistics of Datasets.
//!
//! Prints the paper's columns for (a) the paper's original dataset sizes and
//! (b) the synthetic stand-ins actually generated at bench scale.

use pitex_bench::{banner, BenchEnv};
use pitex_datasets::{DatasetProfile, DatasetStats};

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Table 2: Statistics of Datasets",
        "paper-reported sizes, then the generated synthetic stand-ins",
    );

    println!();
    println!("paper originals:");
    println!("{}", DatasetStats::header());
    for p in DatasetProfile::all() {
        println!(
            "{:<10} {:>10} {:>12} {:>8.1} {:>5} {:>5} {:>9.2}",
            p.name,
            p.num_nodes,
            p.num_edges,
            p.num_edges as f64 / p.num_nodes as f64,
            p.num_topics,
            p.num_tags,
            p.density
        );
    }

    println!();
    println!("generated stand-ins (bench scale):");
    println!("{}", DatasetStats::header());
    for profile in env.profiles() {
        let name = profile.name;
        let model = profile.generate();
        println!("{}", DatasetStats::compute(name, &model));
    }
}
