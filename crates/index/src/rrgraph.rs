//! The reverse reachable sample graph (RR-Graph, Def. 2).

use pitex_graph::{DiGraph, EdgeId, NodeId};
use pitex_model::EdgeProbs;
use rand::Rng;

/// One stored edge of an RR-Graph: destination (local id), the global edge
/// id, and the random mark `c(e)` drawn at sampling time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RrEdge {
    pub dst_local: u32,
    pub edge_id: EdgeId,
    pub c: f32,
}

/// A reverse reachable sample graph of some target vertex `v` (Def. 2).
///
/// Contains every vertex that reaches `v` after removing each edge `e` with
/// `c(e) > p(e) = max_z p(e|z)`, the surviving edges among those vertices,
/// and their marks. Def. 3's *tag-aware reachability* re-evaluates
/// membership per tag set: an edge exists under `W` iff `p(e|W) ≥ c(e)` —
/// since `p(e|W) ≤ p(e)` for every `W`, no vertex that could ever influence
/// `v` is missed.
///
/// Nodes are stored as sorted global ids with a local forward CSR so the
/// query-time BFS runs on the (usually tiny) sample graph, not on `G`.
#[derive(Clone, Debug, PartialEq)]
pub struct RrGraph {
    target: NodeId,
    /// Sorted global node ids; local id = position.
    nodes: Vec<NodeId>,
    /// Forward CSR over local ids.
    out_offsets: Vec<u32>,
    out_edges: Vec<RrEdge>,
}

impl RrGraph {
    /// Builds from raw parts (used by the generator and the decoder).
    /// `edges` holds `(src_global, dst_global, edge_id, c)`.
    pub(crate) fn from_parts(
        target: NodeId,
        mut nodes: Vec<NodeId>,
        edges: &[(NodeId, NodeId, EdgeId, f32)],
    ) -> Self {
        nodes.sort_unstable();
        nodes.dedup();
        let local = |v: NodeId, nodes: &[NodeId]| -> u32 {
            nodes.binary_search(&v).expect("edge endpoint must be a member node") as u32
        };
        let n = nodes.len();
        let mut offsets = vec![0u32; n + 1];
        for &(s, _, _, _) in edges {
            offsets[local(s, &nodes) as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets[..n].to_vec();
        let mut out_edges = vec![RrEdge { dst_local: 0, edge_id: 0, c: 0.0 }; edges.len()];
        for &(s, t, e, c) in edges {
            let sl = local(s, &nodes) as usize;
            let pos = cursor[sl] as usize;
            cursor[sl] += 1;
            out_edges[pos] = RrEdge { dst_local: local(t, &nodes), edge_id: e, c };
        }
        Self { target, nodes, out_offsets: offsets, out_edges }
    }

    /// The target vertex this graph was sampled for.
    #[inline]
    pub fn target(&self) -> NodeId {
        self.target
    }

    /// Sorted global node ids.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of member vertices.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of stored edges.
    pub fn num_edges(&self) -> usize {
        self.out_edges.len()
    }

    /// Local id of a global vertex, if a member.
    #[inline]
    pub fn local_id(&self, v: NodeId) -> Option<u32> {
        self.nodes.binary_search(&v).ok().map(|i| i as u32)
    }

    /// True if `v` is a member (i.e. `v` could influence the target under
    /// *some* tag set).
    pub fn contains(&self, v: NodeId) -> bool {
        self.local_id(v).is_some()
    }

    /// Out-edges of a local vertex.
    #[inline]
    pub fn out_edges_local(&self, local: u32) -> &[RrEdge] {
        let lo = self.out_offsets[local as usize] as usize;
        let hi = self.out_offsets[local as usize + 1] as usize;
        &self.out_edges[lo..hi]
    }

    /// All stored edges as `(src_local, RrEdge)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (u32, &RrEdge)> + '_ {
        (0..self.num_nodes() as u32)
            .flat_map(move |sl| self.out_edges_local(sl).iter().map(move |e| (sl, e)))
    }

    /// Tag-aware reachability (Def. 3): does `user` reach the target along
    /// edges with `p(e|W) ≥ c(e)`? `edges_visited` counts probed edges.
    ///
    /// `scratch` must have at least `num_nodes()` slots; reuse it across
    /// graphs (see [`ReachScratch`]).
    pub fn reaches_target(
        &self,
        user: NodeId,
        probs: &mut dyn EdgeProbs,
        scratch: &mut ReachScratch,
        edges_visited: &mut u64,
    ) -> bool {
        let Some(start) = self.local_id(user) else {
            return false;
        };
        if user == self.target {
            return true;
        }
        let target_local = self.local_id(self.target).expect("target is always a member");
        scratch.visited.grow(self.num_nodes());
        scratch.visited.reset();
        scratch.stack.clear();
        scratch.visited.insert(start);
        scratch.stack.push(start);
        while let Some(v) = scratch.stack.pop() {
            for e in self.out_edges_local(v) {
                if scratch.visited.contains(e.dst_local) {
                    continue;
                }
                *edges_visited += 1;
                if probs.prob(e.edge_id) >= e.c as f64 {
                    if e.dst_local == target_local {
                        return true;
                    }
                    scratch.visited.insert(e.dst_local);
                    scratch.stack.push(e.dst_local);
                }
            }
        }
        false
    }

    /// Approximate heap footprint in bytes (Table 3 accounting).
    pub fn heap_bytes(&self) -> u64 {
        (self.nodes.len() * 4 + self.out_offsets.len() * 4 + self.out_edges.len() * 12) as u64
    }

    /// Rebuilds this graph with every stored global edge id passed through
    /// `map` (topology, node set and marks unchanged). Incremental repair
    /// uses this to keep *clean* RR-Graphs valid when an edge insert or
    /// removal shifts the CSR edge ids of the mutated model.
    ///
    /// # Panics
    /// If `map` returns `None` for a stored edge — the repair layer only
    /// reuses graphs whose stored edges all survive the mutation.
    pub fn with_remapped_edge_ids(&self, map: impl Fn(EdgeId) -> Option<EdgeId>) -> RrGraph {
        let mut out = self.clone();
        for e in &mut out.out_edges {
            e.edge_id = map(e.edge_id).expect("reused RR-Graph references a removed edge");
        }
        out
    }
}

/// Reusable traversal scratch for [`RrGraph::reaches_target`].
#[derive(Debug)]
pub struct ReachScratch {
    visited: pitex_support::EpochVisited,
    stack: Vec<u32>,
}

impl ReachScratch {
    pub fn new() -> Self {
        Self { visited: pitex_support::EpochVisited::new(0), stack: Vec::new() }
    }
}

impl Default for ReachScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Samples one RR-Graph for `target` (Def. 2): reverse BFS from `target`
/// where each in-edge survives with probability `p(e) = max_z p(e|z)`; the
/// mark of a surviving edge is `c(e) ~ U[0, p(e))`.
///
/// `p_max` must be the `p(e)` view (see [`pitex_model::MaxEdgeProbs`]).
pub fn generate_rr_graph<R: Rng + ?Sized>(
    graph: &DiGraph,
    p_max: &mut dyn EdgeProbs,
    target: NodeId,
    rng: &mut R,
) -> RrGraph {
    let mut nodes = vec![target];
    let mut edges: Vec<(NodeId, NodeId, EdgeId, f32)> = Vec::new();
    let mut visited = pitex_support::FxHashSet::default();
    visited.insert(target);
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(target);
    while let Some(y) = queue.pop_front() {
        for (e, x) in graph.in_edges(y) {
            let p = p_max.prob(e);
            if p <= 0.0 {
                continue;
            }
            let draw: f64 = rng.gen(); // U[0, 1)
            if draw < p {
                // Conditioned on survival, draw ~ U[0, p) — exactly c(e).
                edges.push((x, y, e, draw as f32));
                if visited.insert(x) {
                    nodes.push(x);
                    queue.push_back(x);
                }
            }
        }
    }
    RrGraph::from_parts(target, nodes, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitex_graph::gen;
    use pitex_model::{FixedEdgeProbs, MaxEdgeProbs, TicModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_chain_is_fully_captured() {
        // p = 1 everywhere: the RR-Graph of the last vertex contains the
        // whole chain and every edge.
        let g = gen::path(5);
        let mut probs = FixedEdgeProbs::uniform(4, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let rr = generate_rr_graph(&g, &mut probs, 4, &mut rng);
        assert_eq!(rr.num_nodes(), 5);
        assert_eq!(rr.num_edges(), 4);
        assert!(rr.contains(0));
        assert_eq!(rr.target(), 4);
    }

    #[test]
    fn zero_probability_edges_never_survive() {
        let g = gen::path(3);
        let mut probs = FixedEdgeProbs::new(vec![1.0, 0.0]);
        let mut rng = StdRng::seed_from_u64(2);
        let rr = generate_rr_graph(&g, &mut probs, 2, &mut rng);
        assert_eq!(rr.num_nodes(), 1, "the dead edge isolates the target");
    }

    #[test]
    fn marks_lie_below_p_max() {
        let m = TicModel::paper_example();
        let mut p_max = MaxEdgeProbs::new(m.edge_topics());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let target = rng.gen_range(0..m.graph().num_nodes() as u32);
            let rr = generate_rr_graph(m.graph(), &mut p_max, target, &mut rng);
            for (_, e) in rr.edges() {
                let pm = m.edge_topics().p_max(e.edge_id);
                assert!(e.c < pm, "c(e) = {} must be < p(e) = {pm}", e.c);
            }
        }
    }

    #[test]
    fn every_member_reaches_target_at_p_max() {
        // With probs = p_max every stored edge is live, so membership must
        // coincide with reachability.
        let m = TicModel::paper_example();
        let mut p_max = MaxEdgeProbs::new(m.edge_topics());
        let mut rng = StdRng::seed_from_u64(4);
        let mut scratch = ReachScratch::new();
        for _ in 0..100 {
            let target = rng.gen_range(0..m.graph().num_nodes() as u32);
            let rr = generate_rr_graph(m.graph(), &mut p_max, target, &mut rng);
            for &v in rr.nodes() {
                let mut visits = 0u64;
                let mut view = MaxEdgeProbs::new(m.edge_topics());
                assert!(
                    rr.reaches_target(v, &mut view, &mut scratch, &mut visits),
                    "member {v} must reach target {target} at p_max"
                );
            }
        }
    }

    #[test]
    fn tag_aware_reachability_respects_marks() {
        // Build a 2-path RR-Graph by hand: 0 -> 1 with c = 0.25 (an
        // f32-exact value, so the ≥ comparison is representation-safe).
        let rr = RrGraph::from_parts(1, vec![0, 1], &[(0, 1, 0, 0.25)]);
        let mut scratch = ReachScratch::new();
        let mut visits = 0u64;
        let mut live = FixedEdgeProbs::new(vec![0.26]);
        assert!(rr.reaches_target(0, &mut live, &mut scratch, &mut visits));
        let mut dead = FixedEdgeProbs::new(vec![0.24]);
        assert!(!rr.reaches_target(0, &mut dead, &mut scratch, &mut visits));
        // Equality is live: Def. 3 uses p(e|W) ≥ c(e).
        let mut exact = FixedEdgeProbs::new(vec![0.25]);
        assert!(rr.reaches_target(0, &mut exact, &mut scratch, &mut visits));
    }

    #[test]
    fn example5_reachability_pattern() {
        // Example 5 of the paper: under W = {w3, w4}, u1 fails on the edge
        // u1->u2 when c = 0.3 (p = 0.13 < 0.3) but reaches u6 via
        // u1->u3->u4->u6 when all marks sit below the W-probabilities.
        // We rebuild those two RR-Graphs by hand with the paper's marks.
        let m = TicModel::paper_example();
        let w34 = pitex_model::TagSet::from([2, 3]);
        let posterior = m.posterior(&w34);
        let mut cache = m.new_prob_cache();
        let mut probs =
            pitex_model::PosteriorEdgeProbs::new(m.edge_topics(), &posterior, &mut cache);
        let mut scratch = ReachScratch::new();
        let mut visits = 0u64;

        let e12 = m.graph().find_edge(0, 1).unwrap();
        let g_u2 = RrGraph::from_parts(1, vec![0, 1], &[(0, 1, e12, 0.3)]);
        assert!(!g_u2.reaches_target(0, &mut probs, &mut scratch, &mut visits));

        let e13 = m.graph().find_edge(0, 2).unwrap();
        let e34 = m.graph().find_edge(2, 3).unwrap();
        let e46 = m.graph().find_edge(3, 5).unwrap();
        // Paper marks: the path edges carry c below their W-probability.
        // p(u1->u3|W) = 0.5, p(u3->u4|W) = 0 — Example 5's path goes
        // u1->u3->u4->u6, but under our reconstruction p(u3->u4|{w3,w4}) = 0
        // (its only topic is z1). The example instead works through
        // u3->u6 (p = 0.55): same reachability conclusion.
        let e36 = m.graph().find_edge(2, 5).unwrap();
        let g_u6 = RrGraph::from_parts(
            5,
            vec![0, 2, 3, 5],
            &[(0, 2, e13, 0.4), (2, 3, e34, 0.4), (2, 5, e36, 0.5), (3, 5, e46, 0.2)],
        );
        assert!(g_u6.reaches_target(0, &mut probs, &mut scratch, &mut visits));
    }

    #[test]
    fn non_member_cannot_reach() {
        let rr = RrGraph::from_parts(1, vec![0, 1], &[(0, 1, 0, 0.5)]);
        let mut probs = FixedEdgeProbs::new(vec![1.0]);
        let mut scratch = ReachScratch::new();
        let mut visits = 0u64;
        assert!(!rr.reaches_target(7, &mut probs, &mut scratch, &mut visits));
    }

    #[test]
    fn target_trivially_reaches_itself() {
        let rr = RrGraph::from_parts(3, vec![3], &[]);
        let mut probs = FixedEdgeProbs::new(vec![]);
        let mut scratch = ReachScratch::new();
        let mut visits = 0u64;
        assert!(rr.reaches_target(3, &mut probs, &mut scratch, &mut visits));
    }

    #[test]
    fn generation_is_deterministic_under_seed() {
        let m = TicModel::paper_example();
        let mut p1 = MaxEdgeProbs::new(m.edge_topics());
        let mut p2 = MaxEdgeProbs::new(m.edge_topics());
        let a = generate_rr_graph(m.graph(), &mut p1, 6, &mut StdRng::seed_from_u64(9));
        let b = generate_rr_graph(m.graph(), &mut p2, 6, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
