//! # `pitex_cluster` — sharded serving over many `pitex_serve` processes
//!
//! One box is a dead end at the paper's own scale: §6 reports RR-Graph
//! index builds of ~10⁴ seconds on twitter, and the Eq. 7 budget
//! `Λ ∝ ln φ_K(n)` grows the index with the vertex count — yet
//! `pitex_serve` assumes the whole model and index fit in a single
//! process. This crate is the horizontal answer. The unit of partitioning
//! falls straight out of the problem: a PITEX query `(u, k)` names exactly
//! one user, so **user-hash sharding needs no cross-shard coordination on
//! the read path** — only updates do, and they get an explicit epoch
//! barrier.
//!
//! Three pieces:
//!
//! * [`ShardMap`] — deterministic user → shard assignment (a seeded
//!   splitmix64 mix, identical in every process that loads the same map
//!   file), per-shard replica lists, a [`plan`](ShardMap::plan) scatter
//!   planner, and text + `PSHM` binary codecs.
//! * [`ShardPools`] — per-shard connection pools over
//!   [`pitex_serve::ServeClient`] with health gating, active `PING`
//!   probing, replica failover, and per-shard load shedding.
//! * [`Router`] — a TCP front-end speaking the *unchanged* `pitex_serve`
//!   line protocol (a cluster is a drop-in for a single server): `QUERY`
//!   routes by shard, `STATS`/`EPOCH` scatter-gather and merge (latency
//!   histograms bucket-wise, counters by addition, epochs verified equal),
//!   `UPDATE` forwards to the owning shard's replicas, and `RELOAD` runs
//!   the two-phase barrier (`PREPARE` on every shard, then a `COMMIT`
//!   wave under the router's write gate) so a scatter never observes two
//!   shards answering from different worlds.
//!
//! ```no_run
//! use pitex_cluster::{Router, RouterOptions, ShardMap};
//! use pitex_serve::{Response, ServeClient};
//!
//! // Two shards x one replica, already running on these ports.
//! let map = ShardMap::new(vec![
//!     vec!["127.0.0.1:7411".to_string()],
//!     vec!["127.0.0.1:7421".to_string()],
//! ])
//! .unwrap();
//! let router = Router::spawn(map, ("127.0.0.1", 0), RouterOptions::default()).unwrap();
//!
//! // Clients cannot tell the router from a single server.
//! let mut client = ServeClient::connect(router.addr()).unwrap();
//! let Response::Ok(reply) = client.query(0, 2).unwrap() else { panic!() };
//! assert_eq!(reply.user, 0);
//! router.stop().unwrap();
//! ```

pub mod pool;
pub mod router;
pub mod shardmap;

pub use pool::{BroadcastOutcome, CallError, PoolOptions, ShardPools};
pub use router::{Router, RouterHandle, RouterOptions};
pub use shardmap::ShardMap;
