//! Observability integration suite: end-to-end request tracing, the typed
//! metrics registry, and the flight recorder, exercised over real TCP
//! through both a single server and a 2-shard router.
//!
//! Asserts the acceptance scenario of the observability layer: a `TRACE`d
//! query through the router returns one span timeline whose router-side
//! and shard-side spans share a single trace id and whose span durations
//! sum to (approximately) the measured end-to-end latency; `METRICS`
//! parses as Prometheus text exposition at both hops; the flight recorder
//! sees the query at both hops under the same id; and every field a shard
//! exports through `STATS` carries a registered merge rule — the loud
//! replacement for the router's old hand-maintained sum table.

use pitex::cluster::{Router, RouterHandle, RouterOptions, ShardMap};
use pitex::prelude::*;
use pitex::serve::{Response, ServeClient, ServeOptions, Server, ServerHandle};
use pitex::support::obs::{parse_prometheus, spec_for, MergedFields};
use std::sync::Arc;

fn boot_shard() -> ServerHandle {
    let model = Arc::new(TicModel::paper_example());
    let handle = EngineHandle::new(model, EngineBackend::Exact, PitexConfig::default()).unwrap();
    Server::spawn(handle, ("127.0.0.1", 0), ServeOptions::default()).unwrap()
}

struct Cluster {
    /// `servers[shard][0]` — one replica per shard keeps replica affinity
    /// out of the picture, so a warming query and the traced query land on
    /// the same process.
    servers: Vec<Vec<ServerHandle>>,
    router: RouterHandle,
}

fn boot_cluster(shards: usize) -> Cluster {
    let servers: Vec<Vec<ServerHandle>> = (0..shards).map(|_| vec![boot_shard()]).collect();
    let addrs: Vec<Vec<String>> =
        servers.iter().map(|shard| shard.iter().map(|s| s.addr().to_string()).collect()).collect();
    let map = ShardMap::new(addrs).unwrap();
    let router = Router::spawn(map, ("127.0.0.1", 0), RouterOptions::default()).unwrap();
    Cluster { servers, router }
}

impl Cluster {
    fn stop(self) {
        self.router.stop().expect("no router thread may panic");
        for shard in self.servers {
            for server in shard {
                server.stop().expect("no shard server thread may panic");
            }
        }
    }
}

#[test]
fn traced_query_through_the_router_is_one_timeline_under_one_id() {
    let cluster = boot_cluster(2);
    let mut client = ServeClient::connect(cluster.router.addr()).unwrap();

    // Warm the owning shard's worker (engine build is lazy) with a
    // different cache key, so the traced query itself is a cold cache miss
    // on a warm engine.
    let user = 1u32;
    let Response::Ok(_) = client.query(user, 3).unwrap() else { panic!("warmup must answer") };

    let wanted_id = 0x00c0_ffee_u64;
    let traced = client.trace(user, 2, None, None, Some(wanted_id)).unwrap();
    assert_eq!(traced.trace_id, wanted_id, "the caller's trace id is honored end to end");
    assert!(!traced.cached, "distinct k means a cache miss");
    assert_eq!(traced.user, user);

    // The timeline interleaves router-side spans with `shard.`-prefixed
    // shard spans — one trace, two processes.
    let names: Vec<&str> = traced.spans.iter().map(|s| s.name.as_str()).collect();
    for expected in ["route", "net", "shard.plan", "shard.cache", "shard.queue", "shard.execute"] {
        assert!(names.contains(&expected), "span {expected:?} missing from {names:?}");
    }
    for span in &traced.spans {
        assert!(
            span.start_us + span.dur_us <= traced.us + 1_000,
            "span {} [{} +{}us] overruns the request ({}us)",
            span.name,
            span.start_us,
            span.dur_us,
            traced.us
        );
    }
    // The spans are a phase decomposition of the request: their durations
    // must account for (within 20%, plus a small floor for µs-scale
    // timer noise) the measured end-to-end latency.
    let span_sum: u64 = traced.spans.iter().map(|s| s.dur_us).sum();
    let tolerance = (traced.us / 5).max(150);
    assert!(
        span_sum <= traced.us + tolerance && span_sum + tolerance >= traced.us,
        "span durations sum to {span_sum}us, end-to-end was {}us",
        traced.us
    );

    // Both hops' flight recorders saw the same trace id.
    let router_flight = client.flight().unwrap();
    assert!(
        router_flight.entries.iter().any(|e| e.trace_id == wanted_id && e.verb == "TRACE"),
        "router flight recorder missed the traced query"
    );
    let shard_hit = cluster.servers.iter().any(|shard| {
        let mut direct = ServeClient::connect(shard[0].addr()).unwrap();
        direct
            .flight()
            .unwrap()
            .entries
            .iter()
            .any(|e| e.trace_id == wanted_id && e.verb == "TRACE")
    });
    assert!(shard_hit, "no shard flight recorder saw trace {wanted_id:#x}");
    cluster.stop();
}

#[test]
fn metrics_exposition_parses_at_both_hops() {
    let cluster = boot_cluster(2);
    let mut client = ServeClient::connect(cluster.router.addr()).unwrap();
    for user in 0..4u32 {
        let Response::Ok(_) = client.query(user, 2).unwrap() else { panic!("query must answer") };
    }

    // Router scrape: the cluster-wide merge as Prometheus text.
    let text = client.metrics().unwrap();
    let samples = parse_prometheus(&text).expect("router METRICS must parse");
    let get = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("sample {name:?} missing"))
            .value
    };
    assert!(get("pitex_ok") >= 4.0, "shard ok counters sum into the router scrape");
    assert!(get("pitex_router_requests") >= 4.0);
    assert!(
        samples.iter().any(|s| s.name == "pitex_lat_bucket"),
        "merged latency histogram expands into cumulative buckets"
    );

    // Shard scrape: same exposition format straight off one process.
    let mut direct = ServeClient::connect(cluster.servers[0][0].addr()).unwrap();
    let shard_text = direct.metrics().unwrap();
    let shard_samples = parse_prometheus(&shard_text).expect("shard METRICS must parse");
    assert!(shard_samples.iter().any(|s| s.name == "pitex_requests"));
    // The connection survives the multi-line response: framing is intact.
    direct.ping().unwrap();
    client.ping().unwrap();
    cluster.stop();
}

#[test]
fn every_shard_stats_field_has_a_registered_merge_rule() {
    // Satellite of the registry tentpole: the router's old hand-maintained
    // SUMMED_FIELDS table silently dropped any field it forgot (the PR 4
    // `cache_len=0` bug). Now the schema is the single source of truth —
    // this test fails the moment a shard exports a STATS field without a
    // registered merge rule.
    let server = boot_shard();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    let Response::Ok(_) = client.query(0, 2).unwrap() else { panic!("query must answer") };
    let stats = client.stats().unwrap();
    for (name, _) in stats.iter() {
        assert!(
            spec_for(name).is_some(),
            "shard STATS field {name:?} has no merge rule in the obs SCHEMA"
        );
    }
    // And the merge itself accepts the full reply (the same code path the
    // router runs).
    let mut merged = MergedFields::new();
    merged.absorb(stats.iter()).expect("a full shard reply must merge cleanly");
    merged.absorb(stats.iter()).unwrap();
    let fields = merged.finish().expect("no must-agree divergence from one server");
    let lookup = |key: &str| {
        fields.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone()).unwrap_or_default()
    };
    let single: u64 = stats.get_u64("requests").unwrap();
    assert_eq!(lookup("requests"), (2 * single).to_string(), "counters sum across replies");
    assert_eq!(lookup("epoch"), "1", "must-agree fields pass through");
    server.stop().unwrap();
}

#[test]
fn slow_query_log_captures_requests_over_the_threshold() {
    // Every loopback query takes more than a microsecond, so a 1µs
    // threshold marks everything slow. The env var is read at server boot;
    // it is restored before the test ends.
    std::env::set_var("PITEX_OBS_SLOW_US", "1");
    let server = boot_shard();
    std::env::remove_var("PITEX_OBS_SLOW_US");
    let mut client = ServeClient::connect(server.addr()).unwrap();
    let Response::Ok(_) = client.query(0, 2).unwrap() else { panic!("query must answer") };

    let stats = client.stats().unwrap();
    assert!(stats.get_u64("slow_queries").unwrap() >= 1, "the 1µs threshold catches everything");
    let flight = client.flight().unwrap();
    assert!(flight.slow_count >= 1);
    assert!(
        flight.slow.iter().any(|e| e.verb == "QUERY" && e.us >= 1),
        "the slow log retains the offending query"
    );
    server.stop().unwrap();
}
