//! # `pitex_serve` — the concurrent query-serving subsystem
//!
//! The paper frames PITEX as an *online service*: the RR-Graph index is
//! built offline (§6) precisely so that interactive per-user queries are
//! cheap. This crate is that service. It turns the batch-shaped engine into
//! a network server:
//!
//! * **Shared-engine runtime** — the server owns `Arc` snapshots of the
//!   model and indexes through [`pitex_core::EngineHandle`]; each worker
//!   thread builds a private [`pitex_core::PitexEngine`] from them, so the
//!   engine's `&mut self` memoisation needs no locks.
//! * **Line protocol** ([`protocol`]) — `QUERY <user> <k>` in, one reply
//!   line out; scriptable with `nc` and spoken by `pitex client`.
//! * **Bounded queue + load shedding** ([`server`]) — a full request queue
//!   answers `BUSY` instead of growing; per-request deadlines answer
//!   `ERR DEADLINE` instead of running work nobody awaits.
//! * **Result cache** — a sharded LRU over `(user, k, backend)`
//!   ([`pitex_support::lru`]) consulted before any sampling; `STATS`
//!   exposes hit rates, throughput and latency percentiles.
//! * **Adaptive backend planning** — `QUERY` accepts an optional backend
//!   operand; `auto` (per request, or as the server's `--method`) asks the
//!   cost-based planner ([`pitex_core::plan`]) to pick the cheapest
//!   suitable estimator for the query's shape and *remaining* deadline,
//!   degrading to a cheaper backend rather than burning the budget.
//!   Results are cached under the **resolved** backend, the `EXPLAIN` verb
//!   reports the decision (chosen backend, predicted vs. actual cost,
//!   rejected alternatives), and `STATS` exports per-backend decision
//!   counters and latency EWMAs (`plan_*`, `ewma_*_us`).
//! * **Client + load generator** ([`client`]) — the typed client (with
//!   one transparent reconnect-and-retry for the idempotent verbs
//!   `QUERY`/`STATS`/`PING`), and the closed-loop [`LoadGen`] behind
//!   `bench_serve` and `pitex client --bench`.
//! * **Workload capture + open-loop replay** ([`workload`]) — the server
//!   samples admitted requests into a PWRK workload log
//!   (`PITEX_OBS_CAPTURE`, the admin `CAPTURE on|off|rotate` verb);
//!   [`schedule_from_log`] replays a recording at recorded or scaled
//!   pace, [`SyntheticSchedule`] synthesizes Poisson/Zipf load, and
//!   [`Replay`] issues either **open-loop** — latency measured from the
//!   scheduled arrival, immune to the coordinated omission that makes
//!   closed-loop tails look flat — with `--verify` checking answers
//!   bit-identically against the recording and a per-phase
//!   (queue/plan/cache/execute/net) latency-attribution report.
//! * **Live updates** — `UPDATE` stages typed [`pitex_live::UpdateOp`]
//!   mutations, `RELOAD` folds them into a fresh snapshot with incremental
//!   RR-index repair and swaps it in under a new epoch (zero-downtime:
//!   queries keep flowing against the old snapshot), `EPOCH` reads the
//!   serving epoch; all three are admin-gated. `STATS` reports `epoch=`,
//!   `updates_applied=` and `reloads=`, and the result cache is swept
//!   per-user so no stale answer survives a mutation that touches it.
//! * **Cluster coordination** — `PREPARE`/`COMMIT` split `RELOAD` into its
//!   slow (fold + repair, no swap) and fast (atomic swap) halves, so the
//!   `pitex_cluster` router can run a two-phase epoch barrier across
//!   shards; `STATS` exports the raw latency buckets (`lat_hist=`) so a
//!   scatter-gather can merge distributions instead of averaging
//!   percentiles.
//! * **Durability + catch-up** — spawned with a WAL directory
//!   ([`ServeOptions::wal`]), every acknowledged `UPDATE` is fsynced to an
//!   epoch-stamped log *before* its ack, boot replays the recovered
//!   history (resuming the pre-crash epoch, torn tails truncated, loud
//!   error on corruption), and the log compacts into a base snapshot past
//!   the `PITEX_WAL_*` bounds. The `SYNC <from_epoch>` verb streams the
//!   committed-history suffix as a [`pitex_live::SyncBundle`] so a stale
//!   replica (or the cluster prober acting for it) can replay its way
//!   back to the current epoch — bit-identically, because both folding
//!   and index repair are deterministic.
//!
//! ```
//! use pitex_core::{EngineBackend, EngineHandle, PitexConfig};
//! use pitex_model::TicModel;
//! use pitex_serve::{Response, ServeClient, ServeOptions, Server};
//! use std::sync::Arc;
//!
//! // Boot a server on an ephemeral port around the paper's Fig. 2 model.
//! let model = Arc::new(TicModel::paper_example());
//! let handle = EngineHandle::new(model, EngineBackend::Exact, PitexConfig::default()).unwrap();
//! let server = Server::spawn(handle, ("127.0.0.1", 0), ServeOptions::default()).unwrap();
//!
//! let mut client = ServeClient::connect(server.addr()).unwrap();
//! let Response::Ok(reply) = client.query(0, 2).unwrap() else { panic!() };
//! assert_eq!(reply.tags, vec![2, 3]); // W* = {w3, w4}
//!
//! server.stop().unwrap();
//! ```

pub mod client;
pub mod frame;
pub mod http;
pub mod protocol;
pub mod server;
pub mod workload;

pub use client::{LoadGen, LoadReport, ServeClient};
pub use protocol::{
    CaptureAction, ErrorCode, ExplainReply, FlightReply, FlightWireEntry, QueryReply, QueryRequest,
    ReloadReply, Request, Response, SeriesReply, StatsReply, TraceReply, TraceRequest,
};
pub use server::{ServeOptions, Server, ServerHandle};
pub use workload::{
    schedule_from_log, Expected, Replay, ReplayItem, ReplayReport, SyntheticSchedule,
};
