//! # `pitex_live` — online updates for a serving PITEX deployment
//!
//! The paper treats the RR-Graph index as a purely offline artifact, but a
//! production tag service mutates constantly: users follow and unfollow,
//! tag vocabularies drift, influence probabilities get re-learned. This
//! crate is the online half the offline pipeline was missing. Three pieces
//! compose into zero-downtime updates:
//!
//! * **Update log + overlay** ([`log`], [`overlay`]) — a typed
//!   [`UpdateOp`] (edges, tag rows, vertices) with text and binary codecs,
//!   validated and staged in a [`ModelOverlay`] over the immutable
//!   snapshot; [`ModelOverlay::compact`] folds base + ops into a fresh
//!   [`TicModel`](pitex_model::TicModel), deterministically.
//! * **Incremental index repair** ([`repair`]) — instead of rebuilding all
//!   θ RR-Graphs, [`repair_rr_index`] marks dirty exactly the graphs whose
//!   node set contains the head of a mutated edge (via the index's
//!   membership inverted lists) and resamples only those on their own
//!   per-draw RNG streams. The repaired index is bit-identical to a
//!   from-scratch rebuild; past a dirty-fraction threshold it falls back
//!   to one.
//! * **Durable log + catch-up bundles** ([`wal`]) — the update log made
//!   crash-safe and shippable: acked ops are fsynced to an append-only
//!   [`Wal`] before the `UPDATE` ack, torn tails truncate on open (loud
//!   error on mid-record corruption), the log compacts into an
//!   epoch-stamped base snapshot past `PITEX_WAL_*` bounds, and a
//!   [`SyncBundle`] ships the history suffix a stale replica replays to
//!   rejoin its cluster bit-identically.
//! * **Epoch-versioned snapshots** ([`epoch`]) — a [`SnapshotStore`] that
//!   publishes `EngineHandle`s under a monotone epoch; query workers pin a
//!   snapshot, poll the epoch atomically between requests, and rebuild
//!   their private engines lazily after a swap. Queries never block on an
//!   update.
//!
//! `pitex_serve` wires these into the wire protocol (`UPDATE`, `RELOAD`,
//! `EPOCH`) and scopes its result-cache invalidation to
//! [`ModelOverlay::affected_users`] plus the repair's dirty membership.
//!
//! ```
//! use pitex_live::{ModelOverlay, RepairOptions, UpdateOp, repair_rr_index};
//! use pitex_index::{IndexBudget, RrIndex};
//! use pitex_model::TicModel;
//! use std::sync::Arc;
//!
//! let base = Arc::new(TicModel::paper_example());
//! let budget = IndexBudget::Fixed(200);
//! let index = RrIndex::build_with_threads(&base, budget, 7, 2);
//!
//! // Stage an update, fold it, repair the index incrementally. The
//! // budget and seed travel inside the index itself.
//! let mut overlay = ModelOverlay::new(base.clone());
//! overlay.apply(UpdateOp::parse_text("SET_EDGE 0 1 0:0.9").unwrap()).unwrap();
//! let new_model = overlay.compact();
//! let (repaired, report) =
//!     repair_rr_index(&index, &base, &new_model, &RepairOptions::default());
//! assert!(report.resampled < report.theta, "only dirty graphs resampled");
//! assert_eq!(repaired.theta(), index.theta());
//! ```

pub mod epoch;
pub mod log;
pub mod overlay;
pub mod repair;
pub mod wal;

pub use epoch::{Snapshot, SnapshotStore};
pub use log::{
    ops_from_bytes, ops_from_file_bytes, ops_from_text, ops_to_bytes, TopicRow, UpdateOp,
};
pub use overlay::{ModelOverlay, UpdateError};
pub use repair::{repair_rr_index, RepairOptions, RepairReport};
pub use wal::{
    replay, CommittedBatch, SyncBundle, Wal, WalError, WalOptions, WalRecovery, WalTimings,
};
