//! Live-update costs — the three numbers that decide whether online
//! updates are operable:
//!
//! * `live_update_apply` — overlay staging throughput (ops/sec into
//!   `ModelOverlay::apply`, the `UPDATE` verb's server-side cost);
//! * `live_repair_incremental` vs `live_rebuild_full` — repairing the
//!   RR-Graph index after one edge retune versus rebuilding it, plus the
//!   resampled-fraction that explains the gap;
//! * a swap-storm measurement — client-observed query latency while an
//!   admin loops `UPDATE` + `RELOAD` as fast as the server lets it,
//!   printed as p50/p99 against the no-storm baseline.
//!
//! Model scale follows `PITEX_SCALE` (see EXPERIMENTS.md); the repair
//! threshold follows `PITEX_LIVE_DIRTY_THRESHOLD`.

use criterion::{criterion_group, criterion_main, Criterion};
use pitex_bench::{banner, BenchEnv};
use pitex_core::{EngineBackend, EngineHandle, PitexConfig};
use pitex_index::{IndexBudget, RrIndex};
use pitex_live::{repair_rr_index, ModelOverlay, RepairOptions, UpdateOp};
use pitex_model::TicModel;
use pitex_serve::{Response, ServeClient, ServeOptions, Server};
use pitex_support::stats::LatencyHistogram;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn small_model(env: &BenchEnv) -> TicModel {
    use pitex_datasets::DatasetProfile;
    DatasetProfile::lastfm_like().scaled(0.05 * env.scale).generate()
}

fn bench_update_apply(c: &mut Criterion, model: &Arc<TicModel>) {
    // Retune every edge once per iteration batch: the op mix real systems
    // see most (probabilities re-learned from fresh logs).
    let edges: Vec<(u32, u32)> = model.graph().edges().map(|(_, s, t)| (s, t)).take(512).collect();
    let mut flip = 0u32;
    c.bench_function("live_update_apply_512_ops", |b| {
        b.iter(|| {
            flip = flip.wrapping_add(1);
            let mut overlay = ModelOverlay::new(model.clone());
            for &(s, t) in &edges {
                let p = 0.05 + (flip % 9) as f32 * 0.1;
                overlay
                    .apply(UpdateOp::SetEdgeTopics { src: s, dst: t, topics: vec![(0, p)] })
                    .unwrap();
            }
            overlay.pending()
        })
    });
}

fn bench_repair_vs_rebuild(
    c: &mut Criterion,
    model: &Arc<TicModel>,
    budget: IndexBudget,
    seed: u64,
    opts: &RepairOptions,
) {
    let old = RrIndex::build_with_threads(model, budget, seed, opts.threads);
    // One edge retune: the canonical small update.
    let (s, t) = model.graph().edge_endpoints(0);
    let mut overlay = ModelOverlay::new(model.clone());
    overlay.apply(UpdateOp::SetEdgeTopics { src: s, dst: t, topics: vec![(0, 0.97)] }).unwrap();
    let new_model = overlay.compact();

    let (_, report) = repair_rr_index(&old, model, &new_model, opts);
    c.bench_function("live_repair_incremental", |b| {
        b.iter(|| repair_rr_index(&old, model, &new_model, opts).0.theta())
    });
    c.bench_function("live_rebuild_full", |b| {
        b.iter(|| RrIndex::build_with_threads(&new_model, budget, seed, opts.threads).theta())
    });
    println!(
        "live: one edge retune dirties {} of {} graphs ({:.1}%{})",
        report.resampled,
        report.theta,
        100.0 * report.resampled as f64 / report.theta.max(1) as f64,
        if report.full_rebuild { ", fell back to full rebuild" } else { "" }
    );
}

/// Query p50/p99 while `UPDATE`+`RELOAD` churn as fast as the server
/// accepts them — the zero-downtime claim, measured.
fn swap_storm(model: &Arc<TicModel>, budget: IndexBudget, seed: u64, opts: &RepairOptions) {
    let index = Arc::new(RrIndex::build_with_threads(model, budget, seed, opts.threads));
    let handle = EngineHandle::with_indexes(
        model.clone(),
        EngineBackend::IndexEst,
        Some(index),
        None,
        PitexConfig::default(),
    )
    .unwrap();
    let options = ServeOptions { workers: 2, repair: *opts, ..ServeOptions::default() };
    let server = Server::spawn(handle, ("127.0.0.1", 0), options).unwrap();
    let addr = server.addr();
    let (s, t) = model.graph().edge_endpoints(0);

    let measure = |storm: bool| -> (u64, u64, u64) {
        let stop = AtomicBool::new(false);
        let mut histogram = LatencyHistogram::new();
        let mut swaps = 0u64;
        std::thread::scope(|scope| {
            let admin = storm.then(|| {
                let stop = &stop;
                scope.spawn(move || {
                    let mut admin = ServeClient::connect(addr).unwrap();
                    let mut swaps = 0u64;
                    let mut flip = false;
                    while !stop.load(Ordering::Relaxed) {
                        flip = !flip;
                        let p = if flip { 0.9 } else { 0.8 };
                        let op = UpdateOp::SetEdgeTopics { src: s, dst: t, topics: vec![(0, p)] };
                        admin.update(op).unwrap();
                        admin.reload().unwrap();
                        swaps += 1;
                    }
                    swaps
                })
            });
            let mut client = ServeClient::connect(addr).unwrap();
            for _ in 0..400 {
                let t = Instant::now();
                match client.query(0, 2).unwrap() {
                    Response::Ok(_) | Response::Busy => {}
                    other => panic!("query failed during swap storm: {other:?}"),
                }
                histogram.record(t.elapsed().as_micros() as u64);
            }
            stop.store(true, Ordering::Relaxed);
            if let Some(admin) = admin {
                swaps = admin.join().unwrap();
            }
        });
        (histogram.quantile(0.50), histogram.quantile(0.99), swaps)
    };

    let (base_p50, base_p99, _) = measure(false);
    let (storm_p50, storm_p99, swaps) = measure(true);
    println!(
        "live: query latency p50/p99 {base_p50}/{base_p99}us quiet vs {storm_p50}/{storm_p99}us under {swaps} snapshot swaps"
    );
    server.stop().unwrap();
}

fn bench_live(c: &mut Criterion) {
    banner(
        "bench_live: online-update costs (overlay apply, repair vs rebuild, swap storm)",
        "lastfm-like model at 0.05 x PITEX_SCALE; PITEX_LIVE_DIRTY_THRESHOLD gates repair",
    );
    let env = BenchEnv::from_env();
    let model = Arc::new(small_model(&env));
    let budget = IndexBudget::PerVertex(4.0);
    let opts = RepairOptions::default().with_env();
    bench_update_apply(c, &model);
    bench_repair_vs_rebuild(c, &model, budget, env.seed, &opts);
    swap_storm(&model, budget, env.seed, &opts);
}

criterion_group!(benches, bench_live);
criterion_main!(benches);
