//! Vendored stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! Implements the subset `tests/proptest_invariants.rs` uses: the
//! [`proptest!`] item macro, [`prop_assert!`] / [`prop_assert_eq!`],
//! [`strategy::Strategy`] with `prop_map`, range and tuple strategies,
//! [`collection::vec`], and [`test_runner::ProptestConfig`].
//!
//! Semantics versus the real crate, by design (see `vendor/README.md`):
//!
//! * cases are generated from a deterministic per-test seed (the FNV-1a hash
//!   of the test name) so failures reproduce across runs;
//! * a failing case panics immediately with the case number — there is no
//!   shrinking;
//! * `PROPTEST_CASES` overrides the configured case count, which is handy
//!   for soak-testing locally (`PROPTEST_CASES=1000 cargo test`).

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob import every proptest suite starts with.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests.
///
/// Accepts an optional `#![proptest_config(expr)]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items. Each becomes a
/// zero-argument `#[test]` that samples the strategies `config.cases` times
/// and runs the body on every case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands each captured fn into a
/// runnable test. Not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut runner =
                $crate::test_runner::TestRunner::new(stringify!($name), config);
            while let Some((case, rng)) = runner.next_case() {
                let outcome = std::panic::catch_unwind(
                    core::panic::AssertUnwindSafe(|| {
                        $(let $arg =
                            $crate::strategy::Strategy::sample_value(&$strat, rng);)+
                        $body
                    }),
                );
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest: property '{}' failed on case {case} \
                         (deterministic: rerunning reproduces it)",
                        stringify!($name),
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// Asserts a boolean property inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn tuple_and_map_strategies_compose(
            pair in (1u32..10, 0.0f64..1.0).prop_map(|(n, f)| (n * 2, f / 2.0)),
            xs in crate::collection::vec(0u32..5, 2..6),
        ) {
            prop_assert!(pair.0 >= 2 && pair.0 < 20);
            prop_assert!(pair.1 < 0.5);
            prop_assert!((2..6).contains(&xs.len()));
            prop_assert!(xs.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn case_count_honors_config() {
        let mut runner = crate::test_runner::TestRunner::new(
            "case_count_honors_config",
            ProptestConfig::with_cases(17),
        );
        let mut n = 0;
        while runner.next_case().is_some() {
            n += 1;
        }
        assert_eq!(n, 17);
    }
}
