//! Property-based invariants spanning the whole stack.

use pitex::index::prune::CutFilter;
use pitex::index::rrgraph::ReachScratch;
use pitex::model::bound::BoundOracle;
use pitex::model::combi::KSubsets;
use pitex::model::genmodel::{random_model, EdgeProbKind, ModelGenConfig};
use pitex::model::{PosteriorEdgeProbs, TopicPosterior};
use pitex::prelude::*;
use pitex::support::EpochVisited;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_model(max_nodes: usize) -> impl Strategy<Value = TicModel> {
    (2usize..=max_nodes, 2usize..=5, 3usize..=8, 1u64..1_000_000, 0.2f64..0.9).prop_map(
        |(n, topics, tags, seed, density)| {
            let mut rng = StdRng::seed_from_u64(seed);
            let graph = pitex::graph::gen::random_dag(n, 0.25, &mut rng);
            let cfg = ModelGenConfig {
                num_topics: topics,
                num_tags: tags,
                density,
                topics_per_edge: (1, 2.min(topics)),
                edge_prob: EdgeProbKind::Uniform { lo: 0.05, hi: 0.9 },
            };
            random_model(graph, &cfg, &mut rng)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Posteriors are genuine probability distributions on their support.
    #[test]
    fn posterior_is_normalized(model in arb_model(10), raw_tags in proptest::collection::vec(0u32..8, 1..4)) {
        let tags = TagSet::new(raw_tags.into_iter().map(|t| t % model.num_tags() as u32).collect());
        let posterior = TopicPosterior::compute(model.tag_topic(), &tags);
        if !posterior.is_empty() {
            let sum: f64 = posterior.entries().iter().map(|&(_, w)| w).sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    /// Eq. 1 probabilities never exceed the per-edge maximum p(e).
    #[test]
    fn edge_probs_bounded_by_p_max(model in arb_model(10), raw_tags in proptest::collection::vec(0u32..8, 1..4)) {
        let tags = TagSet::new(raw_tags.into_iter().map(|t| t % model.num_tags() as u32).collect());
        let posterior = model.posterior(&tags);
        for (e, _, _) in model.graph().edges() {
            let p = posterior.edge_prob(model.edge_topics(), e);
            prop_assert!(p >= 0.0);
            prop_assert!(p <= model.edge_topics().p_max(e) as f64 + 1e-6);
        }
    }

    /// Lemma 8: the partial-set bound dominates every completion, on every
    /// edge, for every subset relationship.
    #[test]
    fn lemma8_bound_dominates(model in arb_model(8)) {
        let k = 3usize.min(model.num_tags());
        let oracle = BoundOracle::new(model.tag_topic());
        for partial_size in 0..k {
            for partial in KSubsets::new(model.num_tags() as u32, partial_size) {
                let w = TagSet::new(partial);
                let bounded = oracle.bounded_posterior(&w, k);
                for full in KSubsets::new(model.num_tags() as u32, k) {
                    let wp = TagSet::new(full);
                    if !w.is_subset_of(&wp) {
                        continue;
                    }
                    let posterior = model.posterior(&wp);
                    for (e, _, _) in model.graph().edges() {
                        let bound = bounded.edge_bound(model.edge_topics(), e);
                        let exact = posterior.edge_prob(model.edge_topics(), e);
                        prop_assert!(
                            bound >= exact - 1e-7,
                            "W={w} W'={wp} e={e}: {bound} < {exact}"
                        );
                    }
                }
            }
        }
    }

    /// Filter-and-verify (§6.2) returns exactly the same reachability
    /// outcomes as verifying every RR-Graph.
    #[test]
    fn cut_filter_is_sound_and_complete(
        model in arb_model(12),
        seed in 1u64..100_000,
        raw_tags in proptest::collection::vec(0u32..8, 1..4),
    ) {
        let tags = TagSet::new(raw_tags.into_iter().map(|t| t % model.num_tags() as u32).collect());
        let index = RrIndex::build_with_threads(&model, IndexBudget::Fixed(300), seed, 2);
        let posterior = model.posterior(&tags);
        let mut cache = model.new_prob_cache();
        for user in 0..model.graph().num_nodes() as u32 {
            let member: Vec<_> = index
                .graphs_containing(user)
                .iter()
                .map(|&g| &index.graphs()[g as usize])
                .collect();
            // Ground truth: verify everything.
            let mut scratch = ReachScratch::new();
            let mut truth = Vec::new();
            for (pos, rr) in member.iter().enumerate() {
                let mut probs =
                    PosteriorEdgeProbs::new(model.edge_topics(), &posterior, &mut cache);
                let mut visits = 0u64;
                if rr.reaches_target(user, &mut probs, &mut scratch, &mut visits) {
                    truth.push(pos as u32);
                }
            }
            // Filtered: candidates ⊇ truth, and verification agrees.
            let filter = CutFilter::build(user, member.iter().copied(), model.edge_topics());
            let mut probs =
                PosteriorEdgeProbs::new(model.edge_topics(), &posterior, &mut cache);
            let mut marks = EpochVisited::new(0);
            let mut candidates = Vec::new();
            filter.candidates(&mut probs, &mut marks, &mut candidates);
            for &t in &truth {
                prop_assert!(
                    candidates.contains(&t),
                    "user {user}: reachable graph {t} was filtered out"
                );
            }
        }
    }

    /// Delay-materialization recovery always contains the query user, and
    /// every recovered mark sits strictly below its edge's p(e).
    #[test]
    fn delay_recovery_invariants(model in arb_model(12), seed in 1u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut visited = EpochVisited::new(0);
        let users: Vec<u32> = model
            .graph()
            .nodes()
            .filter(|&v| model.graph().out_degree(v) > 0)
            .take(3)
            .collect();
        for user in users {
            let (rr, weight) = pitex::index::delay::recover_rr_graph(
                model.graph(),
                model.edge_topics(),
                user,
                &mut rng,
                &mut visited,
            );
            prop_assert!(rr.contains(user));
            prop_assert!(weight >= 1);
            for (_, e) in rr.edges() {
                prop_assert!(e.c < model.edge_topics().p_max(e.edge_id));
            }
        }
    }

    /// Best-effort exploration with an exact backend returns exactly the
    /// enumeration optimum (pruning must never discard the best set).
    #[test]
    fn best_effort_matches_enumeration(model in arb_model(9), k in 1usize..3) {
        let user = 0u32;
        let mut enumerate = PitexEngine::with_exact(
            &model,
            PitexConfig { strategy: ExplorationStrategy::Enumerate, ..Default::default() },
        );
        let mut best_effort = PitexEngine::with_exact(
            &model,
            PitexConfig { strategy: ExplorationStrategy::BestEffort, ..Default::default() },
        );
        let a = enumerate.query(user, k);
        let b = best_effort.query(user, k);
        prop_assert!((a.spread - b.spread).abs() < 1e-9, "enum {} vs best-effort {}", a.spread, b.spread);
    }

    /// Graph CSR invariants under random edge lists.
    #[test]
    fn graph_csr_roundtrip(edges in proptest::collection::vec((0u32..30, 0u32..30), 0..120)) {
        let mut builder = GraphBuilder::new(30);
        for &(s, t) in &edges {
            builder.add_edge(s, t);
        }
        let g = builder.build();
        // Forward and reverse views describe the same edge set.
        let mut forward: Vec<(u32, u32)> = g.edges().map(|(_, s, t)| (s, t)).collect();
        let mut reverse: Vec<(u32, u32)> = g
            .nodes()
            .flat_map(|v| g.in_edges(v).map(move |(_, s)| (s, v)))
            .collect();
        forward.sort_unstable();
        reverse.sort_unstable();
        prop_assert_eq!(forward, reverse);
        // Degrees sum to edge counts.
        let out_sum: usize = g.nodes().map(|v| g.out_degree(v)).sum();
        prop_assert_eq!(out_sum, g.num_edges());
        // Binary round trip.
        let back = pitex::graph::io::from_bytes(&pitex::graph::io::to_bytes(&g)).unwrap();
        prop_assert_eq!(back, g);
    }
}
