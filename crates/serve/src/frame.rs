//! The `PFRM` pipelined binary frame: length-prefixed request/reply encoding
//! for the serve protocol.
//!
//! The text protocol ([`crate::protocol`]) costs one formatted line and one
//! parse per direction per round trip, and — more importantly — one blocking
//! round trip per request. This module defines the wire format that lets a
//! client (and the cluster router's shard pools) **pipeline** many requests
//! on one connection and match replies back by id:
//!
//! ```text
//! +------+----------+----------------------+
//! | PFRM | len: u32 | payload (len bytes)  |
//! +------+----------+----------------------+
//! payload = id: u64, tag: u8, body...      (little-endian, codec format)
//! ```
//!
//! Every frame carries the 4-byte magic, so a reconnecting client needs no
//! connection-level handshake, and the server's first-bytes sniffing can
//! route `PFRM` connections to the binary path while `QUERY ...\n`, `GET
//! /metrics`, and everything else continue down the text path on the same
//! port (the same trick the `PSHM`/`PLOG`/`PWAL` on-disk formats use).
//!
//! The hot verbs — `PING`, `QUERY`, `EXPLAIN`, `TRACE`, and the `PONG` /
//! `OK` / `BUSY` / `ERR` replies — get native binary bodies. Every other
//! verb rides in a `Text` body that wraps its existing line form: admin
//! verbs are rare enough that re-using the battle-tested line codec beats
//! duplicating it, and it guarantees the two protocols can never drift.
//!
//! Inbound frames on the server are capped at [`MAX_REQUEST_FRAME_BYTES`]
//! (mirroring the 4 KiB text-line cap); client-side reply frames allow
//! [`MAX_REPLY_FRAME_BYTES`] because `SYNC` bundles and `/metrics`
//! expositions are legitimately large.

use crate::protocol::{ErrorCode, QueryReply, QueryRequest, Request, Response, TraceRequest};
use pitex_support::codec::{Decoder, Encoder};
use std::fmt;

/// Magic bytes opening every frame.
pub const MAGIC: [u8; 4] = *b"PFRM";

/// Frame header size: magic + little-endian `u32` payload length.
pub const HEADER_BYTES: usize = 8;

/// Largest payload the **server** accepts in one request frame. Mirrors the
/// 4 KiB text-line cap: a well-formed request always fits, and anything
/// bigger is an attack or a bug.
pub const MAX_REQUEST_FRAME_BYTES: usize = 4 * 1024;

/// Largest payload the **client** accepts in one reply frame. `SYNC`
/// bundles, `FLIGHT` dumps, and `/metrics` expositions are legitimately
/// large, so this is a sanity bound, not a protocol bound.
pub const MAX_REPLY_FRAME_BYTES: usize = 64 * 1024 * 1024;

// Request body tags.
const REQ_PING: u8 = 0;
const REQ_QUERY: u8 = 1;
const REQ_EXPLAIN: u8 = 2;
const REQ_TRACE: u8 = 3;
const REQ_TEXT: u8 = 255;

// Reply body tags.
const RSP_PONG: u8 = 0;
const RSP_OK: u8 = 1;
const RSP_BUSY: u8 = 2;
const RSP_ERR: u8 = 3;
const RSP_RAW: u8 = 254;
const RSP_TEXT: u8 = 255;

/// Why a byte stream could not be framed or a payload could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The first bytes of the stream do not spell `PFRM`. The connection is
    /// not speaking the binary protocol (or desynchronized mid-stream).
    BadMagic,
    /// A frame declared a payload longer than the receiver's cap. The only
    /// safe recovery is to drop the connection — the stream cannot be
    /// resynchronized without trusting the hostile length.
    Oversized { len: usize, cap: usize },
    /// The frame was well-delimited but its payload failed to decode.
    Corrupt(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "bad frame magic (expected PFRM)"),
            FrameError::Oversized { len, cap } => {
                write!(f, "frame payload of {len} bytes exceeds the {cap}-byte cap")
            }
            FrameError::Corrupt(msg) => write!(f, "corrupt frame payload: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

fn corrupt(what: &str, err: pitex_support::codec::DecodeError) -> FrameError {
    FrameError::Corrupt(format!("{what}: {err:?}"))
}

/// True while `prefix` (at most 4 bytes seen so far) could still open a
/// `PFRM` frame. The server's sniffer calls this after every byte of the
/// first four: one mismatching byte routes the connection to the text path
/// immediately, so a text client never waits on a 4-byte read.
pub fn could_be_frame(prefix: &[u8]) -> bool {
    prefix.len() <= MAGIC.len() && prefix.iter().zip(MAGIC.iter()).all(|(a, b)| a == b)
}

// ---------------------------------------------------------------------------
// Incremental frame extraction
// ---------------------------------------------------------------------------

/// Incremental frame parser: feed it byte chunks as they arrive (in any
/// fragmentation — mid-magic, mid-length, mid-payload), take complete
/// payloads out. Used by both the nonblocking event-loop connections and the
/// blocking client reader.
#[derive(Debug)]
pub struct FrameBuf {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed as frames. Advancing a cursor keeps
    /// draining a buffered burst of n frames O(total bytes): the leftover
    /// prefix is compacted once per `extend` (once per socket read), not
    /// memmove-shifted once per frame.
    pos: usize,
    cap: usize,
}

impl FrameBuf {
    /// A parser that rejects payloads longer than `cap` bytes.
    pub fn new(cap: usize) -> FrameBuf {
        FrameBuf { buf: Vec::new(), pos: 0, cap }
    }

    /// Append freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Extract the next complete payload, if one is fully buffered.
    ///
    /// * `Ok(Some(payload))` — a frame was consumed from the buffer.
    /// * `Ok(None)` — the buffer holds only a (possibly empty) frame prefix.
    /// * `Err(BadMagic)` — the buffered bytes cannot open a frame; reported
    ///   as soon as the first mismatching byte is seen.
    /// * `Err(Oversized)` — the declared length exceeds the cap.
    pub fn next_payload(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        let pending = &self.buf[self.pos..];
        if !could_be_frame(&pending[..pending.len().min(MAGIC.len())]) {
            return Err(FrameError::BadMagic);
        }
        if pending.len() < HEADER_BYTES {
            return Ok(None);
        }
        let len = u32::from_le_bytes([pending[4], pending[5], pending[6], pending[7]]) as usize;
        if len > self.cap {
            return Err(FrameError::Oversized { len, cap: self.cap });
        }
        let total = HEADER_BYTES + len;
        if pending.len() < total {
            return Ok(None);
        }
        let payload = pending[HEADER_BYTES..total].to_vec();
        self.pos += total;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
        Ok(Some(payload))
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn seal(payload: Vec<u8>) -> Vec<u8> {
    let mut frame = Vec::with_capacity(HEADER_BYTES + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

fn encode_query_body(enc: &mut Encoder<Vec<u8>>, q: &QueryRequest) {
    enc.u32(q.user);
    enc.u64(q.k as u64);
    match q.timeout_us {
        Some(us) => {
            enc.u8(1);
            enc.u64(us);
        }
        None => enc.u8(0),
    }
    match q.backend {
        Some(b) => {
            enc.u8(1);
            enc.str(b.cli_name());
        }
        None => enc.u8(0),
    }
}

fn decode_query_body(dec: &mut Decoder<&[u8]>) -> Result<QueryRequest, FrameError> {
    let user = dec.u32().map_err(|e| corrupt("query user", e))?;
    let k = dec.u64().map_err(|e| corrupt("query k", e))? as usize;
    let timeout_us = match dec.u8().map_err(|e| corrupt("timeout flag", e))? {
        0 => None,
        _ => Some(dec.u64().map_err(|e| corrupt("timeout", e))?),
    };
    let backend = match dec.u8().map_err(|e| corrupt("backend flag", e))? {
        0 => None,
        _ => {
            let name = dec.str().map_err(|e| corrupt("backend", e))?;
            Some(crate::protocol::parse_backend_name(&name).map_err(FrameError::Corrupt)?)
        }
    };
    Ok(QueryRequest { user, k, timeout_us, backend })
}

/// Encode one request as a complete frame (header included).
pub fn encode_request(id: u64, request: &Request) -> Vec<u8> {
    let mut enc = Encoder::new(Vec::new());
    enc.u64(id);
    match request {
        Request::Ping => enc.u8(REQ_PING),
        Request::Query(q) => {
            enc.u8(REQ_QUERY);
            encode_query_body(&mut enc, q);
        }
        Request::Explain(q) => {
            enc.u8(REQ_EXPLAIN);
            encode_query_body(&mut enc, q);
        }
        Request::Trace(t) => {
            enc.u8(REQ_TRACE);
            encode_query_body(&mut enc, &t.query);
            match t.trace_id {
                Some(tid) => {
                    enc.u8(1);
                    enc.u64(tid);
                }
                None => enc.u8(0),
            }
        }
        other => {
            enc.u8(REQ_TEXT);
            enc.str(&other.to_line());
        }
    }
    seal(enc.into_inner())
}

/// Decode a request payload (the bytes *after* the 8-byte frame header).
pub fn decode_request(payload: &[u8]) -> Result<(u64, Request), FrameError> {
    let mut dec = Decoder::new(payload);
    let id = dec.u64().map_err(|e| corrupt("request id", e))?;
    let tag = dec.u8().map_err(|e| corrupt("request tag", e))?;
    let request = match tag {
        REQ_PING => Request::Ping,
        REQ_QUERY => Request::Query(decode_query_body(&mut dec)?),
        REQ_EXPLAIN => Request::Explain(decode_query_body(&mut dec)?),
        REQ_TRACE => {
            let query = decode_query_body(&mut dec)?;
            let trace_id = match dec.u8().map_err(|e| corrupt("trace-id flag", e))? {
                0 => None,
                _ => Some(dec.u64().map_err(|e| corrupt("trace id", e))?),
            };
            Request::Trace(TraceRequest { query, trace_id })
        }
        REQ_TEXT => {
            let line = dec.str().map_err(|e| corrupt("text request", e))?;
            Request::parse(&line).map_err(FrameError::Corrupt)?
        }
        other => return Err(FrameError::Corrupt(format!("unknown request tag {other}"))),
    };
    Ok((id, request))
}

/// A decoded reply frame: either a typed [`Response`] or the raw text block
/// that answers `METRICS` (the Prometheus exposition is multi-line and has
/// no `Response` variant).
#[derive(Debug, Clone, PartialEq)]
pub enum WireReply {
    Response(Response),
    Raw(String),
}

/// Encode one reply as a complete frame (header included).
pub fn encode_response(id: u64, response: &Response) -> Vec<u8> {
    let mut enc = Encoder::new(Vec::new());
    enc.u64(id);
    match response {
        Response::Pong => enc.u8(RSP_PONG),
        Response::Ok(r) => {
            enc.u8(RSP_OK);
            enc.u32(r.user);
            enc.u64(r.k as u64);
            enc.u32_slice(&r.tags);
            enc.f64(r.spread);
            enc.u8(r.cached as u8);
            enc.u64(r.us);
        }
        Response::Busy => enc.u8(RSP_BUSY),
        Response::Err { code, message } => {
            enc.u8(RSP_ERR);
            enc.str(code.as_str());
            enc.str(message);
        }
        other => {
            enc.u8(RSP_TEXT);
            enc.str(&other.to_line());
        }
    }
    seal(enc.into_inner())
}

/// Encode the raw multi-line reply to `METRICS` as a complete frame.
pub fn encode_raw_response(id: u64, body: &str) -> Vec<u8> {
    let mut enc = Encoder::new(Vec::new());
    enc.u64(id);
    enc.u8(RSP_RAW);
    enc.str(body);
    seal(enc.into_inner())
}

/// Decode a reply payload (the bytes *after* the 8-byte frame header).
pub fn decode_response(payload: &[u8]) -> Result<(u64, WireReply), FrameError> {
    let mut dec = Decoder::new(payload);
    let id = dec.u64().map_err(|e| corrupt("reply id", e))?;
    let tag = dec.u8().map_err(|e| corrupt("reply tag", e))?;
    let reply = match tag {
        RSP_PONG => WireReply::Response(Response::Pong),
        RSP_OK => {
            let user = dec.u32().map_err(|e| corrupt("ok user", e))?;
            let k = dec.u64().map_err(|e| corrupt("ok k", e))? as usize;
            let tags = dec.u32_slice().map_err(|e| corrupt("ok tags", e))?;
            let spread = dec.f64().map_err(|e| corrupt("ok spread", e))?;
            let cached = dec.u8().map_err(|e| corrupt("ok cached", e))? != 0;
            let us = dec.u64().map_err(|e| corrupt("ok us", e))?;
            WireReply::Response(Response::Ok(QueryReply { user, k, tags, spread, cached, us }))
        }
        RSP_BUSY => WireReply::Response(Response::Busy),
        RSP_ERR => {
            let code_s = dec.str().map_err(|e| corrupt("err code", e))?;
            let code = ErrorCode::parse(&code_s)
                .ok_or_else(|| FrameError::Corrupt(format!("unknown error code {code_s:?}")))?;
            let message = dec.str().map_err(|e| corrupt("err message", e))?;
            WireReply::Response(Response::Err { code, message })
        }
        RSP_RAW => WireReply::Raw(dec.str().map_err(|e| corrupt("raw reply", e))?),
        RSP_TEXT => {
            let line = dec.str().map_err(|e| corrupt("text reply", e))?;
            WireReply::Response(Response::parse(&line).map_err(FrameError::Corrupt)?)
        }
        other => return Err(FrameError::Corrupt(format!("unknown reply tag {other}"))),
    };
    Ok((id, reply))
}

/// Best-effort request id of a payload whose body failed to decode, so the
/// server can address its `ERR` frame to the request that caused it.
pub fn payload_id(payload: &[u8]) -> u64 {
    if payload.len() >= 8 {
        u64::from_le_bytes(payload[..8].try_into().unwrap())
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::CaptureAction;
    use pitex_core::EngineBackend;
    use proptest::prelude::*;

    fn roundtrip_request(request: &Request) -> Request {
        let frame = encode_request(7, request);
        let mut fb = FrameBuf::new(MAX_REQUEST_FRAME_BYTES);
        fb.extend(&frame);
        let payload = fb.next_payload().unwrap().unwrap();
        assert_eq!(fb.buffered(), 0);
        let (id, decoded) = decode_request(&payload).unwrap();
        assert_eq!(id, 7);
        decoded
    }

    fn roundtrip_response(response: &Response) -> Response {
        let frame = encode_response(9, response);
        let mut fb = FrameBuf::new(MAX_REPLY_FRAME_BYTES);
        fb.extend(&frame);
        let payload = fb.next_payload().unwrap().unwrap();
        let (id, decoded) = decode_response(&payload).unwrap();
        assert_eq!(id, 9);
        match decoded {
            WireReply::Response(r) => r,
            WireReply::Raw(_) => panic!("typed response decoded as raw"),
        }
    }

    #[test]
    fn native_requests_roundtrip() {
        let cases = [
            Request::Ping,
            Request::Query(QueryRequest::new(3, 2)),
            Request::Query(QueryRequest {
                user: 1,
                k: 4,
                timeout_us: Some(2500),
                backend: Some(EngineBackend::IndexEst),
            }),
            Request::Explain(QueryRequest {
                user: 0,
                k: 1,
                timeout_us: None,
                backend: Some(EngineBackend::Auto),
            }),
            Request::Trace(TraceRequest {
                query: QueryRequest::new(2, 3),
                trace_id: Some(0xdead_beef),
            }),
            Request::Trace(TraceRequest { query: QueryRequest::new(2, 3), trace_id: None }),
        ];
        for request in &cases {
            assert_eq!(&roundtrip_request(request), request, "case {request:?}");
        }
    }

    #[test]
    fn text_wrapped_requests_roundtrip() {
        let cases = [
            Request::Stats,
            Request::Metrics,
            Request::Flight,
            Request::Health,
            Request::Capture(CaptureAction::Rotate),
            Request::Reload,
            Request::Prepare,
            Request::Commit,
            Request::Epoch,
            Request::Sync { from_epoch: 12 },
            Request::Discard,
            Request::Quit,
            Request::Shutdown,
        ];
        for request in &cases {
            assert_eq!(&roundtrip_request(request), request, "case {request:?}");
        }
    }

    #[test]
    fn responses_roundtrip() {
        let cases = [
            Response::Pong,
            Response::Ok(QueryReply {
                user: 5,
                k: 3,
                tags: vec![2, 3, 9],
                spread: 1.625,
                cached: true,
                us: 41,
            }),
            Response::Busy,
            Response::Err { code: ErrorCode::Deadline, message: "out of budget".into() },
            Response::Err { code: ErrorCode::AdminDenied, message: "no".into() },
            Response::Bye,
            Response::Epoch(7),
            Response::Updated { epoch: 3, pending: 2 },
            Response::Discarded { epoch: 4, dropped: 1 },
            Response::Captured { enabled: true, recorded: 10, dropped: 0 },
        ];
        for response in &cases {
            assert_eq!(&roundtrip_response(response), response, "case {response:?}");
        }
    }

    #[test]
    fn raw_reply_roundtrips() {
        let body = "# HELP pitex_requests total\npitex_requests 4\n# EOF\n";
        let frame = encode_raw_response(11, body);
        let mut fb = FrameBuf::new(MAX_REPLY_FRAME_BYTES);
        fb.extend(&frame);
        let payload = fb.next_payload().unwrap().unwrap();
        assert_eq!(decode_response(&payload).unwrap(), (11, WireReply::Raw(body.into())));
    }

    #[test]
    fn fragmented_delivery_reassembles() {
        let frame = encode_request(42, &Request::Query(QueryRequest::new(1, 2)));
        // Split at every possible boundary: mid-magic, mid-length, mid-payload.
        for split in 1..frame.len() {
            let mut fb = FrameBuf::new(MAX_REQUEST_FRAME_BYTES);
            fb.extend(&frame[..split]);
            assert_eq!(fb.next_payload().unwrap(), None, "premature frame at split {split}");
            fb.extend(&frame[split..]);
            let payload = fb.next_payload().unwrap().unwrap();
            assert_eq!(decode_request(&payload).unwrap().0, 42);
        }
        // Byte-by-byte is the degenerate case of the above.
        let mut fb = FrameBuf::new(MAX_REQUEST_FRAME_BYTES);
        for b in &frame {
            fb.extend(std::slice::from_ref(b));
        }
        assert!(fb.next_payload().unwrap().is_some());
    }

    #[test]
    fn back_to_back_frames_drain_in_order() {
        let mut stream = Vec::new();
        for id in 0..5u64 {
            stream.extend_from_slice(&encode_request(id, &Request::Ping));
        }
        let mut fb = FrameBuf::new(MAX_REQUEST_FRAME_BYTES);
        fb.extend(&stream);
        for id in 0..5u64 {
            let payload = fb.next_payload().unwrap().unwrap();
            assert_eq!(decode_request(&payload).unwrap(), (id, Request::Ping));
        }
        assert_eq!(fb.next_payload().unwrap(), None);
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut fb = FrameBuf::new(MAX_REQUEST_FRAME_BYTES);
        let mut header = MAGIC.to_vec();
        header.extend_from_slice(&(MAX_REQUEST_FRAME_BYTES as u32 + 1).to_le_bytes());
        fb.extend(&header);
        assert_eq!(
            fb.next_payload(),
            Err(FrameError::Oversized {
                len: MAX_REQUEST_FRAME_BYTES + 1,
                cap: MAX_REQUEST_FRAME_BYTES
            })
        );
        // A frame exactly at the cap is fine.
        let mut fb = FrameBuf::new(MAX_REQUEST_FRAME_BYTES);
        let mut frame = MAGIC.to_vec();
        frame.extend_from_slice(&(MAX_REQUEST_FRAME_BYTES as u32).to_le_bytes());
        frame.extend_from_slice(&vec![0u8; MAX_REQUEST_FRAME_BYTES]);
        fb.extend(&frame);
        assert!(fb.next_payload().unwrap().is_some());
    }

    #[test]
    fn bad_magic_is_reported_on_the_first_mismatching_byte() {
        // "QUERY..." diverges from PFRM at byte 0.
        let mut fb = FrameBuf::new(MAX_REQUEST_FRAME_BYTES);
        fb.extend(b"Q");
        assert_eq!(fb.next_payload(), Err(FrameError::BadMagic));
        // "PF" is still a plausible prefix; "PFX" is not.
        let mut fb = FrameBuf::new(MAX_REQUEST_FRAME_BYTES);
        fb.extend(b"PF");
        assert_eq!(fb.next_payload().unwrap(), None);
        fb.extend(b"X");
        assert_eq!(fb.next_payload(), Err(FrameError::BadMagic));
        assert!(could_be_frame(b""));
        assert!(could_be_frame(b"P"));
        assert!(could_be_frame(b"PFRM"));
        assert!(!could_be_frame(b"GET "));
        assert!(!could_be_frame(b"PFRMx"));
    }

    #[test]
    fn corrupt_payload_still_yields_its_id() {
        let mut enc = Encoder::new(Vec::new());
        enc.u64(0x1234);
        enc.u8(200); // unknown tag
        let payload = enc.into_inner();
        assert!(matches!(decode_request(&payload), Err(FrameError::Corrupt(_))));
        assert_eq!(payload_id(&payload), 0x1234);
        assert_eq!(payload_id(&[1, 2, 3]), 0);
    }

    proptest! {
        #[test]
        fn prop_query_requests_roundtrip(
            user in 0u32..1000,
            k in 0usize..64,
            timeout in 0u64..10_000_000,
            backend in 0usize..5,
        ) {
            let backends = [
                None,
                Some(EngineBackend::Exact),
                Some(EngineBackend::Mc),
                Some(EngineBackend::IndexEst),
                Some(EngineBackend::Auto),
            ];
            let request = Request::Query(QueryRequest {
                user,
                k,
                timeout_us: if timeout == 0 { None } else { Some(timeout) },
                backend: backends[backend],
            });
            let (id, decoded) =
                decode_request(&encode_request(user as u64, &request)[HEADER_BYTES..]).unwrap();
            prop_assert_eq!(id, user as u64);
            prop_assert_eq!(decoded, request);
        }

        #[test]
        fn prop_ok_replies_roundtrip(
            id in 0u64..u64::MAX,
            user in 0u32..1000,
            k in 0usize..64,
            tags in proptest::collection::vec(0u32..100_000, 0..32),
            spread in 0.0f64..1e9,
            cached in 0u8..2,
            us in 0u64..100_000_000,
        ) {
            let response =
                Response::Ok(QueryReply { user, k, tags, spread, cached: cached != 0, us });
            let (got_id, decoded) =
                decode_response(&encode_response(id, &response)[HEADER_BYTES..]).unwrap();
            prop_assert_eq!(got_id, id);
            prop_assert_eq!(decoded, WireReply::Response(response));
        }

        #[test]
        fn prop_fragmented_streams_never_lose_frames(
            ids in proptest::collection::vec(0u64..1000, 1..8),
            chunk in 1usize..16,
        ) {
            let mut stream = Vec::new();
            for &id in &ids {
                stream.extend_from_slice(&encode_request(id, &Request::Ping));
            }
            let mut fb = FrameBuf::new(MAX_REQUEST_FRAME_BYTES);
            let mut seen = Vec::new();
            for piece in stream.chunks(chunk) {
                fb.extend(piece);
                while let Some(payload) = fb.next_payload().unwrap() {
                    seen.push(decode_request(&payload).unwrap().0);
                }
            }
            prop_assert_eq!(seen, ids);
        }
    }
}
