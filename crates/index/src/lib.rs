//! The RR-Graph index of PITEX (§6).
//!
//! Online sampling re-generates sample instances for every user and tag set.
//! The index moves that work offline: it samples θ **reverse reachable
//! sample graphs** (RR-Graphs, Def. 2) for uniformly random targets, storing
//! with every edge the random mark `c(e) ∈ [0, p(e))` that decided its
//! existence. At query time, tag-aware reachability (Def. 3) — "is there a
//! path from `u` to the target using only edges with `p(e|W) ≥ c(e)`?" —
//! replays the same randomness under any tag set, so one offline sample
//! serves every query:
//!
//! * [`rrgraph`] — the RR-Graph structure and its reverse-sampling
//!   generator;
//! * [`build`] — parallel index construction ([`RrIndex`]) with the Eq. 7
//!   theoretical budget and practical per-vertex budgets;
//! * [`estimate`] — `EstimateInfluence+` (Algo. 3): the plain index-based
//!   estimator (the paper's INDEXEST);
//! * [`prune`] — edge-cut filtering with inverted lists (§6.2, INDEXEST+);
//! * [`delay`] — delay materialization (§6.3, Algo. 4, DELAYMAT): store one
//!   counter per user, recover the RR-Graphs at query time;
//! * [`serial`] — index persistence (Table 3 reports sizes).

pub mod build;
pub mod delay;
pub mod estimate;
pub mod prune;
pub mod rrgraph;
pub mod serial;

pub use build::{sample_rr_graph_at, IndexBudget, RrIndex};
pub use delay::{DelayMatEstimator, DelayMatIndex};
pub use estimate::IndexEstimator;
pub use prune::{CutPolicy, IndexPlusEstimator};
pub use rrgraph::RrGraph;
