//! SLO burn-rate health evaluation over the rolling time series.
//!
//! An SLO turns "is it healthy?" from a judgement call into arithmetic: a
//! target fraction of requests must be good (non-error for the
//! availability objective, under a latency threshold for the latency
//! objective). The *burn rate* is how fast the error budget is being
//! spent — `bad_fraction / (1 - target)` — so a burn of 1.0 exactly
//! exhausts the budget over the objective period, 10.0 exhausts it ten
//! times as fast.
//!
//! Following the SRE multi-window recipe, every objective is evaluated
//! over two windows of the [`TimeSeriesStore`]'s **mid** ring: a fast
//! window (default ≈5 minutes) that reacts quickly, and a slow window
//! (default ≈1 hour) that confirms the problem is sustained. The verdict:
//!
//! * **page** — fast burn ≥ page threshold *and* slow burn ≥ 1.0: the
//!   budget is burning fast and it is not a blip;
//! * **warn** — fast burn ≥ warn threshold *or* slow burn ≥ 1.0: worth a
//!   look, not worth a wake-up;
//! * **ok** — otherwise.
//!
//! Every non-ok verdict carries its evidence — the window that tripped,
//! the burn rate, and the offending field — because "degraded" without a
//! pointer is a question, not an answer. The router re-evaluates shard
//! verdicts under shard-named origins and appends its own, so the cluster
//! verdict names the worst shard outright.

use crate::hist::LatencyHistogram;
use crate::timeseries::{SeriesPoints, SeriesRes, TimeSeriesStore};
use std::fmt;

/// Objective targets and window geometry, resolved once at boot.
#[derive(Clone, Debug, PartialEq)]
pub struct SloOptions {
    /// Availability target: good = non-error fraction of requests
    /// (`PITEX_SLO_AVAIL_TARGET`, default 0.999).
    pub avail_target: f64,
    /// Latency threshold in µs — a request slower than this is "bad" for
    /// the latency objective (`PITEX_SLO_P99_US`, default 100_000).
    pub latency_threshold_us: u64,
    /// Latency target: fraction of requests that must beat the threshold
    /// (`PITEX_SLO_LAT_TARGET`, default 0.999).
    pub latency_target: f64,
    /// Fast window, in mid-ring windows (`PITEX_SLO_FAST_WINDOWS`,
    /// default 30 ≈ 5 minutes at the default 10 s mid window).
    pub fast_windows: usize,
    /// Slow window, in mid-ring windows (`PITEX_SLO_SLOW_WINDOWS`,
    /// default 360 ≈ 1 hour).
    pub slow_windows: usize,
    /// Fast-window burn rate that yields `warn` (`PITEX_SLO_WARN_BURN`,
    /// default 2.0).
    pub warn_burn: f64,
    /// Fast-window burn rate that (with a confirming slow window) yields
    /// `page` (`PITEX_SLO_PAGE_BURN`, default 10.0).
    pub page_burn: f64,
}

impl Default for SloOptions {
    fn default() -> Self {
        Self {
            avail_target: 0.999,
            latency_threshold_us: 100_000,
            latency_target: 0.999,
            fast_windows: 30,
            slow_windows: 360,
            warn_burn: 2.0,
            page_burn: 10.0,
        }
    }
}

impl SloOptions {
    /// Reads the `PITEX_SLO_*` knobs, falling back to the defaults.
    pub fn from_env() -> Self {
        let int = |key: &str| std::env::var(key).ok().and_then(|v| v.parse::<u64>().ok());
        let float = |key: &str| std::env::var(key).ok().and_then(|v| v.parse::<f64>().ok());
        let d = Self::default();
        Self {
            avail_target: float("PITEX_SLO_AVAIL_TARGET")
                .filter(|t| (0.0..1.0).contains(t))
                .unwrap_or(d.avail_target),
            latency_threshold_us: int("PITEX_SLO_P99_US").unwrap_or(d.latency_threshold_us),
            latency_target: float("PITEX_SLO_LAT_TARGET")
                .filter(|t| (0.0..1.0).contains(t))
                .unwrap_or(d.latency_target),
            fast_windows: int("PITEX_SLO_FAST_WINDOWS")
                .map(|n| n.max(1) as usize)
                .unwrap_or(d.fast_windows),
            slow_windows: int("PITEX_SLO_SLOW_WINDOWS")
                .map(|n| n.max(1) as usize)
                .unwrap_or(d.slow_windows),
            warn_burn: float("PITEX_SLO_WARN_BURN").unwrap_or(d.warn_burn),
            page_burn: float("PITEX_SLO_PAGE_BURN").unwrap_or(d.page_burn),
        }
    }
}

/// Which registry fields feed the objectives. The shard and the router
/// export the same shapes under different names, so the engine is
/// parameterized instead of hard-coded.
#[derive(Clone, Copy, Debug)]
pub struct SloInputs {
    /// Total-request counter field (availability denominator).
    pub requests: &'static str,
    /// Error counter field (availability numerator).
    pub errors: &'static str,
    /// Latency histogram field (latency objective).
    pub lat_hist: &'static str,
}

/// Shard-side field names.
pub const SHARD_INPUTS: SloInputs =
    SloInputs { requests: "requests", errors: "errors", lat_hist: "lat_hist" };

/// Router-side field names.
pub const ROUTER_INPUTS: SloInputs =
    SloInputs { requests: "router_requests", errors: "router_errors", lat_hist: "router_lat_hist" };

/// Health status, ordered by severity (`Ok < Warn < Page`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SloStatus {
    Ok,
    Warn,
    Page,
}

impl SloStatus {
    pub fn name(self) -> &'static str {
        match self {
            SloStatus::Ok => "ok",
            SloStatus::Warn => "warn",
            SloStatus::Page => "page",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "ok" => Some(SloStatus::Ok),
            "warn" => Some(SloStatus::Warn),
            "page" => Some(SloStatus::Page),
            _ => None,
        }
    }
}

impl fmt::Display for SloStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One objective's verdict, with the evidence that produced it.
#[derive(Clone, Debug, PartialEq)]
pub struct SloVerdict {
    /// Objective name: `availability` or `latency`.
    pub name: String,
    pub status: SloStatus,
    /// Which window tripped: `fast`, `slow`, or `-` when ok.
    pub window: String,
    /// The tripping window's burn rate (the fast burn when ok).
    pub burn: f64,
    /// The registry field the objective watched.
    pub field: String,
    /// Where the evidence came from: `self` on a shard, `shardN` or
    /// `router` in a merged cluster verdict.
    pub origin: String,
}

/// The whole component's verdict: worst status across objectives, plus
/// every per-objective verdict.
#[derive(Clone, Debug, PartialEq)]
pub struct HealthVerdict {
    pub status: SloStatus,
    /// Origin of the worst non-ok verdict (`-` when everything is ok).
    pub worst: String,
    pub slos: Vec<SloVerdict>,
}

impl HealthVerdict {
    /// Folds a set of per-objective verdicts into a component verdict.
    pub fn from_slos(slos: Vec<SloVerdict>) -> Self {
        let mut status = SloStatus::Ok;
        let mut worst = "-".to_string();
        let mut worst_burn = f64::NEG_INFINITY;
        for v in &slos {
            let beats = v.status > status
                || (v.status == status && v.status != SloStatus::Ok && v.burn > worst_burn);
            if beats {
                status = v.status;
                worst_burn = v.burn;
                worst = v.origin.clone();
            }
        }
        Self { status, worst, slos }
    }
}

/// Evaluates both objectives against `store` and folds them into a
/// component verdict with origin `self`.
pub fn evaluate(store: &TimeSeriesStore, options: &SloOptions, inputs: SloInputs) -> HealthVerdict {
    let slos =
        vec![availability_verdict(store, options, inputs), latency_verdict(store, options, inputs)];
    HealthVerdict::from_slos(slos)
}

fn availability_verdict(
    store: &TimeSeriesStore,
    options: &SloOptions,
    inputs: SloInputs,
) -> SloVerdict {
    let bad_fraction = |windows: usize| -> Option<f64> {
        let requests = tail_sum(store, inputs.requests, windows)?;
        let errors = tail_sum(store, inputs.errors, windows)?;
        if requests <= 0.0 {
            return None;
        }
        Some((errors / requests).clamp(0.0, 1.0))
    };
    verdict(
        "availability",
        inputs.errors,
        options.avail_target,
        options,
        bad_fraction(options.fast_windows),
        bad_fraction(options.slow_windows),
    )
}

fn latency_verdict(store: &TimeSeriesStore, options: &SloOptions, inputs: SloInputs) -> SloVerdict {
    let bad_fraction = |windows: usize| -> Option<f64> {
        let merged = tail_hist(store, inputs.lat_hist, windows)?;
        if merged.count() == 0 {
            return None;
        }
        Some(fraction_above(&merged, options.latency_threshold_us))
    };
    verdict(
        "latency",
        inputs.lat_hist,
        options.latency_target,
        options,
        bad_fraction(options.fast_windows),
        bad_fraction(options.slow_windows),
    )
}

/// Applies the multi-window rule to one objective's fast/slow bad
/// fractions. `None` (no traffic yet) counts as a clean window — an idle
/// service is a healthy service.
fn verdict(
    name: &str,
    field: &str,
    target: f64,
    options: &SloOptions,
    fast_bad: Option<f64>,
    slow_bad: Option<f64>,
) -> SloVerdict {
    let budget = (1.0 - target).max(f64::EPSILON);
    let fast_burn = fast_bad.unwrap_or(0.0) / budget;
    let slow_burn = slow_bad.unwrap_or(0.0) / budget;
    let (status, window, burn) = if fast_burn >= options.page_burn && slow_burn >= 1.0 {
        (SloStatus::Page, "fast", fast_burn)
    } else if fast_burn >= options.warn_burn {
        (SloStatus::Warn, "fast", fast_burn)
    } else if slow_burn >= 1.0 {
        (SloStatus::Warn, "slow", slow_burn)
    } else {
        (SloStatus::Ok, "-", fast_burn)
    };
    SloVerdict {
        name: name.to_string(),
        status,
        window: window.to_string(),
        burn,
        field: field.to_string(),
        origin: "self".to_string(),
    }
}

/// Sum of the last `windows` mid-ring points of a counter field.
fn tail_sum(store: &TimeSeriesStore, field: &str, windows: usize) -> Option<f64> {
    let dump = store.series(field, SeriesRes::Mid)?;
    let SeriesPoints::Scalar(points) = dump.points else { return None };
    let start = points.len().saturating_sub(windows);
    Some(points[start..].iter().sum())
}

/// Merge of the last `windows` mid-ring snapshots of a histogram field.
fn tail_hist(store: &TimeSeriesStore, field: &str, windows: usize) -> Option<LatencyHistogram> {
    let dump = store.series(field, SeriesRes::Mid)?;
    let SeriesPoints::Hist(points) = dump.points else { return None };
    let start = points.len().saturating_sub(windows);
    let mut merged = LatencyHistogram::new();
    for h in &points[start..] {
        merged.merge(h);
    }
    Some(merged)
}

/// Fraction of recorded samples strictly above `threshold`, with linear
/// interpolation inside the straddling bucket (the same uniform-in-bucket
/// model as [`LatencyHistogram::quantile`]).
pub fn fraction_above(hist: &LatencyHistogram, threshold: u64) -> f64 {
    let total = hist.count();
    if total == 0 {
        return 0.0;
    }
    let mut above = 0u64;
    let mut straddle = 0.0f64;
    for (bucket, &n) in hist.buckets().iter().enumerate() {
        if n == 0 {
            continue;
        }
        let lower = crate::hist::bucket_lower_bound(bucket);
        let upper = crate::hist::bucket_upper_bound(bucket);
        if lower > threshold {
            above += n;
        } else if upper > threshold {
            // Bucket straddles the threshold: assume uniform occupancy.
            let width = (upper - lower) as f64 + 1.0;
            let above_width = (upper - threshold) as f64;
            straddle += n as f64 * (above_width / width);
        }
    }
    ((above as f64 + straddle) / total as f64).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::TsOptions;
    use std::time::Duration as StdDuration;

    fn store() -> TimeSeriesStore {
        TimeSeriesStore::new(TsOptions {
            tick: StdDuration::from_millis(10),
            fast_slots: 8,
            mid_slots: 64,
            slow_slots: 8,
        })
    }

    fn options() -> SloOptions {
        SloOptions { fast_windows: 3, slow_windows: 6, ..SloOptions::default() }
    }

    /// Pushes one *mid* window's worth of ticks with the given cumulative
    /// field values repeated (counters only move on the first tick).
    fn push_window(store: &TimeSeriesStore, requests: u64, errors: u64, hist: &LatencyHistogram) {
        let requests = requests.to_string();
        let errors = errors.to_string();
        let hist = hist.to_wire();
        for _ in 0..SeriesRes::Mid.window_ticks() {
            store.tick([
                ("requests", requests.as_str()),
                ("errors", errors.as_str()),
                ("lat_hist", hist.as_str()),
            ]);
        }
    }

    fn fast_hist(samples: u64) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for _ in 0..samples {
            h.record(500); // well under the default 100 ms threshold
        }
        h
    }

    #[test]
    fn idle_store_is_ok() {
        let verdict = evaluate(&store(), &options(), SHARD_INPUTS);
        assert_eq!(verdict.status, SloStatus::Ok);
        assert_eq!(verdict.worst, "-");
        assert_eq!(verdict.slos.len(), 2);
        assert!(verdict.slos.iter().all(|v| v.status == SloStatus::Ok && v.window == "-"));
    }

    #[test]
    fn healthy_traffic_is_ok() {
        let store = store();
        let mut hist = LatencyHistogram::new();
        let mut requests = 0;
        for _ in 0..6 {
            requests += 1000;
            hist.merge(&fast_hist(1000));
            push_window(&store, requests, 0, &hist);
        }
        let verdict = evaluate(&store, &options(), SHARD_INPUTS);
        assert_eq!(verdict.status, SloStatus::Ok, "verdict: {verdict:?}");
    }

    #[test]
    fn sustained_errors_page_with_evidence() {
        let store = store();
        let mut requests = 0;
        let mut errors = 0;
        let hist = fast_hist(0);
        for _ in 0..6 {
            requests += 1000;
            errors += 100; // 10% errors: burn 100x against a 0.1% budget
            push_window(&store, requests, errors, &hist);
        }
        let verdict = evaluate(&store, &options(), SHARD_INPUTS);
        assert_eq!(verdict.status, SloStatus::Page);
        assert_eq!(verdict.worst, "self");
        let avail = verdict.slos.iter().find(|v| v.name == "availability").unwrap();
        assert_eq!(avail.status, SloStatus::Page);
        assert_eq!(avail.window, "fast");
        assert_eq!(avail.field, "errors");
        assert!(avail.burn > 50.0, "burn: {}", avail.burn);
    }

    #[test]
    fn slow_latency_pages_and_names_the_histogram() {
        let store = store();
        let opts = options();
        let mut hist = LatencyHistogram::new();
        let mut requests = 0;
        for _ in 0..6 {
            requests += 100;
            for _ in 0..100 {
                hist.record(1_000_000); // 1 s — 10x over the threshold
            }
            push_window(&store, requests, 0, &hist);
        }
        let verdict = evaluate(&store, &opts, SHARD_INPUTS);
        assert_eq!(verdict.status, SloStatus::Page);
        let lat = verdict.slos.iter().find(|v| v.name == "latency").unwrap();
        assert_eq!(lat.status, SloStatus::Page);
        assert_eq!(lat.field, "lat_hist");
        assert_eq!(lat.window, "fast");
    }

    #[test]
    fn short_blip_warns_but_does_not_page() {
        let store = store();
        let opts = SloOptions { fast_windows: 1, slow_windows: 6, ..SloOptions::default() };
        let mut hist = LatencyHistogram::new();
        let mut requests = 0;
        // Five clean high-traffic windows, then one window with a burst of
        // slow requests: the fast window burns way past the page
        // threshold, but the slow window has budget left — the
        // multi-window rule holds the page and emits a warn instead.
        for _ in 0..5 {
            requests += 10_000;
            hist.merge(&fast_hist(10_000));
            push_window(&store, requests, 0, &hist);
        }
        requests += 1000;
        hist.merge(&fast_hist(970));
        for _ in 0..30 {
            hist.record(1_000_000);
        }
        push_window(&store, requests, 0, &hist);
        let verdict = evaluate(&store, &opts, SHARD_INPUTS);
        let lat = verdict.slos.iter().find(|v| v.name == "latency").unwrap();
        assert_eq!(lat.status, SloStatus::Warn, "verdict: {verdict:?}");
        assert_eq!(lat.window, "fast");
        assert!(lat.burn >= opts.page_burn, "fast window alone would have paged: {}", lat.burn);
    }

    #[test]
    fn merged_cluster_verdict_names_the_worst_origin() {
        let ok = SloVerdict {
            name: "availability".into(),
            status: SloStatus::Ok,
            window: "-".into(),
            burn: 0.1,
            field: "errors".into(),
            origin: "shard0".into(),
        };
        let warm = SloVerdict {
            name: "latency".into(),
            status: SloStatus::Page,
            window: "fast".into(),
            burn: 12.0,
            field: "lat_hist".into(),
            origin: "shard1".into(),
        };
        let hot = SloVerdict { burn: 40.0, origin: "shard2".into(), ..warm.clone() };
        let verdict = HealthVerdict::from_slos(vec![ok, warm, hot]);
        assert_eq!(verdict.status, SloStatus::Page);
        assert_eq!(verdict.worst, "shard2", "higher burn wins the tie");
    }

    #[test]
    fn fraction_above_interpolates_within_the_bucket() {
        let mut h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(600); // bucket 10 = [512, 1023]
        }
        let f = fraction_above(&h, 767); // midpoint of the bucket
        assert!((f - 0.5).abs() < 0.01, "fraction: {f}");
        assert_eq!(fraction_above(&h, 1023), 0.0);
        assert_eq!(fraction_above(&h, 100), 1.0);
    }

    #[test]
    fn status_orders_and_parses() {
        assert!(SloStatus::Ok < SloStatus::Warn && SloStatus::Warn < SloStatus::Page);
        for s in [SloStatus::Ok, SloStatus::Warn, SloStatus::Page] {
            assert_eq!(SloStatus::parse(s.name()), Some(s));
        }
        assert_eq!(SloStatus::parse("bogus"), None);
    }

    #[test]
    fn env_knobs_parse() {
        std::env::set_var("PITEX_SLO_P99_US", "5000");
        std::env::set_var("PITEX_SLO_PAGE_BURN", "4.5");
        std::env::set_var("PITEX_SLO_AVAIL_TARGET", "1.5"); // out of range: ignored
        let opts = SloOptions::from_env();
        std::env::remove_var("PITEX_SLO_P99_US");
        std::env::remove_var("PITEX_SLO_PAGE_BURN");
        std::env::remove_var("PITEX_SLO_AVAIL_TARGET");
        assert_eq!(opts.latency_threshold_us, 5000);
        assert_eq!(opts.page_burn, 4.5);
        assert_eq!(opts.avail_target, SloOptions::default().avail_target);
    }
}
