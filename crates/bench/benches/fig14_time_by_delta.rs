//! Fig. 14 (Appx. D) — Efficiency when varying δ ∈ {10, 10², 10³, 10⁴}.
//!
//! Sample counts grow with ln δ (Eq. 2), so runtime grows slowly — not
//! exponentially — in δ.

use pitex_bench::{banner, param_sweep, print_sweep_table, BenchEnv, Method};

fn main() {
    let env = BenchEnv::from_env();
    banner("Fig. 14: average query time (s) vs δ", "mid user group; ε = 0.7, k = 3");
    let rows = param_sweep(
        &env,
        &Method::OFFLINE_PLUS_LAZY,
        env.profiles(),
        &[10.0, 100.0, 1_000.0, 10_000.0],
        |config, _k, delta| config.delta = delta,
    );
    print_sweep_table(&rows, &Method::OFFLINE_PLUS_LAZY, "delta", |o| o.time.mean(), "time (s)");
}
