//! Lazy propagation sampling (§5.1, Algo. 2).
//!
//! MC probes every out-edge of every activated vertex in every instance; on
//! sparse influence graphs almost all of those probes fail. Lazy propagation
//! replaces per-instance Bernoulli probes with per-edge *geometric skip
//! counters*: when a vertex `v` is first activated, each live out-edge draws
//! a geometric gap `X` and fires at `v`'s `X`-th activation (counted across
//! all sample instances); on firing it re-arms `X′` activations later.
//! Lemma 6 shows the fire pattern is statistically identical to Bernoulli
//! probing, and Lemma 7 bounds the per-instance probe count by
//! `O(|R_W(u)|·E[I(u ⇝ v*|W)])` — edges are touched only when they fire.
//!
//! Bookkeeping per vertex: an activation counter `c_v` and a min-heap of
//! `(fire_at, edge)` pairs, both *persistent across instances* of one
//! estimate call (exactly the structure of Algo. 2 / Fig. 4). The heaps are
//! pooled across calls — Appx. D of the paper measures heap churn as lazy
//! sampling's main constant-factor cost and leaves pooling as future work;
//! we implement it.

use crate::bounds::{SampleBudget, SamplingParams};
use crate::estimator::{reachable_positive, Estimate, SpreadEstimator};
use crate::geometric::geometric;
use pitex_graph::traverse::BfsScratch;
use pitex_graph::{DiGraph, NodeId};
use pitex_model::EdgeProbs;
use pitex_support::EpochVisited;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

type FireHeap = BinaryHeap<Reverse<(u64, u32)>>;

/// Lazy propagation spread estimator (the paper's LAZY).
#[derive(Debug)]
pub struct LazySampler {
    /// Which call epoch each vertex's lazy state belongs to.
    init_stamp: Vec<u32>,
    call_epoch: u32,
    /// `c_v`: total activations of `v` in the current call.
    counters: Vec<u64>,
    /// Per-vertex fire heaps, pooled across calls (capacity is retained).
    heaps: Vec<FireHeap>,
    visited: EpochVisited,
    frontier: Vec<NodeId>,
    reach_scratch: BfsScratch,
    reach_buf: Vec<NodeId>,
    /// Diagnostic: geometric timers armed (≈ out-edges of first-time
    /// visited vertices); not part of `edges_visited`, which counts fires
    /// to match the paper's probe metric (Lemma 7, Fig. 13).
    pub edges_armed: u64,
}

impl LazySampler {
    pub fn new(num_nodes: usize) -> Self {
        Self {
            init_stamp: vec![0; num_nodes],
            call_epoch: 0,
            counters: vec![0; num_nodes],
            heaps: (0..num_nodes).map(|_| FireHeap::new()).collect(),
            visited: EpochVisited::new(num_nodes),
            frontier: Vec::new(),
            reach_scratch: BfsScratch::new(num_nodes),
            reach_buf: Vec::new(),
            edges_armed: 0,
        }
    }

    fn grow(&mut self, num_nodes: usize) {
        if num_nodes > self.heaps.len() {
            self.init_stamp.resize(num_nodes, 0);
            self.counters.resize(num_nodes, 0);
            self.heaps.resize_with(num_nodes, FireHeap::new);
            self.visited.grow(num_nodes);
        }
    }
}

impl SpreadEstimator for LazySampler {
    fn estimate(
        &mut self,
        graph: &DiGraph,
        user: NodeId,
        probs: &mut dyn EdgeProbs,
        params: &SamplingParams,
    ) -> Estimate {
        reachable_positive(graph, user, probs, &mut self.reach_scratch, &mut self.reach_buf);
        let reachable = self.reach_buf.len();
        if reachable <= 1 {
            return Estimate::isolated();
        }
        self.grow(graph.num_nodes());
        // New call: lazily invalidate all per-vertex state.
        if self.call_epoch == u32::MAX {
            self.init_stamp.fill(0);
            self.call_epoch = 0;
        }
        self.call_epoch += 1;

        let mut rng =
            StdRng::seed_from_u64(params.seed ^ (user as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93));
        let threshold = params.stop_threshold(reachable);
        let max_iters = params.max_iterations(reachable);

        let mut accumulated = 0u64;
        let mut edges_visited = 0u64;
        let mut iterations = 0u64;

        while iterations < max_iters {
            // One sample instance.
            self.visited.reset();
            self.frontier.clear();
            self.visited.insert(user);
            self.frontier.push(user);
            let mut activated = 1u64;

            while let Some(v) = self.frontier.pop() {
                let vi = v as usize;
                // First activation in this call: reset and arm timers.
                if self.init_stamp[vi] != self.call_epoch {
                    self.init_stamp[vi] = self.call_epoch;
                    self.counters[vi] = 0;
                    self.heaps[vi].clear();
                    for (e, _) in graph.out_edges(v) {
                        let p = probs.prob(e);
                        if p > 0.0 {
                            self.edges_armed += 1;
                            let x = geometric(p, &mut rng);
                            if x != crate::geometric::NEVER {
                                self.heaps[vi].push(Reverse((x, e)));
                            }
                        }
                    }
                }
                self.counters[vi] += 1;
                let c = self.counters[vi];
                // Fire every timer that has come due at activation `c`.
                while let Some(&Reverse((fire_at, e))) = self.heaps[vi].peek() {
                    if fire_at > c {
                        break;
                    }
                    self.heaps[vi].pop();
                    edges_visited += 1;
                    // Re-arm: next fire X' activations from now (Lemma 6's
                    // memorylessness keeps instances i.i.d.).
                    let p = probs.prob(e);
                    let x = geometric(p, &mut rng);
                    self.heaps[vi].push(Reverse((c.saturating_add(x), e)));
                    let t = graph.edge_target(e);
                    if self.visited.insert(t) {
                        self.frontier.push(t);
                        activated += 1;
                    }
                }
            }

            accumulated += activated;
            iterations += 1;
            if matches!(params.budget, SampleBudget::Adaptive) && accumulated as f64 >= threshold {
                break;
            }
        }

        Estimate {
            spread: accumulated as f64 / iterations as f64,
            samples_used: iterations,
            edges_visited,
            reachable,
        }
    }

    fn name(&self) -> &'static str {
        "LAZY"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitex_graph::gen;
    use pitex_model::FixedEdgeProbs;

    fn params_fixed(n: u64) -> SamplingParams {
        SamplingParams::enumeration(0.5, 100.0, 10, 2).with_fixed_budget(n)
    }

    #[test]
    fn certain_path_gives_exact_spread() {
        let g = gen::path(5);
        let mut probs = FixedEdgeProbs::uniform(g.num_edges(), 1.0);
        let mut lazy = LazySampler::new(g.num_nodes());
        let est = lazy.estimate(&g, 0, &mut probs, &params_fixed(100));
        assert_eq!(est.spread, 5.0);
        // p = 1 edges fire on every activation: 4 fires per instance.
        assert_eq!(est.edges_visited, 400);
    }

    #[test]
    fn isolated_user_short_circuits() {
        let g = gen::path(3);
        let mut probs = FixedEdgeProbs::uniform(g.num_edges(), 0.0);
        let mut lazy = LazySampler::new(g.num_nodes());
        let est = lazy.estimate(&g, 0, &mut probs, &params_fixed(10));
        assert_eq!(est.spread, 1.0);
    }

    #[test]
    fn star_estimate_converges_to_closed_form() {
        let n = 50usize;
        let g = gen::star_low_impact(n);
        let mut probs = FixedEdgeProbs::uniform(g.num_edges(), 1.0 / n as f64);
        let mut lazy = LazySampler::new(g.num_nodes());
        let est = lazy.estimate(&g, 0, &mut probs, &params_fixed(20_000));
        assert!((est.spread - 2.0).abs() < 0.1, "got {}", est.spread);
    }

    #[test]
    fn lazy_visits_orders_of_magnitude_fewer_edges_than_mc_on_star() {
        // The §5.1 claim: on Fig. 3(a) MC probes n edges per instance while
        // lazy fires ≈ n·p = 1 per instance.
        let n = 100usize;
        let iters = 2_000u64;
        let g = gen::star_low_impact(n);
        let p = 1.0 / n as f64;

        let mut probs = FixedEdgeProbs::uniform(g.num_edges(), p);
        let mut lazy = LazySampler::new(g.num_nodes());
        let lazy_est = lazy.estimate(&g, 0, &mut probs, &params_fixed(iters));

        let mut mc = crate::mc::McSampler::new(g.num_nodes());
        let mc_est = mc.estimate(&g, 0, &mut probs, &params_fixed(iters));

        assert!(
            lazy_est.edges_visited * 20 < mc_est.edges_visited,
            "lazy {} vs mc {}",
            lazy_est.edges_visited,
            mc_est.edges_visited
        );
        // Expected fires ≈ iters·n·p = iters.
        let expected = iters as f64;
        assert!(
            (lazy_est.edges_visited as f64 - expected).abs() < 0.2 * expected,
            "fires {} vs expected {expected}",
            lazy_est.edges_visited
        );
    }

    #[test]
    fn fire_counts_match_bernoulli_rate() {
        // Single edge with p = 0.3 probed over θ instances must fire
        // ≈ Binomial(θ, p) times (Lemma 6).
        let g = gen::path(2);
        let theta = 50_000u64;
        let mut probs = FixedEdgeProbs::uniform(1, 0.3);
        let mut lazy = LazySampler::new(g.num_nodes());
        let est = lazy.estimate(&g, 0, &mut probs, &params_fixed(theta));
        let rate = est.edges_visited as f64 / theta as f64;
        assert!((rate - 0.3).abs() < 0.01, "fire rate {rate}");
        // And the spread estimate follows: 1 + p.
        assert!((est.spread - 1.3).abs() < 0.01, "spread {}", est.spread);
    }

    #[test]
    fn agrees_with_mc_on_a_random_dag() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(8);
        let g = gen::random_dag(25, 0.15, &mut rng);
        let mut probs = FixedEdgeProbs::uniform(g.num_edges(), 0.4);
        let p = params_fixed(30_000);
        let mut lazy = LazySampler::new(g.num_nodes());
        let mut mc = crate::mc::McSampler::new(g.num_nodes());
        let a = lazy.estimate(&g, 0, &mut probs, &p).spread;
        let b = mc.estimate(&g, 0, &mut probs, &p).spread;
        assert!((a - b).abs() < 0.05 * b.max(1.0), "lazy {a} vs mc {b}");
    }

    #[test]
    fn state_is_isolated_between_calls() {
        // Different tag sets (here: different probabilities) must not leak
        // timers armed for the previous probabilities.
        let g = gen::path(3);
        let mut lazy = LazySampler::new(g.num_nodes());
        let mut hot = FixedEdgeProbs::uniform(2, 1.0);
        let est_hot = lazy.estimate(&g, 0, &mut hot, &params_fixed(500));
        assert_eq!(est_hot.spread, 3.0);
        let mut cold = FixedEdgeProbs::uniform(2, 0.01);
        let est_cold = lazy.estimate(&g, 0, &mut cold, &params_fixed(500));
        assert!(est_cold.spread < 1.2, "stale p=1 timers leaked: {}", est_cold.spread);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = gen::star_low_impact(40);
        let mut probs = FixedEdgeProbs::uniform(g.num_edges(), 0.1);
        let p = params_fixed(1_000);
        let mut lazy = LazySampler::new(g.num_nodes());
        let a = lazy.estimate(&g, 0, &mut probs, &p);
        let b = lazy.estimate(&g, 0, &mut probs, &p);
        assert_eq!(a, b);
    }
}
