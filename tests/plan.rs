//! Planner acceptance suite (`backend=auto` end to end).
//!
//! Asserts the tentpole contract of the cost-based planner: an `auto`
//! answer is **bit-identical** to the forced backend it resolves to (on
//! Fig. 2 and on the pipeline workload, every user), a deadline-tight
//! query *degrades* to a cheaper backend and still answers instead of
//! burning the deadline into `ERR DEADLINE`, the `EXPLAIN` verb reports
//! the decision through a real server, and — property-tested — the
//! planner never selects a backend whose required artifact is absent.

use pitex::core::plan::{ModelStats, PlanInput, Planner};
use pitex::prelude::*;
use pitex::serve::{ErrorCode, Response, ServeClient, ServeOptions, Server};
use proptest::prelude::*;
use std::sync::Arc;

/// Fig. 2's optimum for `(u1, k = 2)`, as 0-based tag ids.
const PAPER_TAGS: [u32; 2] = [2, 3];

fn auto_handle_with_indexes(model: Arc<TicModel>) -> EngineHandle {
    let rr = Arc::new(RrIndex::build(&model, IndexBudget::Fixed(3_000), 3));
    let delay = Arc::new(DelayMatIndex::build(&model, IndexBudget::Fixed(3_000), 3));
    EngineHandle::with_indexes(
        model,
        EngineBackend::Auto,
        Some(rr),
        Some(delay),
        PitexConfig::default(),
    )
    .unwrap()
}

#[test]
fn auto_is_bit_identical_to_its_resolved_backend_on_fig2() {
    let model = Arc::new(TicModel::paper_example());
    let handle = auto_handle_with_indexes(model.clone());
    for user in 0..model.graph().num_nodes() as u32 {
        for k in 1..=3usize {
            let (auto_result, decision) = handle.query_auto(user, k, None);
            assert_ne!(decision.chosen, EngineBackend::Auto);
            // The same query forced onto the resolved backend, over the
            // same snapshots and config, must agree bit for bit.
            let forced = handle.engine_for(decision.chosen).unwrap().query(user, k);
            assert_eq!(auto_result.tags, forced.tags, "user {user} k {k} {}", decision.chosen);
            assert_eq!(
                auto_result.spread, forced.spread,
                "user {user} k {k} {}: spread must be bit-identical",
                decision.chosen
            );
        }
    }
}

#[test]
fn auto_matches_forced_backend_on_the_pipeline_workload() {
    // The pipeline suite's dataset: lastfm-like at 0.15 scale, RR index —
    // every user queried once.
    let model = Arc::new(DatasetProfile::lastfm_like().scaled(0.15).generate());
    let rr = Arc::new(RrIndex::build(&model, IndexBudget::PerVertex(6.0), 13));
    let handle = EngineHandle::with_indexes(
        model.clone(),
        EngineBackend::Auto,
        Some(rr),
        None,
        PitexConfig::default(),
    )
    .unwrap();
    let mut chosen = std::collections::BTreeSet::new();
    for user in 0..model.graph().num_nodes() as u32 {
        let (auto_result, decision) = handle.query_auto(user, 2, None);
        chosen.insert(decision.chosen.cli_name());
        let forced = handle.engine_for(decision.chosen).unwrap().query(user, 2);
        assert_eq!(auto_result.tags, forced.tags, "user {user} via {}", decision.chosen);
        assert_eq!(auto_result.spread, forced.spread, "user {user} via {}", decision.chosen);
    }
    // With an RR index present the planner must be exploiting it.
    assert!(
        chosen.contains("indexest") || chosen.contains("indexest+"),
        "an index regime never used its index: chose {chosen:?}"
    );
}

#[test]
fn planner_counters_account_for_every_auto_query() {
    let model = Arc::new(TicModel::paper_example());
    let handle = auto_handle_with_indexes(model);
    for _ in 0..5 {
        handle.query_auto(0, 2, None);
    }
    let total: u64 = EngineBackend::ALL.iter().map(|&b| handle.planner().decisions(b)).sum();
    assert_eq!(total, 5, "every auto query is one recorded decision");
}

/// The serve-level degradation contract: a deadline that cannot fit the
/// preferred backend answers from a cheaper one — no `ERR DEADLINE`.
#[test]
fn deadline_tight_query_degrades_and_still_answers() {
    let model = Arc::new(TicModel::paper_example());
    let handle = EngineHandle::new(model, EngineBackend::Auto, PitexConfig::default()).unwrap();
    // Teach the planner that every accurate backend takes ~0.8s while the
    // TIM fallback is microseconds: the decision becomes deterministic and
    // independent of CI timing.
    let planner = handle.planner().clone();
    for backend in [EngineBackend::Lazy, EngineBackend::Mc, EngineBackend::Rr, EngineBackend::Exact]
    {
        for _ in 0..5 {
            planner.observe(backend, 800_000);
        }
    }
    for _ in 0..5 {
        planner.observe(EngineBackend::Tim, 20);
    }

    let server = Server::spawn(handle, ("127.0.0.1", 0), ServeOptions::default()).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();

    // 200ms budget: predicted 800ms for every accurate backend, so the
    // planner degrades to TIM — which really does finish well inside the
    // budget on the Fig. 2 model.
    let reply = client.explain(0, 2, Some(200_000), Some(EngineBackend::Auto)).unwrap();
    assert_eq!(reply.backend, EngineBackend::Tim, "degraded to the cheap fallback");
    assert!(reply.degraded, "the reply must flag the degradation");
    assert_eq!(reply.tags, PAPER_TAGS, "TIM still finds the Fig. 2 optimum");
    assert!(
        reply.rejected.iter().any(|r| r.reason == pitex::core::RejectReason::OverBudget),
        "the preferred backend shows up as over-budget: {:?}",
        reply.rejected
    );

    // The same query without the crunch is not degraded...
    let reply = client.explain(0, 2, None, Some(EngineBackend::Auto)).unwrap();
    assert!(!reply.degraded);
    assert_eq!(reply.tags, PAPER_TAGS);

    // ...and a deadline-tight plain QUERY answers OK, not ERR DEADLINE.
    let Response::Ok(ok) =
        client.query_with_backend(0, 3, Some(200_000), EngineBackend::Auto).unwrap()
    else {
        panic!("deadline-tight auto query must answer, not ERR")
    };
    assert_eq!(ok.k, 3);

    let stats = client.stats().unwrap();
    assert!(stats.get_u64("plan_tim").unwrap() >= 1, "TIM decisions surface in STATS");
    assert!(stats.get_u64("plan_degraded").unwrap() >= 1);
    assert!(stats.get_f64("ewma_tim_us").unwrap() > 0.0);
    server.stop().unwrap();
}

#[test]
fn explain_reports_the_decision_over_the_wire() {
    let model = Arc::new(TicModel::paper_example());
    let handle = auto_handle_with_indexes(model);
    let server = Server::spawn(handle, ("127.0.0.1", 0), ServeOptions::default()).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();

    let reply = client.explain(0, 2, None, Some(EngineBackend::Auto)).unwrap();
    assert_eq!(reply.tags, PAPER_TAGS);
    assert_ne!(reply.backend, EngineBackend::Auto, "resolved to a concrete backend");
    assert!(reply.predicted_us >= 1);
    assert!(!reply.rejected.is_empty(), "auto always has rejected alternatives");
    assert!(
        reply.rejected.iter().any(|r| r.backend == EngineBackend::Lt
            && r.reason == pitex::core::RejectReason::DifferentSemantics),
        "LT must be rejected as a different model: {:?}",
        reply.rejected
    );

    // EXPLAIN of a *forced* backend reports a trivial decision.
    let reply = client.explain(0, 2, None, Some(EngineBackend::Exact)).unwrap();
    assert_eq!(reply.backend, EngineBackend::Exact);
    assert!(!reply.degraded);
    assert!(reply.rejected.is_empty());
    assert_eq!(reply.tags, PAPER_TAGS);
    server.stop().unwrap();
}

#[test]
fn per_request_backend_override_and_resolved_cache_key() {
    // A lazy server: per-request overrides must run (and cache) under the
    // requested backend, and `auto` must share entries with the backend it
    // resolves to.
    let model = Arc::new(TicModel::paper_example());
    let handle = EngineHandle::new(model, EngineBackend::Lazy, PitexConfig::default()).unwrap();
    let server = Server::spawn(handle, ("127.0.0.1", 0), ServeOptions::default()).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();

    // Forced EXACT then forced EXACT again: second is a cache hit.
    let Response::Ok(first) = client.query_with_backend(0, 2, None, EngineBackend::Exact).unwrap()
    else {
        panic!()
    };
    assert!(!first.cached);
    let Response::Ok(second) = client.query_with_backend(0, 2, None, EngineBackend::Exact).unwrap()
    else {
        panic!()
    };
    assert!(second.cached, "override queries cache under the overridden backend");

    // The server's own (lazy) cache is untouched by the exact entries.
    let Response::Ok(lazy) = client.query(0, 2).unwrap() else { panic!() };
    assert!(!lazy.cached, "different backend, different cache key");

    // An index backend this server has no artifact for: BAD_REQUEST.
    match client.query_with_backend(0, 2, None, EngineBackend::IndexEst).unwrap() {
        Response::Err { code, message } => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(message.contains("index"), "{message}");
        }
        other => panic!("expected ERR BAD_REQUEST, got {other:?}"),
    }

    // An unknown backend name over the raw wire lists the valid methods.
    let raw = client.roundtrip_line("QUERY 0 2 frob").unwrap();
    match Response::parse(&raw).unwrap() {
        Response::Err { code, message } => {
            assert_eq!(code, ErrorCode::BadRequest);
            for name in ["lazy", "indexest+", "delaymat", "auto"] {
                assert!(message.contains(name), "{message} misses {name}");
            }
        }
        other => panic!("expected ERR, got {other:?}"),
    }
    server.stop().unwrap();
}

#[test]
fn auto_server_answers_fig2_for_every_user() {
    let model = Arc::new(TicModel::paper_example());
    let truth: Vec<_> = {
        let mut exact = PitexEngine::with_exact(&model, PitexConfig::default());
        (0..7u32).map(|u| exact.query(u, 2)).collect()
    };
    let handle = auto_handle_with_indexes(model);
    let server = Server::spawn(handle, ("127.0.0.1", 0), ServeOptions::default()).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    for user in 0..7u32 {
        let reply = client.explain(user, 2, None, None).unwrap();
        // Index estimators may rank sampled spreads differently on a
        // 7-vertex toy graph; what must hold is that the *same* backend
        // forced directly gives the same answer — checked in the
        // bit-identical tests — and that u1's famous optimum comes out.
        if user == 0 {
            assert_eq!(reply.tags, truth[0].tags.tags(), "u1's W* = {{w3, w4}}");
        }
        assert_eq!(reply.k, 2);
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("backend"), Some("auto"), "the server reports its configured method");
    server.stop().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The planner never selects a backend whose required artifact is
    /// absent — under arbitrary model shapes, query shapes, budgets,
    /// artifact availability, and EWMA warm-up states.
    #[test]
    fn planner_never_selects_a_backend_without_its_artifact(
        nodes in 2usize..1_000_000,
        edge_factor in 1usize..30,
        num_tags in 1usize..300,
        degree in 0usize..10_000,
        k in 1usize..8,
        budget_us in (0u64..10_000_000).prop_map(|v| (v != 0).then_some(v)),
        rr_available in (0u8..2).prop_map(|v| v == 1),
        delay_available in (0u8..2).prop_map(|v| v == 1),
        warm in proptest::collection::vec((0usize..9, 1u64..1_000_000), 0..12),
    ) {
        let planner = Planner::from_stats(
            ModelStats { nodes, edges: nodes.saturating_mul(edge_factor), num_tags },
            rr_available,
            delay_available,
            0.7,
            1000.0,
        );
        for &(slot, us) in &warm {
            planner.observe(EngineBackend::ALL[slot], us);
        }
        let decision = planner.plan(PlanInput { degree, k, budget_us });
        prop_assert!(
            planner.available(decision.chosen),
            "chose {} with rr={rr_available} delay={delay_available}",
            decision.chosen
        );
        prop_assert_ne!(decision.chosen, EngineBackend::Auto);
        prop_assert_ne!(decision.chosen, EngineBackend::Lt);
        // Every unavailable backend is reported, never silently dropped.
        for backend in [EngineBackend::IndexEst, EngineBackend::IndexEstPlus] {
            if !rr_available {
                prop_assert!(decision.rejected.iter().any(|r| r.backend == backend
                    && r.reason == pitex::core::RejectReason::MissingArtifact));
            }
        }
        if !delay_available {
            prop_assert!(decision.rejected.iter().any(|r| r.backend == EngineBackend::DelayMat
                && r.reason == pitex::core::RejectReason::MissingArtifact));
        }
    }
}
