//! Vendored stand-in for the [`polling`](https://docs.rs/polling/3) crate:
//! a portable readiness poller, here backed directly by Linux `epoll`.
//!
//! The subset mirrors `polling 3`'s public surface so swapping back to the
//! registry version is a `Cargo.toml`-only change:
//!
//! * [`Poller::new`] / [`Poller::add`] / [`Poller::modify`] /
//!   [`Poller::delete`] / [`Poller::wait`] / [`Poller::notify`]
//! * [`Poller::add_with_mode`] / [`Poller::modify_with_mode`] with
//!   [`PollMode::Oneshot`] and [`PollMode::Level`]
//! * [`Event`] (`readable` / `writable` / `all` / `none` constructors plus
//!   the `key`, `readable`, `writable` fields) and [`Events`]
//!
//! Semantics match the real crate: the default mode is **oneshot** — after
//! a source delivers one event it stays registered but disarmed until the
//! next [`Poller::modify`] — while [`PollMode::Level`] keeps the interest
//! armed across deliveries, so a hot connection costs zero `epoll_ctl`
//! re-arms per wake. [`Poller::notify`] wakes a concurrent
//! [`Poller::wait`] from another thread (an `eventfd` under the hood);
//! the wake-up itself is never surfaced as a user event.
//!
//! The epoll syscalls are declared directly against the platform libc the
//! standard library already links — this crate has no dependencies. On
//! non-Linux targets [`Poller::new`] returns an `Unsupported` error so
//! callers can fall back to a threaded design.

use std::io;
use std::os::fd::AsRawFd;
use std::time::Duration;

/// Interest in (and readiness of) a single source, tagged with a caller
/// chosen `key` that comes back verbatim in [`Events`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen identifier for the source (connection slot, etc.).
    pub key: usize,
    /// Interest in / readiness for reading.
    pub readable: bool,
    /// Interest in / readiness for writing.
    pub writable: bool,
}

impl Event {
    /// Interest in read readiness only.
    pub fn readable(key: usize) -> Self {
        Self { key, readable: true, writable: false }
    }

    /// Interest in write readiness only.
    pub fn writable(key: usize) -> Self {
        Self { key, readable: false, writable: true }
    }

    /// Interest in both directions.
    pub fn all(key: usize) -> Self {
        Self { key, readable: true, writable: true }
    }

    /// No interest (keeps the source registered but disarmed).
    pub fn none(key: usize) -> Self {
        Self { key, readable: false, writable: false }
    }
}

/// How long a registration stays armed (the `polling 3` subset we need).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PollMode {
    /// Deliver one event, then disarm until the next
    /// [`modify`](Poller::modify). The real crate's default.
    Oneshot,
    /// Stay armed: readiness is re-reported on every
    /// [`wait`](Poller::wait) for as long as the condition holds. The
    /// caller must drain (read/write to `WouldBlock` or until a short
    /// read) or change interest, or the same event storms every wait.
    Level,
}

/// A buffer of events filled by [`Poller::wait`].
#[derive(Default)]
pub struct Events {
    items: Vec<Event>,
}

impl Events {
    pub fn new() -> Self {
        Self { items: Vec::with_capacity(1024) }
    }

    /// Iterates the events delivered by the last [`Poller::wait`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.items.iter().copied()
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn clear(&mut self) {
        self.items.clear();
    }
}

#[cfg(target_os = "linux")]
mod sys {
    use std::os::raw::{c_int, c_uint, c_void};

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLONESHOT: u32 = 1 << 30;
    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;

    /// The kernel ABI layout: `struct epoll_event` is packed **only on
    /// x86/x86-64** (12 bytes, `data` at offset 4); every other Linux
    /// architecture uses the naturally aligned 16-byte layout with `data`
    /// at offset 8. Packing unconditionally would make `epoll_wait` write
    /// 16-byte records at a 12-byte stride — out-of-bounds — on aarch64.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    const _: () = assert!(
        std::mem::size_of::<EpollEvent>()
            == if cfg!(any(target_arch = "x86", target_arch = "x86_64")) { 12 } else { 16 },
        "EpollEvent must match the kernel's per-arch epoll_event layout"
    );

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
    }
}

/// The poller: an epoll instance plus an internal `eventfd` for
/// [`notify`](Poller::notify) wake-ups.
#[cfg(target_os = "linux")]
pub struct Poller {
    epfd: i32,
    notify_fd: i32,
}

/// The key the internal notify `eventfd` is registered under; filtered out
/// of every [`Poller::wait`] result.
#[cfg(target_os = "linux")]
const NOTIFY_KEY: u64 = u64::MAX;

#[cfg(target_os = "linux")]
impl Poller {
    /// Creates a poller. Fails only when the kernel refuses an epoll or
    /// eventfd descriptor.
    pub fn new() -> io::Result<Self> {
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        let notify_fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
        if notify_fd < 0 {
            let e = io::Error::last_os_error();
            unsafe { sys::close(epfd) };
            return Err(e);
        }
        // The notify fd is level-triggered and permanent — every wait can
        // see it until the pending wake-ups are drained.
        let mut ev = sys::EpollEvent { events: sys::EPOLLIN, data: NOTIFY_KEY };
        if unsafe { sys::epoll_ctl(epfd, sys::EPOLL_CTL_ADD, notify_fd, &mut ev) } < 0 {
            let e = io::Error::last_os_error();
            unsafe {
                sys::close(notify_fd);
                sys::close(epfd);
            }
            return Err(e);
        }
        Ok(Self { epfd, notify_fd })
    }

    fn interest_bits(interest: Event, mode: PollMode) -> u32 {
        let mut bits = match mode {
            PollMode::Oneshot => sys::EPOLLONESHOT | sys::EPOLLRDHUP,
            // Level mode with *no* interest must be genuinely silent: a
            // level-triggered RDHUP would storm every wait once the peer
            // half-closes, exactly when the owner asked to hear nothing.
            PollMode::Level if interest.readable || interest.writable => sys::EPOLLRDHUP,
            PollMode::Level => 0,
        };
        if interest.readable {
            bits |= sys::EPOLLIN;
        }
        if interest.writable {
            bits |= sys::EPOLLOUT;
        }
        bits
    }

    fn ctl(&self, op: i32, fd: i32, interest: Event, mode: PollMode) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: Self::interest_bits(interest, mode),
            data: interest.key as u64,
        };
        if unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers a source under `interest.key`. Oneshot: after the first
    /// delivered event the source must be re-armed with
    /// [`modify`](Poller::modify).
    ///
    /// # Safety
    ///
    /// The real crate marks this `unsafe` because the caller must
    /// [`delete`](Poller::delete) the source before dropping it; the
    /// stand-in keeps the signature.
    pub unsafe fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, source.as_raw_fd(), interest, PollMode::Oneshot)
    }

    /// [`add`](Poller::add) with an explicit [`PollMode`].
    ///
    /// # Safety
    ///
    /// As for [`add`](Poller::add): the source must be
    /// [`delete`](Poller::delete)d before it is dropped.
    pub unsafe fn add_with_mode(
        &self,
        source: &impl AsRawFd,
        interest: Event,
        mode: PollMode,
    ) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, source.as_raw_fd(), interest, mode)
    }

    /// Re-arms (or changes interest in) a registered source.
    pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, source.as_raw_fd(), interest, PollMode::Oneshot)
    }

    /// [`modify`](Poller::modify) with an explicit [`PollMode`].
    pub fn modify_with_mode(
        &self,
        source: &impl AsRawFd,
        interest: Event,
        mode: PollMode,
    ) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, source.as_raw_fd(), interest, mode)
    }

    /// Removes a source from the poller.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        let mut ev = sys::EpollEvent { events: 0, data: 0 };
        if unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, source.as_raw_fd(), &mut ev) } < 0
        {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Blocks until at least one source is ready, the timeout elapses, or
    /// [`notify`](Poller::notify) is called. Returns the number of events
    /// appended to `events` (which is cleared first).
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let timeout_ms: i32 = match timeout {
            // Round up so a 1ns timeout does not busy-spin as 0ms.
            Some(t) => {
                t.as_millis().min(i32::MAX as u128) as i32
                    + i32::from(t.subsec_nanos() % 1_000_000 != 0)
            }
            None => -1,
        };
        let mut buf = [sys::EpollEvent { events: 0, data: 0 }; 256];
        let n = loop {
            let n = unsafe {
                sys::epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms)
            };
            if n >= 0 {
                break n as usize;
            }
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::Interrupted {
                return Err(e);
            }
        };
        for ev in &buf[..n] {
            let (bits, data) = (ev.events, ev.data);
            if data == NOTIFY_KEY {
                // Drain pending wake-ups; the notification itself is not a
                // user event.
                let mut count = 0u64;
                unsafe {
                    sys::read(self.notify_fd, &mut count as *mut u64 as *mut _, 8);
                }
                continue;
            }
            // Error/hangup conditions surface as readable+writable so the
            // owner's next I/O attempt observes the failure directly.
            let fail = bits & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0;
            events.items.push(Event {
                key: data as usize,
                readable: bits & sys::EPOLLIN != 0 || fail,
                writable: bits & sys::EPOLLOUT != 0 || fail,
            });
        }
        Ok(events.items.len())
    }

    /// Wakes a concurrent [`wait`](Poller::wait) from any thread.
    pub fn notify(&self) -> io::Result<()> {
        let one: u64 = 1;
        let n = unsafe { sys::write(self.notify_fd, &one as *const u64 as *const _, 8) };
        // EAGAIN means the counter is already saturated with wake-ups —
        // the waiter is guaranteed to wake, which is all notify promises.
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::WouldBlock {
                return Err(e);
            }
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.notify_fd);
            sys::close(self.epfd);
        }
    }
}

#[cfg(target_os = "linux")]
impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller").field("epfd", &self.epfd).finish()
    }
}

/// Non-Linux stub: construction fails, so callers fall back to their
/// threaded path. The methods exist for type-compatibility only.
#[cfg(not(target_os = "linux"))]
#[derive(Debug)]
pub struct Poller {
    _unconstructible: (),
}

#[cfg(not(target_os = "linux"))]
impl Poller {
    pub fn new() -> io::Result<Self> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "polling stand-in requires Linux epoll"))
    }

    pub unsafe fn add(&self, _source: &impl AsRawFd, _interest: Event) -> io::Result<()> {
        unreachable!("Poller cannot be constructed on this platform")
    }

    pub unsafe fn add_with_mode(
        &self,
        _source: &impl AsRawFd,
        _interest: Event,
        _mode: PollMode,
    ) -> io::Result<()> {
        unreachable!("Poller cannot be constructed on this platform")
    }

    pub fn modify(&self, _source: &impl AsRawFd, _interest: Event) -> io::Result<()> {
        unreachable!("Poller cannot be constructed on this platform")
    }

    pub fn modify_with_mode(
        &self,
        _source: &impl AsRawFd,
        _interest: Event,
        _mode: PollMode,
    ) -> io::Result<()> {
        unreachable!("Poller cannot be constructed on this platform")
    }

    pub fn delete(&self, _source: &impl AsRawFd) -> io::Result<()> {
        unreachable!("Poller cannot be constructed on this platform")
    }

    pub fn wait(&self, _events: &mut Events, _timeout: Option<Duration>) -> io::Result<usize> {
        unreachable!("Poller cannot be constructed on this platform")
    }

    pub fn notify(&self) -> io::Result<()> {
        unreachable!("Poller cannot be constructed on this platform")
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn listener_readiness_is_delivered_once_per_arm() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        unsafe { poller.add(&listener, Event::readable(7)).unwrap() };

        let mut events = Events::new();
        // Nothing pending yet: the wait times out empty.
        assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap(), 0);

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        assert_eq!(poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap(), 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.key, 7);
        assert!(ev.readable);

        // Oneshot: without a re-arm the pending accept is not re-reported.
        assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap(), 0);
        poller.modify(&listener, Event::readable(7)).unwrap();
        assert_eq!(poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap(), 1);
        poller.delete(&listener).unwrap();
    }

    #[test]
    fn stream_read_and_write_readiness() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut served, _) = listener.accept().unwrap();
        served.set_nonblocking(true).unwrap();

        // A fresh connected socket is writable but not readable.
        unsafe { poller.add(&served, Event::all(3)).unwrap() };
        let mut events = Events::new();
        assert_eq!(poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap(), 1);
        let ev = events.iter().next().unwrap();
        assert!(ev.writable && !ev.readable, "{ev:?}");

        client.write_all(b"ping").unwrap();
        poller.modify(&served, Event::readable(3)).unwrap();
        assert_eq!(poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap(), 1);
        assert!(events.iter().next().unwrap().readable);
        let mut buf = [0u8; 8];
        assert_eq!(served.read(&mut buf).unwrap(), 4);
        poller.delete(&served).unwrap();
    }

    #[test]
    fn level_mode_stays_armed_and_none_interest_is_silent() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut served, _) = listener.accept().unwrap();
        served.set_nonblocking(true).unwrap();
        unsafe { poller.add_with_mode(&served, Event::readable(9), PollMode::Level).unwrap() };

        client.write_all(b"ping").unwrap();
        let mut events = Events::new();
        // Level: the pending bytes are re-reported on every wait, with no
        // re-arm in between.
        for _ in 0..2 {
            assert_eq!(poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap(), 1);
            assert!(events.iter().next().unwrap().readable);
        }
        let mut buf = [0u8; 8];
        assert_eq!(served.read(&mut buf).unwrap(), 4);
        assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap(), 0);

        // No interest + a half-closed peer stays silent (no RDHUP storm);
        // restoring interest surfaces the EOF as readable.
        poller.modify_with_mode(&served, Event::none(9), PollMode::Level).unwrap();
        drop(client);
        assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap(), 0);
        poller.modify_with_mode(&served, Event::readable(9), PollMode::Level).unwrap();
        assert_eq!(poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap(), 1);
        assert!(events.iter().next().unwrap().readable);
        poller.delete(&served).unwrap();
    }

    #[test]
    fn notify_wakes_a_blocked_wait_without_an_event() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = poller.clone();
        let waiter = std::thread::spawn(move || {
            let mut events = Events::new();
            let n = poller.wait(&mut events, Some(Duration::from_secs(10))).unwrap();
            (n, events.is_empty())
        });
        std::thread::sleep(Duration::from_millis(50));
        waker.notify().unwrap();
        let (n, empty) = waiter.join().unwrap();
        assert_eq!(n, 0, "the wake-up is not a user event");
        assert!(empty);
    }
}
