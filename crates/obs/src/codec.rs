//! A small, explicit binary codec over [`bytes`].
//!
//! PITEX persists two kinds of artifacts — generated datasets and RR-Graph
//! indexes — whose layouts are fixed arrays of integers and floats. A
//! hand-rolled little-endian codec keeps the on-disk format documented,
//! stable and dependency-light. Every reader validates a magic tag and
//! version so stale files fail loudly instead of decoding garbage.

use bytes::{Buf, BufMut};

/// Errors produced while decoding a PITEX binary artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the declared payload.
    UnexpectedEof { needed: usize, remaining: usize },
    /// Magic tag did not match the expected artifact type.
    BadMagic { expected: [u8; 4], found: [u8; 4] },
    /// Artifact version is not supported by this build.
    BadVersion { expected: u32, found: u32 },
    /// A declared length is implausible for the remaining input.
    CorruptLength { declared: usize, remaining: usize },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEof { needed, remaining } => {
                write!(f, "unexpected end of input: needed {needed} bytes, {remaining} remain")
            }
            DecodeError::BadMagic { expected, found } => write!(
                f,
                "bad magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            DecodeError::BadVersion { expected, found } => {
                write!(f, "unsupported version {found} (this build reads {expected})")
            }
            DecodeError::CorruptLength { declared, remaining } => {
                write!(f, "corrupt length {declared} with only {remaining} bytes remaining")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encoder wrapper adding PITEX conventions on top of [`BufMut`].
pub struct Encoder<B: BufMut> {
    buf: B,
}

impl<B: BufMut> Encoder<B> {
    pub fn new(buf: B) -> Self {
        Self { buf }
    }

    /// Writes a 4-byte magic tag plus a `u32` version header.
    pub fn header(&mut self, magic: [u8; 4], version: u32) {
        self.buf.put_slice(&magic);
        self.buf.put_u32_le(version);
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    pub fn f32(&mut self, v: f32) {
        self.buf.put_f32_le(v);
    }

    pub fn f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    /// Length-prefixed `u32` slice.
    pub fn u32_slice(&mut self, values: &[u32]) {
        self.buf.put_u64_le(values.len() as u64);
        for &v in values {
            self.buf.put_u32_le(v);
        }
    }

    /// Length-prefixed `f32` slice.
    pub fn f32_slice(&mut self, values: &[f32]) {
        self.buf.put_u64_le(values.len() as u64);
        for &v in values {
            self.buf.put_f32_le(v);
        }
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.buf.put_u64_le(s.len() as u64);
        self.buf.put_slice(s.as_bytes());
    }

    /// Returns the underlying buffer.
    pub fn into_inner(self) -> B {
        self.buf
    }
}

/// Decoder wrapper adding bounds-checked reads on top of [`Buf`].
pub struct Decoder<B: Buf> {
    buf: B,
}

impl<B: Buf> Decoder<B> {
    pub fn new(buf: B) -> Self {
        Self { buf }
    }

    fn need(&self, n: usize) -> Result<(), DecodeError> {
        if self.buf.remaining() < n {
            Err(DecodeError::UnexpectedEof { needed: n, remaining: self.buf.remaining() })
        } else {
            Ok(())
        }
    }

    /// Reads and validates the magic/version header written by
    /// [`Encoder::header`].
    pub fn header(&mut self, magic: [u8; 4], version: u32) -> Result<(), DecodeError> {
        self.need(8)?;
        let mut found = [0u8; 4];
        self.buf.copy_to_slice(&mut found);
        if found != magic {
            return Err(DecodeError::BadMagic { expected: magic, found });
        }
        let v = self.buf.get_u32_le();
        if v != version {
            return Err(DecodeError::BadVersion { expected: version, found: v });
        }
        Ok(())
    }

    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    pub fn f32(&mut self) -> Result<f32, DecodeError> {
        self.need(4)?;
        Ok(self.buf.get_f32_le())
    }

    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        self.need(8)?;
        Ok(self.buf.get_f64_le())
    }

    fn len_prefix(&mut self, elem_size: usize) -> Result<usize, DecodeError> {
        let len = self.u64()? as usize;
        let remaining = self.buf.remaining();
        if len.checked_mul(elem_size).map_or(true, |bytes| bytes > remaining) {
            return Err(DecodeError::CorruptLength { declared: len, remaining });
        }
        Ok(len)
    }

    pub fn u32_slice(&mut self) -> Result<Vec<u32>, DecodeError> {
        let len = self.len_prefix(4)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.buf.get_u32_le());
        }
        Ok(out)
    }

    pub fn f32_slice(&mut self) -> Result<Vec<f32>, DecodeError> {
        let len = self.len_prefix(4)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.buf.get_f32_le());
        }
        Ok(out)
    }

    pub fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.len_prefix(1)?;
        let mut bytes = vec![0u8; len];
        self.buf.copy_to_slice(&mut bytes);
        Ok(String::from_utf8_lossy(&bytes).into_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: [u8; 4] = *b"PTST";

    #[test]
    fn round_trips_scalars_and_slices() {
        let mut enc = Encoder::new(Vec::new());
        enc.header(MAGIC, 3);
        enc.u8(7);
        enc.u32(0xDEAD_BEEF);
        enc.u64(u64::MAX - 1);
        enc.f32(1.5);
        enc.f64(-0.25);
        enc.u32_slice(&[1, 2, 3]);
        enc.f32_slice(&[0.5, 0.75]);
        enc.str("pitex");
        let bytes = enc.into_inner();

        let mut dec = Decoder::new(bytes.as_slice());
        dec.header(MAGIC, 3).unwrap();
        assert_eq!(dec.u8().unwrap(), 7);
        assert_eq!(dec.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.u64().unwrap(), u64::MAX - 1);
        assert_eq!(dec.f32().unwrap(), 1.5);
        assert_eq!(dec.f64().unwrap(), -0.25);
        assert_eq!(dec.u32_slice().unwrap(), vec![1, 2, 3]);
        assert_eq!(dec.f32_slice().unwrap(), vec![0.5, 0.75]);
        assert_eq!(dec.str().unwrap(), "pitex");
    }

    #[test]
    fn rejects_wrong_magic() {
        let mut enc = Encoder::new(Vec::new());
        enc.header(*b"XXXX", 1);
        let bytes = enc.into_inner();
        let err = Decoder::new(bytes.as_slice()).header(MAGIC, 1).unwrap_err();
        assert!(matches!(err, DecodeError::BadMagic { .. }));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut enc = Encoder::new(Vec::new());
        enc.header(MAGIC, 2);
        let bytes = enc.into_inner();
        let err = Decoder::new(bytes.as_slice()).header(MAGIC, 1).unwrap_err();
        assert!(matches!(err, DecodeError::BadVersion { expected: 1, found: 2 }));
    }

    #[test]
    fn rejects_truncated_input() {
        let mut enc = Encoder::new(Vec::new());
        enc.u64(5); // declares a 5-element slice that never follows
        let bytes = enc.into_inner();
        let err = Decoder::new(bytes.as_slice()).u32_slice().unwrap_err();
        assert!(matches!(err, DecodeError::CorruptLength { declared: 5, .. }));
    }

    #[test]
    fn eof_is_reported_with_sizes() {
        let err = Decoder::new([1u8, 2].as_slice()).u32().unwrap_err();
        assert_eq!(err, DecodeError::UnexpectedEof { needed: 4, remaining: 2 });
    }
}
