//! End-to-end serving suite: boots a real `pitex_serve` server on an
//! ephemeral loopback port and drives it with concurrent clients over TCP,
//! asserting the paper's Fig. 2 ground truth (`PITEX(u1, 2) = {w3, w4}`),
//! every protocol error path, result-cache behavior (via the `STATS` hit
//! counter), and a panic-free graceful shutdown.

use pitex::prelude::*;
use pitex::serve::{ErrorCode, Response, ServeClient, ServeOptions, Server, ServerHandle};
use std::sync::Arc;
use std::time::Duration;

/// Fig. 2's optimum for `(u1, k = 2)`, as 0-based tag ids.
const PAPER_TAGS: [u32; 2] = [2, 3];

fn boot(options: ServeOptions) -> ServerHandle {
    let model = Arc::new(TicModel::paper_example());
    let handle = EngineHandle::new(model, EngineBackend::Exact, PitexConfig::default()).unwrap();
    Server::spawn(handle, ("127.0.0.1", 0), options).unwrap()
}

/// The acceptance scenario: ≥ 4 concurrent clients, ≥ 64 total requests
/// mixing good queries with malformed / unknown-user / `k = 0` /
/// deadline-exceeded ones; every successful Fig. 2 answer must be exact,
/// repeats must hit the cache, and shutdown must reap every thread cleanly.
#[test]
fn concurrent_clients_agree_on_the_paper_answer() {
    let server = boot(ServeOptions { workers: 3, ..ServeOptions::default() });
    let addr = server.addr();

    const CLIENTS: usize = 6;
    const ROUNDS: usize = 12; // 6 clients x 12 rounds x ~2 requests > 64
    std::thread::scope(|scope| {
        for client_id in 0..CLIENTS {
            scope.spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                for round in 0..ROUNDS {
                    // The Fig. 2 query, from every client, every round.
                    match client.query(0, 2).unwrap() {
                        Response::Ok(reply) => {
                            assert_eq!(
                                reply.tags, PAPER_TAGS,
                                "client {client_id} round {round}: wrong tags"
                            );
                            assert!(reply.spread > 1.5 && reply.spread < 2.5);
                            assert_eq!(reply.k, 2);
                        }
                        other => panic!("client {client_id}: expected OK, got {other:?}"),
                    }
                    // One error path per round, cycling through all four.
                    match round % 4 {
                        0 => {
                            let raw = client.roundtrip_line("EXPLODE 1 2").unwrap();
                            let Response::Err { code, .. } = Response::parse(&raw).unwrap() else {
                                panic!("malformed request must ERR")
                            };
                            assert_eq!(code, ErrorCode::BadRequest);
                        }
                        1 => match client.query(4_000_000, 2).unwrap() {
                            Response::Err { code, message } => {
                                assert_eq!(code, ErrorCode::UnknownUser);
                                assert!(message.contains("out of range"));
                            }
                            other => panic!("unknown user must ERR, got {other:?}"),
                        },
                        2 => match client.query(0, 0).unwrap() {
                            Response::Err { code, .. } => assert_eq!(code, ErrorCode::BadK),
                            other => panic!("k = 0 must ERR, got {other:?}"),
                        },
                        _ => match client.query_with_timeout(6, 1, 0).unwrap() {
                            // timeout_us = 0: expired before it could run.
                            Response::Err { code, .. } => {
                                assert_eq!(code, ErrorCode::Deadline)
                            }
                            other => panic!("0us deadline must ERR, got {other:?}"),
                        },
                    }
                }
            });
        }
    });

    // Accounting: every request got exactly one reply, the books balance,
    // and the repeated Fig. 2 query was served from the cache.
    let mut client = ServeClient::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    let requests = stats.get_u64("requests").unwrap();
    let ok = stats.get_u64("ok").unwrap();
    let busy = stats.get_u64("busy").unwrap();
    let deadline = stats.get_u64("deadline").unwrap();
    let errors = stats.get_u64("errors").unwrap();
    let total = (CLIENTS * ROUNDS * 2) as u64;
    assert!(total >= 64, "the scenario must exercise at least 64 requests");
    // +1 for the STATS request itself.
    assert_eq!(requests, total + 1, "every request is counted");
    assert_eq!(ok + busy + deadline + errors + 1, requests, "outcomes partition requests");
    assert_eq!(ok, (CLIENTS * ROUNDS) as u64, "every well-formed query succeeded");
    assert_eq!(deadline, (CLIENTS * ROUNDS / 4) as u64);
    assert_eq!(errors, (CLIENTS * ROUNDS / 4 * 3) as u64);
    let hits = stats.get_u64("cache_hits").unwrap();
    let misses = stats.get_u64("cache_misses").unwrap();
    assert!(hits >= ok - CLIENTS as u64, "repeats served from cache (hits = {hits})");
    assert!(misses >= 1 && misses <= CLIENTS as u64, "only first-arrivals miss");
    assert_eq!(stats.get_u64("worker_panics"), Some(0));

    // Graceful shutdown: every server thread joins without panic.
    server.stop().expect("no server thread may panic");
}

#[test]
fn repeated_query_is_served_from_the_cache() {
    let server = boot(ServeOptions::default());
    let mut client = ServeClient::connect(server.addr()).unwrap();

    let Response::Ok(first) = client.query(0, 2).unwrap() else { panic!("expected OK") };
    assert_eq!(first.tags, PAPER_TAGS);
    assert!(!first.cached, "first query computes");

    let Response::Ok(second) = client.query(0, 2).unwrap() else { panic!("expected OK") };
    assert_eq!(second.tags, PAPER_TAGS);
    assert!(second.cached, "identical query hits the cache");
    assert_eq!(second.spread, first.spread, "cached spread is bit-identical");

    let stats = client.stats().unwrap();
    assert_eq!(stats.get_u64("cache_hits"), Some(1));
    assert_eq!(stats.get_u64("cache_misses"), Some(1));
    assert_eq!(stats.get_f64("cache_hit_rate"), Some(0.5));
    server.stop().unwrap();
}

#[test]
fn shutdown_verb_is_graceful_under_load() {
    let server = boot(ServeOptions { workers: 2, ..ServeOptions::default() });
    let addr = server.addr();
    // A few clients mid-conversation while another one pulls the plug.
    std::thread::scope(|scope| {
        for _ in 0..3 {
            scope.spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                for _ in 0..5 {
                    // Replies may legitimately fail once shutdown lands.
                    if client.query(0, 2).is_err() {
                        return;
                    }
                }
            });
        }
        scope.spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            let mut killer = ServeClient::connect(addr).unwrap();
            killer.shutdown_server().unwrap();
        });
    });
    server.join().expect("graceful shutdown must not panic any thread");
}

#[test]
fn every_sampling_backend_serves_the_paper_answer() {
    for backend in [EngineBackend::Exact, EngineBackend::Lazy, EngineBackend::Mc] {
        let model = Arc::new(TicModel::paper_example());
        let handle = EngineHandle::new(model, backend, PitexConfig::default()).unwrap();
        let server = Server::spawn(handle, ("127.0.0.1", 0), ServeOptions::default()).unwrap();
        let mut client = ServeClient::connect(server.addr()).unwrap();
        let Response::Ok(reply) = client.query(0, 2).unwrap() else {
            panic!("{}: expected OK", backend.label())
        };
        assert_eq!(reply.tags, PAPER_TAGS, "{}", backend.label());
        let stats = client.stats().unwrap();
        assert_eq!(stats.get("backend"), Some(backend.cli_name()));
        server.stop().unwrap();
    }
}

#[test]
fn index_backend_serves_from_shared_snapshots() {
    let model = Arc::new(TicModel::paper_example());
    let index = Arc::new(RrIndex::build(&model, IndexBudget::Fixed(3_000), 3));
    let handle = EngineHandle::with_indexes(
        model,
        EngineBackend::IndexEstPlus,
        Some(index),
        None,
        PitexConfig::default(),
    )
    .unwrap();
    let server = Server::spawn(handle, ("127.0.0.1", 0), ServeOptions::default()).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    let Response::Ok(reply) = client.query(0, 2).unwrap() else { panic!("expected OK") };
    assert_eq!(reply.k, 2);
    assert!(reply.spread >= 1.0);
    server.stop().unwrap();
}

/// Snapshot swaps under load: concurrent clients hammer the same query
/// while an admin stages updates and reloads. Every reply must match one
/// of the two worlds *exactly* — the paper answer with its old-world
/// spread, or the post-update answer with its new-world spread. A torn
/// snapshot (old tags with new spread, or vice versa) fails the test, as
/// does any error or any stale answer after the swap completes.
#[test]
fn snapshot_swap_under_load_is_never_torn() {
    let server = boot(ServeOptions { workers: 3, ..ServeOptions::default() });
    let addr = server.addr();

    // Ground truth for both worlds from the exact evaluator.
    let old_model = TicModel::paper_example();
    let old_truth = PitexEngine::with_exact(&old_model, PitexConfig::default()).query(0, 2);
    let mut overlay = ModelOverlay::new(Arc::new(old_model));
    let ops = [
        UpdateOp::parse_text("DETACH_TAG 2").unwrap(),
        UpdateOp::parse_text("DETACH_TAG 3").unwrap(),
    ];
    overlay.apply_all(ops.iter().cloned()).unwrap();
    let new_model = overlay.compact();
    let new_truth = PitexEngine::with_exact(&new_model, PitexConfig::default()).query(0, 2);
    assert_ne!(old_truth.tags, new_truth.tags);

    const CLIENTS: usize = 4;
    const ROUNDS: usize = 40;
    std::thread::scope(|scope| {
        for client_id in 0..CLIENTS {
            let old_truth = &old_truth;
            let new_truth = &new_truth;
            scope.spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                for round in 0..ROUNDS {
                    let Response::Ok(reply) = client.query(0, 2).unwrap() else {
                        panic!("client {client_id} round {round}: query failed mid-swap")
                    };
                    let old_world =
                        reply.tags == old_truth.tags.tags() && reply.spread == old_truth.spread;
                    let new_world =
                        reply.tags == new_truth.tags.tags() && reply.spread == new_truth.spread;
                    assert!(
                        old_world || new_world,
                        "client {client_id} round {round}: torn answer {:?} spread {}",
                        reply.tags,
                        reply.spread
                    );
                }
            });
        }
        scope.spawn(move || {
            // Let the queriers get going, then mutate and swap mid-storm.
            std::thread::sleep(Duration::from_millis(5));
            let mut admin = ServeClient::connect(addr).unwrap();
            assert_eq!(admin.epoch().unwrap(), 1);
            for op in &ops {
                admin.update(op.clone()).unwrap();
            }
            let reloaded = admin.reload().unwrap();
            assert_eq!(reloaded.epoch, 2);
            assert_eq!(reloaded.folded, 2);
        });
    });

    // The swap completed: from here on only the new answer may be served,
    // and the epoch in STATS has advanced.
    let mut client = ServeClient::connect(addr).unwrap();
    for _ in 0..3 {
        let Response::Ok(reply) = client.query(0, 2).unwrap() else { panic!("expected OK") };
        assert_eq!(reply.tags, new_truth.tags.tags(), "stale answer after the swap");
        assert_eq!(reply.spread, new_truth.spread);
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.get_u64("epoch"), Some(2), "STATS must report the advanced epoch");
    assert_eq!(stats.get_u64("reloads"), Some(1));
    assert_eq!(stats.get_u64("updates_applied"), Some(2));
    server.stop().expect("no server thread may panic during swaps");
}

#[test]
fn load_shedding_accounts_for_every_request() {
    // A rendezvous-sized queue and one worker: under 8 pipelining clients
    // some requests may shed as BUSY, but none may vanish or hang.
    let server = boot(ServeOptions {
        workers: 1,
        queue_depth: 1,
        cache_capacity: 0, // every request must reach the worker pool
        ..ServeOptions::default()
    });
    let report = pitex::serve::LoadGen {
        clients: 8,
        requests_per_client: 8,
        user: 0,
        k: 2,
        ..pitex::serve::LoadGen::default()
    }
    .run(server.addr())
    .unwrap();
    assert_eq!(report.requests, 64);
    assert_eq!(report.ok + report.busy + report.errors, 64, "no request lost");
    assert!(report.ok >= 1);
    assert_eq!(report.errors, 0);
    assert_eq!(report.cached, 0, "cache disabled");
    server.stop().unwrap();
}
