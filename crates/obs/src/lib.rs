//! Observability primitives for the PITEX serving stack.
//!
//! This crate sits *below* `pitex_support` (which re-exports it as
//! `pitex_support::obs`) and depends only on the vendored [`bytes`] shim,
//! so every layer — the WAL, the planner, the server, the router — can
//! record into it without new edges in the crate graph. The pieces:
//!
//! * [`metrics`] — a **typed metrics registry**: named counters, gauges
//!   and histograms whose *merge semantics* (sum across shards, max,
//!   must-agree, decision-weighted mean, histogram merge, …) are declared
//!   in one static [`metrics::SCHEMA`] table. The shard `STATS` reply,
//!   the router's scatter-gather aggregation ([`metrics::MergedFields`])
//!   and the Prometheus-style `METRICS` text exposition
//!   ([`metrics::render_prometheus`]) are all derived from that one
//!   table, so a field can no longer be exported on one side and
//!   silently dropped on the other.
//! * [`trace`] — per-request **trace spans**: a 64-bit trace id minted at
//!   admission, a span recorder, and a whitespace-free wire encoding so
//!   the `TRACE` verb can return the timeline (and the router can splice
//!   shard-side spans into its own).
//! * [`flight`] — an always-on **flight recorder**: a lock-light ring
//!   buffer of the last N request summaries plus a threshold-triggered
//!   slow-query log (`PITEX_OBS_SLOW_US`), dumped by the `FLIGHT` verb
//!   and the `pitex top` live view.
//! * [`capture`] — **workload capture**: a sampled request recorder
//!   (`PITEX_OBS_CAPTURE`/`PITEX_OBS_CAPTURE_RATE`, the `CAPTURE` verb)
//!   flushed to the binary `PWRK` workload log that `pitex replay` feeds
//!   from, plus the process-wide wall-clock anchor every observability
//!   timestamp derives from.
//!
//! [`hist::LatencyHistogram`] lives here (moved from `pitex_support`,
//! which still re-exports it) because the registry's histogram merge and
//! the atomic hot-path recorder share its bucket layout — and so does
//! [`codec`] (same arrangement), because the `PWRK` log encodes through
//! it from below `pitex_support` in the crate graph.

pub mod capture;
pub mod codec;
pub mod flight;
pub mod hist;
pub mod metrics;
pub mod slo;
pub mod timeseries;
pub mod trace;

pub use capture::{
    read_log, wall_now_us, CaptureError, CaptureLog, CaptureOptions, CaptureRecord, CaptureRecorder,
};
pub use flight::{FlightEntry, FlightRecorder, ObsOptions};
pub use hist::{AtomicHistogram, LatencyHistogram};
pub use metrics::{
    parse_prometheus, render_prometheus, spec_for, Counter, Ewma, FieldSet, Gauge, MergeRule,
    MergedFields, MetricKind, PromSample, Registry,
};
pub use slo::{
    evaluate as evaluate_slos, fraction_above, HealthVerdict, SloInputs, SloOptions, SloStatus,
    SloVerdict, ROUTER_INPUTS, SHARD_INPUTS,
};
pub use timeseries::{SeriesDump, SeriesKind, SeriesPoints, SeriesRes, TimeSeriesStore, TsOptions};
pub use trace::{
    format_trace_id, mint_trace_id, parse_trace_id, spans_from_wire, spans_to_wire, Span,
    SpanRecorder,
};
