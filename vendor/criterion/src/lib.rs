//! Vendored stand-in for the [`criterion`](https://docs.rs/criterion)
//! benchmark harness.
//!
//! Supports exactly what the `pitex_bench` targets use: a [`Criterion`]
//! handle whose [`bench_function`](Criterion::bench_function) hands the
//! closure a [`Bencher`], plus the [`criterion_group!`] /
//! [`criterion_main!`] wiring macros. Measurement is a short warm-up
//! followed by a time-boxed sampling loop; each benchmark prints one line
//! with the mean iteration time. There is no statistical analysis, HTML
//! report, or saved baseline (see `vendor/README.md`).
//!
//! Because the bench targets set `harness = false`, `cargo bench` invokes
//! their `main` with harness flags such as `--bench`; [`criterion_main!`]
//! accepts and ignores them, and honors a single positional argument as a
//! substring filter on benchmark names, like the real harness.

use std::time::{Duration, Instant};

/// Entry point handed to each registered benchmark function.
pub struct Criterion {
    filter: Option<String>,
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            filter: None,
            warm_up: Duration::from_millis(100),
            measure: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Restricts runs to benchmarks whose name contains `filter`.
    pub fn with_filter(mut self, filter: impl Into<String>) -> Self {
        self.filter = Some(filter.into());
        self
    }

    /// Runs one named benchmark: warm-up, then timed samples, then a
    /// one-line report on stdout.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measure: self.measure,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let mean = if bencher.iters == 0 {
            Duration::ZERO
        } else {
            bencher.elapsed / bencher.iters as u32
        };
        println!("bench: {name:<50} {mean:>12.3?}/iter ({} iters)", bencher.iters);
        self
    }
}

/// Times the routine under benchmark.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly: untimed warm-up until the warm-up budget
    /// elapses, then timed iterations until the measurement budget elapses
    /// (always at least one of each).
    ///
    /// Iterations run in geometrically growing batches with one clock read
    /// per batch, so timer overhead stays amortized to nothing even for
    /// nanosecond-scale routines.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_start = Instant::now();
        loop {
            std::hint::black_box(routine());
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let mut batch = 1u64;
        let run_start = Instant::now();
        loop {
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.iters += batch;
            let elapsed = run_start.elapsed();
            if elapsed >= self.measure {
                self.elapsed = elapsed;
                break;
            }
            batch = batch.saturating_mul(2).min(1 << 20);
        }
    }
}

/// Re-export so `use criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Bundles benchmark functions into a group runner, honoring CLI name
/// filters and ignoring libtest/criterion harness flags.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            if let Some(filter) =
                std::env::args().skip(1).find(|a| !a.starts_with('-'))
            {
                criterion = criterion.with_filter(filter);
            }
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts_iters() {
        let mut c =
            Criterion { filter: None, warm_up: Duration::ZERO, measure: Duration::from_millis(5) };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran >= 2, "warm-up plus at least one timed iteration");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion::default().with_filter("needle");
        let mut ran = false;
        c.bench_function("haystack_only", |b| {
            b.iter(|| ran = true);
        });
        assert!(!ran);
    }
}
