//! The line-delimited text protocol `pitex serve` speaks.
//!
//! Every request and response is a single `\n`-terminated ASCII line of
//! whitespace-separated tokens — trivially scriptable (`nc`, `telnet`) and
//! dependency-free to parse. Requests:
//!
//! ```text
//! PING                              liveness probe
//! QUERY <user> <k> [timeout_us] [backend]
//!                                   a PITEX query (Def. 1); the optional
//!                                   backend overrides the server's method
//!                                   per request — `auto` asks the planner
//! EXPLAIN <user> <k> [timeout_us] [backend]
//!                                   run the query and report the planner's
//!                                   decision: chosen backend, predicted vs.
//!                                   actual cost, rejected alternatives
//! TRACE <user> <k> [timeout_us] [backend] [id=<hex>]
//!                                   run the query and return its span
//!                                   timeline; `id=` carries the trace id
//!                                   across the router→shard hop (minted
//!                                   at admission when absent)
//! STATS                             server counters and latency percentiles
//! METRICS                           Prometheus text exposition (the one
//!                                   multi-line reply: lines until `# EOF`)
//! SERIES <field> [fast|mid|slow]    one registry field's rolling ring from
//!                                   the background sampler (default fast);
//!                                   counters come back as per-window
//!                                   deltas, histograms as per-window
//!                                   snapshots
//! HEALTH                            SLO burn-rate verdict: per-objective
//!                                   ok|warn|page with the evidence
//!                                   (window, burn rate, offending field);
//!                                   a router merges shard verdicts and
//!                                   names the worst shard
//! FLIGHT                            dump the flight recorder: the last N
//!                                   request summaries and the slow-query
//!                                   log (admin)
//! CAPTURE <on|off|rotate>           control the workload-capture recorder:
//!                                   pause/resume sampling into the `PWRK`
//!                                   log, or rotate the log file aside and
//!                                   start a fresh one (admin; capture must
//!                                   have been configured at boot via
//!                                   `PITEX_OBS_CAPTURE`)
//! UPDATE <op…>                      stage one model mutation (admin)
//! RELOAD                            fold staged ops, repair the index,
//!                                   swap the snapshot (admin)
//! PREPARE                           phase 1 of a coordinated reload: fold +
//!                                   repair into a staged snapshot, do NOT
//!                                   swap (admin)
//! COMMIT                            phase 2: swap the PREPAREd snapshot in
//!                                   (admin)
//! EPOCH                             current snapshot epoch (admin)
//! SYNC <from_epoch>                 stream the update-log suffix a stale
//!                                   replica needs to replay from
//!                                   `from_epoch` up to this server's
//!                                   epoch (admin)
//! DISCARD                           drop every staged-but-uncommitted op
//!                                   (and any PREPAREd snapshot) — how a
//!                                   rejoining replica yields its local
//!                                   pending state to a catch-up donor's
//!                                   (admin)
//! QUIT                              close this connection
//! SHUTDOWN                          gracefully stop the whole server
//! ```
//!
//! `PREPARE`/`COMMIT` split `RELOAD` so a cluster router can run an epoch
//! barrier: the slow half (fold + index repair) happens on every shard
//! first, then the cheap swaps are committed back-to-back — the window in
//! which two shards serve different epochs shrinks from "one repair each"
//! to "one atomic swap each".
//!
//! The `UPDATE` operand is the [`pitex_live::UpdateOp`] text grammar, e.g.
//! `UPDATE SET_EDGE 0 1 0:0.9` or `UPDATE DETACH_TAG 2`.
//!
//! Responses (one line per request, in order):
//!
//! ```text
//! PONG
//! OK user=<u> k=<k> tags=<t1,t2,..> spread=<f> cached=<0|1> us=<micros>
//! EXPLAINED user=<u> k=<k> backend=<name> predicted_us=<p> actual_us=<a>
//!           us=<total> degraded=<0|1> tags=<..> spread=<f>
//!           rejected=<name:pred:reason,..|->
//! TRACED trace_id=<hex> user=<u> k=<k> tags=<..> spread=<f> cached=<0|1>
//!        us=<micros> spans=<name:start:dur,..|->
//! STATS <key>=<value> ...
//! FLIGHTED n=<count> slow=<count> entries=<trace:verb:user:k:backend:outcome:us:ts;..|->
//!                                   newest last; `ts` is wall-clock µs at
//!                                   admission; the slow-log entries are
//!                                   appended after the ring entries
//! CAPTURED enabled=<0|1> recorded=<n> dropped=<n>
//!                                   capture recorder state after a CAPTURE
//!                                   verb (counts are since boot)
//! SERIESED field=<f> res=<fast|mid|slow> tick_ms=<n> window_ticks=<n>
//!          kind=<counter|gauge|hist> n=<count> points=<p1;p2;..|->
//!                                   ring contents oldest-first; a point is
//!                                   a number (counter/gauge) or a
//!                                   histogram wire string (hist); `n=`
//!                                   disambiguates one empty histogram
//!                                   (`-`) from the empty list
//! HEALTHY status=<ok|warn|page> worst=<origin|->
//!         slos=<name:status:window:burn:field:origin;..|->
//!                                   the component verdict plus every
//!                                   per-objective verdict with evidence;
//!                                   `worst` is the origin of the worst
//!                                   non-ok verdict
//! UPDATED epoch=<e> pending=<n>     op staged; visible after RELOAD
//! RELOADED epoch=<e> folded=<n> resampled=<r> reused=<u> full=<0|1>
//! PREPARED epoch=<e> folded=<n> resampled=<r> reused=<u> full=<0|1>
//! EPOCH <e>
//! SYNCED epoch=<e> base=<b> records=<n> pending=<p> bundle=<hex>
//!                                   the committed batches after
//!                                   `from_epoch` plus staged ops, as a
//!                                   hex-armored [`SyncBundle`]
//! DISCARDED epoch=<e> dropped=<n>   staged ops dropped; epoch unchanged
//! BYE
//! BUSY                              load shed: the request queue was full
//! ERR <CODE> <message>              CODE ∈ BAD_REQUEST | UNKNOWN_USER |
//!                                          BAD_K | DEADLINE | INTERNAL |
//!                                          BAD_UPDATE | ADMIN_DENIED
//! ```
//!
//! `tags` are 0-based tag ids (the paper's `w3` is `2`); `-` marks the empty
//! set. Both sides of the protocol live here so the server, the client and
//! the tests share one parser.

use pitex_core::plan::{RejectReason, RejectedPlan};
use pitex_core::{registry, EngineBackend};
use pitex_live::{SyncBundle, UpdateOp};
use pitex_model::TagId;
use pitex_support::obs::slo::{HealthVerdict, SloStatus, SloVerdict};
use pitex_support::obs::timeseries::{SeriesDump, SeriesKind, SeriesPoints, SeriesRes};
use pitex_support::obs::trace::{format_trace_id, parse_trace_id, spans_from_wire, spans_to_wire};
use pitex_support::obs::Span;
use std::collections::BTreeMap;

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    Ping,
    Query(QueryRequest),
    /// A query that additionally reports the planner's decision.
    Explain(QueryRequest),
    /// A query that additionally returns its span timeline (and echoes —
    /// or mints — its trace id).
    Trace(TraceRequest),
    Stats,
    /// Prometheus text exposition. The reply is the protocol's one
    /// multi-line response: raw exposition lines terminated by `# EOF`,
    /// written outside the [`Response`] enum.
    Metrics,
    /// Dump the flight recorder (admin-gated, like the other
    /// introspection-of-state verbs).
    Flight,
    /// One registry field's rolling ring from the background sampler
    /// (default resolution: fast). Unauthenticated, like `STATS` — it is
    /// how dashboards and `pitex top` see the recent past.
    Series {
        field: String,
        res: Option<SeriesRes>,
    },
    /// The SLO burn-rate verdict. Unauthenticated — it is what a load
    /// balancer or a stock Prometheus probes.
    Health,
    /// Control the workload-capture recorder (admin-gated).
    Capture(CaptureAction),
    /// Stage one mutation (admin-gated).
    Update(UpdateOp),
    /// Fold staged mutations into a fresh snapshot (admin-gated).
    Reload,
    /// Phase 1 of a two-phase reload: fold + repair without swapping
    /// (admin-gated).
    Prepare,
    /// Phase 2 of a two-phase reload: swap the prepared snapshot in
    /// (admin-gated).
    Commit,
    /// Read the current snapshot epoch (admin-gated).
    Epoch,
    /// Stream the update-log suffix after `from_epoch` (admin-gated) so a
    /// stale replica can replay its way back to the current epoch.
    Sync {
        from_epoch: u64,
    },
    /// Drop every staged-but-uncommitted op and any prepared snapshot
    /// (admin-gated) — the first step of replica catch-up, so a donor's
    /// history replay cannot double-apply the rejoiner's local pending.
    Discard,
    Quit,
    Shutdown,
}

/// The `CAPTURE` verb's operand: what to do to the workload recorder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CaptureAction {
    /// Resume sampling into the configured `PWRK` log.
    On,
    /// Pause sampling and flush buffered records to disk.
    Off,
    /// Rename the current log aside (`<path>.1`, `.2`, …) and start a
    /// fresh one; the reply counts carry over (they are since boot).
    Rotate,
}

impl CaptureAction {
    pub fn as_str(self) -> &'static str {
        match self {
            CaptureAction::On => "on",
            CaptureAction::Off => "off",
            CaptureAction::Rotate => "rotate",
        }
    }

    pub fn parse(s: &str) -> Option<CaptureAction> {
        Some(match s {
            "on" => CaptureAction::On,
            "off" => CaptureAction::Off,
            "rotate" => CaptureAction::Rotate,
            _ => return None,
        })
    }
}

/// The `QUERY`/`EXPLAIN` verbs' operands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryRequest {
    /// Query user (0-based vertex id).
    pub user: u32,
    /// Requested tag-set size.
    pub k: usize,
    /// Optional per-request deadline; the server default applies when absent.
    pub timeout_us: Option<u64>,
    /// Optional per-request backend override; the server's configured
    /// method applies when absent. `auto` defers to the cost-based planner.
    pub backend: Option<EngineBackend>,
}

impl QueryRequest {
    /// A plain `(user, k)` query under the server's defaults.
    pub fn new(user: u32, k: usize) -> Self {
        Self { user, k, timeout_us: None, backend: None }
    }
}

/// The `TRACE` verb's operands: a query plus an optional inbound trace id
/// (`id=<hex>`), which is how the router propagates the id it minted onto
/// the shard hop. Absent, the receiving server mints one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRequest {
    pub query: QueryRequest,
    pub trace_id: Option<u64>,
}

impl Request {
    /// Serializes to a protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Request::Ping => "PING".to_string(),
            Request::Stats => "STATS".to_string(),
            Request::Metrics => "METRICS".to_string(),
            Request::Flight => "FLIGHT".to_string(),
            Request::Series { field, res } => match res {
                Some(res) => format!("SERIES {field} {}", res.name()),
                None => format!("SERIES {field}"),
            },
            Request::Health => "HEALTH".to_string(),
            Request::Capture(action) => format!("CAPTURE {}", action.as_str()),
            Request::Update(op) => format!("UPDATE {}", op.to_text()),
            Request::Reload => "RELOAD".to_string(),
            Request::Prepare => "PREPARE".to_string(),
            Request::Commit => "COMMIT".to_string(),
            Request::Epoch => "EPOCH".to_string(),
            Request::Sync { from_epoch } => format!("SYNC {from_epoch}"),
            Request::Discard => "DISCARD".to_string(),
            Request::Quit => "QUIT".to_string(),
            Request::Shutdown => "SHUTDOWN".to_string(),
            Request::Query(q) => format_query_line("QUERY", q),
            Request::Explain(q) => format_query_line("EXPLAIN", q),
            Request::Trace(t) => {
                let mut line = format_query_line("TRACE", &t.query);
                if let Some(id) = t.trace_id {
                    line.push_str(&format!(" id={}", format_trace_id(id)));
                }
                line
            }
        }
    }

    /// Parses a request line. The error string is a human-readable reason
    /// suitable for an `ERR BAD_REQUEST` reply.
    pub fn parse(line: &str) -> Result<Request, String> {
        // UPDATE hands its whole operand to the op grammar (which performs
        // its own trailing-token check).
        if let Some(rest) = line.trim_start().strip_prefix("UPDATE ") {
            return Ok(Request::Update(UpdateOp::parse_text(rest)?));
        }
        let mut tokens = line.split_ascii_whitespace();
        let verb = tokens.next().ok_or("empty request")?;
        let request =
            match verb {
                "PING" => Request::Ping,
                "STATS" => Request::Stats,
                "METRICS" => Request::Metrics,
                "FLIGHT" => Request::Flight,
                "SERIES" => {
                    let field = tokens.next().ok_or("SERIES needs <field> [fast|mid|slow]")?;
                    let res = match tokens.next() {
                        Some(token) => Some(SeriesRes::parse(token).ok_or_else(|| {
                            format!("bad series resolution {token:?} (want fast|mid|slow)")
                        })?),
                        None => None,
                    };
                    Request::Series { field: field.to_string(), res }
                }
                "HEALTH" => Request::Health,
                "CAPTURE" => {
                    let action = tokens.next().ok_or("CAPTURE needs <on|off|rotate>")?;
                    Request::Capture(CaptureAction::parse(action).ok_or_else(|| {
                        format!("bad capture action {action:?} (want on|off|rotate)")
                    })?)
                }
                "UPDATE" => return Err("UPDATE needs an operation".to_string()),
                "RELOAD" => Request::Reload,
                "PREPARE" => Request::Prepare,
                "COMMIT" => Request::Commit,
                "EPOCH" => Request::Epoch,
                "SYNC" => {
                    let from = tokens.next().ok_or("SYNC needs <from_epoch>")?;
                    let from_epoch =
                        from.parse().map_err(|_| format!("bad from_epoch {from:?} (want u64)"))?;
                    Request::Sync { from_epoch }
                }
                "DISCARD" => Request::Discard,
                "QUIT" => Request::Quit,
                "SHUTDOWN" => Request::Shutdown,
                "QUERY" | "EXPLAIN" => {
                    let q = parse_query_operands(verb, &mut tokens)?;
                    if verb == "QUERY" {
                        Request::Query(q)
                    } else {
                        Request::Explain(q)
                    }
                }
                "TRACE" => {
                    // The optional trailing `id=<hex>` operand is peeled off
                    // before the shared query-operand parser runs.
                    let mut operands: Vec<&str> = tokens.by_ref().collect();
                    let trace_id = match operands.last().and_then(|t| t.strip_prefix("id=")) {
                        Some(hex) => {
                            operands.pop();
                            Some(parse_trace_id(hex)?)
                        }
                        None => None,
                    };
                    let mut operands = operands.into_iter();
                    let query = parse_query_operands(verb, &mut operands)?;
                    if operands.next().is_some() {
                        return Err("trailing tokens after TRACE".to_string());
                    }
                    Request::Trace(TraceRequest { query, trace_id })
                }
                other => return Err(format!("unknown verb {other:?}")),
            };
        if tokens.next().is_some() {
            return Err(format!("trailing tokens after {verb}"));
        }
        Ok(request)
    }
}

fn format_query_line(verb: &str, q: &QueryRequest) -> String {
    let mut line = format!("{verb} {} {}", q.user, q.k);
    if let Some(t) = q.timeout_us {
        line.push_str(&format!(" {t}"));
    }
    if let Some(b) = q.backend {
        line.push_str(&format!(" {}", b.cli_name()));
    }
    line
}

/// `<user> <k> [timeout_us] [backend]` — timeout first when both optional
/// operands are present.
fn parse_query_operands<'a>(
    verb: &str,
    tokens: &mut impl Iterator<Item = &'a str>,
) -> Result<QueryRequest, String> {
    let user = tokens.next().ok_or_else(|| format!("{verb} needs <user> <k>"))?;
    let user: u32 = user.parse().map_err(|_| format!("bad user {user:?} (want u32)"))?;
    let k = tokens.next().ok_or_else(|| format!("{verb} needs <user> <k>"))?;
    let k: usize = k.parse().map_err(|_| format!("bad k {k:?} (want usize)"))?;
    let mut timeout_us = None;
    let mut backend = None;
    if let Some(token) = tokens.next() {
        if token.bytes().all(|b| b.is_ascii_digit()) {
            timeout_us =
                Some(token.parse().map_err(|_| format!("bad timeout_us {token:?} (want u64)"))?);
            if let Some(token) = tokens.next() {
                backend = Some(parse_backend_name(token)?);
            }
        } else {
            backend = Some(parse_backend_name(token)?);
        }
    }
    Ok(QueryRequest { user, k, timeout_us, backend })
}

/// Parses a wire backend name; the error names every valid method, sourced
/// from the backend registry so the listing can never drift.
pub fn parse_backend_name(token: &str) -> Result<EngineBackend, String> {
    EngineBackend::parse(token)
        .ok_or_else(|| format!("unknown backend {token:?} (valid: {})", registry::method_names()))
}

/// Machine-readable error classes, mirrored by the CLI exit paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line did not parse.
    BadRequest,
    /// The query user is outside the model's vertex range.
    UnknownUser,
    /// `k = 0` (a PITEX query selects at least one tag).
    BadK,
    /// The per-request deadline elapsed before the query ran.
    Deadline,
    /// The server failed internally (e.g. a worker panicked).
    Internal,
    /// An `UPDATE` op parsed but was semantically invalid (unknown vertex,
    /// duplicate edge, bad probability, …).
    BadUpdate,
    /// An admin verb (`UPDATE`/`RELOAD`/`EPOCH`) on a server started with
    /// admin verbs disabled.
    AdminDenied,
}

impl ErrorCode {
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "BAD_REQUEST",
            ErrorCode::UnknownUser => "UNKNOWN_USER",
            ErrorCode::BadK => "BAD_K",
            ErrorCode::Deadline => "DEADLINE",
            ErrorCode::Internal => "INTERNAL",
            ErrorCode::BadUpdate => "BAD_UPDATE",
            ErrorCode::AdminDenied => "ADMIN_DENIED",
        }
    }

    pub fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "BAD_REQUEST" => ErrorCode::BadRequest,
            "UNKNOWN_USER" => ErrorCode::UnknownUser,
            "BAD_K" => ErrorCode::BadK,
            "DEADLINE" => ErrorCode::Deadline,
            "INTERNAL" => ErrorCode::Internal,
            "BAD_UPDATE" => ErrorCode::BadUpdate,
            "ADMIN_DENIED" => ErrorCode::AdminDenied,
            _ => return None,
        })
    }
}

/// A successful query reply.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryReply {
    /// Echo of the query user.
    pub user: u32,
    /// The effective `k` (clamped to the tag vocabulary, as the engine does).
    pub k: usize,
    /// The selected tag set `W*` (0-based ids, ascending).
    pub tags: Vec<TagId>,
    /// Estimated spread `Ê[I(u|W*)]`.
    pub spread: f64,
    /// Whether the answer came from the result cache.
    pub cached: bool,
    /// Server-side handling time in microseconds.
    pub us: u64,
}

/// The `TRACED` reply: a query answer plus its trace id and span timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceReply {
    /// The request's trace id (inbound `id=` echoed, or minted here).
    pub trace_id: u64,
    /// Echo of the query user.
    pub user: u32,
    /// The effective `k`.
    pub k: usize,
    /// The selected tag set `W*`.
    pub tags: Vec<TagId>,
    /// Estimated spread.
    pub spread: f64,
    /// Whether the answer came from the result cache.
    pub cached: bool,
    /// Total server-side handling time in microseconds.
    pub us: u64,
    /// Where those microseconds went, offsets relative to admission. A
    /// router splices shard-side spans in under a `shard.` name prefix.
    pub spans: Vec<Span>,
}

/// One flight-recorder entry as it crosses the wire (owned strings — the
/// in-memory recorder uses `&'static str`, but a router dump aggregates
/// foreign entries too).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightWireEntry {
    pub trace_id: u64,
    pub verb: String,
    pub user: u32,
    pub k: usize,
    pub backend: String,
    pub outcome: String,
    pub us: u64,
    /// Wall-clock microseconds since `UNIX_EPOCH` at admission (the shared
    /// observability anchor), so dumps line up with `PWRK` capture records.
    pub ts_us: u64,
}

impl FlightWireEntry {
    fn to_token(&self) -> String {
        format!(
            "{}:{}:{}:{}:{}:{}:{}:{}",
            format_trace_id(self.trace_id),
            self.verb,
            self.user,
            self.k,
            self.backend,
            self.outcome,
            self.us,
            self.ts_us
        )
    }

    fn from_token(token: &str) -> Result<Self, String> {
        let parts: Vec<&str> = token.split(':').collect();
        let bad = || format!("bad flight entry {token:?}");
        let [trace, verb, user, k, backend, outcome, us, ts] = parts.as_slice() else {
            return Err(bad());
        };
        Ok(Self {
            trace_id: parse_trace_id(trace)?,
            verb: verb.to_string(),
            user: user.parse().map_err(|_| bad())?,
            k: k.parse().map_err(|_| bad())?,
            backend: backend.to_string(),
            outcome: outcome.to_string(),
            us: us.parse().map_err(|_| bad())?,
            ts_us: ts.parse().map_err(|_| bad())?,
        })
    }
}

fn format_flight_entries(entries: &[FlightWireEntry]) -> String {
    if entries.is_empty() {
        return "-".to_string();
    }
    entries.iter().map(FlightWireEntry::to_token).collect::<Vec<_>>().join(";")
}

fn parse_flight_entries(s: &str) -> Result<Vec<FlightWireEntry>, String> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split(';').map(FlightWireEntry::from_token).collect()
}

/// The `FLIGHTED` reply: the recorder's ring (newest last, capped so the
/// reply stays a single line) and the slow-query log.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlightReply {
    /// Total entries ever recorded into the ring.
    pub recorded: u64,
    /// Total requests that crossed the slow threshold.
    pub slow_count: u64,
    /// The ring contents, oldest first.
    pub entries: Vec<FlightWireEntry>,
    /// The retained slow queries, oldest first.
    pub slow: Vec<FlightWireEntry>,
}

/// The `SERIESED` reply: one ring's contents plus the metadata a consumer
/// needs to lay the points on a time axis. Points stay wire-encoded
/// strings here — a number for counter/gauge series, a
/// [`LatencyHistogram`](pitex_support::obs::LatencyHistogram) wire string
/// for histogram series — so the protocol layer does not need to know
/// every shape.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesReply {
    pub field: String,
    pub res: SeriesRes,
    /// Sampler tick width in milliseconds.
    pub tick_ms: u64,
    /// Ticks per ring window (1 fast / 10 mid / 60 slow).
    pub window_ticks: u64,
    pub kind: SeriesKind,
    /// Completed windows, oldest first.
    pub points: Vec<String>,
}

impl SeriesReply {
    /// The points as numbers, for counter/gauge (and derived-quantile)
    /// series. Histogram points yield `None`.
    pub fn scalar_points(&self) -> Option<Vec<f64>> {
        self.points.iter().map(|p| p.parse().ok()).collect()
    }
}

impl From<SeriesDump> for SeriesReply {
    fn from(dump: SeriesDump) -> Self {
        let points = match &dump.points {
            SeriesPoints::Scalar(values) => {
                values.iter().map(|&v| crate::http::scalar_token(v)).collect()
            }
            SeriesPoints::Hist(hists) => hists.iter().map(|h| h.to_wire()).collect(),
        };
        Self {
            field: dump.field,
            res: dump.res,
            tick_ms: dump.tick_ms,
            window_ticks: dump.window_ticks,
            kind: dump.kind,
            points,
        }
    }
}

fn format_series_points(points: &[String]) -> String {
    if points.is_empty() {
        return "-".to_string();
    }
    points.join(";")
}

fn format_slos(slos: &[SloVerdict]) -> String {
    if slos.is_empty() {
        return "-".to_string();
    }
    slos.iter()
        .map(|v| {
            format!(
                "{}:{}:{}:{:.2}:{}:{}",
                v.name,
                v.status.name(),
                v.window,
                v.burn,
                v.field,
                v.origin
            )
        })
        .collect::<Vec<_>>()
        .join(";")
}

fn parse_slos(s: &str) -> Result<Vec<SloVerdict>, String> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split(';')
        .map(|entry| {
            let parts: Vec<&str> = entry.split(':').collect();
            let bad = || format!("bad slo entry {entry:?}");
            let [name, status, window, burn, field, origin] = parts.as_slice() else {
                return Err(bad());
            };
            Ok(SloVerdict {
                name: name.to_string(),
                status: SloStatus::parse(status).ok_or_else(bad)?,
                window: window.to_string(),
                burn: burn.parse().map_err(|_| bad())?,
                field: field.to_string(),
                origin: origin.to_string(),
            })
        })
        .collect()
}

/// The `STATS` reply: ordered `key=value` pairs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsReply {
    fields: BTreeMap<String, String>,
}

impl StatsReply {
    pub fn new(fields: impl IntoIterator<Item = (String, String)>) -> Self {
        Self { fields: fields.into_iter().collect() }
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.fields.get(key).map(|s| s.as_str())
    }

    pub fn get_u64(&self, key: &str) -> Option<u64> {
        self.get(key)?.parse().ok()
    }

    pub fn get_f64(&self, key: &str) -> Option<f64> {
        self.get(key)?.parse().ok()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> + Clone {
        self.fields.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

/// The `RELOADED` reply: what the snapshot swap did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReloadReply {
    /// Epoch now being served.
    pub epoch: u64,
    /// Staged ops folded into the new snapshot (0 = nothing to do, no swap).
    pub folded: u64,
    /// RR-Graphs resampled by incremental repair (θ on a full rebuild).
    pub resampled: u64,
    /// RR-Graphs reused from the previous index.
    pub reused: u64,
    /// Whether repair fell back to a full rebuild.
    pub full: bool,
}

/// The `EXPLAINED` reply: a query answer plus the planner's decision —
/// which backend ran, what it was predicted to cost, what it actually
/// cost, and every alternative that was rejected (with the reason).
#[derive(Clone, Debug, PartialEq)]
pub struct ExplainReply {
    /// Echo of the query user.
    pub user: u32,
    /// The effective `k` (clamped to the tag vocabulary).
    pub k: usize,
    /// The concrete backend that answered (never `auto`).
    pub backend: EngineBackend,
    /// The planner's predicted service time for that backend.
    pub predicted_us: u64,
    /// Measured execution time on the worker (queue wait excluded).
    pub actual_us: u64,
    /// Total server-side handling time, queue wait included.
    pub us: u64,
    /// Whether the deadline budget forced a cheaper backend than the
    /// preferred one.
    pub degraded: bool,
    /// The selected tag set `W*`.
    pub tags: Vec<TagId>,
    /// Estimated spread.
    pub spread: f64,
    /// The alternatives the planner rejected.
    pub rejected: Vec<RejectedPlan>,
}

fn format_rejected(rejected: &[RejectedPlan]) -> String {
    if rejected.is_empty() {
        return "-".to_string();
    }
    rejected
        .iter()
        .map(|r| {
            let predicted =
                r.predicted_us.map(|us| us.to_string()).unwrap_or_else(|| "-".to_string());
            format!("{}:{predicted}:{}", r.backend.cli_name(), r.reason.as_str())
        })
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_rejected(s: &str) -> Result<Vec<RejectedPlan>, String> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|entry| {
            let mut parts = entry.split(':');
            let bad = || format!("bad rejected entry {entry:?}");
            let backend = parse_backend_name(parts.next().ok_or_else(bad)?)?;
            let predicted = parts.next().ok_or_else(bad)?;
            let predicted_us =
                if predicted == "-" { None } else { Some(predicted.parse().map_err(|_| bad())?) };
            let reason = parts.next().ok_or_else(bad)?;
            let reason = RejectReason::parse(reason).ok_or_else(bad)?;
            if parts.next().is_some() {
                return Err(bad());
            }
            Ok(RejectedPlan { backend, predicted_us, reason })
        })
        .collect()
}

/// A parsed response line.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    Pong,
    Ok(QueryReply),
    /// `EXPLAINED …` — see [`ExplainReply`].
    Explained(ExplainReply),
    /// `TRACED …` — see [`TraceReply`].
    Traced(TraceReply),
    Stats(StatsReply),
    /// `FLIGHTED …` — see [`FlightReply`].
    Flight(FlightReply),
    /// `SERIESED …` — see [`SeriesReply`].
    Series(SeriesReply),
    /// `HEALTHY …` — the SLO verdict, reusing the obs-layer
    /// [`HealthVerdict`] verbatim (burn rates round to two decimals on
    /// the wire).
    Health(HealthVerdict),
    /// `CAPTURED enabled=<0|1> recorded=<n> dropped=<n>` — capture
    /// recorder state after a `CAPTURE` verb (counts since boot).
    Captured {
        enabled: bool,
        recorded: u64,
        dropped: u64,
    },
    /// `UPDATED epoch=<serving epoch> pending=<staged ops>`.
    Updated {
        epoch: u64,
        pending: u64,
    },
    /// `RELOADED …` — see [`ReloadReply`].
    Reloaded(ReloadReply),
    /// `PREPARED …` — a reload staged but not yet swapped; `epoch` is the
    /// epoch still being served, the remaining fields describe the staged
    /// snapshot exactly as `RELOADED` would.
    Prepared(ReloadReply),
    /// `EPOCH <e>`.
    Epoch(u64),
    /// `SYNCED …` — the hex-armored catch-up history ([`SyncBundle`]).
    Synced(SyncBundle),
    /// `DISCARDED epoch=<e> dropped=<n>` — staged ops dropped, epoch
    /// unchanged.
    Discarded {
        epoch: u64,
        dropped: u64,
    },
    Bye,
    Busy,
    Err {
        code: ErrorCode,
        message: String,
    },
}

fn format_tags(tags: &[TagId]) -> String {
    if tags.is_empty() {
        return "-".to_string();
    }
    tags.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(",")
}

fn parse_tags(s: &str) -> Result<Vec<TagId>, String> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split(',').map(|t| t.parse().map_err(|_| format!("bad tag id {t:?}"))).collect()
}

fn format_reload_fields(r: &ReloadReply) -> String {
    format!(
        "epoch={} folded={} resampled={} reused={} full={}",
        r.epoch,
        r.folded,
        r.resampled,
        r.reused,
        u8::from(r.full)
    )
}

fn parse_reload_fields(verb: &str, rest: &str) -> Result<ReloadReply, String> {
    let mut tokens = rest.split_ascii_whitespace();
    let mut next = |key: &str| -> Result<u64, String> {
        let token = tokens.next().ok_or_else(|| format!("missing {key}="))?;
        kv(token, key)?.parse().map_err(|_| format!("bad {key} in {verb}"))
    };
    Ok(ReloadReply {
        epoch: next("epoch")?,
        folded: next("folded")?,
        resampled: next("resampled")?,
        reused: next("reused")?,
        full: next("full")? != 0,
    })
}

fn kv<'a>(token: &'a str, key: &str) -> Result<&'a str, String> {
    token
        .strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or_else(|| format!("expected {key}=<value>, found {token:?}"))
}

impl Response {
    /// Serializes to a protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Response::Pong => "PONG".to_string(),
            Response::Bye => "BYE".to_string(),
            Response::Busy => "BUSY".to_string(),
            Response::Err { code, message } => {
                format!("ERR {} {}", code.as_str(), message)
            }
            Response::Ok(r) => format!(
                "OK user={} k={} tags={} spread={} cached={} us={}",
                r.user,
                r.k,
                format_tags(&r.tags),
                r.spread,
                u8::from(r.cached),
                r.us
            ),
            Response::Explained(r) => format!(
                "EXPLAINED user={} k={} backend={} predicted_us={} actual_us={} us={} \
                 degraded={} tags={} spread={} rejected={}",
                r.user,
                r.k,
                r.backend.cli_name(),
                r.predicted_us,
                r.actual_us,
                r.us,
                u8::from(r.degraded),
                format_tags(&r.tags),
                r.spread,
                format_rejected(&r.rejected)
            ),
            Response::Traced(r) => format!(
                "TRACED trace_id={} user={} k={} tags={} spread={} cached={} us={} spans={}",
                format_trace_id(r.trace_id),
                r.user,
                r.k,
                format_tags(&r.tags),
                r.spread,
                u8::from(r.cached),
                r.us,
                spans_to_wire(&r.spans)
            ),
            Response::Flight(r) => format!(
                "FLIGHTED n={} slow={} entries={} slow_entries={}",
                r.recorded,
                r.slow_count,
                format_flight_entries(&r.entries),
                format_flight_entries(&r.slow)
            ),
            Response::Series(r) => format!(
                "SERIESED field={} res={} tick_ms={} window_ticks={} kind={} n={} points={}",
                r.field,
                r.res.name(),
                r.tick_ms,
                r.window_ticks,
                r.kind.name(),
                r.points.len(),
                format_series_points(&r.points)
            ),
            Response::Health(r) => format!(
                "HEALTHY status={} worst={} slos={}",
                r.status.name(),
                r.worst,
                format_slos(&r.slos)
            ),
            Response::Captured { enabled, recorded, dropped } => {
                format!(
                    "CAPTURED enabled={} recorded={recorded} dropped={dropped}",
                    u8::from(*enabled)
                )
            }
            Response::Updated { epoch, pending } => {
                format!("UPDATED epoch={epoch} pending={pending}")
            }
            Response::Reloaded(r) => format!("RELOADED {}", format_reload_fields(r)),
            Response::Prepared(r) => format!("PREPARED {}", format_reload_fields(r)),
            Response::Epoch(e) => format!("EPOCH {e}"),
            Response::Synced(bundle) => format!(
                "SYNCED epoch={} base={} records={} pending={} bundle={}",
                bundle.epoch,
                bundle.base_epoch,
                bundle.records.len(),
                bundle.pending.len(),
                bundle.to_hex()
            ),
            Response::Discarded { epoch, dropped } => {
                format!("DISCARDED epoch={epoch} dropped={dropped}")
            }
            Response::Stats(s) => {
                let mut line = String::from("STATS");
                for (k, v) in s.iter() {
                    line.push(' ');
                    line.push_str(k);
                    line.push('=');
                    line.push_str(v);
                }
                line
            }
        }
    }

    /// Parses a response line (the client half of the protocol).
    pub fn parse(line: &str) -> Result<Response, String> {
        let line = line.trim_end();
        let (verb, rest) = match line.split_once(' ') {
            Some((v, r)) => (v, r),
            None => (line, ""),
        };
        match verb {
            "PONG" => Ok(Response::Pong),
            "BYE" => Ok(Response::Bye),
            "BUSY" => Ok(Response::Busy),
            "ERR" => {
                let (code, message) = rest.split_once(' ').unwrap_or((rest, ""));
                let code =
                    ErrorCode::parse(code).ok_or_else(|| format!("unknown error code {code:?}"))?;
                Ok(Response::Err { code, message: message.to_string() })
            }
            "OK" => {
                let mut tokens = rest.split_ascii_whitespace();
                let mut next = |key: &str| -> Result<String, String> {
                    let token = tokens.next().ok_or_else(|| format!("missing {key}="))?;
                    Ok(kv(token, key)?.to_string())
                };
                let user = next("user")?.parse().map_err(|_| "bad user in OK reply".to_string())?;
                let k = next("k")?.parse().map_err(|_| "bad k in OK reply".to_string())?;
                let tags = parse_tags(&next("tags")?)?;
                let spread =
                    next("spread")?.parse().map_err(|_| "bad spread in OK reply".to_string())?;
                let cached = match next("cached")?.as_str() {
                    "0" => false,
                    "1" => true,
                    other => return Err(format!("bad cached flag {other:?}")),
                };
                let us = next("us")?.parse().map_err(|_| "bad us in OK reply".to_string())?;
                Ok(Response::Ok(QueryReply { user, k, tags, spread, cached, us }))
            }
            "EXPLAINED" => {
                let mut tokens = rest.split_ascii_whitespace();
                let mut next = |key: &str| -> Result<String, String> {
                    let token = tokens.next().ok_or_else(|| format!("missing {key}="))?;
                    Ok(kv(token, key)?.to_string())
                };
                let bad = |key: &str| format!("bad {key} in EXPLAINED reply");
                let user = next("user")?.parse().map_err(|_| bad("user"))?;
                let k = next("k")?.parse().map_err(|_| bad("k"))?;
                let backend = parse_backend_name(&next("backend")?)?;
                let predicted_us =
                    next("predicted_us")?.parse().map_err(|_| bad("predicted_us"))?;
                let actual_us = next("actual_us")?.parse().map_err(|_| bad("actual_us"))?;
                let us = next("us")?.parse().map_err(|_| bad("us"))?;
                let degraded = match next("degraded")?.as_str() {
                    "0" => false,
                    "1" => true,
                    other => return Err(format!("bad degraded flag {other:?}")),
                };
                let tags = parse_tags(&next("tags")?)?;
                let spread = next("spread")?.parse().map_err(|_| bad("spread"))?;
                let rejected = parse_rejected(&next("rejected")?)?;
                Ok(Response::Explained(ExplainReply {
                    user,
                    k,
                    backend,
                    predicted_us,
                    actual_us,
                    us,
                    degraded,
                    tags,
                    spread,
                    rejected,
                }))
            }
            "TRACED" => {
                let mut tokens = rest.split_ascii_whitespace();
                let mut next = |key: &str| -> Result<String, String> {
                    let token = tokens.next().ok_or_else(|| format!("missing {key}="))?;
                    Ok(kv(token, key)?.to_string())
                };
                let bad = |key: &str| format!("bad {key} in TRACED reply");
                let trace_id = parse_trace_id(&next("trace_id")?)?;
                let user = next("user")?.parse().map_err(|_| bad("user"))?;
                let k = next("k")?.parse().map_err(|_| bad("k"))?;
                let tags = parse_tags(&next("tags")?)?;
                let spread = next("spread")?.parse().map_err(|_| bad("spread"))?;
                let cached = match next("cached")?.as_str() {
                    "0" => false,
                    "1" => true,
                    other => return Err(format!("bad cached flag {other:?}")),
                };
                let us = next("us")?.parse().map_err(|_| bad("us"))?;
                let spans = spans_from_wire(&next("spans")?)?;
                Ok(Response::Traced(TraceReply {
                    trace_id,
                    user,
                    k,
                    tags,
                    spread,
                    cached,
                    us,
                    spans,
                }))
            }
            "FLIGHTED" => {
                let mut tokens = rest.split_ascii_whitespace();
                let mut next = |key: &str| -> Result<String, String> {
                    let token = tokens.next().ok_or_else(|| format!("missing {key}="))?;
                    Ok(kv(token, key)?.to_string())
                };
                let bad = |key: &str| format!("bad {key} in FLIGHTED reply");
                let recorded = next("n")?.parse().map_err(|_| bad("n"))?;
                let slow_count = next("slow")?.parse().map_err(|_| bad("slow"))?;
                let entries = parse_flight_entries(&next("entries")?)?;
                let slow = parse_flight_entries(&next("slow_entries")?)?;
                Ok(Response::Flight(FlightReply { recorded, slow_count, entries, slow }))
            }
            "SERIESED" => {
                let mut tokens = rest.split_ascii_whitespace();
                let mut next = |key: &str| -> Result<String, String> {
                    let token = tokens.next().ok_or_else(|| format!("missing {key}="))?;
                    Ok(kv(token, key)?.to_string())
                };
                let bad = |key: &str| format!("bad {key} in SERIESED reply");
                let field = next("field")?;
                let res = next("res")?;
                let res = SeriesRes::parse(&res).ok_or_else(|| bad("res"))?;
                let tick_ms = next("tick_ms")?.parse().map_err(|_| bad("tick_ms"))?;
                let window_ticks =
                    next("window_ticks")?.parse().map_err(|_| bad("window_ticks"))?;
                let kind = next("kind")?;
                let kind = SeriesKind::parse(&kind).ok_or_else(|| bad("kind"))?;
                let n: usize = next("n")?.parse().map_err(|_| bad("n"))?;
                let points = next("points")?;
                let points: Vec<String> = if n == 0 {
                    if points != "-" {
                        return Err(bad("points"));
                    }
                    Vec::new()
                } else {
                    points.split(';').map(|p| p.to_string()).collect()
                };
                if points.len() != n {
                    return Err(format!("SERIESED n={n} disagrees with {} points", points.len()));
                }
                Ok(Response::Series(SeriesReply {
                    field,
                    res,
                    tick_ms,
                    window_ticks,
                    kind,
                    points,
                }))
            }
            "HEALTHY" => {
                let mut tokens = rest.split_ascii_whitespace();
                let mut next = |key: &str| -> Result<String, String> {
                    let token = tokens.next().ok_or_else(|| format!("missing {key}="))?;
                    Ok(kv(token, key)?.to_string())
                };
                let status = next("status")?;
                let status = SloStatus::parse(&status)
                    .ok_or_else(|| format!("bad status {status:?} in HEALTHY reply"))?;
                let worst = next("worst")?;
                let slos = parse_slos(&next("slos")?)?;
                Ok(Response::Health(HealthVerdict { status, worst, slos }))
            }
            "CAPTURED" => {
                let mut tokens = rest.split_ascii_whitespace();
                let mut next = |key: &str| -> Result<u64, String> {
                    let token = tokens.next().ok_or_else(|| format!("missing {key}="))?;
                    kv(token, key)?.parse().map_err(|_| format!("bad {key} in CAPTURED"))
                };
                let enabled = match next("enabled")? {
                    0 => false,
                    1 => true,
                    other => return Err(format!("bad enabled flag {other:?}")),
                };
                Ok(Response::Captured {
                    enabled,
                    recorded: next("recorded")?,
                    dropped: next("dropped")?,
                })
            }
            "UPDATED" => {
                let mut tokens = rest.split_ascii_whitespace();
                let mut next = |key: &str| -> Result<u64, String> {
                    let token = tokens.next().ok_or_else(|| format!("missing {key}="))?;
                    kv(token, key)?.parse().map_err(|_| format!("bad {key} in UPDATED"))
                };
                Ok(Response::Updated { epoch: next("epoch")?, pending: next("pending")? })
            }
            "RELOADED" => Ok(Response::Reloaded(parse_reload_fields(verb, rest)?)),
            "PREPARED" => Ok(Response::Prepared(parse_reload_fields(verb, rest)?)),
            "EPOCH" => {
                let epoch = rest.trim().parse().map_err(|_| format!("bad epoch {rest:?}"))?;
                Ok(Response::Epoch(epoch))
            }
            "SYNCED" => {
                let mut tokens = rest.split_ascii_whitespace();
                let mut next = |key: &str| -> Result<String, String> {
                    let token = tokens.next().ok_or_else(|| format!("missing {key}="))?;
                    Ok(kv(token, key)?.to_string())
                };
                let epoch: u64 =
                    next("epoch")?.parse().map_err(|_| "bad epoch in SYNCED".to_string())?;
                let _base = next("base")?;
                let _records = next("records")?;
                let _pending = next("pending")?;
                let bundle = SyncBundle::from_hex(&next("bundle")?)?;
                if bundle.epoch != epoch {
                    return Err(format!(
                        "SYNCED epoch field {epoch} disagrees with bundle epoch {}",
                        bundle.epoch
                    ));
                }
                Ok(Response::Synced(bundle))
            }
            "DISCARDED" => {
                let mut tokens = rest.split_ascii_whitespace();
                let mut next = |key: &str| -> Result<u64, String> {
                    let token = tokens.next().ok_or_else(|| format!("missing {key}="))?;
                    kv(token, key)?.parse().map_err(|_| format!("bad {key} in DISCARDED"))
                };
                Ok(Response::Discarded { epoch: next("epoch")?, dropped: next("dropped")? })
            }
            "STATS" => {
                let mut fields = BTreeMap::new();
                for token in rest.split_ascii_whitespace() {
                    let (k, v) = token
                        .split_once('=')
                        .ok_or_else(|| format!("bad stats token {token:?}"))?;
                    fields.insert(k.to_string(), v.to_string());
                }
                Ok(Response::Stats(StatsReply { fields }))
            }
            other => Err(format!("unknown response verb {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let cases = [
            Request::Ping,
            Request::Stats,
            Request::Reload,
            Request::Prepare,
            Request::Commit,
            Request::Epoch,
            Request::Quit,
            Request::Shutdown,
            Request::Query(QueryRequest::new(0, 2)),
            Request::Query(QueryRequest {
                timeout_us: Some(2_000_000),
                ..QueryRequest::new(41, 3)
            }),
            Request::Query(QueryRequest {
                backend: Some(EngineBackend::Auto),
                ..QueryRequest::new(7, 2)
            }),
            Request::Query(QueryRequest {
                timeout_us: Some(500),
                backend: Some(EngineBackend::IndexEstPlus),
                ..QueryRequest::new(7, 2)
            }),
            Request::Explain(QueryRequest::new(0, 2)),
            Request::Explain(QueryRequest {
                timeout_us: Some(1_000),
                backend: Some(EngineBackend::Auto),
                ..QueryRequest::new(3, 1)
            }),
            Request::Update(UpdateOp::AddEdge { src: 1, dst: 4, topics: vec![(0, 0.25)] }),
            Request::Update(UpdateOp::DetachTag { tag: 2 }),
            Request::Update(UpdateOp::AddUser),
            Request::Sync { from_epoch: 3 },
            Request::Discard,
            Request::Metrics,
            Request::Flight,
            Request::Series { field: "lat_hist".into(), res: None },
            Request::Series { field: "requests".into(), res: Some(SeriesRes::Fast) },
            Request::Series { field: "lat_p99_us".into(), res: Some(SeriesRes::Mid) },
            Request::Series { field: "qps".into(), res: Some(SeriesRes::Slow) },
            Request::Health,
            Request::Capture(CaptureAction::On),
            Request::Capture(CaptureAction::Off),
            Request::Capture(CaptureAction::Rotate),
            Request::Trace(TraceRequest { query: QueryRequest::new(0, 2), trace_id: None }),
            Request::Trace(TraceRequest {
                query: QueryRequest {
                    timeout_us: Some(500),
                    backend: Some(EngineBackend::Lazy),
                    ..QueryRequest::new(7, 3)
                },
                trace_id: Some(0xdeadbeef12345678),
            }),
            Request::Trace(TraceRequest {
                query: QueryRequest::new(1, 1),
                trace_id: Some(u64::MAX),
            }),
        ];
        for request in cases {
            assert_eq!(Request::parse(&request.to_line()), Ok(request));
        }
    }

    #[test]
    fn query_backend_operand_parses_with_and_without_timeout() {
        let Ok(Request::Query(q)) = Request::parse("QUERY 0 2 auto") else { panic!() };
        assert_eq!((q.timeout_us, q.backend), (None, Some(EngineBackend::Auto)));
        let Ok(Request::Query(q)) = Request::parse("QUERY 0 2 750 lazy") else { panic!() };
        assert_eq!((q.timeout_us, q.backend), (Some(750), Some(EngineBackend::Lazy)));
    }

    #[test]
    fn unknown_backend_error_lists_every_valid_method() {
        let err = Request::parse("QUERY 0 2 frob").expect_err("unknown backend must not parse");
        assert!(err.contains("unknown backend"), "{err}");
        for backend in EngineBackend::ALL {
            assert!(err.contains(backend.cli_name()), "{err} misses {}", backend.cli_name());
        }
        assert!(err.contains("auto"), "{err}");
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        for (line, needle) in [
            ("", "empty"),
            ("FROB 1 2", "unknown verb"),
            ("QUERY", "needs"),
            ("QUERY 1", "needs"),
            ("QUERY x 2", "bad user"),
            ("QUERY 1 -3", "bad k"),
            ("QUERY 1 2 fast", "unknown backend"),
            ("QUERY 1 2 3 4", "unknown backend"),
            ("QUERY 1 2 3 lazy extra", "trailing"),
            ("EXPLAIN", "needs"),
            ("EXPLAIN 1 2 frob", "unknown backend"),
            ("PING PONG", "trailing"),
            ("UPDATE", "needs an operation"),
            ("UPDATE FROB 1", "unknown update op"),
            ("UPDATE ADD_EDGE 1", "needs"),
            ("RELOAD NOW", "trailing"),
            ("PREPARE 2", "trailing"),
            ("COMMIT fast", "trailing"),
            ("EPOCH 3", "trailing"),
            ("SYNC", "needs <from_epoch>"),
            ("SYNC x", "bad from_epoch"),
            ("SYNC 1 2", "trailing"),
            ("DISCARD all", "trailing"),
            ("TRACE", "needs"),
            ("TRACE 1", "needs"),
            ("TRACE 1 2 frob", "unknown backend"),
            ("TRACE 1 2 id=zz", "bad trace id"),
            ("TRACE 1 2 id=", "bad trace id"),
            ("TRACE 1 2 id=ff extra", "unknown backend"),
            ("METRICS now", "trailing"),
            ("FLIGHT all", "trailing"),
            ("SERIES", "needs <field>"),
            ("SERIES lat_hist hourly", "bad series resolution"),
            ("SERIES lat_hist fast extra", "trailing"),
            ("HEALTH check", "trailing"),
            ("CAPTURE", "needs <on|off|rotate>"),
            ("CAPTURE maybe", "bad capture action"),
            ("CAPTURE on off", "trailing"),
        ] {
            let err = Request::parse(line).expect_err(line);
            assert!(err.contains(needle), "{line:?} -> {err:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let cases = [
            Response::Pong,
            Response::Bye,
            Response::Busy,
            Response::Err { code: ErrorCode::Deadline, message: "deadline exceeded".into() },
            Response::Ok(QueryReply {
                user: 0,
                k: 2,
                tags: vec![2, 3],
                spread: 2.0575,
                cached: true,
                us: 1234,
            }),
            Response::Ok(QueryReply {
                user: 5,
                k: 1,
                tags: vec![],
                spread: 1.0,
                cached: false,
                us: 7,
            }),
            Response::Explained(ExplainReply {
                user: 0,
                k: 2,
                backend: EngineBackend::Exact,
                predicted_us: 4,
                actual_us: 21,
                us: 90,
                degraded: false,
                tags: vec![2, 3],
                spread: 2.0575,
                rejected: vec![
                    RejectedPlan {
                        backend: EngineBackend::Lazy,
                        predicted_us: Some(55),
                        reason: RejectReason::Costlier,
                    },
                    RejectedPlan {
                        backend: EngineBackend::IndexEstPlus,
                        predicted_us: None,
                        reason: RejectReason::MissingArtifact,
                    },
                ],
            }),
            Response::Explained(ExplainReply {
                user: 3,
                k: 1,
                backend: EngineBackend::Tim,
                predicted_us: 12,
                actual_us: 9,
                us: 30,
                degraded: true,
                tags: vec![],
                spread: 1.0,
                rejected: vec![RejectedPlan {
                    backend: EngineBackend::Lazy,
                    predicted_us: Some(900_000),
                    reason: RejectReason::OverBudget,
                }],
            }),
            Response::Stats(StatsReply::new([
                ("requests".to_string(), "64".to_string()),
                ("cache_hits".to_string(), "12".to_string()),
            ])),
            Response::Updated { epoch: 3, pending: 2 },
            Response::Reloaded(ReloadReply {
                epoch: 4,
                folded: 2,
                resampled: 120,
                reused: 440,
                full: false,
            }),
            Response::Reloaded(ReloadReply {
                epoch: 9,
                folded: 1,
                resampled: 560,
                reused: 0,
                full: true,
            }),
            Response::Prepared(ReloadReply {
                epoch: 3,
                folded: 2,
                resampled: 40,
                reused: 360,
                full: false,
            }),
            Response::Epoch(7),
            Response::Synced(SyncBundle {
                base_epoch: 1,
                epoch: 3,
                records: vec![
                    pitex_live::CommittedBatch { epoch: 2, ops: vec![UpdateOp::AddUser] },
                    pitex_live::CommittedBatch { epoch: 3, ops: vec![] },
                ],
                pending: vec![UpdateOp::DetachTag { tag: 1 }],
            }),
            Response::Synced(SyncBundle {
                base_epoch: 5,
                epoch: 5,
                records: vec![],
                pending: vec![],
            }),
            Response::Discarded { epoch: 4, dropped: 3 },
            Response::Traced(TraceReply {
                trace_id: 0xabc123,
                user: 0,
                k: 2,
                tags: vec![2, 3],
                spread: 2.0575,
                cached: false,
                us: 1234,
                spans: vec![
                    Span { name: "plan".into(), start_us: 0, dur_us: 10 },
                    Span { name: "queue".into(), start_us: 10, dur_us: 40 },
                    Span { name: "shard.execute".into(), start_us: 50, dur_us: 1100 },
                ],
            }),
            Response::Traced(TraceReply {
                trace_id: u64::MAX,
                user: 5,
                k: 1,
                tags: vec![],
                spread: 1.0,
                cached: true,
                us: 9,
                spans: vec![],
            }),
            Response::Flight(FlightReply {
                recorded: 1000,
                slow_count: 2,
                entries: vec![
                    FlightWireEntry {
                        trace_id: 7,
                        verb: "QUERY".into(),
                        user: 3,
                        k: 2,
                        backend: "lazy".into(),
                        outcome: "ok".into(),
                        us: 812,
                        ts_us: 1_722_000_000_000_000,
                    },
                    FlightWireEntry {
                        trace_id: 8,
                        verb: "TRACE".into(),
                        user: 4,
                        k: 1,
                        backend: "auto".into(),
                        outcome: "busy".into(),
                        us: 3,
                        ts_us: 1_722_000_000_000_812,
                    },
                ],
                slow: vec![FlightWireEntry {
                    trace_id: 9,
                    verb: "QUERY".into(),
                    user: 1,
                    k: 5,
                    backend: "exact".into(),
                    outcome: "ok".into(),
                    us: 95_000,
                    ts_us: 0,
                }],
            }),
            Response::Flight(FlightReply::default()),
            Response::Series(SeriesReply {
                field: "requests".into(),
                res: SeriesRes::Fast,
                tick_ms: 1000,
                window_ticks: 1,
                kind: SeriesKind::Counter,
                points: vec!["0".into(), "12".into(), "9".into()],
            }),
            Response::Series(SeriesReply {
                field: "lat_hist".into(),
                res: SeriesRes::Mid,
                tick_ms: 1000,
                window_ticks: 10,
                // One empty histogram window (`-`) followed by a populated
                // one — the case `n=` exists to disambiguate.
                kind: SeriesKind::Hist,
                points: vec!["-".into(), "3:4,10:2".into()],
            }),
            Response::Series(SeriesReply {
                field: "lat_p99_us".into(),
                res: SeriesRes::Slow,
                tick_ms: 250,
                window_ticks: 60,
                kind: SeriesKind::Gauge,
                points: vec![],
            }),
            Response::Health(HealthVerdict {
                status: SloStatus::Ok,
                worst: "-".into(),
                slos: vec![SloVerdict {
                    name: "availability".into(),
                    status: SloStatus::Ok,
                    window: "-".into(),
                    burn: 0.25,
                    field: "errors".into(),
                    origin: "self".into(),
                }],
            }),
            Response::Health(HealthVerdict {
                status: SloStatus::Page,
                worst: "shard1".into(),
                slos: vec![
                    SloVerdict {
                        name: "latency".into(),
                        status: SloStatus::Page,
                        window: "fast".into(),
                        burn: 42.5,
                        field: "lat_hist".into(),
                        origin: "shard1".into(),
                    },
                    SloVerdict {
                        name: "availability".into(),
                        status: SloStatus::Warn,
                        window: "slow".into(),
                        burn: 1.75,
                        field: "router_errors".into(),
                        origin: "router".into(),
                    },
                ],
            }),
            Response::Health(HealthVerdict {
                status: SloStatus::Ok,
                worst: "-".into(),
                slos: vec![],
            }),
            Response::Captured { enabled: true, recorded: 512, dropped: 0 },
            Response::Captured { enabled: false, recorded: 0, dropped: 3 },
        ];
        for response in cases {
            let line = response.to_line();
            assert_eq!(Response::parse(&line), Ok(response), "{line}");
        }
    }

    #[test]
    fn error_codes_cover_the_wire_names() {
        for code in [
            ErrorCode::BadRequest,
            ErrorCode::UnknownUser,
            ErrorCode::BadK,
            ErrorCode::Deadline,
            ErrorCode::Internal,
            ErrorCode::BadUpdate,
            ErrorCode::AdminDenied,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::parse("NOPE"), None);
    }

    #[test]
    fn stats_reply_typed_getters() {
        let line = "STATS qps=123.5 requests=64 cache_hit_rate=0.75";
        let Response::Stats(stats) = Response::parse(line).unwrap() else {
            panic!("not a stats reply")
        };
        assert_eq!(stats.get_u64("requests"), Some(64));
        assert_eq!(stats.get_f64("qps"), Some(123.5));
        assert_eq!(stats.get_f64("cache_hit_rate"), Some(0.75));
        assert_eq!(stats.get("missing"), None);
    }

    #[test]
    fn err_with_empty_message_parses() {
        assert_eq!(
            Response::parse("ERR INTERNAL"),
            Ok(Response::Err { code: ErrorCode::Internal, message: String::new() })
        );
    }
}
