//! The epoch-versioned snapshot store behind zero-downtime swaps.
//!
//! Queries must never block on an update: the store keeps the current
//! [`EngineHandle`] (Arc-shared immutable snapshots) behind an
//! `RwLock<Arc<_>>` plus a monotonically increasing epoch counter that is
//! readable with a single atomic load. Workers keep a private engine built
//! from a pinned snapshot and poll [`SnapshotStore::epoch`] **between**
//! requests — the hot path (query execution) touches no lock at all, and a
//! swap publishes a complete, consistent snapshot: a reader sees either
//! the old world or the new one, never a mixture.
//!
//! Ordering contract: the epoch counter is advanced *inside* the write
//! lock, after the new snapshot is stored. Hence if `epoch()` returns `E`,
//! a subsequent [`current`](SnapshotStore::current) returns a snapshot
//! with `epoch >= E` — an epoch check followed by a re-read can never
//! resurrect a stale world.

use pitex_core::EngineHandle;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One published world: an engine handle pinned to its epoch.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// The epoch this snapshot was published at (starts at 1).
    pub epoch: u64,
    /// The Arc-shared model/index snapshots and backend configuration.
    pub handle: EngineHandle,
}

/// See the module docs.
#[derive(Debug)]
pub struct SnapshotStore {
    epoch: AtomicU64,
    current: RwLock<Arc<Snapshot>>,
}

impl SnapshotStore {
    /// A store publishing `handle` at epoch 1.
    pub fn new(handle: EngineHandle) -> Self {
        Self::new_at(handle, 1)
    }

    /// A store publishing `handle` at an arbitrary starting epoch — how a
    /// replica that replayed a durable log resumes at its pre-crash epoch
    /// instead of restarting the count (which would make it look stale to
    /// an epoch-comparing prober forever).
    pub fn new_at(handle: EngineHandle, epoch: u64) -> Self {
        Self {
            epoch: AtomicU64::new(epoch),
            current: RwLock::new(Arc::new(Snapshot { epoch, handle })),
        }
    }

    /// The current epoch — one atomic load, safe to poll per request.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The current snapshot (cheap: clones an `Arc`).
    pub fn current(&self) -> Arc<Snapshot> {
        self.current.read().unwrap().clone()
    }

    /// Publishes `handle` as the next epoch and returns it. Readers that
    /// pinned the old snapshot keep it alive (and valid) via its `Arc`s —
    /// the swap never invalidates in-flight work, it only redirects the
    /// next [`current`](Self::current).
    pub fn swap(&self, handle: EngineHandle) -> u64 {
        let mut slot = self.current.write().unwrap();
        let epoch = slot.epoch + 1;
        *slot = Arc::new(Snapshot { epoch, handle });
        // Published inside the write lock, after the snapshot: an observer
        // of the new epoch can only read the new (or a newer) snapshot.
        self.epoch.store(epoch, Ordering::Release);
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitex_core::{EngineBackend, PitexConfig};
    use pitex_model::TicModel;

    fn handle() -> EngineHandle {
        EngineHandle::new(
            Arc::new(TicModel::paper_example()),
            EngineBackend::Exact,
            PitexConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn epochs_advance_monotonically() {
        let store = SnapshotStore::new(handle());
        assert_eq!(store.epoch(), 1);
        assert_eq!(store.current().epoch, 1);
        assert_eq!(store.swap(handle()), 2);
        assert_eq!(store.swap(handle()), 3);
        assert_eq!(store.epoch(), 3);
        assert_eq!(store.current().epoch, 3);
    }

    #[test]
    fn new_at_resumes_a_recovered_epoch() {
        let store = SnapshotStore::new_at(handle(), 7);
        assert_eq!(store.epoch(), 7);
        assert_eq!(store.current().epoch, 7);
        assert_eq!(store.swap(handle()), 8);
    }

    #[test]
    fn pinned_snapshots_survive_swaps() {
        let store = SnapshotStore::new(handle());
        let pinned = store.current();
        store.swap(handle());
        // The old world keeps answering.
        assert_eq!(pinned.epoch, 1);
        assert_eq!(pinned.handle.engine().query(0, 2).tags.tags(), &[2, 3]);
    }

    #[test]
    fn epoch_read_never_precedes_its_snapshot() {
        // Hammer swap from one thread while readers assert the ordering
        // contract: current().epoch >= epoch() observed beforehand.
        let store = Arc::new(SnapshotStore::new(handle()));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            {
                let store = store.clone();
                let stop = stop.clone();
                scope.spawn(move || {
                    for _ in 0..200 {
                        store.swap(handle());
                    }
                    stop.store(true, Ordering::SeqCst);
                });
            }
            for _ in 0..3 {
                let store = store.clone();
                let stop = stop.clone();
                scope.spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        let seen = store.epoch();
                        let snap = store.current();
                        assert!(
                            snap.epoch >= seen,
                            "snapshot {} older than epoch {seen}",
                            snap.epoch
                        );
                    }
                });
            }
        });
        assert_eq!(store.epoch(), 201);
    }
}
