//! A sharded, thread-safe LRU cache for query results.
//!
//! The serving layer answers many identical `(user, k, backend)` queries —
//! influence spreads only change when the model or index snapshot changes —
//! so a small result cache in front of the samplers converts repeated work
//! into a hash lookup. The cache is sharded to keep lock contention off the
//! hot path: each key hashes to one shard guarded by its own mutex, so
//! concurrent lookups for different keys rarely serialize.
//!
//! Recency inside a shard is tracked with a monotone clock stamp per entry
//! plus a `BTreeMap<stamp, key>` recency index: `get`/`insert` are
//! `O(log n)` inside the shard and eviction pops the smallest stamp. Hit and
//! miss counts are global atomics, cheap enough to keep always-on for the
//! `/stats` endpoint.

use crate::hash::{FxBuildHasher, FxHashMap};
use std::collections::BTreeMap;
use std::hash::{BuildHasher, Hash};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Monotone counters the cache maintains; snapshot via [`ShardedLru::counters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted (including overwrites of an existing key).
    pub insertions: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
}

impl CacheCounters {
    /// Hits over total lookups (`NaN` before the first lookup).
    pub fn hit_rate(&self) -> f64 {
        self.hits as f64 / (self.hits + self.misses) as f64
    }

    /// Merges another snapshot into this one — every field is a monotone
    /// count, so aggregation is field-wise addition. A scatter-gather
    /// router uses this to report cluster-wide cache behavior from
    /// per-shard `STATS` counters.
    pub fn merge(&mut self, other: &CacheCounters) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
    }
}

struct Shard<K, V> {
    /// key → (value, recency stamp). The stamp doubles as the handle into
    /// `order`, so both maps stay in lockstep.
    map: FxHashMap<K, (V, u64)>,
    /// recency stamp → key; the first entry is the least recently used.
    order: BTreeMap<u64, K>,
    clock: u64,
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V> Shard<K, V> {
    fn new(capacity: usize) -> Self {
        Self { map: FxHashMap::default(), order: BTreeMap::new(), clock: 0, capacity }
    }

    fn touch(&mut self, key: &K) -> Option<&V> {
        self.clock += 1;
        let clock = self.clock;
        let (value, stamp) = self.map.get_mut(key)?;
        self.order.remove(stamp);
        *stamp = clock;
        self.order.insert(clock, key.clone());
        Some(value)
    }

    /// Inserts, returning whether an older entry was evicted.
    fn insert(&mut self, key: K, value: V) -> bool {
        if self.capacity == 0 {
            return false;
        }
        self.clock += 1;
        if let Some((old, stamp)) = self.map.get_mut(&key) {
            *old = value;
            self.order.remove(stamp);
            *stamp = self.clock;
            self.order.insert(self.clock, key);
            return false;
        }
        let mut evicted = false;
        if self.map.len() >= self.capacity {
            if let Some((_, lru)) = self.order.pop_first() {
                self.map.remove(&lru);
                evicted = true;
            }
        }
        self.map.insert(key.clone(), (value, self.clock));
        self.order.insert(self.clock, key);
        evicted
    }

    fn remove(&mut self, key: &K) -> bool {
        match self.map.remove(key) {
            Some((_, stamp)) => {
                self.order.remove(&stamp);
                true
            }
            None => false,
        }
    }
}

/// A thread-safe LRU cache split into independently locked shards.
///
/// `get` clones the stored value out under the shard lock, so values should
/// be cheap to clone (the serving layer stores a tag set and a float).
/// Capacity is exact: the per-shard capacities sum to the requested total,
/// and a full shard evicts its least-recently-used entry before admitting a
/// new key. A capacity of 0 disables storage entirely (every lookup misses).
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    hasher: FxBuildHasher,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedLru<K, V> {
    /// A cache of at most `capacity` entries across `shards` locks.
    ///
    /// The shard count is clamped to `capacity` so every shard can hold at
    /// least one entry (and to ≥ 1 so the structure is always usable).
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, capacity.max(1));
        let base = capacity / shards;
        let extra = capacity % shards;
        let shards: Vec<_> =
            (0..shards).map(|i| Mutex::new(Shard::new(base + usize::from(i < extra)))).collect();
        Self {
            shards,
            hasher: FxBuildHasher::default(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// A cache of at most `capacity` entries with a default shard count
    /// sized for a handful of server worker threads.
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, 8)
    }

    fn shard(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let h = self.hasher.hash_one(key) as usize;
        &self.shards[h % self.shards.len()]
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &K) -> Option<V> {
        let found = self.shard(key).lock().unwrap().touch(key).cloned();
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or overwrites) `key`, evicting the shard's least recently
    /// used entry if it is full.
    pub fn insert(&self, key: K, value: V) {
        let evicted = self.shard(&key).lock().unwrap().insert(key, value);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drops `key` if present; subsequent `get`s miss until it is
    /// re-inserted. Returns whether an entry was removed.
    pub fn invalidate(&self, key: &K) -> bool {
        self.shard(key).lock().unwrap().remove(key)
    }

    /// Drops every entry whose key/value matches `pred`, returning how
    /// many were removed. Each shard is swept under its own lock, so the
    /// sweep never blocks lookups on other shards; entries inserted into
    /// an already-swept shard *during* the sweep are not revisited — the
    /// caller sequences sweeps against writers (the serving layer swaps
    /// the snapshot first, then sweeps, and gates inserts on the epoch).
    ///
    /// The serving layer uses this for user-keyed invalidation after a
    /// live update: only the entries of affected users are dropped, so the
    /// cache stays warm for everyone else.
    pub fn invalidate_if(&self, mut pred: impl FnMut(&K, &V) -> bool) -> usize {
        let mut removed = 0;
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap();
            let doomed: Vec<K> =
                shard.map.iter().filter(|(k, (v, _))| pred(k, v)).map(|(k, _)| k.clone()).collect();
            for key in doomed {
                shard.remove(&key);
                removed += 1;
            }
        }
        removed
    }

    /// Drops every entry (counters are preserved).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap();
            shard.map.clear();
            shard.order.clear();
        }
    }

    /// Live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().map.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity across shards, as requested at construction.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().capacity).sum()
    }

    /// Snapshot of the hit/miss/insert/evict counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_after_insert_hits() {
        let cache: ShardedLru<u32, f64> = ShardedLru::new(16);
        assert_eq!(cache.get(&7), None);
        cache.insert(7, 2.5);
        assert_eq!(cache.get(&7), Some(2.5));
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.insertions), (1, 1, 1));
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let cache: ShardedLru<u32, u32> = ShardedLru::with_shards(2, 1);
        cache.insert(1, 10);
        cache.insert(2, 20);
        cache.get(&1); // 2 is now the LRU entry
        cache.insert(3, 30);
        assert_eq!(cache.get(&2), None, "LRU entry evicted");
        assert_eq!(cache.get(&1), Some(10));
        assert_eq!(cache.get(&3), Some(30));
        assert_eq!(cache.counters().evictions, 1);
    }

    #[test]
    fn overwrite_does_not_evict() {
        let cache: ShardedLru<u32, u32> = ShardedLru::with_shards(2, 1);
        cache.insert(1, 10);
        cache.insert(2, 20);
        cache.insert(1, 11);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&1), Some(11));
        assert_eq!(cache.get(&2), Some(20));
        assert_eq!(cache.counters().evictions, 0);
    }

    #[test]
    fn invalidate_removes_until_reinserted() {
        let cache: ShardedLru<(u32, usize), f64> = ShardedLru::new(8);
        cache.insert((3, 2), 1.25);
        assert!(cache.invalidate(&(3, 2)));
        assert!(!cache.invalidate(&(3, 2)), "second invalidate is a no-op");
        assert_eq!(cache.get(&(3, 2)), None);
        cache.insert((3, 2), 2.0);
        assert_eq!(cache.get(&(3, 2)), Some(2.0));
    }

    #[test]
    fn invalidate_if_sweeps_exactly_the_matching_keys() {
        let cache: ShardedLru<(u32, usize), f64> = ShardedLru::new(32);
        for user in 0..8u32 {
            for k in 1..=2usize {
                cache.insert((user, k), user as f64 + k as f64);
            }
        }
        let removed = cache.invalidate_if(|&(user, _), _| user % 2 == 0);
        assert_eq!(removed, 8);
        for user in 0..8u32 {
            for k in 1..=2usize {
                let expect = if user % 2 == 0 { None } else { Some(user as f64 + k as f64) };
                assert_eq!(cache.get(&(user, k)), expect, "user {user} k {k}");
            }
        }
    }

    #[test]
    fn invalidate_if_can_match_on_values() {
        let cache: ShardedLru<u32, u32> = ShardedLru::new(16);
        for i in 0..10 {
            cache.insert(i, i * 10);
        }
        assert_eq!(cache.invalidate_if(|_, &v| v >= 50), 5);
        assert_eq!(cache.len(), 5);
    }

    #[test]
    fn counters_merge_is_fieldwise_addition() {
        let a = CacheCounters { hits: 3, misses: 1, insertions: 4, evictions: 2 };
        let b = CacheCounters { hits: 7, misses: 9, insertions: 6, evictions: 0 };
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged, CacheCounters { hits: 10, misses: 10, insertions: 10, evictions: 2 });
        assert!((merged.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let cache: ShardedLru<u32, u32> = ShardedLru::new(0);
        cache.insert(1, 10);
        assert_eq!(cache.get(&1), None);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.capacity(), 0);
    }

    #[test]
    fn shard_capacities_sum_to_total() {
        for (capacity, shards) in [(16, 8), (17, 8), (3, 8), (1, 4), (100, 7)] {
            let cache: ShardedLru<u32, u32> = ShardedLru::with_shards(capacity, shards);
            assert_eq!(cache.capacity(), capacity, "capacity {capacity} shards {shards}");
        }
    }

    #[test]
    fn concurrent_mixed_workload_respects_capacity() {
        let cache: ShardedLru<u64, u64> = ShardedLru::with_shards(64, 8);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..2_000u64 {
                        let key = (t * 7 + i) % 190;
                        cache.insert(key, key * 2);
                        if let Some(v) = cache.get(&key) {
                            assert_eq!(v, key * 2);
                        }
                        if i % 13 == 0 {
                            cache.invalidate(&key);
                        }
                    }
                });
            }
        });
        assert!(cache.len() <= 64, "len {} over capacity", cache.len());
        let c = cache.counters();
        assert!(c.hits > 0 && c.evictions > 0);
    }

    #[test]
    fn clear_keeps_counters() {
        let cache: ShardedLru<u32, u32> = ShardedLru::new(8);
        cache.insert(1, 1);
        cache.get(&1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.counters().hits, 1);
        assert_eq!(cache.get(&1), None);
    }
}
