//! The line-delimited text protocol `pitex serve` speaks.
//!
//! Every request and response is a single `\n`-terminated ASCII line of
//! whitespace-separated tokens — trivially scriptable (`nc`, `telnet`) and
//! dependency-free to parse. Requests:
//!
//! ```text
//! PING                              liveness probe
//! QUERY <user> <k> [timeout_us]     a PITEX query (Def. 1)
//! STATS                             server counters and latency percentiles
//! UPDATE <op…>                      stage one model mutation (admin)
//! RELOAD                            fold staged ops, repair the index,
//!                                   swap the snapshot (admin)
//! PREPARE                           phase 1 of a coordinated reload: fold +
//!                                   repair into a staged snapshot, do NOT
//!                                   swap (admin)
//! COMMIT                            phase 2: swap the PREPAREd snapshot in
//!                                   (admin)
//! EPOCH                             current snapshot epoch (admin)
//! QUIT                              close this connection
//! SHUTDOWN                          gracefully stop the whole server
//! ```
//!
//! `PREPARE`/`COMMIT` split `RELOAD` so a cluster router can run an epoch
//! barrier: the slow half (fold + index repair) happens on every shard
//! first, then the cheap swaps are committed back-to-back — the window in
//! which two shards serve different epochs shrinks from "one repair each"
//! to "one atomic swap each".
//!
//! The `UPDATE` operand is the [`pitex_live::UpdateOp`] text grammar, e.g.
//! `UPDATE SET_EDGE 0 1 0:0.9` or `UPDATE DETACH_TAG 2`.
//!
//! Responses (one line per request, in order):
//!
//! ```text
//! PONG
//! OK user=<u> k=<k> tags=<t1,t2,..> spread=<f> cached=<0|1> us=<micros>
//! STATS <key>=<value> ...
//! UPDATED epoch=<e> pending=<n>     op staged; visible after RELOAD
//! RELOADED epoch=<e> folded=<n> resampled=<r> reused=<u> full=<0|1>
//! PREPARED epoch=<e> folded=<n> resampled=<r> reused=<u> full=<0|1>
//! EPOCH <e>
//! BYE
//! BUSY                              load shed: the request queue was full
//! ERR <CODE> <message>              CODE ∈ BAD_REQUEST | UNKNOWN_USER |
//!                                          BAD_K | DEADLINE | INTERNAL |
//!                                          BAD_UPDATE | ADMIN_DENIED
//! ```
//!
//! `tags` are 0-based tag ids (the paper's `w3` is `2`); `-` marks the empty
//! set. Both sides of the protocol live here so the server, the client and
//! the tests share one parser.

use pitex_live::UpdateOp;
use pitex_model::TagId;
use std::collections::BTreeMap;

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    Ping,
    Query(QueryRequest),
    Stats,
    /// Stage one mutation (admin-gated).
    Update(UpdateOp),
    /// Fold staged mutations into a fresh snapshot (admin-gated).
    Reload,
    /// Phase 1 of a two-phase reload: fold + repair without swapping
    /// (admin-gated).
    Prepare,
    /// Phase 2 of a two-phase reload: swap the prepared snapshot in
    /// (admin-gated).
    Commit,
    /// Read the current snapshot epoch (admin-gated).
    Epoch,
    Quit,
    Shutdown,
}

/// The `QUERY` verb's operands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryRequest {
    /// Query user (0-based vertex id).
    pub user: u32,
    /// Requested tag-set size.
    pub k: usize,
    /// Optional per-request deadline; the server default applies when absent.
    pub timeout_us: Option<u64>,
}

impl Request {
    /// Serializes to a protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Request::Ping => "PING".to_string(),
            Request::Stats => "STATS".to_string(),
            Request::Update(op) => format!("UPDATE {}", op.to_text()),
            Request::Reload => "RELOAD".to_string(),
            Request::Prepare => "PREPARE".to_string(),
            Request::Commit => "COMMIT".to_string(),
            Request::Epoch => "EPOCH".to_string(),
            Request::Quit => "QUIT".to_string(),
            Request::Shutdown => "SHUTDOWN".to_string(),
            Request::Query(q) => match q.timeout_us {
                Some(t) => format!("QUERY {} {} {}", q.user, q.k, t),
                None => format!("QUERY {} {}", q.user, q.k),
            },
        }
    }

    /// Parses a request line. The error string is a human-readable reason
    /// suitable for an `ERR BAD_REQUEST` reply.
    pub fn parse(line: &str) -> Result<Request, String> {
        // UPDATE hands its whole operand to the op grammar (which performs
        // its own trailing-token check).
        if let Some(rest) = line.trim_start().strip_prefix("UPDATE ") {
            return Ok(Request::Update(UpdateOp::parse_text(rest)?));
        }
        let mut tokens = line.split_ascii_whitespace();
        let verb = tokens.next().ok_or("empty request")?;
        let request = match verb {
            "PING" => Request::Ping,
            "STATS" => Request::Stats,
            "UPDATE" => return Err("UPDATE needs an operation".to_string()),
            "RELOAD" => Request::Reload,
            "PREPARE" => Request::Prepare,
            "COMMIT" => Request::Commit,
            "EPOCH" => Request::Epoch,
            "QUIT" => Request::Quit,
            "SHUTDOWN" => Request::Shutdown,
            "QUERY" => {
                let user = tokens.next().ok_or("QUERY needs <user> <k>")?;
                let user: u32 =
                    user.parse().map_err(|_| format!("bad user {user:?} (want u32)"))?;
                let k = tokens.next().ok_or("QUERY needs <user> <k>")?;
                let k: usize = k.parse().map_err(|_| format!("bad k {k:?} (want usize)"))?;
                let timeout_us = match tokens.next() {
                    Some(t) => Some(
                        t.parse::<u64>().map_err(|_| format!("bad timeout_us {t:?} (want u64)"))?,
                    ),
                    None => None,
                };
                Request::Query(QueryRequest { user, k, timeout_us })
            }
            other => return Err(format!("unknown verb {other:?}")),
        };
        if tokens.next().is_some() {
            return Err(format!("trailing tokens after {verb}"));
        }
        Ok(request)
    }
}

/// Machine-readable error classes, mirrored by the CLI exit paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line did not parse.
    BadRequest,
    /// The query user is outside the model's vertex range.
    UnknownUser,
    /// `k = 0` (a PITEX query selects at least one tag).
    BadK,
    /// The per-request deadline elapsed before the query ran.
    Deadline,
    /// The server failed internally (e.g. a worker panicked).
    Internal,
    /// An `UPDATE` op parsed but was semantically invalid (unknown vertex,
    /// duplicate edge, bad probability, …).
    BadUpdate,
    /// An admin verb (`UPDATE`/`RELOAD`/`EPOCH`) on a server started with
    /// admin verbs disabled.
    AdminDenied,
}

impl ErrorCode {
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "BAD_REQUEST",
            ErrorCode::UnknownUser => "UNKNOWN_USER",
            ErrorCode::BadK => "BAD_K",
            ErrorCode::Deadline => "DEADLINE",
            ErrorCode::Internal => "INTERNAL",
            ErrorCode::BadUpdate => "BAD_UPDATE",
            ErrorCode::AdminDenied => "ADMIN_DENIED",
        }
    }

    pub fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "BAD_REQUEST" => ErrorCode::BadRequest,
            "UNKNOWN_USER" => ErrorCode::UnknownUser,
            "BAD_K" => ErrorCode::BadK,
            "DEADLINE" => ErrorCode::Deadline,
            "INTERNAL" => ErrorCode::Internal,
            "BAD_UPDATE" => ErrorCode::BadUpdate,
            "ADMIN_DENIED" => ErrorCode::AdminDenied,
            _ => return None,
        })
    }
}

/// A successful query reply.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryReply {
    /// Echo of the query user.
    pub user: u32,
    /// The effective `k` (clamped to the tag vocabulary, as the engine does).
    pub k: usize,
    /// The selected tag set `W*` (0-based ids, ascending).
    pub tags: Vec<TagId>,
    /// Estimated spread `Ê[I(u|W*)]`.
    pub spread: f64,
    /// Whether the answer came from the result cache.
    pub cached: bool,
    /// Server-side handling time in microseconds.
    pub us: u64,
}

/// The `STATS` reply: ordered `key=value` pairs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsReply {
    fields: BTreeMap<String, String>,
}

impl StatsReply {
    pub fn new(fields: impl IntoIterator<Item = (String, String)>) -> Self {
        Self { fields: fields.into_iter().collect() }
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.fields.get(key).map(|s| s.as_str())
    }

    pub fn get_u64(&self, key: &str) -> Option<u64> {
        self.get(key)?.parse().ok()
    }

    pub fn get_f64(&self, key: &str) -> Option<f64> {
        self.get(key)?.parse().ok()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.fields.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

/// The `RELOADED` reply: what the snapshot swap did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReloadReply {
    /// Epoch now being served.
    pub epoch: u64,
    /// Staged ops folded into the new snapshot (0 = nothing to do, no swap).
    pub folded: u64,
    /// RR-Graphs resampled by incremental repair (θ on a full rebuild).
    pub resampled: u64,
    /// RR-Graphs reused from the previous index.
    pub reused: u64,
    /// Whether repair fell back to a full rebuild.
    pub full: bool,
}

/// A parsed response line.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    Pong,
    Ok(QueryReply),
    Stats(StatsReply),
    /// `UPDATED epoch=<serving epoch> pending=<staged ops>`.
    Updated {
        epoch: u64,
        pending: u64,
    },
    /// `RELOADED …` — see [`ReloadReply`].
    Reloaded(ReloadReply),
    /// `PREPARED …` — a reload staged but not yet swapped; `epoch` is the
    /// epoch still being served, the remaining fields describe the staged
    /// snapshot exactly as `RELOADED` would.
    Prepared(ReloadReply),
    /// `EPOCH <e>`.
    Epoch(u64),
    Bye,
    Busy,
    Err {
        code: ErrorCode,
        message: String,
    },
}

fn format_tags(tags: &[TagId]) -> String {
    if tags.is_empty() {
        return "-".to_string();
    }
    tags.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(",")
}

fn parse_tags(s: &str) -> Result<Vec<TagId>, String> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split(',').map(|t| t.parse().map_err(|_| format!("bad tag id {t:?}"))).collect()
}

fn format_reload_fields(r: &ReloadReply) -> String {
    format!(
        "epoch={} folded={} resampled={} reused={} full={}",
        r.epoch,
        r.folded,
        r.resampled,
        r.reused,
        u8::from(r.full)
    )
}

fn parse_reload_fields(verb: &str, rest: &str) -> Result<ReloadReply, String> {
    let mut tokens = rest.split_ascii_whitespace();
    let mut next = |key: &str| -> Result<u64, String> {
        let token = tokens.next().ok_or_else(|| format!("missing {key}="))?;
        kv(token, key)?.parse().map_err(|_| format!("bad {key} in {verb}"))
    };
    Ok(ReloadReply {
        epoch: next("epoch")?,
        folded: next("folded")?,
        resampled: next("resampled")?,
        reused: next("reused")?,
        full: next("full")? != 0,
    })
}

fn kv<'a>(token: &'a str, key: &str) -> Result<&'a str, String> {
    token
        .strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or_else(|| format!("expected {key}=<value>, found {token:?}"))
}

impl Response {
    /// Serializes to a protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Response::Pong => "PONG".to_string(),
            Response::Bye => "BYE".to_string(),
            Response::Busy => "BUSY".to_string(),
            Response::Err { code, message } => {
                format!("ERR {} {}", code.as_str(), message)
            }
            Response::Ok(r) => format!(
                "OK user={} k={} tags={} spread={} cached={} us={}",
                r.user,
                r.k,
                format_tags(&r.tags),
                r.spread,
                u8::from(r.cached),
                r.us
            ),
            Response::Updated { epoch, pending } => {
                format!("UPDATED epoch={epoch} pending={pending}")
            }
            Response::Reloaded(r) => format!("RELOADED {}", format_reload_fields(r)),
            Response::Prepared(r) => format!("PREPARED {}", format_reload_fields(r)),
            Response::Epoch(e) => format!("EPOCH {e}"),
            Response::Stats(s) => {
                let mut line = String::from("STATS");
                for (k, v) in s.iter() {
                    line.push(' ');
                    line.push_str(k);
                    line.push('=');
                    line.push_str(v);
                }
                line
            }
        }
    }

    /// Parses a response line (the client half of the protocol).
    pub fn parse(line: &str) -> Result<Response, String> {
        let line = line.trim_end();
        let (verb, rest) = match line.split_once(' ') {
            Some((v, r)) => (v, r),
            None => (line, ""),
        };
        match verb {
            "PONG" => Ok(Response::Pong),
            "BYE" => Ok(Response::Bye),
            "BUSY" => Ok(Response::Busy),
            "ERR" => {
                let (code, message) = rest.split_once(' ').unwrap_or((rest, ""));
                let code =
                    ErrorCode::parse(code).ok_or_else(|| format!("unknown error code {code:?}"))?;
                Ok(Response::Err { code, message: message.to_string() })
            }
            "OK" => {
                let mut tokens = rest.split_ascii_whitespace();
                let mut next = |key: &str| -> Result<String, String> {
                    let token = tokens.next().ok_or_else(|| format!("missing {key}="))?;
                    Ok(kv(token, key)?.to_string())
                };
                let user = next("user")?.parse().map_err(|_| "bad user in OK reply".to_string())?;
                let k = next("k")?.parse().map_err(|_| "bad k in OK reply".to_string())?;
                let tags = parse_tags(&next("tags")?)?;
                let spread =
                    next("spread")?.parse().map_err(|_| "bad spread in OK reply".to_string())?;
                let cached = match next("cached")?.as_str() {
                    "0" => false,
                    "1" => true,
                    other => return Err(format!("bad cached flag {other:?}")),
                };
                let us = next("us")?.parse().map_err(|_| "bad us in OK reply".to_string())?;
                Ok(Response::Ok(QueryReply { user, k, tags, spread, cached, us }))
            }
            "UPDATED" => {
                let mut tokens = rest.split_ascii_whitespace();
                let mut next = |key: &str| -> Result<u64, String> {
                    let token = tokens.next().ok_or_else(|| format!("missing {key}="))?;
                    kv(token, key)?.parse().map_err(|_| format!("bad {key} in UPDATED"))
                };
                Ok(Response::Updated { epoch: next("epoch")?, pending: next("pending")? })
            }
            "RELOADED" => Ok(Response::Reloaded(parse_reload_fields(verb, rest)?)),
            "PREPARED" => Ok(Response::Prepared(parse_reload_fields(verb, rest)?)),
            "EPOCH" => {
                let epoch = rest.trim().parse().map_err(|_| format!("bad epoch {rest:?}"))?;
                Ok(Response::Epoch(epoch))
            }
            "STATS" => {
                let mut fields = BTreeMap::new();
                for token in rest.split_ascii_whitespace() {
                    let (k, v) = token
                        .split_once('=')
                        .ok_or_else(|| format!("bad stats token {token:?}"))?;
                    fields.insert(k.to_string(), v.to_string());
                }
                Ok(Response::Stats(StatsReply { fields }))
            }
            other => Err(format!("unknown response verb {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let cases = [
            Request::Ping,
            Request::Stats,
            Request::Reload,
            Request::Prepare,
            Request::Commit,
            Request::Epoch,
            Request::Quit,
            Request::Shutdown,
            Request::Query(QueryRequest { user: 0, k: 2, timeout_us: None }),
            Request::Query(QueryRequest { user: 41, k: 3, timeout_us: Some(2_000_000) }),
            Request::Update(UpdateOp::AddEdge { src: 1, dst: 4, topics: vec![(0, 0.25)] }),
            Request::Update(UpdateOp::DetachTag { tag: 2 }),
            Request::Update(UpdateOp::AddUser),
        ];
        for request in cases {
            assert_eq!(Request::parse(&request.to_line()), Ok(request));
        }
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        for (line, needle) in [
            ("", "empty"),
            ("FROB 1 2", "unknown verb"),
            ("QUERY", "needs"),
            ("QUERY 1", "needs"),
            ("QUERY x 2", "bad user"),
            ("QUERY 1 -3", "bad k"),
            ("QUERY 1 2 fast", "bad timeout_us"),
            ("QUERY 1 2 3 4", "trailing"),
            ("PING PONG", "trailing"),
            ("UPDATE", "needs an operation"),
            ("UPDATE FROB 1", "unknown update op"),
            ("UPDATE ADD_EDGE 1", "needs"),
            ("RELOAD NOW", "trailing"),
            ("PREPARE 2", "trailing"),
            ("COMMIT fast", "trailing"),
            ("EPOCH 3", "trailing"),
        ] {
            let err = Request::parse(line).expect_err(line);
            assert!(err.contains(needle), "{line:?} -> {err:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let cases = [
            Response::Pong,
            Response::Bye,
            Response::Busy,
            Response::Err { code: ErrorCode::Deadline, message: "deadline exceeded".into() },
            Response::Ok(QueryReply {
                user: 0,
                k: 2,
                tags: vec![2, 3],
                spread: 2.0575,
                cached: true,
                us: 1234,
            }),
            Response::Ok(QueryReply {
                user: 5,
                k: 1,
                tags: vec![],
                spread: 1.0,
                cached: false,
                us: 7,
            }),
            Response::Stats(StatsReply::new([
                ("requests".to_string(), "64".to_string()),
                ("cache_hits".to_string(), "12".to_string()),
            ])),
            Response::Updated { epoch: 3, pending: 2 },
            Response::Reloaded(ReloadReply {
                epoch: 4,
                folded: 2,
                resampled: 120,
                reused: 440,
                full: false,
            }),
            Response::Reloaded(ReloadReply {
                epoch: 9,
                folded: 1,
                resampled: 560,
                reused: 0,
                full: true,
            }),
            Response::Prepared(ReloadReply {
                epoch: 3,
                folded: 2,
                resampled: 40,
                reused: 360,
                full: false,
            }),
            Response::Epoch(7),
        ];
        for response in cases {
            let line = response.to_line();
            assert_eq!(Response::parse(&line), Ok(response), "{line}");
        }
    }

    #[test]
    fn error_codes_cover_the_wire_names() {
        for code in [
            ErrorCode::BadRequest,
            ErrorCode::UnknownUser,
            ErrorCode::BadK,
            ErrorCode::Deadline,
            ErrorCode::Internal,
            ErrorCode::BadUpdate,
            ErrorCode::AdminDenied,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::parse("NOPE"), None);
    }

    #[test]
    fn stats_reply_typed_getters() {
        let line = "STATS qps=123.5 requests=64 cache_hit_rate=0.75";
        let Response::Stats(stats) = Response::parse(line).unwrap() else {
            panic!("not a stats reply")
        };
        assert_eq!(stats.get_u64("requests"), Some(64));
        assert_eq!(stats.get_f64("qps"), Some(123.5));
        assert_eq!(stats.get_f64("cache_hit_rate"), Some(0.75));
        assert_eq!(stats.get("missing"), None);
    }

    #[test]
    fn err_with_empty_message_parses() {
        assert_eq!(
            Response::parse("ERR INTERNAL"),
            Ok(Response::Err { code: ErrorCode::Internal, message: String::new() })
        );
    }
}
