//! Property tests for `LatencyHistogram` (the wire format the cluster's
//! scatter-gather merge depends on): to_wire/from_wire identity, merge
//! commutativity and associativity, and the empty / saturated edge cases.

use pitex_support::LatencyHistogram;
use proptest::prelude::*;

fn hist_from(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

/// Samples spread across the full u64 range, not just small values, so
/// high buckets (including 64, the `u64::MAX` bucket) get exercised: a
/// generated `(bits, raw)` pair becomes a value with `bits` significant
/// bits.
fn sample_vec() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        (0u32..66, 0u64..u64::MAX).prop_map(|(bits, raw)| match bits {
            0 => 0,
            64.. => raw | (1 << 63),
            b => (raw % (1 << b)) | (1 << (b - 1)),
        }),
        0..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Wire encoding is lossless: decode(encode(h)) reproduces every
    /// bucket, the count, and therefore every quantile.
    #[test]
    fn wire_round_trip_is_identity(samples in sample_vec()) {
        let h = hist_from(&samples);
        let decoded = LatencyHistogram::from_wire(&h.to_wire()).unwrap();
        prop_assert_eq!(decoded.buckets(), h.buckets());
        prop_assert_eq!(decoded.count(), h.count());
        prop_assert_eq!(decoded.to_wire(), h.to_wire());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(decoded.quantile(q), h.quantile(q));
        }
    }

    /// Merge is commutative: a∪b = b∪a bucket for bucket.
    #[test]
    fn merge_is_commutative(a in sample_vec(), b in sample_vec()) {
        let (ha, hb) = (hist_from(&a), hist_from(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab.buckets(), ba.buckets());
        prop_assert_eq!(ab.count(), ba.count());
    }

    /// Merge is associative: (a∪b)∪c = a∪(b∪c) — so a router may fold
    /// shard replies in any arrival order.
    #[test]
    fn merge_is_associative(a in sample_vec(), b in sample_vec(), c in sample_vec()) {
        let (ha, hb, hc) = (hist_from(&a), hist_from(&b), hist_from(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left.buckets(), right.buckets());
        prop_assert_eq!(left.count(), right.count());
    }

    /// Merging equals recording the concatenated samples directly, and the
    /// wire survives the split: decode(a)∪decode(b) = whole.
    #[test]
    fn merge_equals_sequential_through_the_wire(a in sample_vec(), b in sample_vec()) {
        let whole = hist_from(&a.iter().chain(b.iter()).copied().collect::<Vec<_>>());
        let mut gathered = LatencyHistogram::from_wire(&hist_from(&a).to_wire()).unwrap();
        gathered.merge(&LatencyHistogram::from_wire(&hist_from(&b).to_wire()).unwrap());
        prop_assert_eq!(gathered.buckets(), whole.buckets());
        prop_assert_eq!(gathered.count(), whole.count());
    }

    /// Quantiles are sound: for every recorded sample set, quantile(q)
    /// lands in the true q-th sample's log₂ bucket — within 2x of the
    /// truth in *both* directions (interpolation inside the bucket can
    /// sit below the sample, unlike the old upper-bound reporting, but
    /// never leaves the bucket) — and quantile is monotone in q.
    #[test]
    fn quantiles_bound_true_samples(
        first in 0u64..1_000_000,
        rest in sample_vec(),
        qs in proptest::collection::vec(0.0f64..=1.0, 1..8),
    ) {
        // Always at least one sample, so every quantile has a true answer.
        let samples: Vec<u64> = std::iter::once(first).chain(rest).collect();
        let h = hist_from(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let mut last = 0u64;
        let mut qs = qs;
        qs.sort_by(f64::total_cmp);
        for q in qs {
            let est = h.quantile(q);
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            if truth == 0 {
                // The rank sample is 0, which lives alone in bucket 0.
                prop_assert_eq!(est, 0, "quantile({}) = {} for a true 0", q, est);
            } else if est < u64::MAX {
                prop_assert!(
                    est.saturating_mul(2) > truth,
                    "quantile({q}) = {est} <= half the true {truth}"
                );
                prop_assert!(est < truth.saturating_mul(2), "quantile({q}) = {est} >= 2x true {truth}");
            }
            prop_assert!(est >= last, "quantile not monotone in q");
            last = est;
        }
    }
}

#[test]
fn empty_histogram_edge_cases() {
    let h = LatencyHistogram::new();
    assert_eq!(h.to_wire(), "-");
    let decoded = LatencyHistogram::from_wire("-").unwrap();
    assert_eq!(decoded.count(), 0);
    assert_eq!(decoded.quantile(0.5), 0);
    // Merging an empty histogram is the identity.
    let mut a = LatencyHistogram::new();
    a.record(42);
    let before = a.to_wire();
    a.merge(&h);
    assert_eq!(a.to_wire(), before);
}

#[test]
fn saturated_bucket_survives_the_wire_and_merge() {
    // A bucket holding u64::MAX-ish counts must round-trip without
    // overflow panics in the encoding itself.
    let wire = format!("64:{}", u64::MAX / 2);
    let h = LatencyHistogram::from_wire(&wire).unwrap();
    assert_eq!(h.count(), u64::MAX / 2);
    assert_eq!(h.quantile(1.0), u64::MAX);
    assert_eq!(LatencyHistogram::from_wire(&h.to_wire()).unwrap().to_wire(), wire);
    let mut doubled = h.clone();
    doubled.merge(&h);
    assert_eq!(doubled.count(), u64::MAX / 2 * 2);
}
