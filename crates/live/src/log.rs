//! The typed update log: every mutation the live layer accepts, with a
//! text form (the wire protocol's `UPDATE <op…>` operand and the ops-file
//! format) and a binary codec over [`pitex_support::codec`].
//!
//! Text grammar (one op per line; `#` starts a comment in ops files):
//!
//! ```text
//! ADD_EDGE    <src> <dst> <z:p,z:p,…|->   insert edge with its p(e|z) row
//! REMOVE_EDGE <src> <dst>                 delete an edge
//! SET_EDGE    <src> <dst> <z:p,z:p,…|->   replace an edge's p(e|z) row
//! ATTACH_TAG  <tag> <z:p,z:p,…|->         set (or, at id = |Ω|, append) a tag row
//! DETACH_TAG  <tag>                       clear a tag's topic row (tag stays)
//! ADD_USER                                append one isolated vertex
//! ```
//!
//! `-` denotes an empty topic row. Tag ids are never renumbered: a detached
//! tag keeps its id with an empty `p(w|z)` row, which makes every tag set
//! containing it infeasible (spread 1), exactly like a tag that was never
//! used. This keeps cached tag ids, protocol replies and index artifacts
//! stable across updates.

use pitex_graph::NodeId;
use pitex_model::{TagId, TopicId};
use pitex_support::codec::{DecodeError, Decoder, Encoder};

/// A sparse topic row `(z, p)` as the model crates consume it.
pub type TopicRow = Vec<(TopicId, f32)>;

/// One mutation of the live model. Ops are validated and staged by
/// [`crate::ModelOverlay`] and folded into a fresh snapshot on compaction.
#[derive(Clone, Debug, PartialEq)]
pub enum UpdateOp {
    /// Insert the edge `(src, dst)` carrying the given `p(e|z)` row.
    AddEdge { src: NodeId, dst: NodeId, topics: TopicRow },
    /// Delete the edge `(src, dst)`.
    RemoveEdge { src: NodeId, dst: NodeId },
    /// Replace the `p(e|z)` row of the existing edge `(src, dst)`.
    SetEdgeTopics { src: NodeId, dst: NodeId, topics: TopicRow },
    /// Set the `p(w|z)` row of tag `tag`; `tag == |Ω|` grows the vocabulary.
    AttachTag { tag: TagId, topics: TopicRow },
    /// Clear tag `tag`'s topic row (the tag id survives, infeasible).
    DetachTag { tag: TagId },
    /// Append one isolated vertex (id = current `|V|`).
    AddUser,
}

const MAGIC: [u8; 4] = *b"PLOG";
const VERSION: u32 = 1;

fn format_row(topics: &[(TopicId, f32)]) -> String {
    if topics.is_empty() {
        return "-".to_string();
    }
    topics.iter().map(|&(z, p)| format!("{z}:{p}")).collect::<Vec<_>>().join(",")
}

fn parse_row(s: &str) -> Result<TopicRow, String> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|pair| {
            let (z, p) = pair
                .split_once(':')
                .ok_or_else(|| format!("bad topic entry {pair:?} (want z:p)"))?;
            let z: TopicId = z.parse().map_err(|_| format!("bad topic id {z:?}"))?;
            let p: f32 = p.parse().map_err(|_| format!("bad probability {p:?}"))?;
            Ok((z, p))
        })
        .collect()
}

impl UpdateOp {
    /// Serializes to the text form (no trailing newline).
    pub fn to_text(&self) -> String {
        match self {
            UpdateOp::AddEdge { src, dst, topics } => {
                format!("ADD_EDGE {src} {dst} {}", format_row(topics))
            }
            UpdateOp::RemoveEdge { src, dst } => format!("REMOVE_EDGE {src} {dst}"),
            UpdateOp::SetEdgeTopics { src, dst, topics } => {
                format!("SET_EDGE {src} {dst} {}", format_row(topics))
            }
            UpdateOp::AttachTag { tag, topics } => {
                format!("ATTACH_TAG {tag} {}", format_row(topics))
            }
            UpdateOp::DetachTag { tag } => format!("DETACH_TAG {tag}"),
            UpdateOp::AddUser => "ADD_USER".to_string(),
        }
    }

    /// Parses the text form. The error string is human-readable, suitable
    /// for an `ERR BAD_REQUEST` protocol reply.
    pub fn parse_text(line: &str) -> Result<UpdateOp, String> {
        let mut tokens = line.split_ascii_whitespace();
        let verb = tokens.next().ok_or("empty update op")?;
        let mut want = |what: &str| -> Result<&str, String> {
            tokens.next().ok_or_else(|| format!("{verb} needs {what}"))
        };
        let op = match verb {
            "ADD_EDGE" | "SET_EDGE" => {
                let src = want("<src> <dst> <topics>")?;
                let src: NodeId = src.parse().map_err(|_| format!("bad src {src:?}"))?;
                let dst = want("<src> <dst> <topics>")?;
                let dst: NodeId = dst.parse().map_err(|_| format!("bad dst {dst:?}"))?;
                let topics = parse_row(want("<src> <dst> <topics>")?)?;
                if verb == "ADD_EDGE" {
                    UpdateOp::AddEdge { src, dst, topics }
                } else {
                    UpdateOp::SetEdgeTopics { src, dst, topics }
                }
            }
            "REMOVE_EDGE" => {
                let src = want("<src> <dst>")?;
                let src: NodeId = src.parse().map_err(|_| format!("bad src {src:?}"))?;
                let dst = want("<src> <dst>")?;
                let dst: NodeId = dst.parse().map_err(|_| format!("bad dst {dst:?}"))?;
                UpdateOp::RemoveEdge { src, dst }
            }
            "ATTACH_TAG" => {
                let tag = want("<tag> <topics>")?;
                let tag: TagId = tag.parse().map_err(|_| format!("bad tag {tag:?}"))?;
                let topics = parse_row(want("<tag> <topics>")?)?;
                UpdateOp::AttachTag { tag, topics }
            }
            "DETACH_TAG" => {
                let tag = want("<tag>")?;
                let tag: TagId = tag.parse().map_err(|_| format!("bad tag {tag:?}"))?;
                UpdateOp::DetachTag { tag }
            }
            "ADD_USER" => UpdateOp::AddUser,
            other => return Err(format!("unknown update op {other:?}")),
        };
        if tokens.next().is_some() {
            return Err(format!("trailing tokens after {verb}"));
        }
        Ok(op)
    }

    fn encode(&self, enc: &mut Encoder<Vec<u8>>) {
        let row = |enc: &mut Encoder<Vec<u8>>, topics: &TopicRow| {
            enc.u32(topics.len() as u32);
            for &(z, p) in topics {
                enc.u32(z as u32);
                enc.f32(p);
            }
        };
        match self {
            UpdateOp::AddEdge { src, dst, topics } => {
                enc.u8(0);
                enc.u32(*src);
                enc.u32(*dst);
                row(enc, topics);
            }
            UpdateOp::RemoveEdge { src, dst } => {
                enc.u8(1);
                enc.u32(*src);
                enc.u32(*dst);
            }
            UpdateOp::SetEdgeTopics { src, dst, topics } => {
                enc.u8(2);
                enc.u32(*src);
                enc.u32(*dst);
                row(enc, topics);
            }
            UpdateOp::AttachTag { tag, topics } => {
                enc.u8(3);
                enc.u32(*tag);
                row(enc, topics);
            }
            UpdateOp::DetachTag { tag } => {
                enc.u8(4);
                enc.u32(*tag);
            }
            UpdateOp::AddUser => enc.u8(5),
        }
    }

    fn decode(dec: &mut Decoder<&[u8]>) -> Result<UpdateOp, DecodeError> {
        let row = |dec: &mut Decoder<&[u8]>| -> Result<TopicRow, DecodeError> {
            let len = dec.u32()? as usize;
            let mut topics = Vec::with_capacity(len.min(1 << 16));
            for _ in 0..len {
                let z = dec.u32()? as TopicId;
                let p = dec.f32()?;
                topics.push((z, p));
            }
            Ok(topics)
        };
        Ok(match dec.u8()? {
            0 => UpdateOp::AddEdge { src: dec.u32()?, dst: dec.u32()?, topics: row(dec)? },
            1 => UpdateOp::RemoveEdge { src: dec.u32()?, dst: dec.u32()? },
            2 => UpdateOp::SetEdgeTopics { src: dec.u32()?, dst: dec.u32()?, topics: row(dec)? },
            3 => UpdateOp::AttachTag { tag: dec.u32()?, topics: row(dec)? },
            4 => UpdateOp::DetachTag { tag: dec.u32()? },
            5 => UpdateOp::AddUser,
            other => {
                // Reuse the version error to keep DecodeError closed: an
                // unknown op kind means the artifact is newer than us.
                return Err(DecodeError::BadVersion { expected: 5, found: other as u32 });
            }
        })
    }
}

impl std::fmt::Display for UpdateOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_text())
    }
}

/// Serializes an ops log to the binary `PLOG` artifact.
pub fn ops_to_bytes(ops: &[UpdateOp]) -> Vec<u8> {
    let mut enc = Encoder::new(Vec::new());
    enc.header(MAGIC, VERSION);
    enc.u64(ops.len() as u64);
    for op in ops {
        op.encode(&mut enc);
    }
    enc.into_inner()
}

/// Deserializes a binary `PLOG` artifact.
pub fn ops_from_bytes(bytes: &[u8]) -> Result<Vec<UpdateOp>, DecodeError> {
    let mut dec = Decoder::new(bytes);
    dec.header(MAGIC, VERSION)?;
    let count = dec.u64()? as usize;
    let mut ops = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        ops.push(UpdateOp::decode(&mut dec)?);
    }
    Ok(ops)
}

/// Parses a text ops file: one op per line, blank lines and `#` comments
/// ignored. The error carries the 1-based line number.
pub fn ops_from_text(text: &str) -> Result<Vec<UpdateOp>, String> {
    let mut ops = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let op = UpdateOp::parse_text(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        ops.push(op);
    }
    Ok(ops)
}

/// Loads an ops file that is either the binary `PLOG` artifact or the text
/// format (auto-detected via the magic tag).
pub fn ops_from_file_bytes(bytes: &[u8]) -> Result<Vec<UpdateOp>, String> {
    if bytes.starts_with(&MAGIC) {
        return ops_from_bytes(bytes).map_err(|e| e.to_string());
    }
    let text = std::str::from_utf8(bytes)
        .map_err(|_| "ops file is neither PLOG nor UTF-8 text".to_string())?;
    ops_from_text(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<UpdateOp> {
        vec![
            UpdateOp::AddEdge { src: 1, dst: 4, topics: vec![(0, 0.4), (2, 0.1)] },
            UpdateOp::RemoveEdge { src: 0, dst: 1 },
            UpdateOp::SetEdgeTopics { src: 2, dst: 3, topics: vec![(1, 0.9)] },
            UpdateOp::AttachTag { tag: 4, topics: vec![(2, 0.6)] },
            UpdateOp::AttachTag { tag: 5, topics: vec![] },
            UpdateOp::DetachTag { tag: 0 },
            UpdateOp::AddUser,
        ]
    }

    #[test]
    fn text_round_trips() {
        for op in sample_ops() {
            let line = op.to_text();
            assert_eq!(UpdateOp::parse_text(&line), Ok(op.clone()), "{line}");
        }
    }

    #[test]
    fn binary_round_trips() {
        let ops = sample_ops();
        let back = ops_from_bytes(&ops_to_bytes(&ops)).unwrap();
        assert_eq!(back, ops);
    }

    #[test]
    fn malformed_text_is_rejected_with_reasons() {
        for (line, needle) in [
            ("", "empty"),
            ("FROB 1 2", "unknown update op"),
            ("ADD_EDGE 1", "needs"),
            ("ADD_EDGE 1 2", "needs"),
            ("ADD_EDGE x 2 -", "bad src"),
            ("ADD_EDGE 1 2 0:0.5:9", "bad"),
            ("ADD_EDGE 1 2 0-0.5", "bad topic entry"),
            ("SET_EDGE 1 2 z:0.5", "bad topic id"),
            ("ATTACH_TAG 1 0:fast", "bad probability"),
            ("DETACH_TAG x", "bad tag"),
            ("ADD_USER 7", "trailing"),
            ("REMOVE_EDGE 1 2 3", "trailing"),
        ] {
            let err = UpdateOp::parse_text(line).expect_err(line);
            assert!(err.contains(needle), "{line:?} -> {err:?}");
        }
    }

    #[test]
    fn ops_file_text_with_comments() {
        let text = "# warm-up\n\nADD_USER\nREMOVE_EDGE 0 1   # trailing comment is NOT allowed\n";
        let err = ops_from_text(text).unwrap_err();
        assert!(err.starts_with("line 4:"), "{err}");
        let ok = ops_from_text("# only comments\nADD_USER\n\nDETACH_TAG 3\n").unwrap();
        assert_eq!(ok, vec![UpdateOp::AddUser, UpdateOp::DetachTag { tag: 3 }]);
    }

    #[test]
    fn file_bytes_autodetect() {
        let ops = sample_ops();
        assert_eq!(ops_from_file_bytes(&ops_to_bytes(&ops)).unwrap(), ops);
        let text = ops.iter().map(|o| o.to_text()).collect::<Vec<_>>().join("\n");
        assert_eq!(ops_from_file_bytes(text.as_bytes()).unwrap(), ops);
        assert!(ops_from_file_bytes(&[0xFF, 0xFE, 0x00]).is_err());
    }

    #[test]
    fn truncated_binary_fails_cleanly() {
        let bytes = ops_to_bytes(&sample_ops());
        assert!(ops_from_bytes(&bytes[..bytes.len() - 3]).is_err());
    }
}
