//! Online summary statistics and timers for the experiment harness.

use std::time::{Duration, Instant};

/// Welford-style online accumulator for mean / variance / extrema.
///
/// The experiment harness averages query times and influence spreads over
/// 100-query workloads (as §7.1 of the paper does); this accumulator does so
/// in one pass without storing the samples.
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    pub fn new() -> Self {
        Self { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Sample variance (n−1 denominator).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The latency histogram now lives in the observability crate (its bucket
/// layout is shared with the atomic hot-path recorder and the Prometheus
/// exposition); re-exported here so existing imports keep working.
pub use pitex_obs::hist::LatencyHistogram;

/// A simple wall-clock timer.
#[derive(Clone, Copy, Debug)]
pub struct Timer {
    start: Instant,
}

impl Timer {
    pub fn start() -> Self {
        Self { start: Instant::now() }
    }

    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed wall-clock seconds as `f64`.
    pub fn seconds(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

/// Formats a duration the way the paper's plots label axes (`1.2ms`, `3.4s`).
pub fn human_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 1.0 {
        format!("{secs:.3}s")
    } else if secs >= 1e-3 {
        format!("{:.3}ms", secs * 1e3)
    } else {
        format!("{:.1}us", secs * 1e6)
    }
}

/// Formats a byte count with binary units, as in Table 3 of the paper.
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes}B")
    } else {
        format!("{value:.2}{}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_match_closed_form() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // population variance is 4.0 => sample variance 32/7
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &data[..37] {
            left.push(x);
        }
        for &x in &data[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_nan_not_panic() {
        let s = OnlineStats::new();
        assert!(s.mean().is_nan());
        assert!(s.min().is_nan());
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn histogram_quantiles_bound_the_samples() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 1, 1, 3, 7, 7, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        // The quantile answer is the bucket's upper bound, so it must be
        // >= the true quantile and < 2x above it (for powers of two, exact).
        assert_eq!(h.quantile(0.0), 0);
        assert!(h.quantile(0.5) >= 3 && h.quantile(0.5) <= 7);
        assert!(h.quantile(1.0) >= 1000 && h.quantile(1.0) < 2000);
    }

    #[test]
    fn histogram_handles_extremes() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        h.record(u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn histogram_merge_equals_sequential() {
        let mut whole = LatencyHistogram::new();
        let mut left = LatencyHistogram::new();
        let mut right = LatencyHistogram::new();
        for v in 0..1000u64 {
            whole.record(v * 17 % 4096);
            if v % 2 == 0 {
                left.record(v * 17 % 4096);
            } else {
                right.record(v * 17 % 4096);
            }
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(left.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn histogram_wire_round_trips_and_merges() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 1, 3, 7, 7, 100, 1000, u64::MAX] {
            h.record(v);
        }
        let decoded = LatencyHistogram::from_wire(&h.to_wire()).unwrap();
        assert_eq!(decoded.count(), h.count());
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(decoded.quantile(q), h.quantile(q));
        }
        // Merging decoded shards equals one histogram over all samples.
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for v in 0..500u64 {
            if v % 3 == 0 {
                a.record(v * 13 % 2048);
            } else {
                b.record(v * 13 % 2048);
            }
        }
        let mut whole = a.clone();
        whole.merge(&b);
        let mut gathered = LatencyHistogram::from_wire(&a.to_wire()).unwrap();
        gathered.merge(&LatencyHistogram::from_wire(&b.to_wire()).unwrap());
        assert_eq!(gathered.count(), whole.count());
        for q in [0.1, 0.5, 0.99] {
            assert_eq!(gathered.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn histogram_wire_rejects_garbage() {
        assert_eq!(LatencyHistogram::from_wire("-").unwrap().count(), 0);
        assert_eq!(LatencyHistogram::new().to_wire(), "-");
        for bad in ["", "3", "3:", ":4", "x:1", "1:y", "99:1", "3:1,,4:1"] {
            assert!(LatencyHistogram::from_wire(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn human_formats() {
        assert_eq!(human_duration(Duration::from_secs(2)), "2.000s");
        assert_eq!(human_duration(Duration::from_millis(12)), "12.000ms");
        assert_eq!(human_duration(Duration::from_micros(3)), "3.0us");
        assert_eq!(human_bytes(512), "512B");
        assert_eq!(human_bytes(2048), "2.00KiB");
        assert_eq!(human_bytes(5 * 1024 * 1024), "5.00MiB");
    }
}
