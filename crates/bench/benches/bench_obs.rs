//! Observability-layer overhead: what the serving hot path pays per touch.
//!
//! The whole point of the obs crate is that it is cheap enough to leave on
//! in production — every `QUERY` touches two counters, one atomic
//! histogram and the flight-recorder ring, and a `TRACE`d request adds
//! span bookkeeping and an EWMA feedback write on top. Each of those
//! touches is benchmarked in isolation here, plus `obs_request_touch` —
//! the exact per-request bundle the server runs — so the bench-JSON
//! regression gate catches any of them getting slower. Target: under
//! 100ns per touched counter on the bundle.

use criterion::{criterion_group, criterion_main, Criterion};
use pitex_bench::banner;
use pitex_support::obs::{
    mint_trace_id, Ewma, FlightEntry, FlightRecorder, LatencyHistogram, ObsOptions, Registry,
    SpanRecorder, TimeSeriesStore, TsOptions,
};
use std::time::Instant;

fn entry(trace_id: u64, us: u64) -> FlightEntry {
    FlightEntry {
        trace_id,
        ts_us: 0,
        verb: "QUERY",
        user: 7,
        k: 2,
        backend: "auto",
        outcome: "ok",
        us,
    }
}

fn bench_obs(c: &mut Criterion) {
    banner(
        "bench_obs: per-touch cost of the always-on observability layer",
        "registry counters + atomic histogram + flight ring + spans + EWMA feedback",
    );
    let registry = Registry::new();
    let requests = registry.counter("requests");
    let ok = registry.counter("ok");
    let hist = registry.histogram("lat_hist");
    let flight = FlightRecorder::new(ObsOptions::default());
    let slow = FlightRecorder::new(ObsOptions { flight_capacity: 256, slow_us: 1 });
    let ewma = Ewma::new();
    ewma.observe(120.0, 0.2);

    c.bench_function("obs_counter_inc", |b| b.iter(|| requests.inc()));
    c.bench_function("obs_hist_record", |b| {
        let mut us = 0u64;
        b.iter(|| {
            us = (us + 37) & 0xffff;
            hist.record(us);
        })
    });
    c.bench_function("obs_flight_record", |b| {
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            flight.record(entry(n, 80));
        })
    });
    c.bench_function("obs_flight_record_slow", |b| {
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            slow.record(entry(n, 80));
        })
    });
    c.bench_function("obs_ewma_observe", |b| b.iter(|| ewma.observe(95.0, 0.2)));
    c.bench_function("obs_mint_trace_id", |b| b.iter(mint_trace_id));
    c.bench_function("obs_trace_span_set", |b| {
        b.iter(|| {
            let mut rec = SpanRecorder::new();
            let origin = rec.origin();
            rec.record_since("plan", origin);
            rec.record_since("cache", origin);
            rec.record_at("queue", 5, 10);
            rec.record_at("execute", 15, 60);
            rec.finish().len()
        })
    });
    c.bench_function("obs_registry_export", |b| b.iter(|| registry.export().len()));

    // One background-sampler tick over a serving-shaped field set:
    // counters (parsed + delta'd), a gauge, a label (skipped), and the
    // latency histogram's wire encoding (parsed + bucket-delta'd into the
    // current window). This is the whole per-tick cost of keeping the
    // rolling rings warm — it runs once a second off the hot path, so the
    // budget is generous, but a regression here is a regression in the
    // always-on sampler thread.
    c.bench_function("obs_timeseries_tick", |b| {
        let mut lat = LatencyHistogram::new();
        for n in 0..512u64 {
            lat.record((n * 37) & 0xffff);
        }
        let fields: Vec<(String, String)> = vec![
            ("requests".into(), "480213".into()),
            ("ok".into(), "479004".into()),
            ("busy".into(), "97".into()),
            ("errors".into(), "12".into()),
            ("cache_hits".into(), "301552".into()),
            ("qps".into(), "812.5".into()),
            ("backend".into(), "auto".into()),
            ("lat_hist".into(), lat.to_wire()),
        ];
        let store = TimeSeriesStore::new(TsOptions::default());
        b.iter(|| store.tick(fields.iter().map(|(k, v)| (k.as_str(), v.as_str()))))
    });

    // The per-request bundle the server's hot path actually runs: two
    // counter incs, one histogram record, one flight-ring write.
    c.bench_function("obs_request_touch", |b| {
        let mut n = 0u64;
        b.iter(|| {
            requests.inc();
            ok.inc();
            hist.record(n & 0xffff);
            n += 1;
            flight.record(entry(n, n & 0xffff));
        })
    });

    // The headline number, measured directly so it can be printed and
    // eyeballed against the <100ns/counter budget.
    const N: u64 = 200_000;
    let t = Instant::now();
    for n in 0..N {
        requests.inc();
        ok.inc();
        hist.record(n & 0xffff);
        flight.record(entry(n, n & 0xffff));
    }
    let bundle_ns = t.elapsed().as_nanos() as f64 / N as f64;
    println!(
        "obs: request bundle {bundle_ns:.1}ns total -> {:.1}ns per touched counter (budget 100ns)",
        bundle_ns / 4.0
    );
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
