//! Linear Threshold (LT) propagation support.
//!
//! Footnote 1 of the paper: "The approaches proposed in this paper can also
//! support other propagation models, such as linear threshold model\[14\] and
//! the more general triggering model". This module delivers that claim for
//! LT. In the LT model every vertex `v` has a random threshold
//! `θ_v ~ U[0,1]` and activates once the summed weights of its active
//! in-neighbors reach `θ_v`. Kempe et al.'s live-edge characterization makes
//! it samplable with the same machinery as IC: each vertex independently
//! selects **at most one** in-edge — edge `e` with probability `b(e)`,
//! nothing with probability `1 − Σ b` — and the spread is reachability from
//! the seed in the selected-edge graph.
//!
//! Tag-aware weights reuse Eq. 1: `b(e|W) = p(e|W)`, scaled down uniformly
//! per vertex when a vertex's in-weights exceed 1 (the standard LT
//! normalization; scaling is per tag set since `p(e|W)` changes with `W`).

use crate::bounds::{SampleBudget, SamplingParams};
use crate::estimator::{reachable_positive, Estimate, SpreadEstimator};
use pitex_graph::traverse::BfsScratch;
use pitex_graph::{DiGraph, NodeId};
use pitex_model::EdgeProbs;
use pitex_support::EpochVisited;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sentinel for "vertex selected no in-edge".
const NO_EDGE: u32 = u32::MAX;

/// Live-edge Monte-Carlo estimator for the Linear Threshold model.
///
/// Implements [`SpreadEstimator`], so it plugs into the PITEX engine like
/// any IC sampler — including best-effort upper bounds (LT spread is also
/// monotone in the edge weights).
#[derive(Debug)]
pub struct LtSampler {
    visited: EpochVisited,
    frontier: Vec<NodeId>,
    /// Per-instance lazily drawn in-edge selection of each vertex.
    choice_stamp: Vec<u32>,
    choice: Vec<u32>,
    instance_epoch: u32,
    /// Per-call per-vertex LT normalizer: `max(1, Σ_in p(e|W))`.
    norm_stamp: Vec<u32>,
    norm: Vec<f32>,
    call_epoch: u32,
    reach_scratch: BfsScratch,
    reach_buf: Vec<NodeId>,
}

impl LtSampler {
    pub fn new(num_nodes: usize) -> Self {
        Self {
            visited: EpochVisited::new(num_nodes),
            frontier: Vec::new(),
            choice_stamp: vec![0; num_nodes],
            choice: vec![NO_EDGE; num_nodes],
            instance_epoch: 0,
            norm_stamp: vec![0; num_nodes],
            norm: vec![1.0; num_nodes],
            call_epoch: 0,
            reach_scratch: BfsScratch::new(num_nodes),
            reach_buf: Vec::new(),
        }
    }

    fn grow(&mut self, n: usize) {
        if n > self.choice.len() {
            self.choice_stamp.resize(n, 0);
            self.choice.resize(n, NO_EDGE);
            self.norm_stamp.resize(n, 0);
            self.norm.resize(n, 1.0);
            self.visited.grow(n);
        }
    }

    /// LT weight normalizer of `v` for the current tag set.
    fn normalizer(&mut self, graph: &DiGraph, v: NodeId, probs: &mut dyn EdgeProbs) -> f64 {
        let vi = v as usize;
        if self.norm_stamp[vi] != self.call_epoch {
            let total: f64 = graph.in_edges(v).map(|(e, _)| probs.prob(e)).sum();
            self.norm_stamp[vi] = self.call_epoch;
            self.norm[vi] = total.max(1.0) as f32;
        }
        self.norm[vi] as f64
    }

    /// The in-edge `v` selects in the current instance (drawn lazily once).
    fn selection(
        &mut self,
        graph: &DiGraph,
        v: NodeId,
        probs: &mut dyn EdgeProbs,
        rng: &mut StdRng,
        edges_visited: &mut u64,
    ) -> u32 {
        let vi = v as usize;
        if self.choice_stamp[vi] == self.instance_epoch {
            return self.choice[vi];
        }
        let norm = self.normalizer(graph, v, probs);
        let mut r: f64 = rng.gen();
        let mut chosen = NO_EDGE;
        for (e, _) in graph.in_edges(v) {
            *edges_visited += 1;
            let w = probs.prob(e) / norm;
            if r < w {
                chosen = e;
                break;
            }
            r -= w;
        }
        self.choice_stamp[vi] = self.instance_epoch;
        self.choice[vi] = chosen;
        chosen
    }
}

impl SpreadEstimator for LtSampler {
    fn estimate(
        &mut self,
        graph: &DiGraph,
        user: NodeId,
        probs: &mut dyn EdgeProbs,
        params: &SamplingParams,
    ) -> Estimate {
        reachable_positive(graph, user, probs, &mut self.reach_scratch, &mut self.reach_buf);
        let reachable = self.reach_buf.len();
        if reachable <= 1 {
            return Estimate::isolated();
        }
        self.grow(graph.num_nodes());
        if self.call_epoch == u32::MAX {
            self.norm_stamp.fill(0);
            self.call_epoch = 0;
        }
        self.call_epoch += 1;

        let mut rng =
            StdRng::seed_from_u64(params.seed ^ (user as u64).wrapping_mul(0x2B99_2DDF_A232_49D6));
        let threshold = params.stop_threshold(reachable);
        let max_iters = params.max_iterations(reachable);

        let mut accumulated = 0u64;
        let mut edges_visited = 0u64;
        let mut iterations = 0u64;
        while iterations < max_iters {
            if self.instance_epoch == u32::MAX {
                self.choice_stamp.fill(0);
                self.instance_epoch = 0;
            }
            self.instance_epoch += 1;
            self.visited.reset();
            self.frontier.clear();
            self.visited.insert(user);
            self.frontier.push(user);
            let mut activated = 1u64;
            while let Some(v) = self.frontier.pop() {
                // t activates iff its selected in-edge comes from an active
                // vertex; we check on first contact from each active v.
                let out_range = graph.out_edge_range(v);
                for e in out_range {
                    let t = graph.edge_target(e);
                    if self.visited.contains(t) {
                        continue;
                    }
                    let chosen = self.selection(graph, t, probs, &mut rng, &mut edges_visited);
                    if chosen == e {
                        self.visited.insert(t);
                        self.frontier.push(t);
                        activated += 1;
                    }
                }
            }
            accumulated += activated;
            iterations += 1;
            if matches!(params.budget, SampleBudget::Adaptive) && accumulated as f64 >= threshold {
                break;
            }
        }
        Estimate {
            spread: accumulated as f64 / iterations as f64,
            samples_used: iterations,
            edges_visited,
            reachable,
        }
    }

    fn name(&self) -> &'static str {
        "LT"
    }
}

/// Exact LT spread by enumerating every joint live-edge selection; only for
/// tiny graphs (the product of `(in_degree + 1)` over relevant vertices is
/// capped at `2^22`).
pub fn exact_spread_lt(graph: &DiGraph, user: NodeId, probs: &mut dyn EdgeProbs) -> f64 {
    let reach = pitex_graph::bfs_reachable(graph, user, |e| probs.positive(e));
    let relevant: Vec<NodeId> =
        reach.nodes.iter().copied().filter(|&v| graph.in_degree(v) > 0 && v != user).collect();
    let mut combos: u64 = 1;
    for &v in &relevant {
        combos = combos.saturating_mul(graph.in_degree(v) as u64 + 1);
        assert!(combos <= 1 << 22, "exact LT enumeration too large");
    }

    // Per relevant vertex: selection options (edge id, probability), plus
    // the "no edge" remainder.
    let options: Vec<Vec<(u32, f64)>> = relevant
        .iter()
        .map(|&v| {
            let norm: f64 = graph.in_edges(v).map(|(e, _)| probs.prob(e)).sum::<f64>().max(1.0);
            graph.in_edges(v).map(|(e, _)| (e, probs.prob(e) / norm)).collect()
        })
        .collect();

    let mut live = vec![false; graph.num_edges()];
    let mut total = 0.0;
    let mut stack: Vec<(usize, f64)> = vec![(0, 1.0)];
    // Iterative product-space walk: assign options vertex by vertex.
    fn recurse(
        idx: usize,
        weight: f64,
        options: &[Vec<(u32, f64)>],
        live: &mut Vec<bool>,
        graph: &DiGraph,
        user: NodeId,
        total: &mut f64,
    ) {
        if weight == 0.0 {
            return;
        }
        if idx == options.len() {
            let reach = pitex_graph::bfs_reachable(graph, user, |e| live[e as usize]);
            *total += weight * reach.len() as f64;
            return;
        }
        let mut none_prob = 1.0;
        for &(e, p) in &options[idx] {
            none_prob -= p;
            live[e as usize] = true;
            recurse(idx + 1, weight * p, options, live, graph, user, total);
            live[e as usize] = false;
        }
        recurse(idx + 1, weight * none_prob.max(0.0), options, live, graph, user, total);
    }
    stack.clear();
    recurse(0, 1.0, &options, &mut live, graph, user, &mut total);
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitex_graph::gen;
    use pitex_model::FixedEdgeProbs;

    fn params_fixed(n: u64) -> SamplingParams {
        SamplingParams::enumeration(0.5, 100.0, 10, 2).with_fixed_budget(n)
    }

    #[test]
    fn path_matches_ic_closed_form() {
        // In-degree-1 chains: LT selection probability equals the edge
        // weight, so LT coincides with IC: E[I] = 1 + p + p² + p³.
        let g = gen::path(4);
        let p = 0.5f64;
        let expected = 1.0 + p + p * p + p * p * p;
        let mut probs = FixedEdgeProbs::uniform(3, p);
        let exact = exact_spread_lt(&g, 0, &mut probs);
        assert!((exact - expected).abs() < 1e-12, "exact {exact}");
        let mut lt = LtSampler::new(g.num_nodes());
        let est = lt.estimate(&g, 0, &mut probs, &params_fixed(60_000));
        assert!((est.spread - expected).abs() < 0.03, "sampled {}", est.spread);
    }

    #[test]
    fn diamond_differs_from_ic() {
        // 0->1, 0->2, 1->3, 2->3 with p = 0.9 everywhere. Under IC the sink
        // activates with 1−(1−p²)² ≈ 0.9639; under LT its in-weights
        // (0.9 + 0.9) normalize to 0.5 each and the sink activates iff its
        // single selected source is active: probability 0.9.
        let mut b = pitex_graph::GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 3);
        b.add_edge(2, 3);
        let g = b.build();
        let mut probs = FixedEdgeProbs::uniform(4, 0.9);
        let lt_exact = exact_spread_lt(&g, 0, &mut probs);
        let ic_exact = crate::exact::exact_spread(&g, 0, &mut probs);
        assert!(
            (lt_exact - ic_exact).abs() > 0.05,
            "LT {lt_exact} vs IC {ic_exact} should differ on diamonds"
        );
        let expected = 1.0 + 0.9 + 0.9 + 0.9;
        assert!((lt_exact - expected).abs() < 1e-9, "lt {lt_exact}");
    }

    #[test]
    fn sampler_matches_exact_lt_on_random_dags() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(4);
        let g = gen::random_dag(10, 0.3, &mut rng);
        let mut probs = FixedEdgeProbs::uniform(g.num_edges(), 0.35);
        let exact = exact_spread_lt(&g, 0, &mut probs);
        let mut lt = LtSampler::new(g.num_nodes());
        let est = lt.estimate(&g, 0, &mut probs, &params_fixed(60_000));
        assert!(
            (est.spread - exact).abs() < 0.05 * exact.max(1.0),
            "sampled {} vs exact {exact}",
            est.spread
        );
    }

    #[test]
    fn weights_above_one_are_normalized() {
        // Ten in-edges with p = 0.9: Σ = 9, must normalize and not panic;
        // the target then activates with probability 1 whenever any source
        // is active... here all sources are only reachable via the target,
        // so spread from a leaf is 1.
        let g = gen::celebrity(10);
        let mut probs = FixedEdgeProbs::uniform(g.num_edges(), 0.9);
        let mut lt = LtSampler::new(g.num_nodes());
        let est = lt.estimate(&g, 11, &mut probs, &params_fixed(3_000));
        // Fan 11 -> celebrity 0 (in-degree 10, normalized weight 0.09 each)
        // -> all 10 followers w.p. 0.9 each.
        assert!(est.spread > 1.0 && est.spread < 11.0, "{}", est.spread);
    }

    #[test]
    fn isolated_user_short_circuits() {
        let g = gen::path(2);
        let mut probs = FixedEdgeProbs::uniform(1, 0.0);
        let mut lt = LtSampler::new(g.num_nodes());
        assert_eq!(lt.estimate(&g, 0, &mut probs, &params_fixed(10)).spread, 1.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = gen::star_low_impact(20);
        let mut probs = FixedEdgeProbs::uniform(20, 0.2);
        let p = params_fixed(500);
        let mut lt = LtSampler::new(g.num_nodes());
        let a = lt.estimate(&g, 0, &mut probs, &p);
        let b = lt.estimate(&g, 0, &mut probs, &p);
        assert_eq!(a, b);
    }
}
