//! Open-loop workload replay: schedules from a PWRK capture log or a
//! synthetic generator, issued at their *scheduled* arrival times.
//!
//! The closed-loop [`crate::client::LoadGen`] measures throughput capacity
//! but suffers coordinated omission: a stalled server stops the generator,
//! so the stall is counted once instead of once per request that would
//! have arrived. This module is the open-loop counterpart. A dispatcher
//! thread releases requests on schedule regardless of how the server is
//! doing, workers drain them over a fixed pool of connections, and every
//! latency sample is measured **from the scheduled arrival instant** — a
//! request picked up late because the server stalled carries its full
//! queueing delay into the tail.
//!
//! Schedules come from two places:
//!
//! * [`schedule_from_log`] — replay a [`CaptureLog`] recorded by
//!   the server's `CAPTURE` verb, at recorded pace or scaled by `speed`,
//!   optionally verifying answers bit-identically against the recorded
//!   outcomes (same snapshot + deterministic backends ⇒ same tags and the
//!   exact same spread bits).
//! * [`SyntheticSchedule`] — a fixed-rate Poisson arrival process with
//!   §7.1-style Zipf user skew, periodic bursts, and an optional update
//!   mix, for load tests without a recording.

use crate::protocol::{QueryRequest, Request, Response, TraceRequest};
use crate::ServeClient;
use pitex_core::EngineBackend;
use pitex_live::UpdateOp;
use pitex_model::TagId;
use pitex_support::obs::{AtomicHistogram, CaptureLog, LatencyHistogram};
use std::collections::BTreeMap;
use std::net::ToSocketAddrs;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The recorded answer a replayed request is verified against.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Expected {
    /// The recorded tag set `W*`.
    pub tags: Vec<TagId>,
    /// The recorded spread, kept as raw bits so verification is
    /// bit-identical rather than epsilon-close.
    pub spread_bits: u64,
}

/// One scheduled request: when to send it (offset from replay start) and
/// what answer the recording saw, if any.
#[derive(Clone, Debug)]
pub struct ReplayItem {
    /// Microseconds from replay start to this request's scheduled arrival.
    pub offset_us: u64,
    /// The request to issue.
    pub request: Request,
    /// The recorded answer (`--verify` compares against this).
    pub expect: Option<Expected>,
}

/// Builds a replay schedule from a capture log, preserving recorded
/// arrival spacing scaled by `speed` (`2.0` replays twice as fast,
/// `0.5` half speed).
///
/// Query-shaped verbs (`QUERY`, `EXPLAIN`, `TRACE`) are all replayed as
/// plain queries — the replay engine re-traces its own sample via
/// [`Replay::trace_every`] — preserving each record's user, `k`, and
/// *requested* backend (so an `auto` query exercises the planner again).
/// Records with other verbs or an unparseable backend are skipped.
/// `expect` is filled only for records whose outcome was `ok`.
pub fn schedule_from_log(log: &CaptureLog, speed: f64) -> Vec<ReplayItem> {
    let speed = if speed.is_finite() && speed > 0.0 { speed } else { 1.0 };
    let first_ts = log.records.first().map(|r| r.ts_us).unwrap_or(0);
    let mut items = Vec::with_capacity(log.records.len());
    for record in &log.records {
        if !matches!(record.verb.as_str(), "QUERY" | "EXPLAIN" | "TRACE") {
            continue;
        }
        let backend = match record.backend.as_str() {
            "-" => None,
            name => match EngineBackend::parse(name) {
                Some(b) => Some(b),
                None => continue,
            },
        };
        let offset_us =
            (record.ts_us.saturating_sub(first_ts) as f64 / speed).round().max(0.0) as u64;
        let request = Request::Query(QueryRequest {
            backend,
            ..QueryRequest::new(record.user, record.k as usize)
        });
        let expect = (record.outcome == "ok")
            .then(|| Expected { tags: record.tags.clone(), spread_bits: record.spread_bits });
        items.push(ReplayItem { offset_us, request, expect });
    }
    items
}

/// A synthetic open-loop schedule: Poisson arrivals at a fixed offered
/// rate, users drawn from a Zipf distribution (the skew the paper's §7.1
/// workloads assume), periodic same-instant bursts, and an optional
/// update mix. Deterministic for a given `seed`.
#[derive(Clone, Copy, Debug)]
pub struct SyntheticSchedule {
    /// Offered arrival rate in requests per second.
    pub rate: f64,
    /// Total requests to schedule.
    pub requests: usize,
    /// User ids are drawn from `0..users`.
    pub users: u32,
    /// Zipf exponent over users (`0.0` = uniform, `1.0` = classic skew).
    pub zipf: f64,
    /// Query `k` for every request.
    pub k: usize,
    /// Extra same-instant requests injected at every 64th arrival
    /// (`0` disables bursts).
    pub burst: usize,
    /// Every `update_every`-th request becomes an `UPDATE add_user`
    /// (`0` = queries only). Updates are admin verbs: replaying them
    /// needs a server spawned without `--no-admin`.
    pub update_every: usize,
    /// Optional per-request backend override (`auto` drives the planner).
    pub backend: Option<EngineBackend>,
    /// Optional per-request deadline forwarded to the server.
    pub timeout_us: Option<u64>,
    /// PRNG seed; equal seeds build byte-identical schedules.
    pub seed: u64,
}

impl Default for SyntheticSchedule {
    fn default() -> Self {
        Self {
            rate: 500.0,
            requests: 1000,
            users: 64,
            zipf: 1.0,
            k: 2,
            burst: 0,
            update_every: 0,
            backend: None,
            timeout_us: None,
            seed: 0x5eed,
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` with 53 random bits.
fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

impl SyntheticSchedule {
    /// Materializes the schedule. Inter-arrival gaps are exponential
    /// (`−ln(1−U)/rate`), making the arrival process Poisson — the
    /// open-loop shape under which queueing tails actually form.
    pub fn build(&self) -> Vec<ReplayItem> {
        let rate = if self.rate.is_finite() && self.rate > 0.0 { self.rate } else { 1.0 };
        let users = self.users.max(1);
        // Zipf over users: cumulative weights 1/(i+1)^s, binary-searched.
        let mut cumulative = Vec::with_capacity(users as usize);
        let mut total = 0.0f64;
        for i in 0..users {
            total += 1.0 / ((i + 1) as f64).powf(self.zipf.max(0.0));
            cumulative.push(total);
        }
        let mut state = self.seed ^ 0x9e3779b97f4a7c15;
        let draw_user = |state: &mut u64| -> u32 {
            let target = unit(state) * total;
            cumulative.partition_point(|&c| c < target).min(users as usize - 1) as u32
        };
        let mut items = Vec::with_capacity(self.requests + self.requests / 64 * self.burst);
        let mut offset_s = 0.0f64;
        for i in 0..self.requests {
            offset_s += -(1.0 - unit(&mut state)).ln() / rate;
            let offset_us = (offset_s * 1e6).round() as u64;
            let request = if self.update_every > 0 && (i + 1) % self.update_every == 0 {
                Request::Update(UpdateOp::AddUser)
            } else {
                self.query(draw_user(&mut state))
            };
            items.push(ReplayItem { offset_us, request, expect: None });
            if self.burst > 0 && (i + 1) % 64 == 0 {
                for _ in 0..self.burst {
                    let request = self.query(draw_user(&mut state));
                    items.push(ReplayItem { offset_us, request, expect: None });
                }
            }
        }
        items
    }

    fn query(&self, user: u32) -> Request {
        Request::Query(QueryRequest {
            timeout_us: self.timeout_us,
            backend: self.backend,
            ..QueryRequest::new(user, self.k)
        })
    }
}

/// The open-loop replay engine: a dispatcher releases [`ReplayItem`]s at
/// their scheduled offsets, `conns` workers drain them, and latency is
/// measured from the *scheduled* instant (see the module docs).
#[derive(Clone, Copy, Debug)]
pub struct Replay {
    /// Worker connections draining the schedule.
    pub conns: usize,
    /// Compare answers against each item's recorded [`Expected`];
    /// mismatches are counted (and exemplified) in the report.
    pub verify: bool,
    /// Re-issue every `trace_every`-th query as `TRACE` and fold its span
    /// timeline into the per-phase attribution (`0` disables tracing).
    pub trace_every: usize,
    /// Speak the `PFRM` binary frame protocol instead of text lines.
    pub binary: bool,
}

impl Default for Replay {
    fn default() -> Self {
        Self { conns: 4, verify: false, trace_every: 16, binary: false }
    }
}

/// Aggregate outcome of one [`Replay::run`].
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Requests in the schedule.
    pub scheduled: u64,
    /// Requests actually issued (all of them, barring connect failures).
    pub sent: u64,
    /// `OK` replies.
    pub ok: u64,
    /// `OK` replies served from the result cache.
    pub cached: u64,
    /// `BUSY` (load-shed) replies.
    pub busy: u64,
    /// `ERR` replies and transport failures.
    pub errors: u64,
    /// Replies compared against a recorded answer.
    pub verified: u64,
    /// Compared replies that differed from the recording.
    pub mismatches: u64,
    /// Up to [`MISMATCH_EXAMPLES`] human-readable mismatch descriptions.
    pub mismatch_examples: Vec<String>,
    /// Wall-clock duration from first scheduled instant to last reply.
    pub elapsed: Duration,
    /// Open-loop latency: scheduled arrival → response, microseconds.
    pub latency: LatencyHistogram,
    /// Per-phase service-time histograms from the traced sample, keyed by
    /// span name (`queue`, `plan`, `cache`, `execute`, plus `net` for the
    /// client-observed minus server-reported gap; a router adds `route`
    /// and `shard.*`).
    pub phases: BTreeMap<String, LatencyHistogram>,
}

/// Cap on retained mismatch examples (counters keep exact totals).
pub const MISMATCH_EXAMPLES: usize = 8;

impl ReplayReport {
    /// Achieved `OK` replies per second over the run.
    pub fn qps(&self) -> f64 {
        self.ok as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Renders the latency-attribution report: headline counters, the
    /// open-loop percentiles, the verify verdict, and one `phase` line per
    /// traced span name with its p50/p99 — each line `key=value` tokens,
    /// grep- and script-friendly.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "replay scheduled={} sent={} ok={} cached={} busy={} errors={} elapsed_ms={} qps={:.1}\n",
            self.scheduled,
            self.sent,
            self.ok,
            self.cached,
            self.busy,
            self.errors,
            self.elapsed.as_millis(),
            self.qps(),
        ));
        out.push_str(&format!(
            "latency open-loop from-scheduled-arrival p50_us={} p90_us={} p99_us={} max_us={}\n",
            self.latency.quantile(0.50),
            self.latency.quantile(0.90),
            self.latency.quantile(0.99),
            self.latency.quantile(1.0),
        ));
        if self.verified > 0 || self.mismatches > 0 {
            out.push_str(&format!(
                "verify compared={} mismatches={}\n",
                self.verified, self.mismatches
            ));
            for example in &self.mismatch_examples {
                out.push_str(&format!("verify-mismatch {example}\n"));
            }
        }
        for (name, hist) in &self.phases {
            out.push_str(&format!(
                "phase name={} n={} p50_us={} p99_us={}\n",
                name,
                hist.count(),
                hist.quantile(0.50),
                hist.quantile(0.99),
            ));
        }
        out
    }
}

/// What one worker accumulates; merged into the report after the scope.
#[derive(Default)]
struct WorkerStats {
    sent: u64,
    ok: u64,
    cached: u64,
    busy: u64,
    errors: u64,
    verified: u64,
    mismatches: u64,
    mismatch_examples: Vec<String>,
    phases: BTreeMap<String, LatencyHistogram>,
}

impl WorkerStats {
    fn phase(&mut self, name: &str, us: u64) {
        self.phases.entry(name.to_string()).or_default().record(us);
    }

    fn mismatch(&mut self, example: String) {
        self.mismatches += 1;
        if self.mismatch_examples.len() < MISMATCH_EXAMPLES {
            self.mismatch_examples.push(example);
        }
    }

    fn verify(&mut self, idx: usize, expect: &Expected, tags: &[TagId], spread_bits: u64) {
        self.verified += 1;
        if tags != expect.tags.as_slice() || spread_bits != expect.spread_bits {
            self.mismatch(format!(
                "item={idx} tags={tags:?} want={:?} spread_bits={spread_bits:#x} want={:#x}",
                expect.tags, expect.spread_bits
            ));
        }
    }
}

impl Replay {
    /// Runs the schedule to completion.
    ///
    /// The dispatcher thread sleeps to each item's offset and hands it to
    /// an unbounded queue, so a slow server can never push back on the
    /// arrival process (that push-back is exactly the closed-loop bug this
    /// engine exists to avoid). Workers time each reply against the item's
    /// scheduled instant into a shared [`AtomicHistogram`].
    pub fn run(
        &self,
        addr: impl ToSocketAddrs,
        items: &[ReplayItem],
    ) -> std::io::Result<ReplayReport> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
        let conns = self.conns.max(1);
        let latency = Arc::new(AtomicHistogram::new());
        let (tx, rx) = mpsc::channel::<(usize, Instant)>();
        let rx = Mutex::new(rx);
        // A small lead so item 0 is not already late before dispatch starts.
        let t0 = Instant::now() + Duration::from_millis(2);
        let started = Instant::now();
        let mut outcomes: Vec<std::io::Result<WorkerStats>> = Vec::with_capacity(conns);
        std::thread::scope(|scope| {
            let mut joins = Vec::with_capacity(conns);
            for _ in 0..conns {
                let rx = &rx;
                let latency = Arc::clone(&latency);
                joins.push(
                    scope.spawn(move || self.run_worker(addr, items, rx, t0, latency.as_ref())),
                );
            }
            let dispatcher = scope.spawn(move || {
                for (idx, item) in items.iter().enumerate() {
                    let when = t0 + Duration::from_micros(item.offset_us);
                    let now = Instant::now();
                    if when > now {
                        std::thread::sleep(when - now);
                    }
                    if tx.send((idx, when)).is_err() {
                        break; // every worker died; nothing left to feed
                    }
                }
                drop(tx); // closes the queue; workers drain and exit
            });
            dispatcher.join().expect("replay dispatcher panicked");
            for join in joins {
                outcomes.push(join.join().expect("replay worker panicked"));
            }
        });
        let mut report = ReplayReport {
            scheduled: items.len() as u64,
            sent: 0,
            ok: 0,
            cached: 0,
            busy: 0,
            errors: 0,
            verified: 0,
            mismatches: 0,
            mismatch_examples: Vec::new(),
            elapsed: started.elapsed(),
            latency: latency.snapshot(),
            phases: BTreeMap::new(),
        };
        for outcome in outcomes {
            let one = outcome?;
            report.sent += one.sent;
            report.ok += one.ok;
            report.cached += one.cached;
            report.busy += one.busy;
            report.errors += one.errors;
            report.verified += one.verified;
            report.mismatches += one.mismatches;
            for example in one.mismatch_examples {
                if report.mismatch_examples.len() < MISMATCH_EXAMPLES {
                    report.mismatch_examples.push(example);
                }
            }
            for (name, hist) in one.phases {
                report.phases.entry(name).or_default().merge(&hist);
            }
        }
        Ok(report)
    }

    fn run_worker(
        &self,
        addr: std::net::SocketAddr,
        items: &[ReplayItem],
        rx: &Mutex<mpsc::Receiver<(usize, Instant)>>,
        _t0: Instant,
        latency: &AtomicHistogram,
    ) -> std::io::Result<WorkerStats> {
        let mut client = ServeClient::connect_with(addr, None, self.binary)?;
        let mut stats = WorkerStats::default();
        loop {
            let job = rx.lock().expect("replay queue poisoned").recv();
            let Ok((idx, when)) = job else { break };
            let item = &items[idx];
            self.run_one(&mut client, idx, item, &mut stats);
            // Open loop: latency accrues from the *scheduled* arrival, so
            // time spent waiting behind a stalled server counts.
            latency.record(when.elapsed().as_micros() as u64);
        }
        Ok(stats)
    }

    fn run_one(
        &self,
        client: &mut ServeClient,
        idx: usize,
        item: &ReplayItem,
        stats: &mut WorkerStats,
    ) {
        stats.sent += 1;
        // Convert the traced sample: every `trace_every`-th query goes out
        // as TRACE so its span timeline feeds the phase attribution.
        let traced = self.trace_every > 0 && idx % self.trace_every == 0;
        let request = match (&item.request, traced) {
            (Request::Query(q), true) => Request::Trace(TraceRequest { query: *q, trace_id: None }),
            (request, _) => request.clone(),
        };
        let sent_at = Instant::now();
        let response = match client.request(&request) {
            Ok(response) => response,
            Err(_) => {
                stats.errors += 1;
                client.reconnect().ok(); // give the next item a fresh socket
                return;
            }
        };
        let service_us = sent_at.elapsed().as_micros() as u64;
        match response {
            Response::Ok(reply) => {
                stats.ok += 1;
                if reply.cached {
                    stats.cached += 1;
                }
                if self.verify {
                    if let Some(expect) = &item.expect {
                        stats.verify(idx, expect, &reply.tags, reply.spread.to_bits());
                    }
                }
            }
            Response::Traced(reply) => {
                stats.ok += 1;
                if reply.cached {
                    stats.cached += 1;
                }
                for span in &reply.spans {
                    stats.phase(&span.name, span.dur_us);
                }
                // The gap between what the client saw and what the server
                // accounted for is time on the wire (plus socket queueing).
                stats.phase("net", service_us.saturating_sub(reply.us));
                if self.verify {
                    if let Some(expect) = &item.expect {
                        stats.verify(idx, expect, &reply.tags, reply.spread.to_bits());
                    }
                }
            }
            Response::Updated { .. } => stats.ok += 1,
            Response::Busy => {
                stats.busy += 1;
                if self.verify && item.expect.is_some() {
                    stats.mismatch(format!("item={idx} got=BUSY want=recorded-ok"));
                }
            }
            _ => {
                stats.errors += 1;
                if self.verify && item.expect.is_some() {
                    stats.mismatch(format!("item={idx} got=error want=recorded-ok"));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitex_support::obs::CaptureRecord;

    fn record(ts_us: u64, verb: &str, user: u32, outcome: &str) -> CaptureRecord {
        CaptureRecord {
            ts_us,
            trace_id: 7,
            verb: verb.to_string(),
            user,
            k: 2,
            backend: "-".to_string(),
            resolved: "exact".to_string(),
            outcome: outcome.to_string(),
            us: 10,
            tags: vec![2, 3],
            spread_bits: 1.5f64.to_bits(),
        }
    }

    #[test]
    fn schedule_from_log_preserves_pace_and_requested_backend() {
        let mut query = record(1_000, "QUERY", 1, "ok");
        query.backend = "auto".to_string();
        let log = CaptureLog {
            anchor_us: 0,
            records: vec![
                record(1_000, "TRACE", 0, "ok"),
                query,
                record(5_000, "EXPLAIN", 2, "busy"),
                record(6_000, "UPDATE", 0, "ok"), // not query-shaped: skipped
            ],
            truncated_bytes: 0,
        };
        let items = schedule_from_log(&log, 2.0);
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].offset_us, 0);
        assert_eq!(items[1].offset_us, 0, "same recorded instant");
        assert_eq!(items[2].offset_us, 2_000, "4ms gap at 2x speed");
        let Request::Query(q) = &items[1].request else { panic!("replayed as QUERY") };
        assert_eq!(q.backend, Some(EngineBackend::Auto));
        assert_eq!(
            items[0].expect,
            Some(Expected { tags: vec![2, 3], spread_bits: 1.5f64.to_bits() })
        );
        assert_eq!(items[2].expect, None, "busy outcome carries no expectation");
    }

    #[test]
    fn synthetic_schedule_is_deterministic_and_skewed() {
        let spec = SyntheticSchedule {
            requests: 512,
            users: 16,
            burst: 2,
            update_every: 100,
            ..SyntheticSchedule::default()
        };
        let a = spec.build();
        let b = spec.build();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), 512 + 512 / 64 * 2);
        let mut updates = 0;
        let mut per_user = vec![0u64; 16];
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.offset_us, y.offset_us, "same seed, same schedule");
            match &x.request {
                Request::Query(q) => per_user[q.user as usize] += 1,
                Request::Update(UpdateOp::AddUser) => updates += 1,
                other => panic!("unexpected request {other:?}"),
            }
        }
        assert_eq!(updates, 5, "every 100th of 512 requests is an update");
        assert!(
            per_user[0] > per_user[8] && per_user[0] > per_user[15],
            "zipf head outweighs tail: {per_user:?}"
        );
        let last = a.last().unwrap().offset_us;
        // 512 arrivals at 500/s ≈ 1.02s; Poisson jitter stays well inside 3x.
        assert!(last > 200_000 && last < 3_000_000, "offsets span ~1s, got {last}us");
        // Offsets are nondecreasing (bursts share their trigger's instant).
        assert!(a.windows(2).all(|w| w[0].offset_us <= w[1].offset_us));
    }

    #[test]
    fn zero_rate_and_zero_users_do_not_panic() {
        let items =
            SyntheticSchedule { rate: 0.0, requests: 4, users: 0, ..SyntheticSchedule::default() }
                .build();
        assert_eq!(items.len(), 4);
    }

    #[test]
    fn report_renders_parseable_attribution_lines() {
        let mut phases = BTreeMap::new();
        let mut execute = LatencyHistogram::new();
        execute.record(120);
        phases.insert("execute".to_string(), execute);
        let mut latency = LatencyHistogram::new();
        latency.record(300);
        let report = ReplayReport {
            scheduled: 1,
            sent: 1,
            ok: 1,
            cached: 0,
            busy: 0,
            errors: 0,
            verified: 1,
            mismatches: 0,
            mismatch_examples: Vec::new(),
            elapsed: Duration::from_millis(5),
            latency,
            phases,
        };
        let text = report.render();
        assert!(text.contains("replay scheduled=1 sent=1 ok=1"));
        assert!(text.contains("latency open-loop from-scheduled-arrival p50_us="));
        assert!(text.contains("verify compared=1 mismatches=0"));
        assert!(text.contains("phase name=execute n=1 p50_us="));
    }
}
