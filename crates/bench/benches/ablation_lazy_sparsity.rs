//! Ablation — where lazy propagation wins (§5.1's sparsity argument).
//!
//! The lazy sampler's advantage over MC is proportional to how rarely edges
//! fire: on sparse influence graphs (low p(e|W)) MC wastes probes on edges
//! that never activate. This ablation sweeps a global probability scale on
//! the Fig. 3(a) star and reports edge probes per sample instance for MC,
//! RR and LAZY — making the crossover explicit.

use pitex_bench::{banner, BenchEnv};
use pitex_core::BackendKind;
use pitex_graph::gen;
use pitex_model::FixedEdgeProbs;
use pitex_sampling::SamplingParams;

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Ablation: edge probes per instance vs edge probability (Fig. 3a star)",
        "n = 500 leaves; 2000 instances per cell",
    );

    let n = 500usize;
    let g = gen::star_low_impact(n);
    let instances = 2_000u64;
    let params = SamplingParams::enumeration(0.7, 1000.0, 10, 2)
        .with_seed(env.seed)
        .with_fixed_budget(instances);

    println!();
    println!("{:<10} {:>12} {:>12} {:>12}", "p(e)", "MC", "RR", "LAZY");
    for &p in &[0.5, 0.1, 0.02, 0.004, 1.0 / n as f64] {
        print!("{:<10.4}", p);
        for kind in [BackendKind::Mc, BackendKind::Rr, BackendKind::Lazy] {
            let mut est = kind.make_for_nodes(g.num_nodes());
            let mut probs = FixedEdgeProbs::uniform(g.num_edges(), p);
            let e = est.estimate(&g, 0, &mut probs, &params);
            print!(" {:>12.2}", e.edges_visited as f64 / e.samples_used.max(1) as f64);
        }
        println!();
    }
    println!();
    println!("expected shape: MC stays at ~n probes/instance; LAZY falls towards n·p;");
    println!("RR is trivially cheap on this star (leaves have one in-edge) — its own pathology is the Fig. 3b celebrity graph, unit-tested in pitex-sampling::rr.");
}
