//! Workload capture: a lock-light sampled request recorder flushed to a
//! compact binary workload log (`PWRK` framing over [`crate::codec`]).
//!
//! Where the flight recorder keeps the last N requests *in memory* for
//! post-hoc inspection, capture writes a durable trace of (a sample of)
//! everything a server admitted — timestamp, verb, user, `k`, requested
//! and resolved backend, outcome, latency, trace id, and the answer
//! itself — so a production run can later be replayed open-loop at its
//! original pace (`pitex replay`) and the replayed answers verified
//! bit-identically against what was served.
//!
//! # On-disk format
//!
//! ```text
//! [magic "PWRK"][u32 version][u64 anchor_us]     file header
//! [u32 len][payload][u64 fnv64(payload)]         one frame per record
//! ```
//!
//! All integers little-endian, the same framing discipline as the update
//! WAL (`PWAL`): every record carries its own checksum, an incomplete
//! frame at the tail is a *torn tail* (the process died mid-flush —
//! tolerated, reported as truncated bytes), while a complete frame whose
//! checksum or payload does not decode is *corruption* and refuses
//! loudly. `anchor_us` is the process-wide wall-clock anchor (below) at
//! the moment the log was created.
//!
//! # One wall clock per process
//!
//! [`clock_anchor`] pairs a monotonic [`Instant`] origin with the wall
//! clock read *once* at first use; [`wall_now_us`] derives every later
//! timestamp from that single pair. Capture records, flight-recorder
//! entries and the trace-id seed all stamp through it, so a `PWRK` log, a
//! `FLIGHT` dump and a `TRACE` timeline from the same run can be
//! correlated offline without per-subsystem clock skew.

use crate::codec::{DecodeError, Decoder, Encoder};
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Magic tag identifying a PITEX workload log.
pub const CAPTURE_MAGIC: [u8; 4] = *b"PWRK";
/// Current workload-log format version.
pub const CAPTURE_VERSION: u32 = 1;

/// Frames buffered in memory are flushed to the file once their encoded
/// size crosses this threshold (or on `CAPTURE off`/`rotate`/drop).
const FLUSH_BYTES: usize = 64 * 1024;

/// The process-wide wall-clock anchor: a monotonic origin paired with the
/// wall clock (microseconds since `UNIX_EPOCH`) read once, at first use.
/// Every timestamp the observability layer emits derives from this pair.
pub fn clock_anchor() -> (Instant, u64) {
    static ANCHOR: OnceLock<(Instant, u64)> = OnceLock::new();
    *ANCHOR.get_or_init(|| {
        let wall = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        (Instant::now(), wall)
    })
}

/// Microseconds since `UNIX_EPOCH`, measured as a monotonic offset from
/// the shared [`clock_anchor`] — immune to wall-clock steps after boot,
/// and consistent across capture, flight and trace within one process.
pub fn wall_now_us() -> u64 {
    let (origin, wall) = clock_anchor();
    wall.saturating_add(origin.elapsed().as_micros() as u64)
}

/// One captured request: what was asked, how it was handled, and what was
/// answered. `tags`/`spread_bits` carry the answer so `pitex replay
/// --verify` can check a replayed run bit-for-bit against the recording
/// (spread travels as raw `f64` bits — exact equality, no formatting).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CaptureRecord {
    /// Wall-clock microseconds since `UNIX_EPOCH` at admission
    /// ([`wall_now_us`]).
    pub ts_us: u64,
    /// The request's trace id (minted at admission; joins this record to
    /// `FLIGHT` entries and `TRACE` timelines).
    pub trace_id: u64,
    /// Protocol verb (`QUERY`, `EXPLAIN`, `TRACE`).
    pub verb: String,
    /// Query user.
    pub user: u32,
    /// Requested tag-set size.
    pub k: u32,
    /// Requested backend (`auto`, `lazy`, …; `-` when the server default
    /// applied).
    pub backend: String,
    /// The concrete backend that answered (`-` when the request never
    /// reached one).
    pub resolved: String,
    /// `ok`, `cached`, `busy`, `deadline`, `error`, …
    pub outcome: String,
    /// Server-side handling time in microseconds.
    pub us: u64,
    /// The answered tag set (empty unless the outcome carried one).
    pub tags: Vec<u32>,
    /// The answered spread as raw `f64` bits (0 when no answer).
    pub spread_bits: u64,
}

impl CaptureRecord {
    /// The answered spread as an `f64`.
    pub fn spread(&self) -> f64 {
        f64::from_bits(self.spread_bits)
    }
}

/// FNV-1a over the payload — the same per-record checksum the update WAL
/// uses, so both logs share one recovery discipline.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Encodes one record's payload (frame body, checksum excluded).
pub fn encode_record(record: &CaptureRecord) -> Vec<u8> {
    let mut enc = Encoder::new(Vec::new());
    enc.u64(record.ts_us);
    enc.u64(record.trace_id);
    enc.str(&record.verb);
    enc.u32(record.user);
    enc.u32(record.k);
    enc.str(&record.backend);
    enc.str(&record.resolved);
    enc.str(&record.outcome);
    enc.u64(record.us);
    enc.u32_slice(&record.tags);
    enc.u64(record.spread_bits);
    enc.into_inner()
}

/// Decodes one record payload (inverse of [`encode_record`]).
pub fn decode_record(payload: &[u8]) -> Result<CaptureRecord, DecodeError> {
    let mut dec = Decoder::new(payload);
    Ok(CaptureRecord {
        ts_us: dec.u64()?,
        trace_id: dec.u64()?,
        verb: dec.str()?,
        user: dec.u32()?,
        k: dec.u32()?,
        backend: dec.str()?,
        resolved: dec.str()?,
        outcome: dec.str()?,
        us: dec.u64()?,
        tags: dec.u32_slice()?,
        spread_bits: dec.u64()?,
    })
}

/// Wraps a payload in the on-disk frame: `[u32 len][payload][u64 fnv64]`.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv64(payload).to_le_bytes());
    out
}

/// The file header: magic, version, and the recording process's
/// wall-clock anchor.
fn header_bytes(anchor_us: u64) -> Vec<u8> {
    let mut enc = Encoder::new(Vec::new());
    enc.header(CAPTURE_MAGIC, CAPTURE_VERSION);
    enc.u64(anchor_us);
    enc.into_inner()
}

/// Why a workload log failed to load. A torn tail is *not* an error (the
/// reader reports it as [`CaptureLog::truncated_bytes`]); anything else —
/// bad header, checksum mismatch, undecodable payload — is.
#[derive(Debug)]
pub enum CaptureError {
    /// The file header did not validate (wrong magic/version/truncated).
    Header(DecodeError),
    /// A complete frame failed its checksum or would not decode.
    Corrupt { offset: usize, detail: String },
}

impl std::fmt::Display for CaptureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaptureError::Header(e) => write!(f, "workload log header: {e}"),
            CaptureError::Corrupt { offset, detail } => {
                write!(f, "workload log corrupt at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for CaptureError {}

/// A decoded workload log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CaptureLog {
    /// The recording process's wall-clock anchor (µs since `UNIX_EPOCH`).
    pub anchor_us: u64,
    /// Every intact record, in capture order.
    pub records: Vec<CaptureRecord>,
    /// Bytes of torn tail ignored at the end of the file (0 for a cleanly
    /// flushed log).
    pub truncated_bytes: usize,
}

/// Decodes a `PWRK` workload log from raw file bytes. An incomplete frame
/// at the tail is tolerated (torn tail: the recorder died mid-flush); a
/// complete frame that fails its checksum or does not decode refuses
/// loudly with [`CaptureError::Corrupt`].
pub fn read_log(bytes: &[u8]) -> Result<CaptureLog, CaptureError> {
    let mut dec = Decoder::new(bytes);
    dec.header(CAPTURE_MAGIC, CAPTURE_VERSION).map_err(CaptureError::Header)?;
    let anchor_us = dec.u64().map_err(CaptureError::Header)?;
    let mut offset = 4 + 4 + 8;
    let mut records = Vec::new();
    while offset < bytes.len() {
        let remaining = bytes.len() - offset;
        if remaining < 4 {
            break; // torn tail: not even a length prefix
        }
        let len =
            u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        if remaining < 4 + len + 8 {
            break; // torn tail: frame written partially
        }
        let payload = &bytes[offset + 4..offset + 4 + len];
        let stored = u64::from_le_bytes(
            bytes[offset + 4 + len..offset + 4 + len + 8].try_into().expect("8 bytes"),
        );
        if fnv64(payload) != stored {
            return Err(CaptureError::Corrupt {
                offset,
                detail: format!("checksum mismatch in a {len}-byte record"),
            });
        }
        let record = decode_record(payload)
            .map_err(|e| CaptureError::Corrupt { offset, detail: e.to_string() })?;
        records.push(record);
        offset += 4 + len + 8;
    }
    Ok(CaptureLog { anchor_us, records, truncated_bytes: bytes.len() - offset })
}

/// Capture knobs, read from the environment once at server boot.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CaptureOptions {
    /// Workload-log path (`PITEX_OBS_CAPTURE`); unset disables capture
    /// entirely (the recorder becomes a no-op).
    pub path: Option<PathBuf>,
    /// Sampling rate (`PITEX_OBS_CAPTURE_RATE`): record 1 in `rate`
    /// admitted requests. 0 or 1 (the default) records every request.
    pub rate: u64,
}

impl CaptureOptions {
    /// Reads `PITEX_OBS_CAPTURE` / `PITEX_OBS_CAPTURE_RATE`, falling back
    /// to disabled / record-everything on unset or unparsable values.
    pub fn from_env() -> Self {
        let path = std::env::var("PITEX_OBS_CAPTURE").ok().filter(|v| !v.is_empty());
        let rate = std::env::var("PITEX_OBS_CAPTURE_RATE")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(1);
        Self { path: path.map(PathBuf::from), rate }
    }
}

struct Sink {
    file: File,
    /// Encoded frames not yet written to `file`.
    buffer: Vec<u8>,
    /// Frames currently in `buffer` (for loss accounting on a failed
    /// flush).
    pending: u64,
}

impl Sink {
    fn flush(&mut self) -> std::io::Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let result = self.file.write_all(&self.buffer).and_then(|()| self.file.flush());
        // Clear the buffer either way: on failure the frames are lost (the
        // caller counts them), and retrying a partial write would corrupt
        // the frame stream anyway. Torn tails are the reader's problem to
        // tolerate, duplicated bytes are not.
        self.buffer.clear();
        self.pending = 0;
        result
    }
}

/// A lock-light sampled request recorder writing the `PWRK` workload log.
///
/// The hot path is: one relaxed `fetch_add` for the sampling decision,
/// record construction and encoding on the caller's thread, then one
/// short mutex hold to append the encoded frame to the write buffer
/// (actual file I/O happens only when the buffer crosses the 64 KiB flush threshold).
/// Recording never fails the request: I/O errors are counted in
/// [`dropped`](Self::dropped) and the server keeps serving.
pub struct CaptureRecorder {
    inner: Option<Inner>,
}

struct Inner {
    path: PathBuf,
    rate: u64,
    enabled: AtomicBool,
    seq: AtomicU64,
    recorded: AtomicU64,
    dropped: AtomicU64,
    rotations: AtomicU64,
    sink: Mutex<Sink>,
}

impl CaptureRecorder {
    /// A recorder with no sink: every operation is a no-op. What a server
    /// without `PITEX_OBS_CAPTURE` runs with.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Opens (creating or truncating) the workload log and writes its
    /// header. With no path configured, returns the no-op recorder.
    pub fn new(options: CaptureOptions) -> std::io::Result<Self> {
        let Some(path) = options.path else {
            return Ok(Self::disabled());
        };
        let file = Self::create_log(&path)?;
        Ok(Self {
            inner: Some(Inner {
                path,
                rate: options.rate.max(1),
                enabled: AtomicBool::new(true),
                seq: AtomicU64::new(0),
                recorded: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                rotations: AtomicU64::new(0),
                sink: Mutex::new(Sink { file, buffer: Vec::new(), pending: 0 }),
            }),
        })
    }

    fn create_log(path: &Path) -> std::io::Result<File> {
        let mut file = File::create(path)?;
        file.write_all(&header_bytes(clock_anchor().1))?;
        Ok(file)
    }

    /// Whether a sink is configured at all (a `CAPTURE on` can succeed).
    pub fn configured(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether recording is currently on.
    pub fn enabled(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.enabled.load(Ordering::Relaxed))
    }

    /// The workload-log path, when configured.
    pub fn path(&self) -> Option<&Path> {
        self.inner.as_ref().map(|i| i.path.as_path())
    }

    /// Records sampled into the log since boot (buffered counts as
    /// recorded; frames lost to I/O errors move to `dropped`).
    pub fn recorded(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.recorded.load(Ordering::Relaxed))
    }

    /// Sampled records lost to sink I/O errors.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.dropped.load(Ordering::Relaxed))
    }

    /// Turns recording on or off (`CAPTURE on|off`). Turning it off
    /// flushes the buffer so the log is complete on disk.
    pub fn set_enabled(&self, on: bool) {
        let Some(inner) = &self.inner else { return };
        inner.enabled.store(on, Ordering::Relaxed);
        if !on {
            self.flush();
        }
    }

    /// Records one request summary if the sampler selects it. The record
    /// is only *built* (closure) when selected, so sampled-out requests
    /// pay one `fetch_add` and nothing else. Never fails the request.
    pub fn record(&self, make: impl FnOnce() -> CaptureRecord) {
        let Some(inner) = &self.inner else { return };
        if !inner.enabled.load(Ordering::Relaxed) {
            return;
        }
        let n = inner.seq.fetch_add(1, Ordering::Relaxed);
        if inner.rate > 1 && n % inner.rate != 0 {
            return;
        }
        let framed = frame(&encode_record(&make()));
        let Ok(mut sink) = inner.sink.lock() else { return };
        sink.buffer.extend_from_slice(&framed);
        sink.pending += 1;
        inner.recorded.fetch_add(1, Ordering::Relaxed);
        if sink.buffer.len() >= FLUSH_BYTES {
            let pending = sink.pending;
            if sink.flush().is_err() {
                inner.recorded.fetch_sub(pending, Ordering::Relaxed);
                inner.dropped.fetch_add(pending, Ordering::Relaxed);
            }
        }
    }

    /// Flushes buffered frames to the file (best-effort; losses are
    /// counted in [`dropped`](Self::dropped)).
    pub fn flush(&self) {
        let Some(inner) = &self.inner else { return };
        let Ok(mut sink) = inner.sink.lock() else { return };
        let pending = sink.pending;
        if sink.flush().is_err() {
            inner.recorded.fetch_sub(pending, Ordering::Relaxed);
            inner.dropped.fetch_add(pending, Ordering::Relaxed);
        }
    }

    /// `CAPTURE rotate`: flushes and renames the current log to
    /// `<path>.<n>` (first free suffix), then starts a fresh log (new
    /// header, same anchor) at the configured path. Returns the rotated
    /// file's path.
    pub fn rotate(&self) -> std::io::Result<PathBuf> {
        let Some(inner) = &self.inner else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "no capture path configured",
            ));
        };
        let mut sink = inner
            .sink
            .lock()
            .map_err(|_| std::io::Error::other("capture sink poisoned by a panic"))?;
        let pending = sink.pending;
        if sink.flush().is_err() {
            inner.recorded.fetch_sub(pending, Ordering::Relaxed);
            inner.dropped.fetch_add(pending, Ordering::Relaxed);
        }
        let mut n = inner.rotations.load(Ordering::Relaxed) + 1;
        let rotated = loop {
            let candidate = PathBuf::from(format!("{}.{n}", inner.path.display()));
            if !candidate.exists() {
                break candidate;
            }
            n += 1;
        };
        std::fs::rename(&inner.path, &rotated)?;
        sink.file = Self::create_log(&inner.path)?;
        inner.rotations.store(n, Ordering::Relaxed);
        Ok(rotated)
    }
}

impl Drop for CaptureRecorder {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pitex-capture-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("workload.pwrk")
    }

    fn record(i: u64) -> CaptureRecord {
        CaptureRecord {
            ts_us: 1_700_000_000_000_000 + i,
            trace_id: 0xabc0 + i,
            verb: "QUERY".into(),
            user: i as u32,
            k: 2,
            backend: "auto".into(),
            resolved: "lazy".into(),
            outcome: "ok".into(),
            us: 100 + i,
            tags: vec![2, 3],
            spread_bits: (2.0575f64).to_bits(),
        }
    }

    #[test]
    fn records_round_trip_the_payload_codec() {
        for rec in [
            record(0),
            CaptureRecord { tags: Vec::new(), spread_bits: 0, outcome: "busy".into(), ..record(1) },
            CaptureRecord { verb: "TRACE".into(), backend: "-".into(), ..record(2) },
        ] {
            assert_eq!(decode_record(&encode_record(&rec)).unwrap(), rec);
        }
    }

    #[test]
    fn recorder_writes_a_readable_log() {
        let path = tmp_path("roundtrip");
        let rec =
            CaptureRecorder::new(CaptureOptions { path: Some(path.clone()), rate: 1 }).unwrap();
        for i in 0..10 {
            rec.record(|| record(i));
        }
        rec.flush();
        let log = read_log(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(log.records.len(), 10);
        assert_eq!(log.truncated_bytes, 0);
        assert_eq!(log.anchor_us, clock_anchor().1);
        assert_eq!(log.records[3], record(3));
        assert_eq!(rec.recorded(), 10);
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn sampling_rate_keeps_one_in_n() {
        let path = tmp_path("sampled");
        let rec =
            CaptureRecorder::new(CaptureOptions { path: Some(path.clone()), rate: 4 }).unwrap();
        for i in 0..40 {
            rec.record(|| record(i));
        }
        rec.flush();
        let log = read_log(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(log.records.len(), 10, "1 in 4 of 40");
        assert_eq!(rec.recorded(), 10);
    }

    #[test]
    fn disabling_stops_recording_and_flushes() {
        let path = tmp_path("toggle");
        let rec =
            CaptureRecorder::new(CaptureOptions { path: Some(path.clone()), rate: 1 }).unwrap();
        rec.record(|| record(0));
        rec.set_enabled(false);
        rec.record(|| record(1));
        let log = read_log(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(log.records.len(), 1, "the record after `off` is not written");
        rec.set_enabled(true);
        rec.record(|| record(2));
        rec.flush();
        let log = read_log(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(log.records.len(), 2);
    }

    #[test]
    fn rotation_preserves_the_old_log_and_starts_fresh() {
        let path = tmp_path("rotate");
        let rec =
            CaptureRecorder::new(CaptureOptions { path: Some(path.clone()), rate: 1 }).unwrap();
        rec.record(|| record(0));
        let rotated = rec.rotate().unwrap();
        assert_eq!(rotated, PathBuf::from(format!("{}.1", path.display())));
        rec.record(|| record(1));
        rec.flush();
        let old = read_log(&std::fs::read(&rotated).unwrap()).unwrap();
        let new = read_log(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(old.records.len(), 1);
        assert_eq!(new.records.len(), 1);
        assert_eq!(new.records[0], record(1));
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let path = tmp_path("torn");
        let rec =
            CaptureRecorder::new(CaptureOptions { path: Some(path.clone()), rate: 1 }).unwrap();
        rec.record(|| record(0));
        rec.flush();
        drop(rec);
        // Append a frame that claims 64 payload bytes but provides 7.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&64u32.to_le_bytes());
        bytes.extend_from_slice(&[1, 2, 3, 4, 5, 6, 7]);
        let log = read_log(&bytes).unwrap();
        assert_eq!(log.records.len(), 1);
        assert_eq!(log.truncated_bytes, 11);
    }

    #[test]
    fn corruption_refuses_loudly() {
        let path = tmp_path("corrupt");
        let rec =
            CaptureRecorder::new(CaptureOptions { path: Some(path.clone()), rate: 1 }).unwrap();
        rec.record(|| record(0));
        rec.record(|| record(1));
        rec.flush();
        drop(rec);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() - 20; // inside the second frame's payload
        bytes[mid] ^= 0xff;
        let err = read_log(&bytes).unwrap_err();
        assert!(matches!(err, CaptureError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("corrupt"), "{err}");
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let rec = CaptureRecorder::disabled();
        assert!(!rec.configured());
        assert!(!rec.enabled());
        rec.record(|| unreachable!("a disabled recorder must not build records"));
        rec.flush();
        assert_eq!(rec.recorded(), 0);
        assert!(rec.rotate().is_err());
    }

    #[test]
    fn wall_clock_is_anchored_and_monotonic() {
        let (origin, wall) = clock_anchor();
        assert_eq!(clock_anchor(), (origin, wall), "anchor is read once");
        let a = wall_now_us();
        let b = wall_now_us();
        assert!(b >= a);
        assert!(a >= wall);
    }
}
