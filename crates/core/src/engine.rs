//! The PITEX query engine: enumeration (§4) and best-effort exploration
//! (§5.2, Algo. 5).

use crate::backends::EngineBackend;
use crate::plan::{PlanDecision, PlanInput, Planner};
use crate::query::{PitexResult, QueryStats};
use crate::registry::{self, EngineParts};
use crate::OrdF64;
use pitex_graph::NodeId;
use pitex_index::{DelayMatIndex, RrIndex};
use pitex_model::bound::UpperBoundEdgeProbs;
use pitex_model::combi::KSubsets;
use pitex_model::{BoundOracle, EdgeProbCache, PosteriorEdgeProbs, TagId, TagSet, TicModel};
use pitex_sampling::{SamplingParams, SpreadEstimator};
use pitex_support::Timer;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Duration;

pub use crate::registry::MissingIndexError;

/// How the space of tag sets is searched.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExplorationStrategy {
    /// Algo. 5: heap-ordered partial sets with Lemma-8 upper-bound pruning.
    /// The paper's default for every reported method (§7.3).
    #[default]
    BestEffort,
    /// The §4 baseline: estimate every feasible size-`k` set.
    Enumerate,
}

/// Engine configuration (paper defaults: ε = 0.7, δ = 1000).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PitexConfig {
    /// Relative error target ε of the sampling guarantee.
    pub epsilon: f64,
    /// Confidence parameter δ (results hold with probability 1 − δ⁻¹).
    pub delta: f64,
    /// RNG seed for all sampling backends.
    pub seed: u64,
    /// Search strategy.
    pub strategy: ExplorationStrategy,
}

impl Default for PitexConfig {
    fn default() -> Self {
        Self {
            epsilon: 0.7,
            delta: 1000.0,
            seed: 0x517c_c1b7,
            strategy: ExplorationStrategy::BestEffort,
        }
    }
}

/// The PITEX query engine, generic over its spread-estimation backend.
pub struct PitexEngine<'a> {
    model: &'a TicModel,
    estimator: Box<dyn SpreadEstimator + 'a>,
    oracle: BoundOracle,
    cache: EdgeProbCache,
    config: PitexConfig,
}

impl<'a> PitexEngine<'a> {
    /// Builds an engine around an arbitrary backend.
    pub fn new(
        model: &'a TicModel,
        estimator: Box<dyn SpreadEstimator + 'a>,
        config: PitexConfig,
    ) -> Self {
        let oracle = BoundOracle::new(model.tag_topic());
        let cache = model.new_prob_cache();
        Self { model, estimator, oracle, cache, config }
    }

    /// Builds an engine for any concrete backend through the
    /// [`crate::registry`] — the one construction path every convenience
    /// constructor below routes through.
    ///
    /// # Panics
    /// If `backend` is [`EngineBackend::Auto`] (resolve it through an
    /// [`EngineHandle`] first — planning needs the shared snapshot set).
    pub fn with_backend(
        model: &'a TicModel,
        backend: EngineBackend,
        rr_index: Option<&'a RrIndex>,
        delay_index: Option<&'a DelayMatIndex>,
        config: PitexConfig,
    ) -> Result<Self, MissingIndexError> {
        let spec = registry::spec(backend).expect("auto resolves through an EngineHandle");
        let parts = EngineParts { model, rr_index, delay_index, config };
        Ok(Self::new(model, spec.build(&parts)?, config))
    }

    fn with_online(model: &'a TicModel, backend: EngineBackend, config: PitexConfig) -> Self {
        Self::with_backend(model, backend, None, None, config)
            .expect("online backends need no artifact")
    }

    /// Engine with the exact possible-world evaluator (tiny graphs only).
    pub fn with_exact(model: &'a TicModel, config: PitexConfig) -> Self {
        Self::with_online(model, EngineBackend::Exact, config)
    }

    /// Engine with Monte-Carlo sampling (the paper's MC).
    pub fn with_mc(model: &'a TicModel, config: PitexConfig) -> Self {
        Self::with_online(model, EngineBackend::Mc, config)
    }

    /// Engine with reverse-reachable sampling (the paper's RR).
    pub fn with_rr(model: &'a TicModel, config: PitexConfig) -> Self {
        Self::with_online(model, EngineBackend::Rr, config)
    }

    /// Engine with lazy propagation sampling (the paper's LAZY).
    pub fn with_lazy(model: &'a TicModel, config: PitexConfig) -> Self {
        Self::with_online(model, EngineBackend::Lazy, config)
    }

    /// Engine with the tree-based TIM baseline.
    pub fn with_tim(model: &'a TicModel, config: PitexConfig) -> Self {
        Self::with_online(model, EngineBackend::Tim, config)
    }

    /// Engine with Linear Threshold propagation (footnote 1 of the paper):
    /// tag-aware edge weights drive the LT live-edge process instead of IC.
    pub fn with_lt(model: &'a TicModel, config: PitexConfig) -> Self {
        Self::with_online(model, EngineBackend::Lt, config)
    }

    /// Engine with the plain RR-Graph index (INDEXEST).
    pub fn with_index(model: &'a TicModel, index: &'a RrIndex, config: PitexConfig) -> Self {
        Self::with_backend(model, EngineBackend::IndexEst, Some(index), None, config)
            .expect("the index is provided")
    }

    /// Engine with the edge-cut-filtered index (INDEXEST+).
    pub fn with_index_plus(model: &'a TicModel, index: &'a RrIndex, config: PitexConfig) -> Self {
        Self::with_backend(model, EngineBackend::IndexEstPlus, Some(index), None, config)
            .expect("the index is provided")
    }

    /// Engine with the delay-materialized index (DELAYMAT).
    pub fn with_delay(model: &'a TicModel, index: &'a DelayMatIndex, config: PitexConfig) -> Self {
        Self::with_backend(model, EngineBackend::DelayMat, None, Some(index), config)
            .expect("the index is provided")
    }

    /// The backend's display name (matches the paper's method labels).
    pub fn backend_name(&self) -> &'static str {
        self.estimator.name()
    }

    pub fn config(&self) -> &PitexConfig {
        &self.config
    }

    pub fn model(&self) -> &'a TicModel {
        self.model
    }

    /// Sampling parameters for a query of size `k` under the configured
    /// strategy (the union bound covers the candidate space actually
    /// searched — `C(|Ω|,k)` for enumeration, `φ_k` for best-effort).
    pub fn sampling_params(&self, k: usize) -> SamplingParams {
        let base = match self.config.strategy {
            ExplorationStrategy::Enumerate => SamplingParams::enumeration(
                self.config.epsilon,
                self.config.delta,
                self.model.num_tags(),
                k,
            ),
            ExplorationStrategy::BestEffort => SamplingParams::best_effort(
                self.config.epsilon,
                self.config.delta,
                self.model.num_tags(),
                k,
            ),
        };
        base.with_seed(self.config.seed)
    }

    /// Answers the PITEX query `(user, k)` (Def. 1).
    ///
    /// # Panics
    /// If `k` is 0 or `user` is out of range.
    pub fn query(&mut self, user: NodeId, k: usize) -> PitexResult {
        assert!(k >= 1, "PITEX queries select at least one tag");
        assert!((user as usize) < self.model.graph().num_nodes(), "user {user} out of range");
        let k = k.min(self.model.num_tags());
        let params = self.sampling_params(k);
        let timer = Timer::start();
        let (tags, spread, mut stats) = match self.config.strategy {
            ExplorationStrategy::Enumerate => self.enumerate(user, k, &params),
            ExplorationStrategy::BestEffort => self.best_effort(user, k, &params),
        };
        stats.elapsed = timer.elapsed();
        PitexResult { user, k, tags, spread, stats }
    }

    /// Estimates the spread of one concrete tag set under the engine's
    /// backend and accuracy parameters (public building block; the query
    /// loop uses the same path).
    pub fn estimate_tag_set(&mut self, user: NodeId, tags: &TagSet) -> f64 {
        let params = self.sampling_params(tags.len().max(1));
        let mut stats = QueryStats::default();
        self.estimate_full(user, tags, &params, &mut stats)
    }

    /// Exploration variant of the PITEX query: the `n` best size-`k` tag
    /// sets ranked by estimated spread, descending. Supports the paper's
    /// "explore how she influences the network" use case beyond a single
    /// argmax — a user inspecting their selling points wants a ranking.
    ///
    /// Best-effort pruning remains sound: a partial set is pruned only when
    /// its upper bound cannot beat the *n-th best* incumbent.
    pub fn query_top_n(&mut self, user: NodeId, k: usize, n: usize) -> Vec<(TagSet, f64)> {
        assert!(k >= 1 && n >= 1);
        assert!((user as usize) < self.model.graph().num_nodes());
        let k = k.min(self.model.num_tags());
        let params = self.sampling_params(k);
        let mut stats = QueryStats::default();

        // Min-heap of the current top n (by spread, ties to larger sets
        // pruned deterministically via the set ordering).
        let mut top: BinaryHeap<Reverse<(OrdF64, Reverse<TagSet>)>> = BinaryHeap::new();
        let offer = |top: &mut BinaryHeap<Reverse<(OrdF64, Reverse<TagSet>)>>,
                     tags: TagSet,
                     spread: f64| {
            top.push(Reverse((OrdF64(spread), Reverse(tags))));
            if top.len() > n {
                top.pop();
            }
        };
        let nth_best = |top: &BinaryHeap<Reverse<(OrdF64, Reverse<TagSet>)>>| -> f64 {
            if top.len() < n {
                f64::NEG_INFINITY
            } else {
                top.peek().map(|Reverse((OrdF64(s), _))| *s).unwrap_or(f64::NEG_INFINITY)
            }
        };

        match self.config.strategy {
            ExplorationStrategy::Enumerate => {
                for subset in KSubsets::new(self.model.num_tags() as u32, k) {
                    let tags = TagSet::new(subset);
                    let spread = self.estimate_full(user, &tags, &params, &mut stats);
                    offer(&mut top, tags, spread);
                }
            }
            ExplorationStrategy::BestEffort => {
                let num_tags = self.model.num_tags() as TagId;
                let mut heap: BinaryHeap<(OrdF64, Reverse<TagSet>)> = BinaryHeap::new();
                heap.push((OrdF64(f64::INFINITY), Reverse(TagSet::empty())));
                while let Some((OrdF64(inherited), Reverse(tags))) = heap.pop() {
                    if inherited <= nth_best(&top) {
                        break;
                    }
                    if tags.len() == k {
                        let spread = self.estimate_full(user, &tags, &params, &mut stats);
                        offer(&mut top, tags, spread);
                        continue;
                    }
                    let bound = self.estimate_bound(user, &tags, k, &params, &mut stats);
                    if bound <= nth_best(&top) {
                        continue;
                    }
                    let limit = tags.min_tag().unwrap_or(num_tags);
                    for w in 0..limit {
                        heap.push((OrdF64(bound.min(inherited)), Reverse(tags.with(w))));
                    }
                }
            }
        }
        let mut out: Vec<(TagSet, f64)> =
            top.into_iter().map(|Reverse((OrdF64(s), Reverse(tags)))| (tags, s)).collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Estimates a full-size candidate; infeasible sets cost nothing and
    /// spread exactly 1 (only the user herself is active).
    fn estimate_full(
        &mut self,
        user: NodeId,
        tags: &TagSet,
        params: &SamplingParams,
        stats: &mut QueryStats,
    ) -> f64 {
        let posterior = self.model.posterior(tags);
        if posterior.is_empty() {
            stats.tag_sets_infeasible += 1;
            return 1.0;
        }
        stats.tag_sets_evaluated += 1;
        let mut probs =
            PosteriorEdgeProbs::new(self.model.edge_topics(), &posterior, &mut self.cache);
        let est = self.estimator.estimate(self.model.graph(), user, &mut probs, params);
        stats.absorb(&est);
        est.spread
    }

    /// Lemma-8 upper bound on the spread of any size-`k` completion of the
    /// partial set `tags`, evaluated through the same backend.
    fn estimate_bound(
        &mut self,
        user: NodeId,
        tags: &TagSet,
        k: usize,
        params: &SamplingParams,
        stats: &mut QueryStats,
    ) -> f64 {
        let bounded = self.oracle.bounded_posterior(tags, k);
        if bounded.is_empty() || bounded.entries().iter().all(|&(_, w)| w == 0.0) {
            // No topic can carry any completion: every edge bound is 0.
            return 1.0;
        }
        stats.bounds_computed += 1;
        let mut probs =
            UpperBoundEdgeProbs::new(self.model.edge_topics(), &bounded, &mut self.cache);
        let est = self.estimator.estimate(self.model.graph(), user, &mut probs, params);
        stats.absorb(&est);
        est.spread
    }

    /// §4's enumeration framework over all size-`k` subsets.
    fn enumerate(
        &mut self,
        user: NodeId,
        k: usize,
        params: &SamplingParams,
    ) -> (TagSet, f64, QueryStats) {
        let mut stats = QueryStats::default();
        let mut best: Option<(TagSet, f64)> = None;
        for subset in KSubsets::new(self.model.num_tags() as u32, k) {
            let tags = TagSet::new(subset);
            let spread = self.estimate_full(user, &tags, params, &mut stats);
            if best.as_ref().map_or(true, |&(_, s)| spread > s) {
                best = Some((tags, spread));
            }
        }
        let (tags, spread) = best.unwrap_or((TagSet::empty(), 1.0));
        (tags, spread, stats)
    }

    /// Algo. 5: best-effort exploration with Lemma-8 pruning.
    fn best_effort(
        &mut self,
        user: NodeId,
        k: usize,
        params: &SamplingParams,
    ) -> (TagSet, f64, QueryStats) {
        let mut stats = QueryStats::default();
        let num_tags = self.model.num_tags() as TagId;
        // Max-heap keyed by the inherited upper bound; ties resolved toward
        // lexicographically smaller sets for determinism.
        let mut heap: BinaryHeap<(OrdF64, Reverse<TagSet>)> = BinaryHeap::new();
        heap.push((OrdF64(f64::INFINITY), Reverse(TagSet::empty())));
        let mut best: Option<(TagSet, f64)> = None;
        let mut i_star = f64::NEG_INFINITY;

        while let Some((OrdF64(inherited), Reverse(tags))) = heap.pop() {
            // The heap is bound-ordered: once the incumbent beats the top,
            // every remaining entry is prunable at once.
            if best.is_some() && inherited <= i_star {
                stats.partials_pruned += 1 + heap.len() as u64;
                break;
            }
            if tags.len() == k {
                let spread = self.estimate_full(user, &tags, params, &mut stats);
                if best.is_none() || spread > i_star {
                    i_star = spread;
                    best = Some((tags, spread));
                }
                continue;
            }
            // Partial set: refresh its own (tighter) bound before expanding.
            let bound = self.estimate_bound(user, &tags, k, params, &mut stats);
            if best.is_some() && bound <= i_star {
                stats.partials_pruned += 1;
                continue;
            }
            // Canonical expansion (Appx. C): extend only with tags smaller
            // than every current member, so each subset is generated once.
            let limit = tags.min_tag().unwrap_or(num_tags);
            for w in 0..limit {
                heap.push((OrdF64(bound.min(inherited)), Reverse(tags.with(w))));
            }
        }
        let (tags, spread) = best.unwrap_or((TagSet::empty(), 1.0));
        (tags, spread, stats)
    }
}

/// Owned, shareable engine state: the immutable model / index snapshots
/// behind `Arc`s plus a backend choice and configuration.
///
/// [`PitexEngine`] deliberately borrows its model and memoises edge
/// probabilities behind `&mut self`, which makes a single engine useless for
/// concurrent serving. An `EngineHandle` is the owned complement: clone it
/// into as many worker threads as you like (clones share the underlying
/// snapshots) and let each worker build its private engine with
/// [`engine`](Self::engine). This is what `pitex_serve`'s worker pool and
/// [`crate::batch::query_batch_shared`] are built on.
///
/// ```
/// use pitex_core::{EngineBackend, EngineHandle, PitexConfig};
/// use pitex_model::TicModel;
/// use std::sync::Arc;
///
/// let model = Arc::new(TicModel::paper_example());
/// let handle = EngineHandle::new(model, EngineBackend::Lazy, PitexConfig::default()).unwrap();
/// let worker = handle.clone(); // e.g. moved into a thread
/// assert_eq!(worker.engine().query(0, 2).tags.tags(), &[2, 3]);
/// ```
#[derive(Clone)]
pub struct EngineHandle {
    model: Arc<TicModel>,
    rr_index: Option<Arc<RrIndex>>,
    delay_index: Option<Arc<DelayMatIndex>>,
    backend: EngineBackend,
    config: PitexConfig,
    /// Shared by every clone: the cost-based planner `backend=auto`
    /// resolves through, and the latency-EWMA sink every measured query
    /// feeds ([`Planner::observe`]).
    planner: Arc<Planner>,
}

impl std::fmt::Debug for EngineHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The snapshots themselves are multi-megabyte; print their shape.
        f.debug_struct("EngineHandle")
            .field("backend", &self.backend)
            .field("config", &self.config)
            .field("nodes", &self.model.graph().num_nodes())
            .field("rr_index", &self.rr_index.is_some())
            .field("delay_index", &self.delay_index.is_some())
            .finish()
    }
}

impl EngineHandle {
    /// A handle for an index-free backend. Fails if `backend` needs an
    /// index artifact — pass it through [`with_indexes`](Self::with_indexes).
    pub fn new(
        model: Arc<TicModel>,
        backend: EngineBackend,
        config: PitexConfig,
    ) -> Result<Self, MissingIndexError> {
        Self::with_indexes(model, backend, None, None, config)
    }

    /// A handle over the full snapshot set. The indexes may be omitted when
    /// `backend` does not need them ([`EngineBackend::Auto`] needs nothing:
    /// its planner only ever selects among the artifacts actually present).
    pub fn with_indexes(
        model: Arc<TicModel>,
        backend: EngineBackend,
        rr_index: Option<Arc<RrIndex>>,
        delay_index: Option<Arc<DelayMatIndex>>,
        config: PitexConfig,
    ) -> Result<Self, MissingIndexError> {
        // A fixed backend missing its artifact fails here, at handle
        // construction, not on the first query.
        registry::require_artifacts(backend, rr_index.is_some(), delay_index.is_some())?;
        let planner =
            Arc::new(Planner::new(&model, rr_index.is_some(), delay_index.is_some(), &config));
        Ok(Self { model, rr_index, delay_index, backend, config, planner })
    }

    /// Builds a fresh engine borrowing this handle's shared snapshots.
    /// Cheap enough to call once per worker thread (or even per batch);
    /// each engine gets its own memoisation cache and sampler state.
    ///
    /// An `Auto` handle resolves through the planner with a typical query
    /// shape (average degree, `k = 2`, no deadline); per-query planning
    /// wants [`plan`](Self::plan) + [`engine_for`](Self::engine_for) or
    /// [`query_auto`](Self::query_auto) instead.
    pub fn engine(&self) -> PitexEngine<'_> {
        let backend = self.resolve_default();
        self.engine_for(backend).expect("resolved backends are constructible")
    }

    /// Builds an engine for one concrete backend over this handle's
    /// snapshots, regardless of the handle's own backend choice (`Auto`
    /// resolves through the planner first). This is what serve workers use
    /// to execute a planned or per-request-overridden backend.
    pub fn engine_for(&self, backend: EngineBackend) -> Result<PitexEngine<'_>, MissingIndexError> {
        let backend = if backend == EngineBackend::Auto { self.resolve_default() } else { backend };
        PitexEngine::with_backend(
            &self.model,
            backend,
            self.rr_index.as_deref(),
            self.delay_index.as_deref(),
            self.config,
        )
    }

    fn resolve_default(&self) -> EngineBackend {
        match self.backend {
            EngineBackend::Auto => {
                let degree = self.model.graph().num_edges() / self.model.graph().num_nodes().max(1);
                // `preview`, not `plan`: building an engine is not a query,
                // so it must not move the decision counters.
                self.planner
                    .preview(PlanInput { degree: degree.max(1), k: 2, budget_us: None })
                    .chosen
            }
            backend => backend,
        }
    }

    /// Plans one query: which backend to run, at what predicted cost, with
    /// the rejected alternatives. `budget` is the remaining deadline, if
    /// any. Increments the planner's decision counters.
    pub fn plan(&self, user: NodeId, k: usize, budget: Option<Duration>) -> PlanDecision {
        self.planner.plan(self.plan_input(user, k, budget))
    }

    /// Predicted service time of one backend for this query shape (what
    /// `EXPLAIN` reports for a forced backend).
    pub fn predicted_us(&self, backend: EngineBackend, user: NodeId, k: usize) -> u64 {
        self.planner.predicted_us(backend, &self.plan_input(user, k, None))
    }

    fn plan_input(&self, user: NodeId, k: usize, budget: Option<Duration>) -> PlanInput {
        let graph = self.model.graph();
        let degree = if (user as usize) < graph.num_nodes() { graph.out_degree(user) } else { 0 };
        let k = k.clamp(1, self.model.num_tags());
        PlanInput { degree, k, budget_us: budget.map(|d| d.as_micros() as u64) }
    }

    /// Plans, executes and observes one query in a single call — the
    /// library-level `backend=auto` path. The answer is bit-identical to
    /// running the decision's backend directly (it *is* that engine).
    ///
    /// ```
    /// use pitex_core::{EngineBackend, EngineHandle, PitexConfig};
    /// use pitex_model::TicModel;
    /// use std::sync::Arc;
    ///
    /// let model = Arc::new(TicModel::paper_example());
    /// let handle = EngineHandle::new(model, EngineBackend::Auto, PitexConfig::default()).unwrap();
    /// let (result, decision) = handle.query_auto(0, 2, None);
    /// assert_eq!(result.tags.tags(), &[2, 3]); // W* = {w3, w4} either way
    /// assert_ne!(decision.chosen, EngineBackend::Auto, "resolved to a concrete backend");
    /// ```
    pub fn query_auto(
        &self,
        user: NodeId,
        k: usize,
        budget: Option<Duration>,
    ) -> (PitexResult, PlanDecision) {
        let decision = self.plan(user, k, budget);
        let mut engine =
            self.engine_for(decision.chosen).expect("the planner only picks available backends");
        let result = engine.query(user, k);
        self.planner.observe(decision.chosen, result.stats.elapsed.as_micros() as u64);
        (result, decision)
    }

    /// The shared planner (decision counters, latency EWMAs).
    pub fn planner(&self) -> &Arc<Planner> {
        &self.planner
    }

    /// The shared model snapshot.
    pub fn model(&self) -> &Arc<TicModel> {
        &self.model
    }

    /// The shared RR-Graph index snapshot, when the handle carries one.
    /// The live-update layer reads this to repair the index incrementally
    /// before swapping in a successor handle.
    pub fn rr_index(&self) -> Option<&Arc<RrIndex>> {
        self.rr_index.as_ref()
    }

    /// The shared delay-materialized index snapshot, when present.
    pub fn delay_index(&self) -> Option<&Arc<DelayMatIndex>> {
        self.delay_index.as_ref()
    }

    /// The backend every engine built from this handle uses.
    pub fn backend(&self) -> EngineBackend {
        self.backend
    }

    pub fn config(&self) -> &PitexConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_engine(strategy: ExplorationStrategy) -> (TicModel, PitexConfig) {
        let model = TicModel::paper_example();
        let config = PitexConfig { strategy, ..PitexConfig::default() };
        (model, config)
    }

    #[test]
    fn paper_example_optimum_exact_backend() {
        // The paper's Example 1: W* = {w3, w4} for (u1, k = 2).
        let (model, config) = exact_engine(ExplorationStrategy::BestEffort);
        let mut engine = PitexEngine::with_exact(&model, config);
        let result = engine.query(0, 2);
        assert_eq!(result.tags, TagSet::from([2, 3]));
        // E[I(u1|{w3,w4})]: u3 w.p. .5, u6 via u3->u6, u7 via u6->u7.
        let p13 = model.edge_prob(model.graph().find_edge(0, 2).unwrap(), &result.tags);
        assert!(result.spread > 1.5 && result.spread < 2.5, "spread {}", result.spread);
        assert!(p13 > 0.49);
    }

    #[test]
    fn best_effort_equals_enumeration_with_exact_backend() {
        let model = TicModel::paper_example();
        for user in 0..model.graph().num_nodes() as u32 {
            for k in 1..=3usize {
                let mut enumerate = PitexEngine::with_exact(
                    &model,
                    PitexConfig { strategy: ExplorationStrategy::Enumerate, ..Default::default() },
                );
                let mut besteff = PitexEngine::with_exact(
                    &model,
                    PitexConfig { strategy: ExplorationStrategy::BestEffort, ..Default::default() },
                );
                let a = enumerate.query(user, k);
                let b = besteff.query(user, k);
                assert!(
                    (a.spread - b.spread).abs() < 1e-9,
                    "user {user} k {k}: enum {} vs best-effort {}",
                    a.spread,
                    b.spread
                );
            }
        }
    }

    #[test]
    fn best_effort_prunes_on_the_paper_example() {
        let (model, config) = exact_engine(ExplorationStrategy::BestEffort);
        let mut engine = PitexEngine::with_exact(&model, config);
        let result = engine.query(0, 2);
        let enumerated = {
            let (model2, config2) = exact_engine(ExplorationStrategy::Enumerate);
            let mut e = PitexEngine::with_exact(&model2, config2);
            let r = e.query(0, 2);
            r.stats.tag_sets_evaluated + r.stats.tag_sets_infeasible
        };
        let touched = result.stats.tag_sets_evaluated + result.stats.tag_sets_infeasible;
        assert!(
            touched <= enumerated,
            "best-effort touched {touched} ≥ enumeration's {enumerated}"
        );
    }

    #[test]
    fn lazy_backend_finds_the_paper_optimum() {
        let (model, config) = exact_engine(ExplorationStrategy::BestEffort);
        let mut engine = PitexEngine::with_lazy(&model, config);
        let result = engine.query(0, 2);
        assert_eq!(result.tags, TagSet::from([2, 3]), "spread {}", result.spread);
        assert!(result.stats.samples_used > 0);
    }

    #[test]
    fn mc_and_rr_backends_find_the_paper_optimum() {
        let (model, config) = exact_engine(ExplorationStrategy::BestEffort);
        let mut mc = PitexEngine::with_mc(&model, config);
        assert_eq!(mc.query(0, 2).tags, TagSet::from([2, 3]));
        let mut rr = PitexEngine::with_rr(&model, config);
        assert_eq!(rr.query(0, 2).tags, TagSet::from([2, 3]));
    }

    #[test]
    fn tim_backend_runs_and_reports_name() {
        let (model, config) = exact_engine(ExplorationStrategy::BestEffort);
        let mut engine = PitexEngine::with_tim(&model, config);
        assert_eq!(engine.backend_name(), "TIM");
        let result = engine.query(0, 2);
        assert_eq!(result.k, 2);
        assert!(result.spread >= 1.0);
    }

    #[test]
    fn k_one_selects_the_single_best_tag() {
        let (model, config) = exact_engine(ExplorationStrategy::Enumerate);
        let mut engine = PitexEngine::with_exact(&model, config);
        let result = engine.query(0, 1);
        assert_eq!(result.tags.len(), 1);
        // w3 or w4 (symmetric) dominate: they activate the z3-heavy subtree.
        assert!(result.tags.contains(2) || result.tags.contains(3));
    }

    #[test]
    fn k_clamps_to_tag_count() {
        let (model, config) = exact_engine(ExplorationStrategy::Enumerate);
        let mut engine = PitexEngine::with_exact(&model, config);
        let result = engine.query(0, 99);
        assert_eq!(result.k, 4);
        assert_eq!(result.tags.len(), 4, "the only size-|Ω| set");
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let (model, config) = exact_engine(ExplorationStrategy::BestEffort);
        let mut a = PitexEngine::with_lazy(&model, config);
        let mut b = PitexEngine::with_lazy(&model, config);
        let ra = a.query(0, 2);
        let rb = b.query(0, 2);
        assert_eq!(ra.tags, rb.tags);
        assert_eq!(ra.spread, rb.spread);
    }

    #[test]
    fn isolated_user_gets_unit_spread() {
        // u5 (id 4) has no out-edges: any tag set gives spread 1.
        let (model, config) = exact_engine(ExplorationStrategy::BestEffort);
        let mut engine = PitexEngine::with_exact(&model, config);
        let result = engine.query(4, 2);
        assert_eq!(result.spread, 1.0);
        assert_eq!(result.tags.len(), 2);
    }

    #[test]
    fn estimate_tag_set_matches_query_winner() {
        let (model, config) = exact_engine(ExplorationStrategy::BestEffort);
        let mut engine = PitexEngine::with_exact(&model, config);
        let result = engine.query(0, 2);
        let direct = engine.estimate_tag_set(0, &result.tags);
        assert!((direct - result.spread).abs() < 1e-9);
    }

    #[test]
    fn top_n_ranks_all_pairs_exactly() {
        let (model, config) = exact_engine(ExplorationStrategy::Enumerate);
        let mut engine = PitexEngine::with_exact(&model, config);
        let all = engine.query_top_n(0, 2, 6);
        assert_eq!(all.len(), 6, "C(4,2) candidates");
        assert_eq!(all[0].0, TagSet::from([2, 3]), "W* ranks first");
        for pair in all.windows(2) {
            assert!(pair[0].1 >= pair[1].1, "descending order");
        }
        // Top-1 agrees with the plain query.
        let top1 = engine.query_top_n(0, 2, 1);
        assert_eq!(top1[0].0, engine.query(0, 2).tags);
    }

    #[test]
    fn top_n_best_effort_matches_enumeration() {
        let (model, _) = exact_engine(ExplorationStrategy::BestEffort);
        for n in [1usize, 2, 3, 6] {
            let mut enumerate = PitexEngine::with_exact(
                &model,
                PitexConfig { strategy: ExplorationStrategy::Enumerate, ..Default::default() },
            );
            let mut besteff = PitexEngine::with_exact(
                &model,
                PitexConfig { strategy: ExplorationStrategy::BestEffort, ..Default::default() },
            );
            let a = enumerate.query_top_n(0, 2, n);
            let b = besteff.query_top_n(0, 2, n);
            assert_eq!(a.len(), b.len(), "n = {n}");
            for (x, y) in a.iter().zip(&b) {
                assert!((x.1 - y.1).abs() < 1e-9, "n = {n}: {} vs {}", x.1, y.1);
            }
        }
    }

    #[test]
    fn lt_backend_answers_the_paper_query() {
        // Under LT the live subgraph for {w3, w4} is tree-like, so the
        // ranking matches IC on this example.
        let (model, config) = exact_engine(ExplorationStrategy::BestEffort);
        let mut engine = PitexEngine::with_lt(&model, config);
        assert_eq!(engine.backend_name(), "LT");
        let result = engine.query(0, 2);
        assert_eq!(result.tags, TagSet::from([2, 3]));
    }

    #[test]
    fn handle_builds_every_index_free_backend() {
        let model = Arc::new(TicModel::paper_example());
        for backend in [
            EngineBackend::Lazy,
            EngineBackend::Mc,
            EngineBackend::Rr,
            EngineBackend::Tim,
            EngineBackend::Exact,
            EngineBackend::Lt,
        ] {
            let handle = EngineHandle::new(model.clone(), backend, PitexConfig::default()).unwrap();
            let mut engine = handle.engine();
            assert_eq!(engine.backend_name(), backend.label());
            assert_eq!(engine.query(0, 2).tags, TagSet::from([2, 3]), "{}", backend.label());
        }
    }

    #[test]
    fn handle_rejects_index_backends_without_artifacts() {
        let model = Arc::new(TicModel::paper_example());
        for backend in
            [EngineBackend::IndexEst, EngineBackend::IndexEstPlus, EngineBackend::DelayMat]
        {
            let err = EngineHandle::new(model.clone(), backend, PitexConfig::default())
                .expect_err("must demand an index");
            assert_eq!(err.backend(), backend);
            assert!(err.to_string().contains(backend.label()));
        }
    }

    #[test]
    fn handle_serves_index_backends_from_shared_snapshots() {
        let model = Arc::new(TicModel::paper_example());
        let rr = Arc::new(RrIndex::build(&model, pitex_index::IndexBudget::Fixed(3_000), 3));
        let delay =
            Arc::new(DelayMatIndex::build(&model, pitex_index::IndexBudget::Fixed(3_000), 3));
        for backend in
            [EngineBackend::IndexEst, EngineBackend::IndexEstPlus, EngineBackend::DelayMat]
        {
            let handle = EngineHandle::with_indexes(
                model.clone(),
                backend,
                Some(rr.clone()),
                Some(delay.clone()),
                PitexConfig::default(),
            )
            .unwrap();
            let result = handle.engine().query(0, 2);
            assert_eq!(result.k, 2, "{}", backend.label());
            assert!(result.spread >= 1.0);
        }
    }

    #[test]
    fn handle_clones_share_the_model() {
        let model = Arc::new(TicModel::paper_example());
        let handle =
            EngineHandle::new(model.clone(), EngineBackend::Exact, PitexConfig::default()).unwrap();
        let clone = handle.clone();
        assert!(Arc::ptr_eq(handle.model(), clone.model()));
        assert_eq!(clone.backend(), EngineBackend::Exact);
        // Two engines from the same handle answer independently and equally.
        let a = handle.engine().query(0, 2);
        let b = clone.engine().query(0, 2);
        assert_eq!(a.tags, b.tags);
        assert_eq!(a.spread, b.spread);
    }

    #[test]
    #[should_panic(expected = "at least one tag")]
    fn rejects_k_zero() {
        let (model, config) = exact_engine(ExplorationStrategy::BestEffort);
        PitexEngine::with_exact(&model, config).query(0, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_user() {
        let (model, config) = exact_engine(ExplorationStrategy::BestEffort);
        PitexEngine::with_exact(&model, config).query(99, 1);
    }
}
