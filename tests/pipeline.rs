//! Pipeline integration tests: dataset generation → indexing → persistence
//! → querying, and the propagation-log learning loop.

use pitex::index::serial;
use pitex::model::learn::{learn, synthesize_log, LearnConfig};
use pitex::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn dataset_to_query_pipeline() {
    let profile = DatasetProfile::lastfm_like().scaled(0.15);
    let model = profile.generate();
    let groups = UserGroups::from_graph(model.graph());
    let user = groups.members(UserGroup::Mid)[0];

    let index = RrIndex::build(&model, IndexBudget::PerVertex(6.0), 13);
    let mut lazy = PitexEngine::with_lazy(&model, PitexConfig::default());
    let mut indexed = PitexEngine::with_index_plus(&model, &index, PitexConfig::default());

    let online = lazy.query(user, 3);
    let offline = indexed.query(user, 3);
    assert_eq!(online.k, 3);
    assert_eq!(offline.k, 3);
    // Both must return feasible sets of the right size with sane spreads.
    assert_eq!(online.tags.len(), 3);
    assert_eq!(offline.tags.len(), 3);
    assert!(online.spread >= 1.0 && offline.spread >= 0.0);
    // The index evaluated vastly fewer edges per query than online sampling.
    assert!(
        offline.stats.edges_visited < online.stats.edges_visited,
        "index {} vs online {}",
        offline.stats.edges_visited,
        online.stats.edges_visited
    );
}

#[test]
fn index_survives_persistence() {
    let model = DatasetProfile::lastfm_like().scaled(0.1).generate();
    let groups = UserGroups::from_graph(model.graph());
    let user = groups.members(UserGroup::Mid)[0];
    let index = RrIndex::build(&model, IndexBudget::PerVertex(6.0), 17);

    let bytes = serial::rr_index_to_bytes(&index);
    let reloaded = serial::rr_index_from_bytes(&bytes).expect("round trip");

    let config = PitexConfig::default();
    let a = PitexEngine::with_index_plus(&model, &index, config).query(user, 3);
    let b = PitexEngine::with_index_plus(&model, &reloaded, config).query(user, 3);
    assert_eq!(a.tags, b.tags);
    assert_eq!(a.spread, b.spread);
}

#[test]
fn delay_index_equivalent_counters_after_persistence() {
    let model = DatasetProfile::lastfm_like().scaled(0.1).generate();
    let delay = DelayMatIndex::build(&model, IndexBudget::PerVertex(6.0), 19);
    let bytes = serial::delay_index_to_bytes(&delay);
    let reloaded = serial::delay_index_from_bytes(&bytes).expect("round trip");
    assert_eq!(delay, reloaded);
    assert!(
        bytes.len()
            < serial::rr_index_to_bytes(&RrIndex::build(&model, IndexBudget::PerVertex(6.0), 19))
                .len()
                / 50,
        "delay index must be a tiny fraction of the full index"
    );
}

#[test]
fn case_study_recovers_planted_truth_with_index_backend() {
    let cs = CaseStudy::generate(&CaseStudyConfig {
        num_areas: 4,
        community_size: 60,
        intra_edges: 3,
        inter_edges: 1,
        seed: 5,
    });
    let index = RrIndex::build(&cs.model, IndexBudget::PerVertex(8.0), 23);
    let mut engine = PitexEngine::with_index_plus(&cs.model, &index, PitexConfig::default());
    let mut total = 0.0;
    for r in &cs.researchers {
        let result = engine.query(r.user, 5);
        total += cs.accuracy(r, &result.tags);
    }
    let avg = total / cs.researchers.len() as f64;
    assert!(avg >= 0.8, "planted accuracy {avg} below 0.8");
}

#[test]
fn learned_model_supports_queries() {
    // Ground truth → log → EM → PITEX query on the learned model.
    let cs = CaseStudy::generate(&CaseStudyConfig {
        num_areas: 3,
        community_size: 40,
        intra_edges: 3,
        inter_edges: 1,
        seed: 9,
    });
    let mut rng = StdRng::seed_from_u64(31);
    let log = synthesize_log(&cs.model, 250, 3, &mut rng);
    let outcome = learn(
        cs.model.graph(),
        &log,
        cs.model.num_tags(),
        &LearnConfig { num_topics: cs.model.num_topics(), iterations: 8, ..Default::default() },
    );
    let learned = TicModel::new(cs.model.graph().clone(), outcome.tag_topic, outcome.edge_topics);
    let mut engine = PitexEngine::with_lazy(&learned, PitexConfig::default());
    let result = engine.query(cs.researchers[0].user, 3);
    assert_eq!(result.tags.len(), 3);
    assert!(result.spread >= 1.0);
}

#[test]
fn facade_prelude_is_complete_enough_for_the_readme_snippet() {
    // The README quickstart must compile and hold as written.
    let model = TicModel::paper_example();
    let mut engine = PitexEngine::with_lazy(&model, PitexConfig::default());
    let result = engine.query(0, 2);
    assert_eq!(result.tags.tags(), &[2, 3]);
}
