//! Executable versions of the §3.2 hardness constructions.
//!
//! The paper's complexity argument is a chain of two reductions:
//!
//! 1. **Lemma 1** — *set cover* reduces to *k-label s-t reachability*
//!    (given a multigraph with labeled edges, is there a set of `k` labels
//!    whose induced subgraph connects `s` to `t`?);
//! 2. **Theorem 1** — *k-label s-t reachability* reduces to PITEX: labels
//!    become topic/tag pairs, a long "amplifier" chain hangs off `t`, and a
//!    constant-factor PITEX approximation would decide reachability.
//!
//! This module implements both constructions as code with brute-force
//! reference solvers, so the reductions are *tested*, not just stated.
//!
//! > Faithfulness note. Theorem 1's construction sets `p(w_i|z_i) = 1` with
//! > orthogonal tags. Under the bag-of-words posterior of Eq. 1 this makes
//! > **every multi-tag posterior empty** (two orthogonal tags share no
//! > topic), so the printed reduction degenerates for `k ≥ 2`. We repair it
//! > the standard way: each tag leaks `ε` mass to every other topic
//! > (`p(w_i|z_j) = ε`), which keeps k-label sets feasible while
//! > concentrating ≥ `1/(k+1)` posterior mass on each chosen label's topic.
//! > The amplifier chain is sized `(n+1)·(k+1)^n + 1` so the spread gap
//! > between reachable and unreachable instances survives the weakened edge
//! > probabilities. The repaired reduction is what `solve_via_pitex`
//! > exercises end-to-end.

use crate::engine::{ExplorationStrategy, PitexConfig, PitexEngine};
use pitex_graph::{GraphBuilder, NodeId};
use pitex_model::{EdgeTopics, TagTopicMatrix, TicModel};

/// A k-label s-t reachability instance (Lemma 1's problem).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KLabelInstance {
    pub num_vertices: usize,
    /// `(src, dst, label)` triples; parallel edges with distinct labels are
    /// allowed (the construction needs a multigraph).
    pub edges: Vec<(u32, u32, u16)>,
    pub num_labels: usize,
    pub s: u32,
    pub t: u32,
}

impl KLabelInstance {
    /// Lemma 1's reduction from set cover: universe `{0..universe}`,
    /// collection `sets`. The instance has `universe + 1` path vertices and
    /// one label per set; element `i ∈ S_j` becomes an edge
    /// `(v_i, v_{i+1})` labeled `j`. `s = v_0` reaches `t = v_universe`
    /// using `k` labels iff `k` sets cover the universe.
    pub fn from_set_cover(universe: usize, sets: &[Vec<usize>]) -> Self {
        assert!(universe >= 1);
        assert!(sets.len() <= u16::MAX as usize);
        let mut edges = Vec::new();
        for (j, set) in sets.iter().enumerate() {
            for &element in set {
                assert!(element < universe, "element out of universe");
                edges.push((element as u32, element as u32 + 1, j as u16));
            }
        }
        Self { num_vertices: universe + 1, edges, num_labels: sets.len(), s: 0, t: universe as u32 }
    }

    /// Does the label subset `labels` connect `s` to `t`?
    pub fn reachable_with(&self, labels: &[u16]) -> bool {
        let mut builder = GraphBuilder::new(self.num_vertices);
        for &(a, b, l) in &self.edges {
            if labels.contains(&l) {
                builder.add_edge(a, b);
            }
        }
        let graph = builder.build();
        pitex_graph::bfs_reachable(&graph, self.s, |_| true).nodes.contains(&self.t)
    }

    /// Brute-force reference solver: does *any* k-subset of labels work?
    pub fn brute_force(&self, k: usize) -> bool {
        for subset in pitex_model::combi::KSubsets::new(self.num_labels as u32, k) {
            let labels: Vec<u16> = subset.into_iter().map(|l| l as u16).collect();
            if self.reachable_with(&labels) {
                return true;
            }
        }
        false
    }

    /// Theorem 1's reduction (with the ε repair; see the module docs).
    /// Returns the PITEX instance: a model whose optimal `k`-tag spread
    /// exceeds [`PitexReduction::spread_threshold`] iff this instance is
    /// `k`-label reachable.
    pub fn to_pitex(&self, k: usize, epsilon: f32) -> PitexReduction {
        assert!(k >= 1 && k <= self.num_labels);
        assert!(epsilon > 0.0 && epsilon < 0.5 / self.num_labels as f32);
        let n = self.num_vertices;
        let chain_len = (n + 1) * (k + 1).pow(n as u32) + 1;
        let total = n + chain_len;

        let mut builder = GraphBuilder::new(total);
        for &(a, b, _) in &self.edges {
            builder.add_edge(a, b);
        }
        // Amplifier chain t -> c_0 -> c_1 -> ... (deterministic edges).
        let chain_base = n as u32;
        builder.add_edge(self.t, chain_base);
        for i in 0..(chain_len as u32 - 1) {
            builder.add_edge(chain_base + i, chain_base + i + 1);
        }
        let graph = builder.build();

        // Edge topic rows. A labeled edge carries probability 1 on its
        // label's topic; where several labels share an ordered pair (the
        // multigraph case), the merged edge carries 1 on each of them —
        // reachability via either label keeps the edge usable, exactly like
        // parallel labeled edges would.
        let num_topics = self.num_labels;
        let mut rows: Vec<Vec<(u16, f32)>> = vec![Vec::new(); graph.num_edges()];
        for &(a, b, l) in &self.edges {
            let e = graph.find_edge(a, b).expect("labeled edge") as usize;
            if rows[e].iter().all(|&(z, _)| z != l) {
                rows[e].push((l, 1.0));
            }
        }
        // Chain edges fire under every topic.
        let mut chain_edges = vec![graph.find_edge(self.t, chain_base).expect("chain head")];
        for i in 0..(chain_len as u32 - 1) {
            chain_edges.push(graph.find_edge(chain_base + i, chain_base + i + 1).unwrap());
        }
        for e in chain_edges {
            rows[e as usize] = (0..num_topics as u16).map(|z| (z, 1.0)).collect();
        }
        let edge_topics = EdgeTopics::new(rows, num_topics);

        // Tag rows: w_i concentrates on z_i and leaks ε everywhere else.
        let strong = 1.0 - epsilon * (num_topics as f32 - 1.0);
        let tag_rows: Vec<Vec<(u16, f32)>> = (0..num_topics)
            .map(|i| {
                (0..num_topics as u16)
                    .map(|z| (z, if z as usize == i { strong } else { epsilon }))
                    .collect()
            })
            .collect();
        let tag_topic = TagTopicMatrix::with_uniform_prior(tag_rows, num_topics);

        PitexReduction {
            model: TicModel::new(graph, tag_topic, edge_topics),
            query_user: self.s,
            k,
            // Unreachable: only original vertices activate, spread ≤ n.
            spread_threshold: n as f64,
        }
    }
}

/// The PITEX instance produced by [`KLabelInstance::to_pitex`].
pub struct PitexReduction {
    pub model: TicModel,
    pub query_user: NodeId,
    pub k: usize,
    /// Spread strictly above this value ⟺ the k-label instance is
    /// reachable.
    pub spread_threshold: f64,
}

/// Decides k-label s-t reachability by solving the reduced PITEX instance
/// with the exact backend (Theorem 1's argument, run forward). Exponential
/// in the instance size like any exact PITEX solver — usable for the small
/// instances the tests exercise.
pub fn solve_via_pitex(instance: &KLabelInstance, k: usize) -> bool {
    let reduction = instance.to_pitex(k, 1e-3 / instance.num_labels as f32);
    let mut engine = PitexEngine::with_exact(
        &reduction.model,
        PitexConfig { strategy: ExplorationStrategy::Enumerate, ..Default::default() },
    );
    let result = engine.query(reduction.query_user, k);
    result.spread > reduction.spread_threshold
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A set-cover instance with cover number 2: {0,1}, {2,3}, {1,2}.
    fn cover_two() -> KLabelInstance {
        KLabelInstance::from_set_cover(4, &[vec![0, 1], vec![2, 3], vec![1, 2]])
    }

    /// Needs all three sets: {0}, {1}, {2}.
    fn cover_three() -> KLabelInstance {
        KLabelInstance::from_set_cover(3, &[vec![0], vec![1], vec![2]])
    }

    #[test]
    fn set_cover_reduction_shape() {
        let inst = cover_two();
        assert_eq!(inst.num_vertices, 5);
        assert_eq!(inst.num_labels, 3);
        assert_eq!(inst.edges.len(), 6);
    }

    #[test]
    fn brute_force_matches_cover_numbers() {
        let two = cover_two();
        assert!(!two.brute_force(1), "no single set covers {{0..3}}");
        assert!(two.brute_force(2), "{{0,1}} ∪ {{2,3}} covers");
        let three = cover_three();
        assert!(!three.brute_force(2));
        assert!(three.brute_force(3));
    }

    #[test]
    fn reachable_with_checks_exact_label_sets() {
        let inst = cover_two();
        assert!(inst.reachable_with(&[0, 1]));
        assert!(!inst.reachable_with(&[0, 2]), "{{0,1}} ∪ {{1,2}} misses 3");
        assert!(!inst.reachable_with(&[2]));
    }

    #[test]
    fn theorem1_reduction_decides_reachability() {
        let two = cover_two();
        assert!(solve_via_pitex(&two, 2));
        assert!(!solve_via_pitex(&two, 1));
    }

    #[test]
    fn theorem1_gap_is_wide() {
        // The reachable optimum should clear the threshold by a wide margin
        // (the amplifier chain), not by rounding luck.
        let inst = cover_two();
        let reduction = inst.to_pitex(2, 1e-4);
        let mut engine = PitexEngine::with_exact(
            &reduction.model,
            PitexConfig { strategy: ExplorationStrategy::Enumerate, ..Default::default() },
        );
        let result = engine.query(reduction.query_user, 2);
        assert!(
            result.spread > 4.0 * reduction.spread_threshold,
            "spread {} vs threshold {}",
            result.spread,
            reduction.spread_threshold
        );
    }

    #[test]
    fn erratum_orthogonal_tags_collapse_posteriors() {
        // Documents why the ε repair is needed: with the paper's verbatim
        // orthogonal construction, every 2-tag posterior is empty.
        let rows: Vec<Vec<(u16, f32)>> = vec![vec![(0, 1.0)], vec![(1, 1.0)]];
        let matrix = TagTopicMatrix::with_uniform_prior(rows, 2);
        let posterior =
            pitex_model::TopicPosterior::compute(&matrix, &pitex_model::TagSet::from([0, 1]));
        assert!(posterior.is_empty());
    }

    #[test]
    fn multigraph_parallel_labels_are_preserved() {
        // Two sets covering the same element produce parallel labeled edges
        // that merge into one graph edge with both topics.
        let inst = KLabelInstance::from_set_cover(1, &[vec![0], vec![0]]);
        let reduction = inst.to_pitex(1, 1e-4);
        let e = reduction.model.graph().find_edge(0, 1).unwrap();
        assert_eq!(reduction.model.edge_topics().row(e).count(), 2);
    }
}
