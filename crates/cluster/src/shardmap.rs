//! The shard map: which server owns which user.
//!
//! A PITEX query `(u, k)` names exactly one user, so the cluster partitions
//! by user: `shard_of(u)` is a pure function of `(seed, u)` — a splitmix64
//! mix reduced modulo the shard count — and every process that loads the
//! same map file routes identically, with no coordination service in the
//! loop. Each shard lists one or more *replica* addresses (identical
//! servers the router fails over between); capacity is added by growing a
//! shard's replica list, user-space is re-cut by writing a new map.
//!
//! The map travels as an artifact like models and indexes do: a
//! line-oriented text format for humans (`pitex shardmap`) and a `PSHM`
//! binary codec over [`pitex_support::codec`] for tooling, auto-detected by
//! magic on load.

use pitex_support::codec::{DecodeError, Decoder, Encoder};

const MAGIC: [u8; 4] = *b"PSHM";
const VERSION: u32 = 1;

/// Deterministic user → shard assignment plus per-shard replica lists.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    seed: u64,
    /// `shards[s]` is the replica address list of shard `s`.
    shards: Vec<Vec<String>>,
}

/// The splitmix64 finalizer: a full-avalanche 64-bit mix, so consecutive
/// user ids land on unrelated shards (the same mix the index builder uses
/// for per-draw RNG streams).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl ShardMap {
    /// A map over the given replica lists (one inner list per shard).
    /// Fails on an empty cluster, an empty replica list, or a blank /
    /// whitespace-carrying address (addresses must be single tokens: the
    /// text format is whitespace-separated).
    pub fn new(shards: Vec<Vec<String>>) -> Result<Self, String> {
        Self::with_seed(shards, 42)
    }

    /// [`new`](Self::new) under an explicit hash seed. Changing the seed
    /// re-cuts the whole user space — every router and tool must load the
    /// same map file, which carries the seed.
    pub fn with_seed(shards: Vec<Vec<String>>, seed: u64) -> Result<Self, String> {
        if shards.is_empty() {
            return Err("a shard map needs at least one shard".to_string());
        }
        for (s, replicas) in shards.iter().enumerate() {
            if replicas.is_empty() {
                return Err(format!("shard {s} has no replicas"));
            }
            for addr in replicas {
                if addr.is_empty() || addr.chars().any(|c| c.is_whitespace()) {
                    return Err(format!("shard {s}: bad replica address {addr:?}"));
                }
            }
        }
        Ok(Self { seed, shards })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total replica count across shards.
    pub fn num_replicas(&self) -> usize {
        self.shards.iter().map(|r| r.len()).sum()
    }

    /// The hash seed the user cut is keyed by.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The replica addresses of one shard.
    pub fn replicas(&self, shard: usize) -> &[String] {
        &self.shards[shard]
    }

    /// The shard owning `user` — deterministic across processes and runs.
    pub fn shard_of(&self, user: u32) -> usize {
        (mix(self.seed ^ u64::from(user)) % self.shards.len() as u64) as usize
    }

    /// The scatter plan for a batch of users: one `(shard, users)` group
    /// per shard that owns at least one of them, shards in ascending
    /// order, each group's users in input order. This is the unit a
    /// batched scatter sends per connection.
    pub fn plan(&self, users: &[u32]) -> Vec<(usize, Vec<u32>)> {
        let mut groups: Vec<Vec<u32>> = vec![Vec::new(); self.shards.len()];
        for &user in users {
            groups[self.shard_of(user)].push(user);
        }
        groups.into_iter().enumerate().filter(|(_, users)| !users.is_empty()).collect()
    }

    /// Serializes to the line-oriented text format:
    ///
    /// ```text
    /// # pitex shard map
    /// seed 42
    /// shard 0 127.0.0.1:7411 127.0.0.1:7412
    /// shard 1 127.0.0.1:7421 127.0.0.1:7422
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::from("# pitex shard map\n");
        out.push_str(&format!("seed {}\n", self.seed));
        for (s, replicas) in self.shards.iter().enumerate() {
            out.push_str(&format!("shard {s} {}\n", replicas.join(" ")));
        }
        out
    }

    /// Parses the [`to_text`](Self::to_text) format. Blank lines and `#`
    /// comments are ignored; shard ids must be consecutive from 0 (the id
    /// is part of the routing function, so a silent gap would mis-route).
    pub fn parse_text(text: &str) -> Result<ShardMap, String> {
        let mut seed = 42u64;
        let mut shards: Vec<Vec<String>> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut tokens = line.split_ascii_whitespace();
            match tokens.next() {
                Some("seed") => {
                    let v =
                        tokens.next().ok_or(format!("line {}: seed needs a value", lineno + 1))?;
                    seed = v.parse().map_err(|_| format!("line {}: bad seed {v:?}", lineno + 1))?;
                    if tokens.next().is_some() {
                        return Err(format!("line {}: trailing tokens after seed", lineno + 1));
                    }
                }
                Some("shard") => {
                    let id =
                        tokens.next().ok_or(format!("line {}: shard needs an id", lineno + 1))?;
                    let id: usize = id
                        .parse()
                        .map_err(|_| format!("line {}: bad shard id {id:?}", lineno + 1))?;
                    if id != shards.len() {
                        return Err(format!(
                            "line {}: shard ids must be consecutive (expected {}, found {id})",
                            lineno + 1,
                            shards.len()
                        ));
                    }
                    let replicas: Vec<String> = tokens.map(str::to_string).collect();
                    shards.push(replicas);
                }
                Some(other) => {
                    return Err(format!("line {}: unknown directive {other:?}", lineno + 1))
                }
                None => unreachable!("blank lines were skipped"),
            }
        }
        Self::with_seed(shards, seed)
    }

    /// Serializes to the `PSHM` binary artifact.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new(Vec::new());
        enc.header(MAGIC, VERSION);
        enc.u64(self.seed);
        enc.u32(self.shards.len() as u32);
        for replicas in &self.shards {
            enc.u32(replicas.len() as u32);
            for addr in replicas {
                enc.str(addr);
            }
        }
        enc.into_inner()
    }

    /// Decodes the `PSHM` binary artifact.
    pub fn from_bytes(bytes: &[u8]) -> Result<ShardMap, DecodeError> {
        let mut dec = Decoder::new(bytes);
        dec.header(MAGIC, VERSION)?;
        let seed = dec.u64()?;
        let num_shards = dec.u32()? as usize;
        let mut shards = Vec::with_capacity(num_shards);
        for _ in 0..num_shards {
            let num_replicas = dec.u32()? as usize;
            let mut replicas = Vec::with_capacity(num_replicas);
            for _ in 0..num_replicas {
                replicas.push(dec.str()?);
            }
            shards.push(replicas);
        }
        Self::with_seed(shards, seed)
            .map_err(|_| DecodeError::CorruptLength { declared: num_shards, remaining: 0 })
    }

    /// Loads a map file that is either the `PSHM` binary artifact or the
    /// text format, auto-detected via the magic tag.
    pub fn from_file_bytes(bytes: &[u8]) -> Result<ShardMap, String> {
        if bytes.starts_with(&MAGIC) {
            return Self::from_bytes(bytes).map_err(|e| e.to_string());
        }
        let text = std::str::from_utf8(bytes)
            .map_err(|_| "shard map file is neither PSHM nor UTF-8 text".to_string())?;
        Self::parse_text(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_by_two() -> ShardMap {
        ShardMap::new(vec![
            vec!["127.0.0.1:7411".to_string(), "127.0.0.1:7412".to_string()],
            vec!["127.0.0.1:7421".to_string(), "127.0.0.1:7422".to_string()],
        ])
        .unwrap()
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let map = two_by_two();
        for user in 0..10_000u32 {
            let shard = map.shard_of(user);
            assert!(shard < 2);
            assert_eq!(shard, map.shard_of(user), "same user, same shard");
            assert_eq!(shard, two_by_two().shard_of(user), "same map file, same shard");
        }
    }

    #[test]
    fn hashing_spreads_dense_user_ids() {
        // Dense ids (the common case: CSR vertex ids) must not all land on
        // one shard; 2x of uniform is the cluster's balance contract.
        for shards in [2usize, 4, 8, 16] {
            let map = ShardMap::new(vec![vec!["a:1".to_string()]; shards]).unwrap();
            let mut load = vec![0usize; shards];
            let users = 4_096u32;
            for user in 0..users {
                load[map.shard_of(user)] += 1;
            }
            let uniform = users as usize / shards;
            for (s, &l) in load.iter().enumerate() {
                assert!(l > 0, "{shards} shards: shard {s} got nothing");
                assert!(l <= 2 * uniform, "{shards} shards: shard {s} holds {l} > 2x uniform");
            }
        }
    }

    #[test]
    fn different_seeds_cut_differently() {
        let a = ShardMap::with_seed(vec![vec!["x:1".to_string()]; 8], 1).unwrap();
        let b = ShardMap::with_seed(vec![vec!["x:1".to_string()]; 8], 2).unwrap();
        let moved = (0..1_000u32).filter(|&u| a.shard_of(u) != b.shard_of(u)).count();
        assert!(moved > 500, "a new seed re-cuts most of the user space (moved {moved})");
    }

    #[test]
    fn plan_groups_users_by_shard_in_order() {
        let map = two_by_two();
        let users: Vec<u32> = (0..64).collect();
        let plan = map.plan(&users);
        assert_eq!(plan.len(), 2, "64 dense users touch both shards");
        let mut seen = 0usize;
        let mut last_shard = None;
        for (shard, group) in &plan {
            assert!(last_shard < Some(*shard), "shards ascend");
            last_shard = Some(*shard);
            for &u in group {
                assert_eq!(map.shard_of(u), *shard);
            }
            seen += group.len();
        }
        assert_eq!(seen, users.len(), "the plan partitions the batch");
        assert!(map.plan(&[]).is_empty());
    }

    #[test]
    fn text_and_binary_round_trip() {
        let map = two_by_two();
        assert_eq!(ShardMap::parse_text(&map.to_text()).unwrap(), map);
        assert_eq!(ShardMap::from_bytes(&map.to_bytes()).unwrap(), map);
        assert_eq!(ShardMap::from_file_bytes(&map.to_bytes()).unwrap(), map);
        assert_eq!(ShardMap::from_file_bytes(map.to_text().as_bytes()).unwrap(), map);
    }

    #[test]
    fn text_parser_rejects_malformed_maps() {
        for (text, needle) in [
            ("", "at least one shard"),
            ("shard 1 a:1", "consecutive"),
            ("shard 0 a:1\nshard 2 b:1", "consecutive"),
            ("shard 0", "no replicas"),
            ("seed\nshard 0 a:1", "seed needs"),
            ("seed x\nshard 0 a:1", "bad seed"),
            ("frobnicate 0 a:1", "unknown directive"),
        ] {
            let err = ShardMap::parse_text(text).expect_err(text);
            assert!(err.contains(needle), "{text:?} -> {err:?}");
        }
        assert!(ShardMap::from_file_bytes(&[0xFF, 0xFE, 0x00]).is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# a cluster\n\nseed 7\n# shard zero\nshard 0 a:1 b:2\n";
        let map = ShardMap::parse_text(text).unwrap();
        assert_eq!(map.seed(), 7);
        assert_eq!(map.replicas(0), ["a:1", "b:2"]);
    }
}
