//! Criterion micro-benchmarks for the index kernels: tag-aware reachability
//! (Def. 3), cut-filter construction and filtering (§6.2), and RR-Graph
//! recovery (Algo. 4).

use criterion::{criterion_group, criterion_main, Criterion};
use pitex_datasets::{DatasetProfile, UserGroup, UserGroups};
use pitex_index::prune::CutFilter;
use pitex_index::rrgraph::ReachScratch;
use pitex_index::{delay, IndexBudget, RrIndex};
use pitex_model::{PosteriorEdgeProbs, TagSet};
use pitex_support::EpochVisited;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_index(c: &mut Criterion) {
    let model = DatasetProfile::lastfm_like().generate();
    let groups = UserGroups::from_graph(model.graph());
    let user = groups.members(UserGroup::Mid)[0];
    let index = RrIndex::build(&model, IndexBudget::PerVertex(4.0), 7);
    let tags = TagSet::from([3, 17, 29]);
    let posterior = model.posterior(&tags);
    let mut cache = model.new_prob_cache();

    let member_graphs: Vec<_> =
        index.graphs_containing(user).iter().map(|&gid| &index.graphs()[gid as usize]).collect();

    c.bench_function("tag_aware_reachability_all_members", |b| {
        let mut scratch = ReachScratch::new();
        b.iter(|| {
            let mut probs = PosteriorEdgeProbs::new(model.edge_topics(), &posterior, &mut cache);
            let mut visits = 0u64;
            let mut hits = 0u32;
            for rr in &member_graphs {
                if rr.reaches_target(user, &mut probs, &mut scratch, &mut visits) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });

    c.bench_function("cut_filter_build", |b| {
        b.iter(|| {
            black_box(CutFilter::build(user, member_graphs.iter().copied(), model.edge_topics()))
        })
    });

    let filter = CutFilter::build(user, member_graphs.iter().copied(), model.edge_topics());
    c.bench_function("cut_filter_candidates", |b| {
        let mut marks = EpochVisited::new(0);
        let mut out = Vec::new();
        b.iter(|| {
            let mut probs = PosteriorEdgeProbs::new(model.edge_topics(), &posterior, &mut cache);
            filter.candidates(&mut probs, &mut marks, &mut out);
            black_box(out.len())
        })
    });

    c.bench_function("recover_rr_graph", |b| {
        let mut rng = StdRng::seed_from_u64(11);
        let mut visited = EpochVisited::new(0);
        b.iter(|| {
            black_box(delay::recover_rr_graph(
                model.graph(),
                model.edge_topics(),
                user,
                &mut rng,
                &mut visited,
            ))
        })
    });
}

criterion_group!(benches, bench_index);
criterion_main!(benches);
