//! Influence-spread estimation for PITEX.
//!
//! A PITEX query evaluates `E[I(u|W)]` — the expected number of users
//! activated by an independent-cascade process seeded at `u` with edge
//! probabilities `p(e|W)` — for many candidate tag sets `W`. Exact
//! evaluation is #P-hard (§4), so the paper builds a sampling framework:
//!
//! * [`McSampler`] — forward Monte-Carlo sampling (§4, after Kempe et al.);
//! * [`RrSampler`] — reverse-reachable set sampling (§4, after Borgs et al.);
//! * [`LazySampler`] — the paper's lazy propagation sampling (Algo. 2):
//!   geometric skip counters that probe an edge only in the iterations where
//!   it actually fires;
//! * [`exact`] — a possible-world enumerator for small graphs, the ground
//!   truth every estimator is tested against;
//! * [`bounds`] — the Chernoff-based sample sizes of Lemmas 2–3 and the
//!   martingale stopping rule shared by all three samplers.
//!
//! All estimators implement [`SpreadEstimator`] and consume edge
//! probabilities through the [`pitex_model::EdgeProbs`] abstraction, so the
//! same machinery estimates real tag sets, Lemma-8 upper bounds, and the
//! `p_max` graph used by the index.

pub mod bounds;
pub mod estimator;
pub mod exact;
pub mod geometric;
pub mod lazy;
pub mod lt;
pub mod mc;
pub mod rr;

pub use bounds::{SampleBudget, SamplingParams};
pub use estimator::{Estimate, SpreadEstimator};
pub use exact::{exact_spread, ExactEstimator};
pub use lazy::LazySampler;
pub use lt::{exact_spread_lt, LtSampler};
pub use mc::McSampler;
pub use rr::RrSampler;
