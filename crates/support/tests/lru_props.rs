//! Property tests for the sharded LRU cache: capacity is respected, hits
//! are never stale, and a single shard matches a reference LRU exactly
//! under arbitrary interleavings of insert / get / invalidate.

use pitex_support::lru::ShardedLru;
use proptest::prelude::*;
use std::collections::HashMap;

/// One cache operation, decoded from a generated `(op, key, value)` triple.
#[derive(Clone, Copy, Debug)]
enum Op {
    Insert(u16, u16),
    Get(u16),
    Invalidate(u16),
}

fn decode(ops: Vec<(u8, u16, u16)>) -> Vec<Op> {
    ops.into_iter()
        .map(|(op, key, value)| match op % 3 {
            0 => Op::Insert(key, value),
            1 => Op::Get(key),
            _ => Op::Invalidate(key),
        })
        .collect()
}

/// Reference single-shard LRU: a vec ordered least → most recently used.
struct ModelLru {
    capacity: usize,
    entries: Vec<(u16, u16)>,
}

impl ModelLru {
    fn new(capacity: usize) -> Self {
        Self { capacity, entries: Vec::new() }
    }

    fn get(&mut self, key: u16) -> Option<u16> {
        let pos = self.entries.iter().position(|&(k, _)| k == key)?;
        let entry = self.entries.remove(pos);
        self.entries.push(entry);
        Some(entry.1)
    }

    fn insert(&mut self, key: u16, value: u16) {
        if self.capacity == 0 {
            return;
        }
        if let Some(pos) = self.entries.iter().position(|&(k, _)| k == key) {
            self.entries.remove(pos);
        } else if self.entries.len() >= self.capacity {
            self.entries.remove(0); // evict the least recently used
        }
        self.entries.push((key, value));
    }

    fn invalidate(&mut self, key: u16) -> bool {
        match self.entries.iter().position(|&(k, _)| k == key) {
            Some(pos) => {
                self.entries.remove(pos);
                true
            }
            None => false,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// One shard behaves exactly like the reference LRU — same hit/miss
    /// pattern, same values, same evictions — under any interleaving.
    #[test]
    fn single_shard_matches_reference_lru(
        capacity in 1usize..9,
        raw_ops in proptest::collection::vec((0u8..3, 0u16..24, 0u16..1000), 1..250),
    ) {
        let cache: ShardedLru<u16, u16> = ShardedLru::with_shards(capacity, 1);
        let mut model = ModelLru::new(capacity);
        for (step, op) in decode(raw_ops).into_iter().enumerate() {
            match op {
                Op::Insert(k, v) => {
                    cache.insert(k, v);
                    model.insert(k, v);
                }
                Op::Get(k) => {
                    prop_assert_eq!(cache.get(&k), model.get(k), "step {}", step);
                }
                Op::Invalidate(k) => {
                    prop_assert_eq!(cache.invalidate(&k), model.invalidate(k), "step {}", step);
                }
            }
            prop_assert!(cache.len() <= capacity, "step {}: over capacity", step);
        }
        prop_assert_eq!(cache.len(), model.entries.len());
    }

    /// Across any shard count: a hit never returns a stale value — it is
    /// always the most recently inserted value for that key, and a key is
    /// gone for good after `invalidate` until re-inserted.
    #[test]
    fn hits_are_never_stale(
        capacity in 0usize..33,
        shards in 1usize..9,
        raw_ops in proptest::collection::vec((0u8..3, 0u16..40, 0u16..1000), 1..300),
    ) {
        let cache: ShardedLru<u16, u16> = ShardedLru::with_shards(capacity, shards);
        let mut latest: HashMap<u16, u16> = HashMap::new();
        for (step, op) in decode(raw_ops).into_iter().enumerate() {
            match op {
                Op::Insert(k, v) => {
                    cache.insert(k, v);
                    latest.insert(k, v);
                }
                Op::Get(k) => {
                    if let Some(v) = cache.get(&k) {
                        prop_assert_eq!(
                            Some(v), latest.get(&k).copied(),
                            "step {}: stale value for key {}", step, k
                        );
                    }
                }
                Op::Invalidate(k) => {
                    cache.invalidate(&k);
                    latest.remove(&k);
                    prop_assert_eq!(cache.get(&k), None, "step {}: read after invalidate", step);
                }
            }
            prop_assert!(cache.len() <= capacity, "step {}: over capacity", step);
        }
    }

    /// Predicate invalidation removes exactly the matching keys — a
    /// survivor still hits with its latest value, a victim misses — and
    /// never resurrects entries that were already evicted or invalidated.
    #[test]
    fn invalidate_if_removes_exactly_the_matching_keys(
        capacity in 1usize..33,
        shards in 1usize..9,
        raw_ops in proptest::collection::vec((0u8..3, 0u16..32, 0u16..1000), 1..200),
        predicate_modulus in 2u16..5,
    ) {
        let cache: ShardedLru<u16, u16> = ShardedLru::with_shards(capacity, shards);
        // What the cache *may* hold: key -> latest value. Eviction can drop
        // any of these, but nothing outside this map may ever surface.
        let mut latest: HashMap<u16, u16> = HashMap::new();
        for op in decode(raw_ops) {
            match op {
                Op::Insert(k, v) => {
                    cache.insert(k, v);
                    latest.insert(k, v);
                }
                Op::Get(k) => {
                    cache.get(&k);
                }
                Op::Invalidate(k) => {
                    cache.invalidate(&k);
                    latest.remove(&k);
                }
            }
        }
        let live_before = cache.len();
        let matches = |k: &u16| k % predicate_modulus == 0;
        let removed = cache.invalidate_if(|k, _| matches(k));
        prop_assert_eq!(cache.len(), live_before - removed, "sweep removed what it counted");
        for (&k, &v) in &latest {
            let got = cache.get(&k);
            if matches(&k) {
                prop_assert_eq!(got, None, "key {} survived its own predicate", k);
            } else if let Some(got) = got {
                // Survivors may have been LRU-evicted, but a hit must be
                // the latest value — the sweep resurrects nothing.
                prop_assert_eq!(got, v, "stale survivor for key {}", k);
            }
        }
        // A second identical sweep finds nothing: victims stay gone.
        prop_assert_eq!(cache.invalidate_if(|k, _| matches(k)), 0);
    }

    /// Capacity is a hard bound even when inserts vastly outnumber slots,
    /// and the counters account for every lookup.
    #[test]
    fn capacity_and_counters_are_consistent(
        capacity in 1usize..17,
        shards in 1usize..5,
        keys in proptest::collection::vec(0u16..64, 1..200),
    ) {
        let cache: ShardedLru<u16, u16> = ShardedLru::with_shards(capacity, shards);
        let mut lookups = 0u64;
        for &k in &keys {
            cache.insert(k, k.wrapping_mul(3));
            cache.get(&k);
            lookups += 1;
            prop_assert!(cache.len() <= capacity);
        }
        let c = cache.counters();
        prop_assert_eq!(c.hits + c.misses, lookups);
        prop_assert_eq!(c.insertions, keys.len() as u64);
        // An insert into a full shard evicts exactly one entry, so live
        // entries = insertions - evictions - invalidations (none here),
        // minus overwrites which insert without growing.
        prop_assert!(cache.len() as u64 <= c.insertions - c.evictions);
    }
}
