//! Workload capture + open-loop replay, end to end.
//!
//! Two scenarios the unit tests cannot cover:
//!
//! 1. **Coordinated omission**, demonstrated rather than asserted by fiat:
//!    against a stub server with one injected 400ms stall, the closed-loop
//!    [`LoadGen`] reports a flat p99 (its generators stop sending while
//!    blocked, so the stall is sampled once per connection), while the
//!    open-loop [`Replay`] — measuring every request from its *scheduled*
//!    arrival — carries the whole backlog into the tail.
//! 2. **Record → replay → verify round trip** against a real server:
//!    traffic captured via [`ServeOptions::capture`] replays through
//!    [`schedule_from_log`] and verifies bit-identically (`mismatches=0`),
//!    with the traced sample feeding per-phase latency attribution.

use pitex::prelude::*;
use pitex::serve::{
    schedule_from_log, CaptureAction, LoadGen, Replay, Response, ServeClient, ServeOptions, Server,
    SyntheticSchedule,
};
use pitex::support::obs::{read_log, CaptureOptions};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pitex-workload-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A protocol-shaped stub: answers every request with a canned `OK` line,
/// except that handling request number `stall_at` opens a `stall`-long
/// window during which every in-flight request sleeps until the window
/// closes — one server-side hiccup, identical for both load shapes.
fn spawn_stall_stub(stall_at: u64, stall: Duration) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let hits = Arc::new(AtomicU64::new(0));
    let stall_until = Arc::new(Mutex::new(None::<Instant>));
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            let hits = Arc::clone(&hits);
            let stall_until = Arc::clone(&stall_until);
            std::thread::spawn(move || stub_conn(stream, &hits, &stall_until, stall_at, stall));
        }
    });
    addr
}

fn stub_conn(
    stream: TcpStream,
    hits: &AtomicU64,
    stall_until: &Mutex<Option<Instant>>,
    stall_at: u64,
    stall: Duration,
) {
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        if line.trim() == "QUIT" {
            let _ = writer.write_all(b"BYE\n");
            return;
        }
        if hits.fetch_add(1, Ordering::SeqCst) + 1 == stall_at {
            *stall_until.lock().unwrap() = Some(Instant::now() + stall);
        }
        let deadline = *stall_until.lock().unwrap();
        if let Some(deadline) = deadline {
            let now = Instant::now();
            if deadline > now {
                std::thread::sleep(deadline - now);
            }
        }
        if writer.write_all(b"OK user=0 k=2 tags=2,3 spread=1.5 cached=0 us=50\n").is_err() {
            return;
        }
    }
}

/// The coordinated-omission demonstration. Same stall, two load shapes:
/// the closed loop samples it at most once per connection (its clients
/// stop *sending* while blocked), so ~4 of 1000 samples are slow and p99
/// stays flat; the open loop keeps scheduling arrivals through the stall,
/// so a few hundred requests accrue queueing delay from their scheduled
/// instant and p99 reports the stall.
#[test]
fn open_loop_tail_reflects_a_stall_the_closed_loop_hides() {
    const STALL: Duration = Duration::from_millis(400);
    // Well below the stall, well above a loopback round trip against a
    // stub that does no work — generous in both directions for slow CI.
    const THRESHOLD_US: u64 = 100_000;

    // Closed loop: 4 clients x 250 requests, stall at request 100.
    let gen = LoadGen { clients: 4, requests_per_client: 250, ..LoadGen::default() };
    let closed = gen.run(spawn_stall_stub(100, STALL)).unwrap();
    assert_eq!(closed.ok, 1000);
    let closed_p99 = closed.latency_hist.quantile(0.99);
    assert!(
        closed_p99 < THRESHOLD_US,
        "closed-loop p99 should hide the stall (coordinated omission), got {closed_p99}us"
    );

    // Open loop: ~0.75s of Poisson arrivals at 800/s, stall at request 50
    // (~60ms in), so roughly 300 scheduled arrivals land inside the stall
    // window and wait behind it.
    let items = SyntheticSchedule {
        rate: 800.0,
        requests: 600,
        users: 8,
        zipf: 0.0,
        ..SyntheticSchedule::default()
    }
    .build();
    let replay = Replay { conns: 4, verify: false, trace_every: 0, ..Replay::default() };
    let open = replay.run(spawn_stall_stub(50, STALL), &items).unwrap();
    assert_eq!(open.ok, 600);
    assert_eq!(open.errors, 0);
    let open_p99 = open.latency.quantile(0.99);
    assert!(
        open_p99 > THRESHOLD_US,
        "open-loop p99 must carry the stall backlog, got {open_p99}us"
    );
    assert!(
        open_p99 > closed_p99,
        "same stall: open loop ({open_p99}us) must report a fatter tail than \
         closed loop ({closed_p99}us)"
    );
}

/// Record production-shaped traffic on a real server, replay the log, and
/// verify the answers bit-identically — the whole tentpole in one pass,
/// with no environment variables involved ([`ServeOptions::capture`] wires
/// the recorder hermetically).
#[test]
fn recorded_traffic_replays_and_verifies_bit_identically() {
    let dir = tmp_dir("record-replay");
    let path = dir.join("cap.pwrk");
    let model = Arc::new(TicModel::paper_example());
    let handle = EngineHandle::new(model, EngineBackend::Exact, PitexConfig::default()).unwrap();
    let server = Server::spawn(
        handle,
        ("127.0.0.1", 0),
        ServeOptions {
            capture: Some(CaptureOptions { path: Some(path.clone()), rate: 1 }),
            ..ServeOptions::default()
        },
    )
    .unwrap();

    // The "production" run: one query per user of the Fig. 2 graph.
    let mut client = ServeClient::connect(server.addr()).unwrap();
    for user in 0..6u32 {
        let Response::Ok(reply) = client.query(user, 2).unwrap() else {
            panic!("query for user {user} must succeed")
        };
        assert!(!reply.tags.is_empty());
    }
    // `CAPTURE off` flushes, so the log is complete on disk before we read.
    let (enabled, recorded, dropped) = client.capture(CaptureAction::Off).unwrap();
    assert!(!enabled);
    assert_eq!(recorded, 6);
    assert_eq!(dropped, 0);

    let log = read_log(&std::fs::read(&path).unwrap()).unwrap();
    assert_eq!(log.truncated_bytes, 0);
    assert_eq!(log.records.len(), 6);
    for record in &log.records {
        assert_eq!(record.verb, "QUERY");
        assert!(!record.tags.is_empty(), "the recorded answer travels in the log");
    }

    let items = schedule_from_log(&log, 10.0);
    assert_eq!(items.len(), 6);
    let comparable = items.iter().filter(|i| i.expect.is_some()).count() as u64;
    assert!(comparable > 0, "ok-outcome records must carry expectations");

    let replay = Replay { conns: 2, verify: true, trace_every: 4, ..Replay::default() };
    let report = replay.run(server.addr(), &items).unwrap();
    assert_eq!(report.sent, 6);
    assert_eq!(report.ok, 6);
    assert_eq!(report.verified, comparable);
    assert_eq!(
        report.mismatches, 0,
        "replay must match the recording bit-identically: {:?}",
        report.mismatch_examples
    );
    assert_eq!(report.latency.count(), 6, "every request contributes an open-loop sample");
    assert!(
        report.phases.contains_key("net"),
        "the traced sample must feed phase attribution, got {:?}",
        report.phases.keys().collect::<Vec<_>>()
    );
    let rendered = report.render();
    assert!(rendered.contains("verify compared="));
    assert!(rendered.contains("phase name="));

    server.stop().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
