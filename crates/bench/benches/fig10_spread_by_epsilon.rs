//! Fig. 10 — Influence spread when varying ε.
//!
//! The spreads of all methods agree closely at small ε and drift apart as ε
//! grows (fewer samples ⇒ coarser estimates).

use pitex_bench::{banner, param_sweep, print_sweep_table, BenchEnv, Method};

fn main() {
    let env = BenchEnv::from_env();
    banner("Fig. 10: average influence spread vs ε", "mid user group; δ = 1000, k = 3");
    let rows = param_sweep(
        &env,
        &Method::OFFLINE_PLUS_LAZY,
        env.profiles(),
        &[0.3, 0.5, 0.7, 0.9],
        |config, _k, eps| config.epsilon = eps,
    );
    print_sweep_table(
        &rows,
        &Method::OFFLINE_PLUS_LAZY,
        "epsilon",
        |o| o.spread.mean(),
        "influence spread",
    );
}
