//! Incremental RR-index repair.
//!
//! Rebuilding the RR-Graph index is the paper's own bottleneck (§6 reports
//! ~10⁴ seconds on twitter at ε = 0.1), so rebuilding it on every edge
//! update is a non-starter. This module resamples **only the dirty draws**
//! and splices them into the existing index.
//!
//! Soundness of the dirty test. Draw `i` is a pure function of
//! `(model, seed, i)` ([`pitex_index::sample_rr_graph_at`]): a reverse BFS
//! from the drawn target that probes the in-edges of every visited vertex,
//! consuming one RNG draw per probed edge with `p(e) > 0`. Replaying the
//! same stream on the mutated model diverges only when a *probed* edge
//! changed — and every probed edge's head is a visited vertex, i.e. a
//! member of the stored node set. So a graph can change **only if it
//! contains the head vertex of a mutated edge**, which is exactly what the
//! index's per-user membership lists (`RrIndex::graphs_containing`, the
//! same inverted-list machinery `index::prune::CutFilter` queries at
//! answer time) return in O(dirty) — no scan over θ graphs.
//!
//! Clean graphs are reused verbatim; when an edge insert/removal shifted
//! the CSR edge ids, their stored ids are remapped through the endpoint
//! pair (`RrGraph::with_remapped_edge_ids`). The result is **bit-identical
//! to a from-scratch `RrIndex::build` on the mutated model** — verified by
//! property test — so determinism of `(model, budget, seed)` survives any
//! chain of repairs. Past a configurable dirty fraction (or when the
//! vertex count or sample budget changed, which re-targets every draw) the
//! repair falls back to a full rebuild.

use pitex_index::{sample_rr_graph_at, RrGraph, RrIndex};
use pitex_model::TicModel;
use std::collections::BTreeSet;

/// Tuning for [`repair_rr_index`]. The sample budget and seed are *not*
/// options: they travel inside the index itself ([`RrIndex::budget`] /
/// [`RrIndex::seed`], persisted in the artifact), so a repair can never be
/// run under mismatched sampling parameters.
#[derive(Clone, Copy, Debug)]
pub struct RepairOptions {
    /// Worker threads for resampling / rebuilding (result-invariant).
    pub threads: usize,
    /// Fall back to a full rebuild when more than this fraction of graphs
    /// is dirty (`PITEX_LIVE_DIRTY_THRESHOLD`, default 0.25).
    pub dirty_threshold: f64,
}

impl Default for RepairOptions {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            dirty_threshold: 0.25,
        }
    }
}

impl RepairOptions {
    /// Applies the `PITEX_LIVE_DIRTY_THRESHOLD` and `PITEX_LIVE_THREADS`
    /// environment overrides, when set and parseable.
    pub fn with_env(mut self) -> Self {
        if let Some(t) =
            std::env::var("PITEX_LIVE_DIRTY_THRESHOLD").ok().and_then(|s| s.parse().ok())
        {
            self.dirty_threshold = t;
        }
        if let Some(t) = std::env::var("PITEX_LIVE_THREADS").ok().and_then(|s| s.parse().ok()) {
            self.threads = t;
        }
        self
    }
}

/// What a repair did — the counters `RELOADED` replies and `bench_live`
/// report.
#[derive(Clone, Debug, PartialEq)]
pub struct RepairReport {
    /// Graphs in the repaired index (= θ of the new budget).
    pub theta: u64,
    /// Graphs regenerated.
    pub resampled: u64,
    /// Graphs reused from the old index.
    pub reused: u64,
    /// Whether the repair degenerated to a full rebuild.
    pub full_rebuild: bool,
    /// Why it did, when it did.
    pub reason: Option<String>,
    /// Union of the member vertices of every resampled graph (old and new
    /// version), for membership-scoped cache invalidation. Empty after a
    /// full rebuild — the caller must treat everything as dirty then.
    pub dirty_members: Vec<u32>,
}

/// Heads (target-side endpoints) of every edge whose generation-relevant
/// state differs between the two models: removed, added, or `p(e)` changed.
/// Rows that change `p(e|z)` without moving `p(e) = max_z p(e|z)` do not
/// dirty generation (marks are drawn against `p(e)` alone) — query-time
/// tag-aware reachability re-reads `p(e|W)` from the live model anyway.
fn changed_heads(old: &TicModel, new: &TicModel) -> BTreeSet<u32> {
    let mut heads = BTreeSet::new();
    for (e, s, t) in old.graph().edges() {
        match new.graph().find_edge(s, t) {
            None => {
                heads.insert(t);
            }
            Some(ne) => {
                if old.edge_topics().p_max(e) != new.edge_topics().p_max(ne) {
                    heads.insert(t);
                }
            }
        }
    }
    for (_, s, t) in new.graph().edges() {
        if old.graph().find_edge(s, t).is_none() {
            heads.insert(t);
        }
    }
    heads
}

fn full_rebuild(
    old: &RrIndex,
    new_model: &TicModel,
    opts: &RepairOptions,
    reason: String,
) -> (RrIndex, RepairReport) {
    let index =
        RrIndex::build_with_threads(new_model, old.budget(), old.seed(), opts.threads.max(1));
    let theta = index.theta();
    let report = RepairReport {
        theta,
        resampled: theta,
        reused: 0,
        full_rebuild: true,
        reason: Some(reason),
        dirty_members: Vec::new(),
    };
    (index, report)
}

/// Repairs `old` (built from `old_model`) into the index of `new_model`
/// under the budget and seed the old index itself carries. The returned
/// index is bit-identical to
/// `RrIndex::build(new_model, old.budget(), old.seed())`.
pub fn repair_rr_index(
    old: &RrIndex,
    old_model: &TicModel,
    new_model: &TicModel,
    opts: &RepairOptions,
) -> (RrIndex, RepairReport) {
    let theta = old.budget().sample_count(new_model.graph().num_nodes(), new_model.num_tags());
    if new_model.graph().num_nodes() != old.num_nodes() {
        // gen_range(0..|V|) re-targets every draw.
        return full_rebuild(old, new_model, opts, "vertex count changed".to_string());
    }
    if theta != old.theta() {
        return full_rebuild(old, new_model, opts, "sample budget changed".to_string());
    }

    // Membership lookup: every graph containing the head of a changed edge.
    let mut dirty: BTreeSet<u32> = BTreeSet::new();
    for head in changed_heads(old_model, new_model) {
        dirty.extend(old.graphs_containing(head).iter().copied());
    }
    let fraction = dirty.len() as f64 / theta.max(1) as f64;
    if fraction > opts.dirty_threshold {
        return full_rebuild(
            old,
            new_model,
            opts,
            format!("dirty fraction {fraction:.3} above threshold {}", opts.dirty_threshold),
        );
    }

    // Old edge id -> new edge id, for reused graphs (identity when the
    // edge set is unchanged, in which case the remap pass is skipped).
    let mut id_map: Vec<Option<u32>> = Vec::with_capacity(old_model.graph().num_edges());
    let mut identity = old_model.graph().num_edges() == new_model.graph().num_edges();
    for (e, s, t) in old_model.graph().edges() {
        let ne = new_model.graph().find_edge(s, t);
        identity &= ne == Some(e);
        id_map.push(ne);
    }

    let dirty_list: Vec<u32> = dirty.iter().copied().collect();
    let threads = opts.threads.max(1).min(dirty_list.len().max(1));
    let mut resampled: Vec<(u32, RrGraph)> = Vec::with_capacity(dirty_list.len());
    std::thread::scope(|scope| {
        let chunk = dirty_list.len().div_ceil(threads);
        let handles: Vec<_> = dirty_list
            .chunks(chunk.max(1))
            .map(|draws| {
                scope.spawn(move || {
                    draws
                        .iter()
                        .map(|&i| (i, sample_rr_graph_at(new_model, old.seed(), i as u64)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            resampled.extend(h.join().expect("repair thread panicked"));
        }
    });

    let mut dirty_members: BTreeSet<u32> = BTreeSet::new();
    for &(i, ref fresh) in &resampled {
        dirty_members.extend(old.graphs()[i as usize].nodes().iter().copied());
        dirty_members.extend(fresh.nodes().iter().copied());
    }

    let mut graphs: Vec<RrGraph> = Vec::with_capacity(old.graphs().len());
    let mut next_fresh = resampled.into_iter().peekable();
    for (i, g) in old.graphs().iter().enumerate() {
        if next_fresh.peek().is_some_and(|&(j, _)| j as usize == i) {
            graphs.push(next_fresh.next().unwrap().1);
        } else if identity {
            graphs.push(g.clone());
        } else {
            graphs.push(g.with_remapped_edge_ids(|e| id_map[e as usize]));
        }
    }

    let resampled_count = dirty_list.len() as u64;
    let report = RepairReport {
        theta,
        resampled: resampled_count,
        reused: theta - resampled_count,
        full_rebuild: false,
        reason: None,
        dirty_members: dirty_members.into_iter().collect(),
    };
    let repaired = RrIndex::from_graphs(
        new_model.graph().num_nodes(),
        theta,
        old.budget(),
        old.seed(),
        graphs,
    );
    (repaired, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::UpdateOp;
    use crate::overlay::ModelOverlay;
    use pitex_index::serial::rr_index_to_bytes;
    use pitex_index::IndexBudget;
    use std::sync::Arc;

    const SEED: u64 = 11;

    fn build(model: &TicModel, budget: u64, threads: usize) -> RrIndex {
        RrIndex::build_with_threads(model, IndexBudget::Fixed(budget), SEED, threads)
    }

    fn opts() -> RepairOptions {
        RepairOptions { threads: 3, dirty_threshold: 0.5 }
    }

    fn mutate(ops: &[UpdateOp]) -> (TicModel, TicModel) {
        let base = Arc::new(TicModel::paper_example());
        let mut overlay = ModelOverlay::new(base.clone());
        overlay.apply_all(ops.iter().cloned()).unwrap();
        let new_model = overlay.compact();
        ((*base).clone(), new_model)
    }

    #[test]
    fn repair_matches_full_rebuild_bit_for_bit() {
        let cases: Vec<Vec<UpdateOp>> = vec![
            vec![UpdateOp::SetEdgeTopics { src: 0, dst: 1, topics: vec![(0, 0.9)] }],
            vec![UpdateOp::RemoveEdge { src: 5, dst: 6 }],
            vec![UpdateOp::AddEdge { src: 1, dst: 4, topics: vec![(1, 0.6)] }],
            vec![
                UpdateOp::SetEdgeTopics { src: 3, dst: 6, topics: vec![(2, 0.05)] },
                UpdateOp::AddEdge { src: 6, dst: 0, topics: vec![(0, 0.2)] },
                UpdateOp::RemoveEdge { src: 2, dst: 3 },
            ],
        ];
        for ops in cases {
            let (old_model, new_model) = mutate(&ops);
            // On the 7-node example even one mutated head dirties a large
            // fraction of graphs; disable the rebuild fallback so the test
            // exercises the incremental path.
            let opts = RepairOptions { dirty_threshold: 1.0, ..opts() };
            let old = build(&old_model, 400, 2);
            let (repaired, report) = repair_rr_index(&old, &old_model, &new_model, &opts);
            let rebuilt = build(&new_model, 400, 2);
            assert_eq!(
                rr_index_to_bytes(&repaired),
                rr_index_to_bytes(&rebuilt),
                "{ops:?}: repaired index must equal a from-scratch rebuild"
            );
            assert!(!report.full_rebuild, "{ops:?}");
            assert!(report.resampled < report.theta, "{ops:?}: {report:?}");
            assert_eq!(report.resampled + report.reused, report.theta);
        }
    }

    #[test]
    fn unchanged_p_max_resamples_nothing() {
        // Edge (0, 2) has rows z2:0.5, z3:0.5 — dropping z3 to 0.5 keeps
        // p_max at 0.5, so generation is untouched.
        let (old_model, new_model) =
            mutate(&[UpdateOp::SetEdgeTopics { src: 0, dst: 2, topics: vec![(1, 0.5), (2, 0.4)] }]);
        let old = build(&old_model, 300, 2);
        let (repaired, report) = repair_rr_index(&old, &old_model, &new_model, &opts());
        assert_eq!(report.resampled, 0);
        assert!(report.dirty_members.is_empty());
        assert_eq!(repaired.graphs(), old.graphs());
    }

    #[test]
    fn tag_only_mutations_resample_nothing() {
        let (old_model, new_model) = mutate(&[UpdateOp::DetachTag { tag: 2 }]);
        let old = build(&old_model, 300, 2);
        let (repaired, report) = repair_rr_index(&old, &old_model, &new_model, &opts());
        assert_eq!(report.resampled, 0);
        assert_eq!(rr_index_to_bytes(&repaired), rr_index_to_bytes(&build(&new_model, 300, 1)));
    }

    #[test]
    fn vertex_growth_forces_full_rebuild() {
        let (old_model, new_model) = mutate(&[UpdateOp::AddUser]);
        let old = build(&old_model, 300, 2);
        let (repaired, report) = repair_rr_index(&old, &old_model, &new_model, &opts());
        assert!(report.full_rebuild);
        assert!(report.reason.as_deref().unwrap().contains("vertex count"));
        assert_eq!(rr_index_to_bytes(&repaired), rr_index_to_bytes(&build(&new_model, 300, 4)));
    }

    #[test]
    fn dirty_threshold_triggers_full_rebuild() {
        // Mutating the head of (0, 2) dirties every graph containing u3 —
        // far above a 1% threshold on this tiny graph.
        let (old_model, new_model) =
            mutate(&[UpdateOp::SetEdgeTopics { src: 0, dst: 2, topics: vec![(1, 0.95)] }]);
        let opts = RepairOptions { dirty_threshold: 0.01, ..opts() };
        let old = build(&old_model, 300, 2);
        let (repaired, report) = repair_rr_index(&old, &old_model, &new_model, &opts);
        assert!(report.full_rebuild);
        assert!(report.reason.as_deref().unwrap().contains("dirty fraction"));
        assert_eq!(rr_index_to_bytes(&repaired), rr_index_to_bytes(&build(&new_model, 300, 2)));
    }

    #[test]
    fn dirty_members_cover_every_changed_graph() {
        let (old_model, new_model) =
            mutate(&[UpdateOp::SetEdgeTopics { src: 5, dst: 6, topics: vec![(2, 0.99)] }]);
        let old = build(&old_model, 500, 2);
        let (repaired, report) = repair_rr_index(&old, &old_model, &new_model, &opts());
        for (i, (a, b)) in old.graphs().iter().zip(repaired.graphs()).enumerate() {
            if a != b {
                for &v in b.nodes() {
                    assert!(
                        report.dirty_members.contains(&v),
                        "graph {i}: member {v} of a changed graph missing from dirty_members"
                    );
                }
            }
        }
        assert!(report.resampled > 0);
    }

    #[test]
    fn repair_chains_compose() {
        // repair(repair(m0 -> m1) -> m2) == build(m2).
        let base = Arc::new(TicModel::paper_example());
        let mut o1 = ModelOverlay::new(base.clone());
        o1.apply(UpdateOp::SetEdgeTopics { src: 0, dst: 1, topics: vec![(0, 0.7)] }).unwrap();
        let m1 = Arc::new(o1.compact());
        let mut o2 = ModelOverlay::new(m1.clone());
        o2.apply(UpdateOp::RemoveEdge { src: 3, dst: 6 }).unwrap();
        let m2 = o2.compact();

        let opts = opts();
        let i0 = build(&base, 350, 2);
        let (i1, _) = repair_rr_index(&i0, &base, &m1, &opts);
        let (i2, _) = repair_rr_index(&i1, &m1, &m2, &opts);
        assert_eq!(rr_index_to_bytes(&i2), rr_index_to_bytes(&build(&m2, 350, 3)));
    }
}
