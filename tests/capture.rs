//! Fault-injection suite for the PWRK workload-capture log.
//!
//! The capture log's contract mirrors the WAL's, adapted for telemetry:
//! every record that [`CaptureRecorder`] flushed is readable back
//! bit-identically, a torn tail (the process died mid-flush) is tolerated
//! and reported instead of failing the read, and corruption *inside* a
//! complete record — bytes changed under an intact frame — refuses loudly
//! with the offset, never yielding a silently wrong workload. This suite
//! proves each clause against real files written through the real
//! recorder, plus a property test pinning the record codec round trip
//! over arbitrary field values.

use pitex::support::obs::capture::{
    decode_record, encode_record, read_log, CaptureError, CaptureOptions, CaptureRecord,
    CaptureRecorder, CAPTURE_MAGIC,
};
use proptest::prelude::*;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pitex-capture-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn record(n: u64) -> CaptureRecord {
    CaptureRecord {
        ts_us: 1_000 + n,
        trace_id: 0xabc0 + n,
        verb: "QUERY".to_string(),
        user: n as u32,
        k: 2,
        backend: "-".to_string(),
        resolved: "lazy".to_string(),
        outcome: "ok".to_string(),
        us: 40 + n,
        tags: vec![2, 3],
        spread_bits: (1.5f64 + n as f64).to_bits(),
    }
}

/// Writes `n` records through the real recorder and returns the log path.
fn write_log(dir: &std::path::Path, n: u64) -> PathBuf {
    let path = dir.join("cap.pwrk");
    let recorder =
        CaptureRecorder::new(CaptureOptions { path: Some(path.clone()), rate: 1 }).unwrap();
    for i in 0..n {
        recorder.record(|| record(i));
    }
    recorder.flush();
    path
}

#[test]
fn recorder_output_reads_back_bit_identically() {
    let dir = tmp_dir("roundtrip");
    let path = write_log(&dir, 5);
    let log = read_log(&std::fs::read(&path).unwrap()).unwrap();
    assert_eq!(log.truncated_bytes, 0);
    assert_eq!(log.records.len(), 5);
    for (i, r) in log.records.iter().enumerate() {
        assert_eq!(*r, record(i as u64), "record {i} must survive the file round trip exactly");
    }
}

/// A torn tail — the process died mid-flush, leaving a half-written frame —
/// must not cost the records before it: the read succeeds and reports the
/// surgery in `truncated_bytes`, exactly like WAL recovery.
#[test]
fn torn_tail_is_tolerated_and_reported() {
    let dir = tmp_dir("torn");
    let path = write_log(&dir, 3);
    // Tear the tail: a frame claiming 96 payload bytes with only 5 present.
    let mut file = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
    file.write_all(&96u32.to_le_bytes()).unwrap();
    file.write_all(&[0xCD; 5]).unwrap();
    drop(file);

    let log = read_log(&std::fs::read(&path).unwrap()).unwrap();
    assert_eq!(log.records.len(), 3, "complete records before the tear survive");
    assert_eq!(log.truncated_bytes, 9, "4-byte len + 5 torn bytes");
    assert_eq!(log.records[2], record(2));
}

/// Corruption inside a complete record is not a crash artifact; a workload
/// log that decodes to the wrong traffic would silently invalidate every
/// replay built on it, so the read must fail loudly, naming the offset.
#[test]
fn mid_record_corruption_refuses_loudly() {
    let dir = tmp_dir("corrupt");
    let path = write_log(&dir, 4);
    let len = std::fs::metadata(&path).unwrap().len();
    let mut file = std::fs::OpenOptions::new().read(true).write(true).open(&path).unwrap();
    // Flip one byte inside the last frame's payload (just before its 8-byte
    // checksum) — the frame stays structurally complete, so this must read
    // as corruption, not as a tolerable torn tail.
    let target = len - 20;
    file.seek(SeekFrom::Start(target)).unwrap();
    let mut byte = [0u8; 1];
    file.read_exact(&mut byte).unwrap();
    file.seek(SeekFrom::Start(target)).unwrap();
    file.write_all(&[byte[0] ^ 0xFF]).unwrap();
    drop(file);

    match read_log(&std::fs::read(&path).unwrap()) {
        Ok(log) => {
            panic!("corrupt bytes decoded into {} records without complaint", log.records.len())
        }
        Err(CaptureError::Corrupt { offset, detail }) => {
            assert!(offset >= 16, "corruption is past the header, got offset {offset}");
            assert!(!detail.is_empty());
        }
        Err(other) => panic!("wanted CaptureError::Corrupt, got {other:?}"),
    }
}

/// A file that is not a PWRK log at all (wrong magic) errors on the header,
/// not mid-scan.
#[test]
fn wrong_magic_is_a_header_error() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"PLOG");
    bytes.extend_from_slice(&[0u8; 12]);
    match read_log(&bytes) {
        Err(CaptureError::Header(_)) => {}
        other => panic!("wanted a header error, got {other:?}"),
    }
    assert_eq!(&CAPTURE_MAGIC, b"PWRK");
}

/// Rotation atomically renames the live log aside and starts a fresh one;
/// both halves must read back complete.
#[test]
fn rotation_splits_the_stream_across_readable_files() {
    let dir = tmp_dir("rotate");
    let path = dir.join("cap.pwrk");
    let recorder =
        CaptureRecorder::new(CaptureOptions { path: Some(path.clone()), rate: 1 }).unwrap();
    for i in 0..3 {
        recorder.record(|| record(i));
    }
    let rotated = recorder.rotate().unwrap();
    for i in 3..5 {
        recorder.record(|| record(i));
    }
    recorder.flush();

    let old = read_log(&std::fs::read(&rotated).unwrap()).unwrap();
    let new = read_log(&std::fs::read(&path).unwrap()).unwrap();
    assert_eq!(old.records.len(), 3);
    assert_eq!(new.records.len(), 2);
    assert_eq!(new.records[0], record(3), "the stream continues in the fresh file");
}

/// Sampling keeps 1-in-`rate` *admitted* requests and counts everything it
/// kept; replays scale counts back up by the rate, so the kept subset must
/// be exactly periodic, not probabilistic.
#[test]
fn sampling_rate_keeps_a_deterministic_subset() {
    let dir = tmp_dir("rate");
    let path = dir.join("cap.pwrk");
    let recorder =
        CaptureRecorder::new(CaptureOptions { path: Some(path.clone()), rate: 4 }).unwrap();
    for i in 0..17 {
        recorder.record(|| record(i));
    }
    recorder.flush();
    let log = read_log(&std::fs::read(&path).unwrap()).unwrap();
    assert_eq!(log.records.len(), 5, "17 admitted at 1-in-4 keeps ceil(17/4)");
    assert_eq!(recorder.recorded(), 5);
    let users: Vec<u32> = log.records.iter().map(|r| r.user).collect();
    assert_eq!(users, vec![0, 4, 8, 12, 16], "every 4th admission, starting at the first");
}

/// String-field pools for the property tests: each covers the empty string
/// and the values the capture hooks actually emit.
const VERBS: [&str; 4] = ["QUERY", "EXPLAIN", "TRACE", ""];
const BACKENDS: [&str; 5] = ["-", "auto", "lazy", "exact", ""];
const OUTCOMES: [&str; 5] = ["ok", "cached", "busy", "deadline", ""];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The record codec is total over its field domain: any combination of
    /// values (empty strings, max ids, NaN spread bits, long tag lists)
    /// encodes and decodes bit-identically.
    #[test]
    fn record_codec_round_trips_arbitrary_fields(
        ts_us in 0u64..u64::MAX,
        trace_id in 0u64..u64::MAX,
        verb_i in 0usize..VERBS.len(),
        ids in (0u32..u32::MAX, 0u32..u32::MAX),
        backend_i in 0usize..BACKENDS.len(),
        resolved_i in 0usize..BACKENDS.len(),
        outcome_i in 0usize..OUTCOMES.len(),
        us in 0u64..u64::MAX,
        tags in proptest::collection::vec(0u32..u32::MAX, 0..32),
        spread_bits in 0u64..u64::MAX,
    ) {
        let record = CaptureRecord {
            ts_us,
            trace_id,
            verb: VERBS[verb_i].to_string(),
            user: ids.0,
            k: ids.1,
            backend: BACKENDS[backend_i].to_string(),
            resolved: BACKENDS[resolved_i].to_string(),
            outcome: OUTCOMES[outcome_i].to_string(),
            us,
            tags,
            spread_bits,
        };
        let decoded = decode_record(&encode_record(&record)).unwrap();
        prop_assert_eq!(decoded, record);
    }

    /// Arbitrary record *sequences* survive the full file round trip
    /// through the real recorder, order and contents intact.
    #[test]
    fn log_files_round_trip_arbitrary_sequences(
        users in proptest::collection::vec(0u32..u32::MAX, 1..24),
    ) {
        let dir = tmp_dir("prop");
        let path = dir.join("cap.pwrk");
        let recorder =
            CaptureRecorder::new(CaptureOptions { path: Some(path.clone()), rate: 1 }).unwrap();
        for (i, &user) in users.iter().enumerate() {
            recorder.record(|| CaptureRecord { user, ..record(i as u64) });
        }
        recorder.flush();
        let log = read_log(&std::fs::read(&path).unwrap()).unwrap();
        prop_assert_eq!(log.truncated_bytes, 0);
        prop_assert_eq!(log.records.len(), users.len());
        for (i, (r, &user)) in log.records.iter().zip(&users).enumerate() {
            prop_assert_eq!(r, &CaptureRecord { user, ..record(i as u64) });
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
