//! Fig. 12 — Scalability on the twitter-like dataset.
//!
//! (a) varying the tag vocabulary |Ω| ∈ {50..250}: more candidate tag sets
//!     ⇒ slower queries, with INDEXEST scaling best;
//! (b) varying the topic count |Z| ∈ {10..50}: each tag concentrates on a
//!     few topics, so density = const/|Z| *falls* as |Z| grows, feasible
//!     combinations thin out, and queries get *faster* — the paper's
//!     counter-intuitive finding.

use pitex_bench::{
    banner, build_indexes, default_config, default_queries, prepare, run_batch, BenchEnv, Method,
};
use pitex_datasets::{DatasetProfile, UserGroup};

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Fig. 12: scalability on twitter-like (mid group, k = 3)",
        "(a) vary |Ω| at |Z| = 50   (b) vary |Z| at |Ω| = 120",
    );
    let base = DatasetProfile::twitter_like().scaled((0.002 * env.scale).clamp(1e-6, 1.0));
    let methods = Method::OFFLINE_PLUS_LAZY;

    println!();
    println!("--- (a) time (s) vs |Ω| ---");
    print!("{:<8}", "|Omega|");
    for m in methods {
        print!(" {:>12}", m.label());
    }
    println!();
    for num_tags in [50usize, 100, 150, 200, 250] {
        let data = prepare(base.clone().with_tags(num_tags));
        let indexes = build_indexes(&data.model, env.index_budget(), env.seed);
        let users = default_queries(&data, &env, UserGroup::Mid);
        print!("{:<8}", num_tags);
        for method in methods {
            let out =
                run_batch(method, &data.model, Some(&indexes), &users, 3, default_config(env.seed));
            print!(" {:>12.6}", out.time.mean());
        }
        println!();
    }

    println!();
    println!("--- (b) time (s) vs |Z| (per-tag topic count held at ~4) ---");
    print!("{:<8}", "|Z|");
    for m in methods {
        print!(" {:>12}", m.label());
    }
    println!();
    for num_topics in [10usize, 20, 30, 40, 50] {
        // Hold the per-tag topic count fixed: density = 4/|Z| falls with |Z|.
        let mut profile = base.clone().with_tags(120).with_topics(num_topics);
        profile.density = (4.0 / num_topics as f64).min(1.0);
        let data = prepare(profile);
        let indexes = build_indexes(&data.model, env.index_budget(), env.seed);
        let users = default_queries(&data, &env, UserGroup::Mid);
        print!("{:<8}", num_topics);
        for method in methods {
            let out =
                run_batch(method, &data.model, Some(&indexes), &users, 3, default_config(env.seed));
            print!(" {:>12.6}", out.time.mean());
        }
        println!();
    }
}
